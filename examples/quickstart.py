#!/usr/bin/env python3
"""Quickstart: build a dynamic graph, stream updates, analyze snapshots.

Demonstrates the core DGAP API end to end:

* initialize with size estimations (paper §3.1.1);
* stream edge insertions and deletions;
* take a consistent Degree-Cache snapshot and run PageRank/BFS on it
  while later inserts stay invisible to the running task (§3.1.3);
* gracefully shut down and reopen from persistent memory (§3.1.5).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DGAP, DGAPConfig
from repro.algorithms import bfs, pagerank
from repro.analysis.view import CSRArraysView
from repro.datasets import get_dataset


def main() -> None:
    spec = get_dataset("orkut")
    edges = spec.generate(scale=0.25)  # a small Orkut-shaped proxy
    num_vertices, _ = spec.sizes(0.25)
    print(f"dataset: {spec.name} proxy — {num_vertices} vertices, {len(edges)} edges")

    # 1. initialize DGAP with the usual size estimations
    g = DGAP(DGAPConfig(init_vertices=num_vertices, init_edges=len(edges)))

    # 2. stream the first half of the graph in
    half = len(edges) // 2
    g.insert_edges(map(tuple, edges[:half]))
    print(f"ingested {g.num_edges} edges "
          f"({g.n_array_inserts} in-place, {g.n_log_inserts} via edge logs, "
          f"{g.n_rebalances} rebalances)")

    # 3. snapshot + analyze while more edges stream in
    snap = g.consistent_view()
    edges_at_snapshot = snap.num_edges
    g.insert_edges(map(tuple, edges[half:]))  # these stay invisible to `snap`

    view = CSRArraysView(*snap.to_csr())
    ranks = pagerank(view, iterations=20)
    top = np.argsort(ranks)[-3:][::-1]
    print(f"snapshot saw {edges_at_snapshot} edges; live graph has {g.num_edges}")
    print("top-3 PageRank vertices in the snapshot:", top.tolist())

    parents = bfs(view, source=int(top[0]))
    print(f"BFS from hub {int(top[0])}: reached {(parents >= 0).sum()} vertices")
    snap.release()

    # 4. deletions are tombstoned in place
    u, w = map(int, edges[0])
    g.delete_edge(u, w)
    print(f"deleted one ({u} -> {w}) edge; live edges: {g.num_edges}")

    # 5. graceful shutdown persists the DRAM metadata; reopen is fast
    g.shutdown()
    g2 = DGAP.open(g.pool, g.config)
    print(f"reopened from PM: {g2.num_edges} edges, {g2.num_vertices} vertices")
    print(f"modeled PM time spent: {g.pool.stats.modeled_seconds * 1e3:.1f} ms, "
          f"write amplification {g.pool.stats.write_amplification():.2f}x")


if __name__ == "__main__":
    main()
