#!/usr/bin/env python3
"""Compare all five systems on one stream — a miniature of the paper's §4.

Ingests the same shuffled LiveJournal-shaped stream into DGAP, BAL,
LLAMA, GraphOne-FD and XPGraph, then runs PageRank and BFS on each
system's own view, reporting:

* insert throughput (MEPS) at 1 and 16 modeled writer threads,
* write amplification on the persistent device,
* analysis time normalized to the immutable-CSR baseline.

Run:  python examples/framework_comparison.py            (default scale)
      REPRO_SCALE=0.25 python examples/framework_comparison.py   (faster)
"""

from repro.baselines import SYSTEMS, StaticCSR
from repro.bench.harness import ingest, run_kernel
from repro.bench.reporting import format_table
from repro.datasets import env_scale, get_dataset


def main() -> None:
    scale = env_scale(0.5)
    spec = get_dataset("livejournal")
    edges = spec.generate(scale)
    num_vertices, _ = spec.sizes(scale)
    print(f"{spec.name} proxy at scale {scale}: "
          f"{num_vertices} vertices, {edges.shape[0]} edges (E/V = {spec.ratio})\n")

    csr = StaticCSR(num_vertices, edges)
    csr_view = csr.analysis_view()
    t_pr_csr = run_kernel(csr_view, "pr")[1]
    t_bfs_csr = run_kernel(csr_view, "bfs", source=0)[1]

    rows = []
    for name, cls in SYSTEMS.items():
        system = cls(num_vertices, edges.shape[0])
        result = ingest(system, spec, edges)
        view = system.analysis_view()
        t_pr = run_kernel(view, "pr")[1]
        t_bfs = run_kernel(view, "bfs", source=0)[1]
        rows.append((
            name,
            result.meps(1),
            result.meps(16),
            result.write_amplification,
            t_pr / t_pr_csr,
            t_bfs / t_bfs_csr,
        ))

    rows.sort(key=lambda r: -r[1])
    print(format_table(
        f"five systems on {spec.name} (PR/BFS normalized to immutable CSR; lower is better)",
        ["system", "insert MEPS (1T)", "insert MEPS (16T)", "write amp", "PR vs CSR", "BFS vs CSR"],
        rows,
    ))
    print(
        "\nreading the table like the paper does:\n"
        "  - DGAP leads ingestion (single mutable CSR, no structure conversions);\n"
        "  - DGAP is closest to CSR on full scans (PR) among dynamic systems;\n"
        "  - the DRAM-cached adjacency lists (GraphOne/XPGraph) win BFS;\n"
        "  - LLAMA pays its per-snapshot vertex tables and fragment chains."
    )


if __name__ == "__main__":
    main()
