#!/usr/bin/env python3
"""Streaming cellular-network analytics — the paper's motivating workload.

The introduction cites CellIQ-style operators who must "address traffic
hotspots in their networks as they are generated and identified": a
dynamic graph framework has to persist a continuous stream of events
AND run analysis on the *latest* graph, simultaneously.

This example simulates a cellular handoff graph: vertices are cells,
an edge (a -> b) is a device handoff between cells.  Handoffs stream in
windows; after each window we snapshot the live graph and detect
hotspots (PageRank over the handoff graph) and coverage islands
(connected components) — while the next window keeps inserting, exactly
the overlap the Degree Cache makes safe.

Run:  python examples/cellular_hotspots.py
"""

import numpy as np

from repro import DGAP, DGAPConfig
from repro.algorithms import connected_components, pagerank
from repro.analysis.view import CSRArraysView
from repro.datasets import rmat_edges, shuffle_edges

N_CELLS = 600
N_WINDOWS = 6
EVENTS_PER_WINDOW = 4_000


def handoff_stream(window: int) -> np.ndarray:
    """One monitoring window of handoff events; skew drifts over time so
    the hotspot moves (R-MAT seeds rotate the hub neighborhood)."""
    edges = rmat_edges(N_CELLS, EVENTS_PER_WINDOW, a=0.6, seed=100 + window)
    return shuffle_edges(edges, seed=window)


def main() -> None:
    g = DGAP(DGAPConfig(
        init_vertices=N_CELLS,
        init_edges=N_WINDOWS * EVENTS_PER_WINDOW,
    ))

    previous_hot: set[int] = set()
    for window in range(N_WINDOWS):
        events = handoff_stream(window)
        g.insert_edges(map(tuple, events))

        # Analysis on a consistent snapshot of the latest graph; the next
        # window's inserts (in a real deployment, a concurrent writer
        # thread) never leak into this task's view.
        with g.consistent_view() as snap:
            view = CSRArraysView(*snap.to_csr())
            ranks = pagerank(view, iterations=20)
            comps = connected_components(view)

        hot = set(np.argsort(ranks)[-5:].tolist())
        n_islands = len(set(comps.tolist()))
        emerging = sorted(hot - previous_hot)
        print(
            f"window {window}: {snap.num_edges:6d} handoffs total | "
            f"hot cells {sorted(hot)} | new hotspots {emerging or '-'} | "
            f"{n_islands} coverage component(s)"
        )
        previous_hot = hot

    print(
        f"\nstreamed {g.num_edges} events; "
        f"{g.n_rebalances} rebalances, {g.n_resizes} resizes, "
        f"modeled PM time {g.pool.stats.modeled_seconds * 1e3:.1f} ms "
        f"({g.num_edges / max(g.pool.stats.modeled_seconds, 1e-12) / 1e6:.2f} MEPS)"
    )

    # Operators restart collectors all the time: a graceful shutdown
    # persists everything and the next session resumes instantly.
    g.shutdown()
    g2 = DGAP.open(g.pool, g.config)
    assert g2.num_edges == g.num_edges
    print("collector restarted from persistent memory — no re-ingestion needed")


if __name__ == "__main__":
    main()
