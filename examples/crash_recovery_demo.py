#!/usr/bin/env python3
"""Crash-consistency demo: power-fail DGAP mid-rebalance and recover.

Arms the crash injector to cut power at a persistence event *inside* a
PMA rebalancing operation (the riskiest moment: data is being moved and
a per-thread undo log is protecting it — paper §3.1.4 / Fig. 4), then
reopens the pool and shows that recovery:

* detects the crash via the NORMAL_SHUTDOWN flag,
* restores the half-moved window from the undo log,
* rebuilds the DRAM vertex array from the pivots,
* replays the edge logs,

and that every acknowledged edge survived, in order.

Run:  python examples/crash_recovery_demo.py
"""

import random

from repro import DGAP, DGAPConfig, SimulatedCrash
from repro.pmem import CrashInjector


def main() -> None:
    random.seed(7)
    cfg = DGAPConfig(init_vertices=64, init_edges=2048, segment_slots=64, elog_size=256)
    edges = [(random.randrange(64), random.randrange(64)) for _ in range(6000)]

    # Dry run to find a crash point that lands inside a rebalance.
    probe = DGAP(cfg)
    events_before = probe.pool.device.injector.total_events
    probe.insert_edges(edges)
    print(f"dry run: {probe.n_rebalances} rebalances over "
          f"{probe.pool.device.injector.total_events - events_before} persistence events")

    # Real run: arm the injector somewhere in the middle of the stream.
    inj = CrashInjector()
    g = DGAP(cfg, injector=inj)
    inj.arm(probe.pool.device.injector.total_events // 2)

    acked = []
    try:
        for u, w in edges:
            g.insert_edge(u, w)
            acked.append((u, w))
    except SimulatedCrash as crash:
        print(f"\npower failure injected: {crash}")
        print(f"  acknowledged edges at crash: {len(acked)}")
        print(f"  unflushed cache lines lost:  {g.pool.device.dirty_lines} (reverted)")
    inj.disarm()

    # Reopen: DGAP sees NORMAL_SHUTDOWN == 0 and runs crash recovery.
    before = g.pool.stats.snapshot()
    g2 = DGAP.open(g.pool, cfg)
    recovery_ms = g.pool.stats.delta_since(before).modeled_ns * 1e-6
    print(f"\nrecovered in {recovery_ms:.3f} modeled ms "
          f"(edge-array pivot scan + undo/edge-log replay)")

    # Verify: every acknowledged edge is present, per-vertex order intact.
    want = {}
    for u, w in acked:
        want.setdefault(u, []).append(w)
    extra = 0
    with g2.consistent_view() as snap:
        for v in range(g2.num_vertices):
            got = list(snap.out_neighbors(v))
            expect = want.get(v, [])
            assert got[: len(expect)] == expect, f"vertex {v} lost acknowledged edges!"
            extra += len(got) - len(expect)
    print(f"all {len(acked)} acknowledged edges intact and ordered "
          f"({extra} in-flight edge(s) also persisted — allowed)")

    # The recovered instance is fully operational.
    g2.insert_edge(1, 2)
    print(f"recovered graph accepts new inserts; live edges: {g2.num_edges}")


if __name__ == "__main__":
    main()
