"""Table 5 — DGAP component ablation: insert time with designs removed.

Incremental exclusions (paper §4.4): per-section edge logs ("No EL"),
then the per-thread undo log, replaced by PMDK transactions ("No
EL&UL"), then DRAM placement of vertex array + PMA metadata ("No
EL&UL&DP").  The paper reports the small trio of datasets; the expected
structure is monotone degradation, with the edge log the largest
contributor and DRAM placement roughly doubling the remainder.
"""

from conftest import run_once
from repro import DGAP, DGAPConfig
from repro.bench import emit, format_table, paper_vs_measured
from repro.bench.paper_data import TABLE5_SECONDS
from repro.datasets import SMALL_DATASETS, get_dataset

VARIANTS = (
    ("dgap", {}),
    ("no_el", {"use_edge_log": False}),
    ("no_el_ul", {"use_edge_log": False, "use_undo_log": False}),
    ("no_el_ul_dp", {"use_edge_log": False, "use_undo_log": False, "dram_placement": False}),
)


def test_table5_component_ablation(benchmark, scale):
    def run():
        table = {}
        for ds in SMALL_DATASETS:
            spec = get_dataset(ds)
            edges = spec.generate(scale)
            nv, _ = spec.sizes(scale)
            table[ds] = {}
            for name, kw in VARIANTS:
                g = DGAP(DGAPConfig(init_vertices=nv, init_edges=edges.shape[0], **kw))
                before = g.pool.stats.snapshot()
                g.insert_edges(map(tuple, edges))
                d = g.pool.stats.delta_since(before)
                table[ds][name] = d.modeled_ns * 1e-9
        return table

    table = run_once(benchmark, run)

    names = [n for n, _ in VARIANTS]
    rows = [[ds] + [table[ds][n] for n in names] for ds in table]
    emit(format_table(
        "Table 5: insert time by DGAP variant (measured modeled seconds)",
        ["dataset"] + names,
        rows,
        floatfmt="{:.3f}",
    ))
    emit(format_table(
        "Table 5: paper seconds (real hardware, full datasets)",
        ["dataset"] + names,
        [[ds] + [TABLE5_SECONDS[ds][n] for n in names] for ds in TABLE5_SECONDS],
    ))

    checks = []
    for ds in table:
        t = table[ds]
        checks.append((
            f"{ds}: removing the edge log hurts (paper 4.5x)",
            "4.5x", t["no_el"] / t["dgap"], t["no_el"] > 1.1 * t["dgap"],
        ))
        checks.append((
            f"{ds}: PMDK tx worse than undo log (paper ~2-13%)",
            ">=1x", t["no_el_ul"] / t["no_el"], t["no_el_ul"] >= 0.98 * t["no_el"],
        ))
        checks.append((
            f"{ds}: PM-placed metadata ~doubles again (paper ~1.5-2x)",
            "1.53x", t["no_el_ul_dp"] / t["no_el_ul"],
            t["no_el_ul_dp"] > 1.3 * t["no_el_ul"],
        ))
    emit(paper_vs_measured("table5 structure", checks))
    assert all(ok for *_, ok in checks)
