"""Fig. 8 — BFS and Betweenness Centrality, normalized to CSR on PM.

Frontier kernels touch random vertices' edge lists: the DRAM-cached
adjacency lists (GraphOne, XPGraph) win BFS outright (paper: DGAP is
2.77x/1.81x *slower* there), while on the heavier, wider-coverage BC
DGAP catches back up and LLAMA's fragment chains collapse (§4.3).
"""

from conftest import run_once
from repro.bench import (
    emit,
    format_table,
    get_built_system,
    get_static_csr,
    paper_vs_measured,
    pick_source,
    run_kernel,
)
from repro.bench.paper_data import TABLE4_SECONDS
from repro.datasets import PAPER_DATASETS

SYSTEM_ORDER = ("dgap", "bal", "llama", "graphone", "xpgraph")


def _normalized(kernel: str, scale: float):
    table = {}
    for ds in PAPER_DATASETS:
        src = pick_source(ds, scale)
        csr_view = get_static_csr(ds, scale).analysis_view()
        t_csr = run_kernel(csr_view, kernel, source=src)[1]
        table[ds] = {}
        for name in SYSTEM_ORDER:
            system, _ = get_built_system(name, ds, scale=scale)
            view = system.analysis_view()
            table[ds][name] = run_kernel(view, kernel, source=src)[1] / t_csr
    return table


def test_fig8_bfs_and_bc(benchmark, scale):
    def run():
        return {"bfs": _normalized("bfs", scale), "bc": _normalized("bc", scale)}

    tables = run_once(benchmark, run)
    for kernel in ("bfs", "bc"):
        t = tables[kernel]
        rows = [[ds] + [t[ds][s] for s in SYSTEM_ORDER] for ds in t]
        emit(format_table(
            f"Fig 8 ({kernel.upper()}): time normalized to CSR on PM (measured)",
            ["dataset"] + list(SYSTEM_ORDER),
            rows,
        ))
        prows = []
        for ds in t:
            data = TABLE4_SECONDS[kernel].get(ds)
            if data:
                prows.append([ds] + [f"{data[s][0] / data['csr'][0]:.2f}" for s in SYSTEM_ORDER])
        if prows:
            emit(format_table(
                f"Fig 8 ({kernel.upper()}): paper ratios (Table 4 T1)",
                ["dataset"] + list(SYSTEM_ORDER),
                prows,
            ))

    bfs, bc = tables["bfs"], tables["bc"]
    checks = []
    for ds in bfs:
        checks.append((
            f"{ds} BFS: GraphOne beats DGAP (paper: DGAP 2.77x slower)",
            "<1", bfs[ds]["graphone"] / bfs[ds]["dgap"],
            bfs[ds]["graphone"] < bfs[ds]["dgap"],
        ))
        checks.append((
            f"{ds} BFS: XPGraph beats DGAP (paper: DGAP 1.81x slower)",
            "<1", bfs[ds]["xpgraph"] / bfs[ds]["dgap"],
            bfs[ds]["xpgraph"] < bfs[ds]["dgap"],
        ))
        checks.append((
            f"{ds} BFS: DGAP beats BAL & LLAMA (paper: 2.30x / 3.71x)",
            ">1", min(bfs[ds]["bal"], bfs[ds]["llama"]) / bfs[ds]["dgap"],
            bfs[ds]["dgap"] < bfs[ds]["bal"] and bfs[ds]["dgap"] < bfs[ds]["llama"],
        ))
        checks.append((
            f"{ds} BC: LLAMA collapses (paper: DGAP up to 8.19x faster)",
            "worst, >1.9x", bc[ds]["llama"] / bc[ds]["dgap"],
            bc[ds]["llama"] >= 1.9 * bc[ds]["dgap"]
            and bc[ds]["llama"] == max(bc[ds].values()),
        ))
        # BC compresses the BFS gap: DGAP catches up with the DRAM systems
        gap_bfs = bfs[ds]["dgap"] / bfs[ds]["graphone"]
        gap_bc = bc[ds]["dgap"] / bc[ds]["graphone"]
        checks.append((
            f"{ds} BC vs BFS: DGAP catches up with GraphOne (paper §4.3)",
            "gap shrinks", f"{gap_bfs:.2f}->{gap_bc:.2f}", gap_bc < gap_bfs,
        ))
    emit(paper_vs_measured("fig8 structure", checks))
    assert all(ok for *_, ok in checks)
