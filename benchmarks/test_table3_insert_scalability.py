"""Table 3 — insert throughput (MEPS) with 1 / 8 / 16 writer threads.

Thread counts are evaluated through the insert scaling model (Amdahl
serialization + the Optane media-write-bandwidth ceiling; DESIGN.md §1).
XPGraph gets its Table 3 special case: for datasets whose *real* edge
stream fits the default 8 GB circular edge log, archiving never
activates at high thread counts and XPGraph scales exceptionally —
while on the billion-edge graphs DGAP wins (paper §4.2.1).
"""

from conftest import run_once
from repro.bench import emit, format_table, get_built_system, paper_vs_measured
from repro.bench.paper_data import TABLE3_MEPS
from repro.datasets import PAPER_DATASETS, get_dataset

SYSTEM_ORDER = ("dgap", "bal", "llama", "graphone", "xpgraph")
THREADS = (1, 8, 16)


def _xp_no_archive(ds: str, scale: float):
    return get_built_system("xpgraph", ds, scale=scale, log_capacity_edges=None)


def _xp_variant(ds: str, scale: float):
    """XPGraph as Table 3's numbers show it (archiving active).

    The paper's §4.2.1 *text* attributes exceptional 16-thread results to
    the 8 GB log absorbing the small graphs, but its Table 3 numbers show
    XPGraph below DGAP at T16 everywhere — we follow the numbers and
    report the no-archive mode separately below.
    """
    return get_built_system("xpgraph", ds, scale=scale)


def test_table3_insert_scalability(benchmark, scale):
    def run():
        table = {}
        for ds in PAPER_DATASETS:
            table[ds] = {}
            for name in SYSTEM_ORDER:
                if name == "xpgraph":
                    _, ins = _xp_variant(ds, scale)
                else:
                    _, ins = get_built_system(name, ds, scale=scale)
                table[ds][name] = tuple(ins.meps(p) for p in THREADS)
        return table

    table = run_once(benchmark, run)

    for p_i, p in enumerate(THREADS):
        rows = [[ds] + [table[ds][s][p_i] for s in SYSTEM_ORDER] for ds in table]
        rows_paper = [[ds] + [TABLE3_MEPS[ds][s][p_i] for s in SYSTEM_ORDER] for ds in TABLE3_MEPS]
        emit(format_table(f"Table 3 (T{p}): measured MEPS", ["dataset"] + list(SYSTEM_ORDER), rows))
        emit(format_table(f"Table 3 (T{p}): paper MEPS", ["dataset"] + list(SYSTEM_ORDER), rows_paper))

    checks = []
    for ds in table:
        d1, _, d16 = table[ds]["dgap"]
        speedup = d16 / d1
        paper_speedup = TABLE3_MEPS[ds]["dgap"][2] / TABLE3_MEPS[ds]["dgap"][0]
        checks.append((f"{ds}: DGAP 16T speedup (paper {paper_speedup:.1f}x, up to 4.3x)",
                       f"{paper_speedup:.2f}", speedup, 1.8 < speedup < 6.0))
        # LLAMA scales worst of all systems (single-threaded snapshotting)
        llama_speedup = table[ds]["llama"][2] / table[ds]["llama"][0]
        checks.append((f"{ds}: LLAMA scales worst", "<others",
                       llama_speedup,
                       llama_speedup <= min(table[ds][s][2] / table[ds][s][0]
                                            for s in SYSTEM_ORDER)))
    # small-graph XPGraph anomaly (§4.2.1 text): with the whole stream in
    # the 8 GB circular log, archiving never activates and XPGraph's pure
    # sequential appends scale exceptionally, beating DGAP at 16T
    for ds in ("orkut", "livejournal", "citpatents"):
        _, ins_fit = _xp_no_archive(ds, scale)
        checks.append((
            f"{ds}: XPGraph no-archive mode beats DGAP at 16T (8GB log fits)",
            "xp > dgap",
            ins_fit.meps(16) / table[ds]["dgap"][2],
            ins_fit.meps(16) > table[ds]["dgap"][2],
        ))
    # big graphs: DGAP beats XPGraph at 16T (paper: 12-21% better)
    for ds in ("twitter", "friendster", "protein"):
        checks.append((
            f"{ds}: DGAP > XPGraph at 16T (paper +12-21%)",
            "1.12-1.21",
            table[ds]["dgap"][2] / table[ds]["xpgraph"][2],
            table[ds]["dgap"][2] > table[ds]["xpgraph"][2],
        ))
    emit(paper_vs_measured("table3 structure", checks))
    assert all(ok for *_, ok in checks)
