"""Windowed temporal streams — the ingest→expire→analyze loop, twinned.

Temporal deployments retire edges as well as add them: every step of a
windowed stream ingests a burst, deletes the burst that just left the
window (down the tombstone path), and occasionally pays a
tombstone-merge compaction sweep.  This benchmark replays that loop
twice on identical streams — with the epoch-versioned view cache and
with the seed's from-scratch materialization — and pins four facts:

* kernel outputs, modeled seconds and per-step CSR bytes are identical
  (expiry and compaction are invisible to analysis results);
* the cached loop is >= 2x faster in wall clock (seed baseline JSON);
* the mutation ledger (adds, churn, expiry, compactions, pairs swept)
  reproduces the seeded stream exactly;
* the view-build/whole-view-hit counters prove the cache's reuse
  pattern deterministically — no wall clocks involved.
"""

import json
import pathlib

from conftest import run_once
from repro.bench import emit, format_table, paper_vs_measured
from repro.bench.reporting import temporal_loop_table
from repro.bench.temporal_loop import run_temporal_loop_pair

BASELINE_JSON = pathlib.Path(__file__).parent / "baselines" / "temporal_loop.json"


def test_temporal_loop_cached_speedup(benchmark):
    seed = json.loads(BASELINE_JSON.read_text())

    def run():
        # run_temporal_loop_pair raises if any kernel digest, modeled
        # time or per-step CSR differs between the arms — identity is
        # asserted, not eyed
        return run_temporal_loop_pair(
            seed["dataset"],
            scale=seed["scale"],
            window=seed["window"],
            compact_threshold=seed["compact_threshold"],
            kernels=tuple(seed["kernels"]),
            sources=seed["sources"],
        )

    pair = run_once(benchmark, run)
    emit(temporal_loop_table(pair, title="temporal loop (windowed stream)"))

    need = seed["min_required_speedup"]
    c = pair.cached.counters
    m = seed["mutations"]
    checks = [
        ("cached analysis wall s (seed env)", seed["cached_analysis_wall_s"],
         pair.cached.analysis_wall_s, True),
        ("scratch analysis wall s (seed env)", seed["scratch_analysis_wall_s"],
         pair.scratch.analysis_wall_s, True),
        (f"wall speedup cached vs scratch (need >= {need:g}x)",
         seed["wall_speedup_cached"], pair.speedup, pair.speedup >= need),
        ("edges added", m["added"], c["added"], c["added"] == m["added"]),
        ("churn deletes applied", m["churn_deleted"], c["churn_deleted"],
         c["churn_deleted"] == m["churn_deleted"]),
        ("copies expired", m["expired"], c["expired"],
         c["expired"] == m["expired"]),
        ("compaction sweeps", m["compactions"], c["compactions"],
         c["compactions"] == m["compactions"]),
        ("tombstone pairs compacted", m["tombstone_pairs_compacted"],
         c["tombstone_pairs_compacted"],
         c["tombstone_pairs_compacted"] == m["tombstone_pairs_compacted"]),
        ("view builds (one per step)", seed["counters"]["view_builds"],
         c["view_builds"], c["view_builds"] == seed["counters"]["view_builds"]),
        ("whole-view hits (all other trials)",
         seed["counters"]["whole_view_hits"], c["whole_view_hits"],
         c["whole_view_hits"] == seed["counters"]["whole_view_hits"]),
    ]
    emit(paper_vs_measured("temporal-loop speedup (DGAP, orkut-stream)", checks))
    assert all(ok for *_, ok in checks), checks


def test_temporal_loop_window_zero_and_one(benchmark):
    """Degenerate windows stay identical across arms: W=0 (everything
    expires the step it arrives) and W=1 (only the current step lives)."""
    seed = json.loads(BASELINE_JSON.read_text())

    def run():
        rows = []
        for window in (0, 1):
            pair = run_temporal_loop_pair(
                seed["dataset"],
                scale=0.25,
                window=window,
                compact_threshold=seed["compact_threshold"],
                sources=2,
                max_steps=8,
            )
            c = pair.cached.counters
            # W=0: every add either churns or expires the same step, so
            # nothing outlives its step; W=1 keeps exactly one step.
            rows.append((window, c["added"], c["churn_deleted"] + c["expired"],
                         pair.speedup))
        return rows

    rows = run_once(benchmark, run)
    emit(format_table(
        "degenerate windows (identity asserted per pair)",
        ["window", "added", "deleted", "speedup"],
        rows,
    ))
    w0 = rows[0]
    assert w0[1] == w0[2], "window 0 must delete every copy it ingests"
