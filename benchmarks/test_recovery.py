"""§4.4 Recovery evaluation — normal restart vs crash recovery time.

The paper: a normal restart reloads persisted metadata (1.16 s even on
Friendster); crash recovery rescans the edge array and logs, so it
grows with graph size but stays within seconds (<1 s small graphs, ~4 s
large).  We measure the modeled time of both paths on the proxies and
verify both the ordering and the size scaling.
"""

from conftest import run_once
from repro import DGAP, DGAPConfig
from repro.bench import emit, format_table, paper_vs_measured
from repro.datasets import get_dataset

DATASETS_REC = ("citpatents", "livejournal", "orkut", "protein")


def _built_graph(ds: str, scale: float) -> DGAP:
    spec = get_dataset(ds)
    edges = spec.generate(scale)
    nv, _ = spec.sizes(scale)
    g = DGAP(DGAPConfig(init_vertices=nv, init_edges=edges.shape[0]))
    g.insert_edges(map(tuple, edges))
    return g


def test_recovery_times(benchmark, scale):
    def run():
        rows = []
        for ds in DATASETS_REC:
            g = _built_graph(ds, scale)
            edges_total = g.num_edges

            # normal shutdown -> restart
            g.shutdown()
            before = g.pool.stats.snapshot()
            g2 = DGAP.open(g.pool, g.config)
            normal_s = g.pool.stats.delta_since(before).modeled_ns * 1e-9

            # crash -> recovery
            g2.pool.crash()
            before = g2.pool.stats.snapshot()
            g3 = DGAP.open(g2.pool, g2.config)
            crash_s = g2.pool.stats.delta_since(before).modeled_ns * 1e-9
            assert g3.num_edges == edges_total  # nothing lost
            rows.append((ds, edges_total, normal_s * 1e3, crash_s * 1e3))
        return rows

    rows = run_once(benchmark, run)
    emit(format_table(
        "Recovery: normal restart vs crash recovery (modeled ms)",
        ["dataset", "edges", "normal restart (ms)", "crash recovery (ms)"],
        [(d, e, f"{n:.3f}", f"{c:.3f}") for d, e, n, c in rows],
    ))

    checks = [
        (
            f"{ds}: crash recovery costs more than a normal restart (paper)",
            "crash > normal", f"{c:.2f} vs {n:.2f} ms", c > n,
        )
        for ds, _, n, c in rows
    ]
    # The paper reports crash recovery growing with graph size; at proxy
    # scale the dominant variable term is the pending edge-log chains
    # (replayed at random-read cost) plus the sequential array scan, so
    # we assert the weaker invariants that hold by construction: crash
    # recovery dominates a normal restart everywhere and stays within
    # interactive bounds (paper: <1 s small graphs, ~4 s billion-edge).
    checks.append((
        "all crash recoveries bounded (paper: seconds even at full scale)",
        "< 1s",
        " / ".join(f"{c:.2f}ms" for *_, c in rows),
        all(c < 1000.0 for *_, c in rows),
    ))
    emit(paper_vs_measured("recovery structure", checks))
    assert all(ok for *_, ok in checks)
