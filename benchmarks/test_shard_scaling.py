"""Shard-scaling twin — one pool vs N pools on the same edge stream.

Three arms over the synthetic ``scale`` notch (the headroom dataset one
step above the largest paper proxy):

* **batched ingest** — the headline gate: with 4 shards the modeled
  ingest clock (max over shard devices, each with its own media write
  bandwidth lane) must beat the single-pool arm by >= the pinned
  floor (2x), and the merged global CSR must be *byte-identical* to
  the unsharded build's, out and in.
* **vthreads** — per-edge concurrent ingest; threads split across
  shards.  Softer floor: hub-section serial chains get exposed once
  sharding removes the shared media floor, so the speedup sits well
  below the ideal N.
* **recovery** — crash, reopen; per-shard replays run concurrently on
  the modeled clock, so the sharded recovery makespan is the max over
  shard deltas and must beat the single pool's replay.

All gates are on **modeled** time, so they are deterministic and engage
at every ``REPRO_SCALE`` (unlike wall-clock gates, which need size for
stability).
"""

import json
import pathlib

import numpy as np
from conftest import run_once

from repro import DGAP, DGAPConfig
from repro.analysis.viewcache import DGAPViewCache
from repro.bench import emit, format_table
from repro.bench.reporting import distribution_stats
from repro.datasets import get_dataset
from repro.sharding import ShardedDGAP
from repro.testing import pool_clocks
from repro.workloads.vthreads import VirtualThreadScheduler, run_sharded

BASELINE_JSON = pathlib.Path(__file__).parent / "baselines" / "shard_scaling.json"
DATASET = "scale"
N_SHARDS = 4
BATCH = 512
VTHREAD_EDGE_CAP = 20_000  # per-edge python loop: cap the vthreads arm


def _stream(scale):
    spec = get_dataset(DATASET)
    edges = spec.generate(scale)
    nv, _ = spec.sizes(scale)
    return edges, nv


def _cfg(nv, ne):
    return DGAPConfig(init_vertices=nv, init_edges=max(ne, 256))


def _ingest_modeled_ns(g, edges):
    before = g.pool.stats.snapshot()
    g.insert_edges(edges, batch_size=BATCH)
    return g.pool.stats.delta_since(before).modeled_ns


def _assert_merged_identity(single, sharded):
    with single.consistent_view() as snap:
        ref_out, ref_in = DGAPViewCache(single).materialize(snap)
    mrg_out, mrg_in = sharded.global_csr()
    for name, a, b in (
        ("out_indptr", ref_out[0], mrg_out[0]),
        ("out_dsts", ref_out[1], mrg_out[1]),
        ("in_indptr", ref_in[0], mrg_in[0]),
        ("in_srcs", ref_in[1], mrg_in[1]),
    ):
        assert a.dtype == b.dtype, f"{name}: dtype diverged"
        assert a.tobytes() == b.tobytes(), f"{name}: merged view diverged"


def test_shard_ingest_speedup(benchmark, scale):
    seed = json.loads(BASELINE_JSON.read_text())
    edges, nv = _stream(scale)

    def run():
        single = DGAP(_cfg(nv, edges.shape[0]))
        ns1 = _ingest_modeled_ns(single, edges)
        sharded = ShardedDGAP(N_SHARDS, _cfg(nv, edges.shape[0]))
        nsn = _ingest_modeled_ns(sharded, edges)
        _assert_merged_identity(single, sharded)
        shares = [sh.num_edges / sharded.num_edges for sh in sharded.shards]
        return ns1, nsn, shares

    ns1, nsn, shares = run_once(benchmark, run)
    meps = lambda ns: edges.shape[0] / ns * 1e3  # noqa: E731
    speedup = ns1 / nsn
    need = seed["min_required_speedup"]["ingest"]
    emit(format_table(
        f"shard scaling: batched ingest — {DATASET} "
        f"(scale {scale:g}, {edges.shape[0]} edges, {N_SHARDS} shards)",
        ["metric", "measured", "seed env"],
        [
            ("single-pool modeled MEPS", f"{meps(ns1):.2f}",
             f'{seed["ingest"]["single_meps"]:g}'),
            (f"{N_SHARDS}-shard modeled MEPS", f"{meps(nsn):.2f}",
             f'{seed["ingest"]["sharded_meps"]:g}'),
            (f"speedup (need >= {need:g}x)", f"{speedup:.2f}x",
             f'{seed["ingest"]["speedup"]:g}x'),
            ("max shard share", f"{max(shares):.3f}",
             f'{seed["ingest"]["max_shard_share"]:g}'),
            ("merged view byte-identical", "yes", "yes"),
        ],
    ))
    assert speedup >= need, (
        f"sharded ingest speedup regressed: {speedup:.2f}x < {need:g}x"
    )
    # the block-mixed partition must keep the stream balanced — a plain
    # residue partition puts ~half the RMAT stream in shard 0
    assert max(shares) <= seed["ingest"]["max_shard_share_bound"]


def test_shard_vthreads_speedup(benchmark, scale):
    seed = json.loads(BASELINE_JSON.read_text())
    edges, nv = _stream(scale)
    edges = edges[:VTHREAD_EDGE_CAP]
    n_threads = 16

    def run():
        pairs = [tuple(e) for e in edges.tolist()]
        single = DGAP(_cfg(nv, edges.shape[0]))
        base = VirtualThreadScheduler(single, n_threads).run(pairs)
        sharded = ShardedDGAP(N_SHARDS, _cfg(nv, edges.shape[0]))
        res = run_sharded(sharded, edges, n_threads)
        assert res.makespan_s == max(r.makespan_s for r in res.per_shard)
        return base.makespan_s, res.makespan_s

    base_s, shard_s = run_once(benchmark, run)
    speedup = base_s / shard_s
    need = seed["min_required_speedup"]["vthreads"]
    emit(format_table(
        f"shard scaling: vthreads ingest — {DATASET} "
        f"(scale {scale:g}, {edges.shape[0]} edges, "
        f"{n_threads} threads over {N_SHARDS} shards)",
        ["metric", "measured", "seed env"],
        [
            ("single-pool makespan (ms)", f"{base_s * 1e3:.2f}",
             f'{seed["vthreads"]["single_makespan_ms"]:g}'),
            (f"{N_SHARDS}-shard makespan (ms)", f"{shard_s * 1e3:.2f}",
             f'{seed["vthreads"]["sharded_makespan_ms"]:g}'),
            (f"speedup (need >= {need:g}x)", f"{speedup:.2f}x",
             f'{seed["vthreads"]["speedup"]:g}x'),
        ],
    ))
    assert speedup >= need, (
        f"sharded vthreads speedup regressed: {speedup:.2f}x < {need:g}x"
    )


def test_shard_recovery_parallelism(benchmark, scale):
    seed = json.loads(BASELINE_JSON.read_text())
    edges, nv = _stream(scale)

    def one_single():
        g = DGAP(_cfg(nv, edges.shape[0]))
        g.insert_edges(edges, batch_size=BATCH)
        g.pool.crash()
        before = pool_clocks(g.pool)
        DGAP.open(g.pool, g.config)
        return float((pool_clocks(g.pool) - before).max())

    def one_sharded():
        sh = ShardedDGAP(N_SHARDS, _cfg(nv, edges.shape[0]))
        sh.insert_edges(edges, batch_size=BATCH)
        sh.pool.crash()
        before = pool_clocks(sh.pool)
        ShardedDGAP.open(sh.pool, sh.config)
        deltas = pool_clocks(sh.pool) - before
        assert (deltas > 0).all()
        return deltas

    def run():
        return one_single(), one_sharded()

    single_ns, deltas = run_once(benchmark, run)
    makespan = float(deltas.max())
    total = float(deltas.sum())
    speedup = single_ns / makespan
    need = seed["min_required_speedup"]["recovery"]
    stats = distribution_stats(deltas * 1e-6, unit="ms")
    emit(format_table(
        f"shard scaling: crash recovery — {DATASET} "
        f"(scale {scale:g}, {edges.shape[0]} edges, {N_SHARDS} shards)",
        ["metric", "measured", "seed env"],
        [
            ("single-pool replay (ms)", f"{single_ns * 1e-6:.3f}",
             f'{seed["recovery"]["single_ms"]:g}'),
            ("sharded makespan = max shard (ms)", f"{makespan * 1e-6:.3f}",
             f'{seed["recovery"]["sharded_makespan_ms"]:g}'),
            ("sum over shards (ms)", f"{total * 1e-6:.3f}",
             f'{seed["recovery"]["sharded_sum_ms"]:g}'),
            (f"speedup (need >= {need:g}x)", f"{speedup:.2f}x",
             f'{seed["recovery"]["speedup"]:g}x'),
            ("per-shard p50 (ms)", f'{stats["p50_ms"]:.3f}', "-"),
        ],
    ))
    # parallel replay: the makespan is max-over-shards, strictly below
    # the serial sum, and beats the single pool's replay
    assert makespan < total
    assert speedup >= need, (
        f"sharded recovery speedup regressed: {speedup:.2f}x < {need:g}x"
    )
