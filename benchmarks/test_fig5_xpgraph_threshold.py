"""Fig. 5 — XPGraph insert throughput vs. its archiving threshold.

Larger thresholds batch more edges per vertex per archive pass, turning
scattered XPLine writes into fewer, fuller ones; throughput rises and
saturates.  The paper picks 2^10 as the evaluation setting.
"""

from conftest import run_once
from repro.bench import emit, format_table, get_built_system, paper_vs_measured
from repro.bench.paper_data import FIG5_THRESHOLDS

DATASETS_F5 = ("orkut", "livejournal")


def test_fig5_xpgraph_archiving_threshold(benchmark, scale):
    def run():
        out = {}
        for ds in DATASETS_F5:
            series = []
            for thr in FIG5_THRESHOLDS:
                _, ins = get_built_system(
                    "xpgraph", ds, scale=scale, archive_threshold=thr
                )
                series.append((thr, ins.meps(1)))
            out[ds] = series
        return out

    out = run_once(benchmark, run)
    for ds, series in out.items():
        emit(format_table(
            f"Fig 5 ({ds}): XPGraph insert MEPS vs archiving threshold",
            ["threshold", "MEPS (T1)"],
            series,
        ))

    checks = []
    for ds, series in out.items():
        meps = [m for _, m in series]
        checks.append((
            f"{ds}: throughput improves with threshold (paper)",
            "rising", f"{meps[0]:.2f} -> {meps[-1]:.2f}", meps[-1] > 1.2 * meps[0],
        ))
        mid = meps[len(meps) // 2]
        checks.append((
            f"{ds}: saturates at large thresholds (paper)",
            "plateau", f"gain after mid: {(meps[-1] - mid) / mid * 100:.0f}%",
            (meps[-1] - mid) / mid < 0.8,
        ))
    emit(paper_vs_measured("fig5 structure", checks))
    assert all(ok for *_, ok in checks)
