"""Fig. 7 — PageRank and Connected Components, normalized to CSR on PM.

Full-scan kernels: every iteration touches every vertex and edge, the
pattern where mutable CSR's locality wins (paper §4.3: DGAP averages
only ~37% over immutable CSR and beats BAL/LLAMA/GraphOne/XPGraph by up
to 2.9x/2.9x/1.4x/3.1x on PR).
"""

from conftest import run_once
from repro.bench import (
    emit,
    format_table,
    get_built_system,
    get_static_csr,
    paper_vs_measured,
    run_kernel,
)
from repro.bench.paper_data import TABLE4_SECONDS
from repro.datasets import PAPER_DATASETS

SYSTEM_ORDER = ("dgap", "bal", "llama", "graphone", "xpgraph")
#: full-scale proxy analysis over all six datasets
DATASET_ORDER = tuple(PAPER_DATASETS)


def _normalized(kernel: str, scale: float):
    table = {}
    for ds in DATASET_ORDER:
        csr_view = get_static_csr(ds, scale).analysis_view()
        t_csr = run_kernel(csr_view, kernel)[1]
        table[ds] = {"csr": 1.0}
        for name in SYSTEM_ORDER:
            system, _ = get_built_system(name, ds, scale=scale)
            view = system.analysis_view()
            table[ds][name] = run_kernel(view, kernel)[1] / t_csr
    return table


def _paper_ratio(kernel: str, ds: str, system: str):
    data = TABLE4_SECONDS[kernel].get(ds)
    if not data:
        return None
    return data[system][0] / data["csr"][0]


def _emit(kernel: str, table):
    rows = [[ds] + [table[ds][s] for s in SYSTEM_ORDER] for ds in table]
    emit(format_table(
        f"Fig 7 ({kernel.upper()}): time normalized to CSR on PM (measured; smaller is better)",
        ["dataset"] + list(SYSTEM_ORDER),
        rows,
    ))
    prows = []
    for ds in table:
        pr = [_paper_ratio(kernel, ds, s) for s in SYSTEM_ORDER]
        if all(p is not None for p in pr):
            prows.append([ds] + [f"{p:.2f}" for p in pr])
    if prows:
        emit(format_table(
            f"Fig 7 ({kernel.upper()}): paper ratios (Table 4 T1)",
            ["dataset"] + list(SYSTEM_ORDER),
            prows,
        ))


def test_fig7_pagerank_and_cc(benchmark, scale):
    def run():
        return {"pr": _normalized("pr", scale), "cc": _normalized("cc", scale)}

    tables = run_once(benchmark, run)
    for kernel in ("pr", "cc"):
        _emit(kernel, tables[kernel])

    checks = []
    for kernel in ("pr", "cc"):
        t = tables[kernel]
        dgap_avg = sum(t[ds]["dgap"] for ds in t) / len(t)
        checks.append((
            f"{kernel}: DGAP avg overhead vs CSR (paper ~1.37x)",
            1.37, dgap_avg, 1.0 <= dgap_avg < 1.9,
        ))
        for rival in ("bal", "llama", "xpgraph"):
            wins = sum(t[ds]["dgap"] < t[ds][rival] for ds in t)
            checks.append((
                f"{kernel}: DGAP beats {rival} (paper: on all datasets)",
                "6/6", f"{wins}/6", wins >= 5,
            ))
        wins_go = sum(t[ds]["dgap"] < t[ds]["graphone"] for ds in t)
        checks.append((
            f"{kernel}: DGAP beats DRAM-cached GraphOne on most datasets (paper)",
            ">=4/6", f"{wins_go}/6", wins_go >= 4,
        ))
    emit(paper_vs_measured("fig7 structure", checks))
    assert all(ok for *_, ok in checks)
