"""Serving-layer twin — snapshot-isolated views vs per-query snapshots.

One Zipfian read/write stream (95% reads, YCSB-style theta 0.99) is
replayed twice over the same live graph: the **served** arm acquires an
epoch-versioned view (refreshed only when a write moved the epoch) and
the **snapshot** arm opens a fresh Degree-Cache snapshot for every
query — the pre-serving read path.  Two gates:

* **byte-identity** — every served read must equal the snapshot read
  at the same stream point, byte for byte.  Serving is an
  optimization, never a semantic change.
* **speedup** — amortizing the O(nv) snapshot copies across an epoch's
  read burst must beat per-query snapshots by >= the pinned floor
  (3x unsharded) on the modeled clock.  The workload is fully seeded
  and the clock is modeled, so the numbers are deterministic.

The vertex count is pinned (the speedup is an nv-dependent ratio, not
a throughput); ``REPRO_SCALE`` scales the op count only.
"""

import json
import pathlib

import numpy as np
from conftest import run_once

from repro import DGAP, DGAPConfig
from repro.bench import emit
from repro.bench.reporting import serve_latency_table
from repro.serve import ServeWorkloadConfig, generate_workload, run_serve_workload
from repro.sharding import ShardedDGAP

BASELINE_JSON = pathlib.Path(__file__).parent / "baselines" / "serve_latency.json"

NV = 8000
PRELOAD_EDGES = 4 * NV
#: PMA edge-array capacity: roomy sections keep dirty-section spans —
#: and with them the modeled refresh cost — proportional to the write,
#: which is the geometry the serving layer targets.
EDGE_CAPACITY = 16 * NV
N_SHARDS = 4


def _config(scale) -> ServeWorkloadConfig:
    return ServeWorkloadConfig(
        n_ops=max(400, int(1500 * scale)),
        read_fraction=0.95,
        zipf_theta=0.99,
        n_clients=8,
        seed=7,
    )


def _build(graph):
    rng = np.random.default_rng(1)
    graph.insert_edges(rng.integers(0, NV, size=(PRELOAD_EDGES, 2)))
    return graph


def _run_twin(graph, scale):
    cfg = _config(scale)
    ops = generate_workload(NV, cfg)
    return run_serve_workload(graph, ops, cfg, twin_check=True), cfg


def _assert_p99_reported(report):
    stats = report.stats()
    assert stats, "no latency classes recorded"
    for cls, dist in stats.items():
        assert "p50_us" in dist and "p99_us" in dist, cls


def test_serve_twin_unsharded(benchmark, scale):
    seed = json.loads(BASELINE_JSON.read_text())
    graph = _build(DGAP(DGAPConfig(init_vertices=NV, init_edges=EDGE_CAPACITY)))
    report, cfg = run_once(benchmark, lambda: _run_twin(graph, scale))

    emit(serve_latency_table(
        report, f"serve twin — unsharded (nv {NV}, {cfg.n_ops} ops, seed {cfg.seed})"
    ))

    assert report.identity_checked and report.identity_ok, (
        f"{report.mismatches} served reads diverged from fresh-snapshot reads"
    )
    floor = seed["min_required_speedup"]["unsharded"]
    assert report.modeled_read_speedup >= floor, (
        f"served reads {report.modeled_read_speedup:.2f}x vs per-query "
        f"snapshots; pinned floor {floor}x "
        f"(seed {seed['unsharded']['speedup']}x)"
    )
    assert report.reuse_ratio >= seed["unsharded"]["min_reuse_ratio"]
    _assert_p99_reported(report)
    graph.shutdown()


def test_serve_twin_sharded(benchmark, scale):
    seed = json.loads(BASELINE_JSON.read_text())
    graph = _build(
        ShardedDGAP(N_SHARDS, DGAPConfig(init_vertices=NV, init_edges=EDGE_CAPACITY))
    )
    report, cfg = run_once(benchmark, lambda: _run_twin(graph, scale))

    emit(serve_latency_table(
        report,
        f"serve twin — {N_SHARDS} shards (nv {NV}, {cfg.n_ops} ops, seed {cfg.seed})",
    ))

    assert report.identity_checked and report.identity_ok, (
        f"{report.mismatches} served reads diverged from fresh-snapshot reads"
    )
    # point queries in the snapshot arm only open the owner shard's
    # (nv/N-sized) snapshot, so the amortization margin is structurally
    # thinner than unsharded — the floor is correspondingly lower.
    floor = seed["min_required_speedup"]["sharded"]
    assert report.modeled_read_speedup >= floor, (
        f"served reads {report.modeled_read_speedup:.2f}x vs per-query "
        f"snapshots; pinned floor {floor}x "
        f"(seed {seed['sharded']['speedup']}x)"
    )
    _assert_p99_reported(report)
    graph.shutdown()
