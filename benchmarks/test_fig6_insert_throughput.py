"""Fig. 6 — single-writer-thread insert throughput, 5 systems x 6 graphs.

The paper's protocol: shuffled stream, first 10% warm-up, remaining 90%
timed; throughput in million edges per second (MEPS).  A companion check
exercises the batched ingestion pipeline: the same modeled numbers must
come out of the harness at a fraction of the wall-clock cost.
"""

import json
import pathlib

from conftest import run_once
from repro.bench import (
    emit,
    format_table,
    get_built_system,
    ingest,
    ingest_phase_table,
    paper_vs_measured,
)
from repro.bench.harness import DEFAULT_BATCH_SIZE, build_system
from repro.bench.paper_data import FIG6_MEPS
from repro.datasets import PAPER_DATASETS, get_dataset

SYSTEM_ORDER = ("dgap", "bal", "llama", "graphone", "xpgraph")

BASELINE_JSON = pathlib.Path(__file__).parent / "baselines" / "fig6_insert_batch.json"


def test_fig6_insert_throughput(benchmark, scale):
    def run():
        table = {}
        for ds in PAPER_DATASETS:
            table[ds] = {}
            for name in SYSTEM_ORDER:
                _, ins = get_built_system(name, ds, scale=scale)
                table[ds][name] = ins.meps(1)
        return table

    table = run_once(benchmark, run)

    rows = [
        [ds] + [table[ds][s] for s in SYSTEM_ORDER] + [max(table[ds], key=table[ds].get)]
        for ds in table
    ]
    emit(format_table(
        "Fig 6: single-thread insert throughput (MEPS, measured)",
        ["dataset"] + list(SYSTEM_ORDER) + ["best"],
        rows,
    ))
    rows_p = [[ds] + [FIG6_MEPS[ds][s] for s in SYSTEM_ORDER] for ds in FIG6_MEPS]
    emit(format_table(
        "Fig 6: paper-reported MEPS (real hardware, full datasets)",
        ["dataset"] + list(SYSTEM_ORDER),
        rows_p,
    ))

    checks = []
    for ds in table:
        best = max(table[ds].values())
        checks.append((
            f"{ds}: DGAP best or near-best (paper)",
            "top/~top",
            f"dgap={table[ds]['dgap']:.2f} best={best:.2f}",
            table[ds]["dgap"] >= 0.75 * best,
        ))
        checks.append((
            f"{ds}: DGAP beats GraphOne (paper: up to 2.5x)",
            ">1x",
            table[ds]["dgap"] / table[ds]["graphone"],
            table[ds]["dgap"] > table[ds]["graphone"],
        ))
        checks.append((
            f"{ds}: DGAP beats LLAMA (paper: up to 6x)",
            ">1x",
            table[ds]["dgap"] / table[ds]["llama"],
            table[ds]["dgap"] > table[ds]["llama"],
        ))
    emit(paper_vs_measured("fig6 structure", checks))
    assert all(ok for *_, ok in checks)
    # LLAMA's vertex-table cost makes CitPatents its worst dataset (paper)
    assert table["citpatents"]["llama"] == min(t["llama"] for t in table.values())


def test_fig6_dgap_batch_speedup(benchmark, scale):
    """Batched ingestion must beat the per-edge path >= 3x in wall clock
    on DGAP/Orkut while leaving modeled throughput essentially unchanged.

    The speedup pair {1, 1024} is pinned against the seed baseline; the
    throughput-consistency check runs at the shipping default (512),
    since 1024-edge rounds trade some rebalance efficiency for speed on
    reduced-scale graphs (see DESIGN.md §5).
    """
    seed = json.loads(BASELINE_JSON.read_text())
    spec = get_dataset("orkut")
    edges = spec.generate(scale)
    nv, ne = spec.sizes(scale)

    def run():
        out = {}
        for bs in (1, DEFAULT_BATCH_SIZE, 1024):
            system = build_system("dgap", nv, ne)
            out[bs] = ingest(system, spec, edges, batch_size=bs)
        return out

    results = run_once(benchmark, run)
    wall = {bs: r.counters["timed_wall_s"] for bs, r in results.items()}
    meps = {bs: r.meps(1) for bs, r in results.items()}
    speedup = wall[1] / wall[1024]
    need = seed["min_required_speedup"]
    dbs = DEFAULT_BATCH_SIZE

    emit(ingest_phase_table(results.values()))
    emit(paper_vs_measured(
        "fig6 batched-ingest speedup (DGAP, orkut)",
        [
            ("timed wall s, batch 1 (seed env)", seed["batch"]["1"]["timed_wall_s"],
             wall[1], True),
            ("timed wall s, batch 1024 (seed env)", seed["batch"]["1024"]["timed_wall_s"],
             wall[1024], True),
            (f"wall speedup 1024 vs 1 (need >= {need:g}x)",
             seed["wall_speedup_1024_vs_1"], speedup, speedup >= need),
            ("modeled MEPS T1, batch 1", seed["batch"]["1"]["meps_t1"], meps[1],
             abs(meps[1] - seed["batch"]["1"]["meps_t1"]) < 0.5 or scale != seed["scale"]),
            (f"modeled MEPS within 10% at default batch ({dbs})", "<=10%",
             abs(meps[dbs] - meps[1]) / meps[1], abs(meps[dbs] - meps[1]) <= 0.10 * meps[1]),
        ],
    ))
    if ne < 50_000:
        return  # too small for stable wall-clock ratios
    assert speedup >= need, (wall, speedup)
    assert abs(meps[dbs] - meps[1]) <= 0.10 * meps[1]
