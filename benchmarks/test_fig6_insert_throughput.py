"""Fig. 6 — single-writer-thread insert throughput, 5 systems x 6 graphs.

The paper's protocol: shuffled stream, first 10% warm-up, remaining 90%
timed; throughput in million edges per second (MEPS).
"""

from conftest import run_once
from repro.bench import emit, format_table, get_built_system, paper_vs_measured
from repro.bench.paper_data import FIG6_MEPS
from repro.datasets import DATASETS

SYSTEM_ORDER = ("dgap", "bal", "llama", "graphone", "xpgraph")


def test_fig6_insert_throughput(benchmark, scale):
    def run():
        table = {}
        for ds in DATASETS:
            table[ds] = {}
            for name in SYSTEM_ORDER:
                _, ins = get_built_system(name, ds, scale=scale)
                table[ds][name] = ins.meps(1)
        return table

    table = run_once(benchmark, run)

    rows = [
        [ds] + [table[ds][s] for s in SYSTEM_ORDER] + [max(table[ds], key=table[ds].get)]
        for ds in table
    ]
    emit(format_table(
        "Fig 6: single-thread insert throughput (MEPS, measured)",
        ["dataset"] + list(SYSTEM_ORDER) + ["best"],
        rows,
    ))
    rows_p = [[ds] + [FIG6_MEPS[ds][s] for s in SYSTEM_ORDER] for ds in FIG6_MEPS]
    emit(format_table(
        "Fig 6: paper-reported MEPS (real hardware, full datasets)",
        ["dataset"] + list(SYSTEM_ORDER),
        rows_p,
    ))

    checks = []
    for ds in table:
        best = max(table[ds].values())
        checks.append((
            f"{ds}: DGAP best or near-best (paper)",
            "top/~top",
            f"dgap={table[ds]['dgap']:.2f} best={best:.2f}",
            table[ds]["dgap"] >= 0.75 * best,
        ))
        checks.append((
            f"{ds}: DGAP beats GraphOne (paper: up to 2.5x)",
            ">1x",
            table[ds]["dgap"] / table[ds]["graphone"],
            table[ds]["dgap"] > table[ds]["graphone"],
        ))
        checks.append((
            f"{ds}: DGAP beats LLAMA (paper: up to 6x)",
            ">1x",
            table[ds]["dgap"] / table[ds]["llama"],
            table[ds]["dgap"] > table[ds]["llama"],
        ))
    emit(paper_vs_measured("fig6 structure", checks))
    assert all(ok for *_, ok in checks)
    # LLAMA's vertex-table cost makes CitPatents its worst dataset (paper)
    assert table["citpatents"]["llama"] == min(t["llama"] for t in table.values())
