"""Fig. 9 — impact of the per-section edge-log size (ELOG_SZ).

Sweeps ELOG_SZ from 64 B to 16 KB on the Orkut and LiveJournal proxies,
reporting the total PM space the logs occupy, their peak utilization
during insertion, and the insert time.  The paper's findings: space
grows proportionally, utilization falls from ~81% to ~6%, insert time
improves with diminishing returns past 2 KB (the chosen default).
"""

from conftest import run_once
from repro import DGAP, DGAPConfig
from repro.bench import emit, format_table, paper_vs_measured
from repro.bench.paper_data import FIG9_ELOG_SIZES
from repro.datasets import get_dataset

DATASETS_F9 = ("orkut", "livejournal")


def test_fig9_elog_size_sweep(benchmark, scale):
    def run():
        out = {}
        for ds in DATASETS_F9:
            spec = get_dataset(ds)
            edges = spec.generate(scale)
            nv, _ = spec.sizes(scale)
            series = []
            for elog in FIG9_ELOG_SIZES:
                g = DGAP(DGAPConfig(
                    init_vertices=nv, init_edges=edges.shape[0], elog_size=elog
                ))
                before = g.pool.stats.snapshot()
                g.insert_edges(map(tuple, edges))
                d = g.pool.stats.delta_since(before)
                logs = g.logs
                utilization = float(logs.peak_counts.mean()) / logs.entries_per_section
                space_mb = logs.region.nbytes / 1e6
                series.append((elog, space_mb, 100 * utilization, d.modeled_ns * 1e-9))
            out[ds] = series
        return out

    out = run_once(benchmark, run)
    for ds, series in out.items():
        emit(format_table(
            f"Fig 9 ({ds}): ELOG_SZ sweep",
            ["ELOG_SZ (B)", "log space (MB)", "peak utilization (%)", "insert time (s)"],
            series,
        ))

    checks = []
    for ds, series in out.items():
        util = [u for _, _, u, _ in series]
        times = [t for *_, t in series]
        space = [s for _, s, _, _ in series]
        checks.append((
            f"{ds}: utilization falls as logs grow (paper 81% -> 5.6%)",
            "monotone-ish", f"{util[0]:.0f}% -> {util[-1]:.0f}%", util[0] > 2 * util[-1],
        ))
        checks.append((
            f"{ds}: log space grows with ELOG_SZ",
            "proportional", f"{space[0]:.2f} -> {space[-1]:.2f} MB", space[-1] > 10 * space[0],
        ))
        t64 = times[0]
        t2k = times[FIG9_ELOG_SIZES.index(2048)]
        t16k = times[-1]
        checks.append((
            f"{ds}: larger logs reduce insert time (paper)",
            "t(64B) > t(2KB)", f"{t64:.3f} vs {t2k:.3f}", t64 > t2k,
        ))
        checks.append((
            f"{ds}: diminishing returns past 2KB (paper: default)",
            "small", f"{(t2k - t16k) / t2k * 100:.1f}% further gain",
            (t2k - t16k) / t2k < 0.25,
        ))
    emit(paper_vs_measured("fig9 structure", checks))
    assert all(ok for *_, ok in checks)
