"""Incremental analytics views — the ingest→analyze loop, cached vs scratch.

The Fig. 7/8 experiments analyze one final graph; deployments interleave
ingest with repeated analysis.  This benchmark replays that loop twice
on identical streams — with the epoch-versioned view cache and with the
seed's from-scratch materialization — and pins three facts:

* kernel outputs and modeled seconds are identical (the cache is
  invisible to results and to the paper's modeled numbers);
* the cached loop is >= 3x faster in wall clock (seed baseline JSON);
* the materialization counters prove incrementality: zero sections
  rebuilt on an unchanged graph, dirty-sections-only after a localized
  batch (deterministic — no wall clocks involved).
"""

import json
import pathlib

from conftest import run_once
from repro.bench import emit, format_table, paper_vs_measured
from repro.bench.analysis_loop import run_analysis_loop_pair, verify_view_counters
from repro.bench.reporting import analysis_loop_table

BASELINE_JSON = pathlib.Path(__file__).parent / "baselines" / "analysis_loop.json"


def test_analysis_loop_cached_speedup(benchmark):
    seed = json.loads(BASELINE_JSON.read_text())

    def run():
        # run_analysis_loop_pair raises if any kernel digest or modeled
        # time differs between the arms — identity is asserted, not eyed
        return run_analysis_loop_pair(
            seed["dataset"],
            scale=seed["scale"],
            rounds=seed["rounds"],
            kernels=tuple(seed["kernels"]),
            sources=seed["sources"],
        )

    pair = run_once(benchmark, run)
    emit(analysis_loop_table(pair, title="analysis loop (Fig. 7 cadence)"))

    need = seed["min_required_speedup"]
    c = pair.cached.counters
    checks = [
        ("cached analysis wall s (seed env)", seed["cached_analysis_wall_s"],
         pair.cached.analysis_wall_s, True),
        ("uncached analysis wall s (seed env)", seed["uncached_analysis_wall_s"],
         pair.uncached.analysis_wall_s, True),
        (f"wall speedup cached vs scratch (need >= {need:g}x)",
         seed["wall_speedup_cached"], pair.speedup, pair.speedup >= need),
        ("view builds (one per round)", seed["counters"]["view_builds"],
         c["view_builds"], c["view_builds"] == seed["counters"]["view_builds"]),
        ("whole-view hits (all other trials)", seed["counters"]["whole_view_hits"],
         c["whole_view_hits"],
         c["whole_view_hits"] == seed["counters"]["whole_view_hits"]),
    ]
    emit(paper_vs_measured("analysis-loop speedup (DGAP, orkut)", checks))
    assert all(ok for *_, ok in checks), checks


def test_analysis_loop_counters_prove_incrementality(benchmark):
    """Counter-based (not wall-clock) incrementality proof — CI-stable."""
    seed = json.loads(BASELINE_JSON.read_text())
    checks = run_once(
        benchmark, lambda: verify_view_counters(seed["dataset"], scale=seed["scale"])
    )
    emit(format_table(
        "incrementality counter checks",
        ["check", "ok?", "detail"],
        [(name, "yes" if ok else "NO", detail) for name, ok, detail in checks],
    ))
    assert all(ok for _, ok, _ in checks), checks
