"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures on scaled proxy
datasets (``REPRO_SCALE`` environment variable, default 1.0 — see
``repro.datasets.registry`` for the proxy sizes).  Built systems are
cached across benchmarks within a session, so the analysis experiments
reuse the ingest done by the throughput experiments.

Run with ``pytest benchmarks/ --benchmark-only``; printed tables land
in the captured output (and thus in ``bench_output.txt``).
"""

import pytest

from repro.bench.reporting import flush_reports
from repro.datasets import env_scale


def pytest_terminal_summary(terminalreporter):
    """Replay every experiment table into the terminal (and the tee'd
    bench_output.txt) — per-test stdout of passing tests is captured."""
    reports = flush_reports()
    if reports:
        terminalreporter.section("regenerated paper tables & figures")
        for block in reports:
            terminalreporter.write_line("")
            terminalreporter.write_line(block)


@pytest.fixture(scope="session")
def scale() -> float:
    return env_scale(1.0)


def run_once(benchmark, fn):
    """Record one timed run of ``fn`` with pytest-benchmark (experiments
    are long; statistical repetition adds nothing to modeled results)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
