"""Table 4 — execution time of the four kernels at 1 and 16 threads.

Modeled seconds per system and dataset; scaling follows each charge's
Amdahl split.  The paper's CC observation — poor scaling on *every*
framework due to GAPBS's ``parallel for`` scheduling — appears here as
CC's larger modeled serial fraction (DESIGN.md §6).
"""

from conftest import run_once
from repro.bench import (
    emit,
    format_table,
    get_built_system,
    get_static_csr,
    paper_vs_measured,
    pick_source,
    run_kernel,
)
from repro.bench.paper_data import TABLE4_SECONDS

SYSTEM_ORDER = ("csr", "dgap", "bal", "llama", "graphone", "xpgraph")
KERNELS = ("pr", "bfs", "bc", "cc")
#: the datasets the paper details in Table 4 that we print in full
DATASET_ORDER = ("orkut", "livejournal", "citpatents", "twitter", "friendster", "protein")


def test_table4_analysis_scalability(benchmark, scale):
    def run():
        table = {}
        for ds in DATASET_ORDER:
            src = pick_source(ds, scale)
            views = {"csr": get_static_csr(ds, scale).analysis_view()}
            for name in SYSTEM_ORDER[1:]:
                system, _ = get_built_system(name, ds, scale=scale)
                views[name] = system.analysis_view()
            for kernel in KERNELS:
                for name, view in views.items():
                    times = run_kernel(view, kernel, source=src, threads=(1, 16))
                    table[(kernel, ds, name)] = (times[1], times[16])
        return table

    table = run_once(benchmark, run)

    for kernel in KERNELS:
        rows = []
        for ds in DATASET_ORDER:
            row = [ds]
            for name in SYSTEM_ORDER:
                t1, t16 = table[(kernel, ds, name)]
                row.append(f"{t1*1e3:.2f}/{t16*1e3:.2f}")
            rows.append(row)
        emit(format_table(
            f"Table 4 ({kernel.upper()}): measured modeled ms, T1/T16",
            ["dataset"] + list(SYSTEM_ORDER),
            rows,
        ))
        prows = []
        for ds in DATASET_ORDER:
            data = TABLE4_SECONDS[kernel].get(ds)
            if data:
                prows.append([ds] + [f"{data[s][0]}/{data[s][1]}" for s in SYSTEM_ORDER])
        if prows:
            emit(format_table(
                f"Table 4 ({kernel.upper()}): paper seconds, T1/T16",
                ["dataset"] + list(SYSTEM_ORDER),
                prows,
            ))

    checks = []
    for kernel, lo, hi in (("pr", 9, 16), ("bfs", 8, 16), ("bc", 9, 16), ("cc", 3, 9)):
        t1, t16 = table[(kernel, "orkut", "dgap")]
        sp = t1 / t16
        paper_note = {"pr": "14.3x", "bfs": "13.6x", "bc": "15.6x", "cc": "4.7x"}[kernel]
        checks.append((
            f"DGAP {kernel} 16T speedup (paper up to {paper_note})",
            paper_note, sp, lo < sp <= hi,
        ))
    # CC scales worst for every system (paper §4.3.1)
    for name in SYSTEM_ORDER:
        cc_sp = table[("cc", "orkut", name)][0] / table[("cc", "orkut", name)][1]
        pr_sp = table[("pr", "orkut", name)][0] / table[("pr", "orkut", name)][1]
        checks.append((
            f"{name}: CC scales worse than PR (paper: all systems)",
            "cc < pr", f"{cc_sp:.1f} vs {pr_sp:.1f}", cc_sp < pr_sp,
        ))
    emit(paper_vs_measured("table4 structure", checks))
    assert all(ok for *_, ok in checks)
