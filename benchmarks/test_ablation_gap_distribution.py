"""Design-choice ablation: VCSR's proportional gap distribution vs uniform.

Not a paper table — DESIGN.md calls this out as the load-bearing VCSR
idea DGAP builds on (§2.3: VCSR "distributed the gaps unevenly based on
historical workloads ... to improve performance").  On skewed streams,
uniform gaps starve hub vertices: their trailing room exhausts quickly,
pushing edges into logs and forcing merges; proportional gaps track the
insert distribution.
"""

from conftest import run_once
from repro import DGAP, DGAPConfig
from repro.bench import emit, format_table, paper_vs_measured
from repro.datasets import get_dataset

DATASETS_GD = ("orkut", "protein")


def test_gap_distribution_ablation(benchmark, scale):
    def run():
        out = {}
        for ds in DATASETS_GD:
            spec = get_dataset(ds)
            edges = spec.generate(scale)
            nv, _ = spec.sizes(scale)
            row = {}
            for strategy in ("proportional", "uniform"):
                g = DGAP(DGAPConfig(
                    init_vertices=nv, init_edges=edges.shape[0],
                    gap_distribution=strategy,
                ))
                before = g.pool.stats.snapshot()
                g.insert_edges(map(tuple, edges))
                d = g.pool.stats.delta_since(before)
                row[strategy] = (
                    d.modeled_ns * 1e-9,
                    g.n_log_inserts,
                    g.n_rebalances,
                )
            out[ds] = row
        return out

    out = run_once(benchmark, run)
    rows = []
    for ds, row in out.items():
        for strategy, (t, logs, rebal) in row.items():
            rows.append((ds, strategy, t, logs, rebal))
    emit(format_table(
        "Gap-distribution ablation (VCSR proportional vs uniform)",
        ["dataset", "strategy", "insert time (s)", "log inserts", "rebalances"],
        rows,
        floatfmt="{:.4f}",
    ))

    checks = []
    for ds, row in out.items():
        tp, logs_p, reb_p = row["proportional"]
        tu, logs_u, reb_u = row["uniform"]
        checks.append((
            f"{ds}: proportional gaps rebalance less",
            "<=", f"{reb_p} vs {reb_u}", reb_p <= reb_u,
        ))
        checks.append((
            f"{ds}: proportional gaps are faster (the VCSR design point)",
            "<", f"{tp:.4f} vs {tu:.4f}", tp < tu,
        ))
    emit(paper_vs_measured("gap-distribution ablation", checks))
    assert all(ok for *_, ok in checks)
