"""Vectorized read-path speedup — scalar reference vs bulk pmem reads.

The bulk read layer (``PMemDevice.load_batch``/``gather_span``) rewrote
the merge/rebalance gather->plan->write passes and the recovery
scan/replay as whole-window NumPy operations.  The retained
``scalar_readpath`` reference is result- and accounting-identical by
contract, so the twin runs here first assert exact equivalence — same
persistent bytes, same device counters, same modeled time — and only
then pin the wall-clock speedup against the seed baseline.
"""

import json
import pathlib
import time

import numpy as np
from conftest import run_once

from repro import DGAP, DGAPConfig
from repro.bench import emit, format_table
from repro.bench.profile import build_rebalance_arm
from repro.datasets import get_dataset

BASELINE_JSON = pathlib.Path(__file__).parent / "baselines" / "readpath_speed.json"
TRIALS = 3


def _assert_twin_equal(gs: DGAP, gv: DGAP) -> None:
    """The headline contract: both arms leave identical device state."""
    ds, dv = gs.pool.device, gv.pool.device
    assert np.array_equal(ds.buf, dv.buf), "CPU-visible bytes diverged"
    assert np.array_equal(ds.media, dv.media), "persistent bytes diverged"
    assert vars(ds.stats) == vars(dv.stats), "device accounting diverged"


def test_readpath_rebalance_speedup(benchmark, scale):
    """Merge/rebalance-heavy arm: forced whole-array rebalances, timed."""
    seed = json.loads(BASELINE_JSON.read_text())

    def run():
        best = {True: float("inf"), False: float("inf")}
        pair = {}
        for _ in range(TRIALS):
            for scalar in (True, False):
                g, wall = build_rebalance_arm(
                    "orkut", scale, 512, scalar_readpath=scalar
                )
                best[scalar] = min(best[scalar], wall)
                pair[scalar] = g
        _assert_twin_equal(pair[True], pair[False])
        return best

    best = run_once(benchmark, run)
    speedup = best[True] / best[False]
    need = seed["min_required_speedup"]["rebalance"]
    emit(format_table(
        "read-path speedup: rebalance arm (orkut, timed rebalance calls)",
        ["arm", "wall s (best of 3)", "seed env wall s"],
        [
            ("scalar reference", f"{best[True]:.3f}",
             seed["rebalance_arm"]["scalar_wall_s"]),
            ("vectorized", f"{best[False]:.3f}",
             seed["rebalance_arm"]["vector_wall_s"]),
            (f"speedup (need >= {need:g}x)", f"{speedup:.2f}x",
             f'{seed["rebalance_arm"]["wall_speedup"]:g}x'),
        ],
    ))
    if scale < 0.5:
        return  # too small for stable wall-clock ratios
    assert speedup >= need, (
        f"rebalance read-path speedup regressed: {speedup:.2f}x < {need:g}x"
    )


def test_readpath_recovery_speedup(benchmark, scale):
    """Crash-recovery replay: edge-array scan + log replay + cursor rebuild."""
    seed = json.loads(BASELINE_JSON.read_text())
    spec = get_dataset("orkut")
    edges = spec.generate(scale)
    nv, _ = spec.sizes(scale)

    def one(scalar: bool):
        cfg = DGAPConfig(
            init_vertices=nv, init_edges=edges.shape[0], scalar_readpath=scalar
        )
        g = DGAP(cfg)
        g.insert_edges(edges, batch_size=512)
        g.pool.crash()
        t0 = time.perf_counter()
        g2 = DGAP.open(g.pool, cfg)
        return g2, time.perf_counter() - t0

    def run():
        best = {True: float("inf"), False: float("inf")}
        pair = {}
        for _ in range(TRIALS):
            for scalar in (True, False):
                g2, wall = one(scalar)
                best[scalar] = min(best[scalar], wall)
                pair[scalar] = g2
        _assert_twin_equal(pair[True], pair[False])
        assert pair[True].num_edges == pair[False].num_edges
        return best

    best = run_once(benchmark, run)
    speedup = best[True] / best[False]
    need = seed["min_required_speedup"]["recovery"]
    emit(format_table(
        "read-path speedup: crash-recovery arm (orkut)",
        ["arm", "wall s (best of 3)", "seed env wall s"],
        [
            ("scalar reference", f"{best[True]:.3f}",
             seed["recovery_arm"]["scalar_wall_s"]),
            ("vectorized", f"{best[False]:.3f}",
             seed["recovery_arm"]["vector_wall_s"]),
            (f"speedup (need >= {need:g}x)", f"{speedup:.2f}x",
             f'{seed["recovery_arm"]["wall_speedup"]:g}x'),
        ],
    ))
    if scale < 0.5:
        return  # too small for stable wall-clock ratios
    assert speedup >= need, (
        f"recovery read-path speedup regressed: {speedup:.2f}x < {need:g}x"
    )
