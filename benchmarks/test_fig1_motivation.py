"""Fig. 1 — the three problems of PMA-based mutable CSR on PM (§2.4).

(a) write amplification of naive nearby-shift insertion;
(b) insert time on DRAM vs PM vs PM-with-transactions;
(c) sequential vs random vs in-place persistent write latency.
"""

import numpy as np

from conftest import run_once
from repro import DGAP, DGAPConfig
from repro.bench import emit, format_table, paper_vs_measured
from repro.bench.paper_data import HEADLINES
from repro.datasets import get_dataset
from repro.pmem import CACHE_LINE, OPTANE_ADR, PMemDevice
from repro.pmem.latency import DRAM


def _naive_config(spec, scale, **kw):
    nv, _ = spec.sizes(scale)
    ne = spec.generate(scale).shape[0]
    return DGAPConfig(init_vertices=nv, init_edges=ne, use_edge_log=False, **kw)


def test_fig1a_write_amplification(benchmark, scale):
    """Naive mutable CSR write amplification during Orkut insertion."""
    spec = get_dataset("orkut")
    edges = spec.generate(scale)
    nv, _ = spec.sizes(scale)

    def run():
        g = DGAP(_naive_config(spec, scale))
        series = []
        checkpoints = np.linspace(0, edges.shape[0], 11, dtype=int)[1:]
        prev = 0
        before = g.pool.stats.snapshot()
        for frac, stop in zip(range(10, 101, 10), checkpoints):
            g.insert_edges(map(tuple, edges[prev:stop]))
            d = g.pool.stats.delta_since(before)
            series.append((frac, d.stored_bytes / max(1, d.payload_bytes)))
            prev = stop
        return series

    series = run_once(benchmark, run)
    emit(format_table(
        "Fig 1(a): naive mutable CSR write amplification (Orkut proxy)",
        ["inserted %", "cumulative WA (stored/payload bytes)"],
        series,
    ))
    peak = max(w for _, w in series)
    # DGAP with the edge log, same stream
    g2 = DGAP(DGAPConfig(init_vertices=nv, init_edges=edges.shape[0]))
    before = g2.pool.stats.snapshot()
    g2.insert_edges(map(tuple, edges))
    d = g2.pool.stats.delta_since(before)
    wa_el = d.stored_bytes / d.payload_bytes
    emit(paper_vs_measured("fig1a", [
        ("naive WA (paper: up to ~7x)", HEADLINES["fig1a_write_amplification"], peak, peak > 3.0),
        ("edge log reduces WA (paper: ~6x on Orkut)", HEADLINES["el_wa_reduction_orkut"],
         peak / wa_el, peak / wa_el > 1.5),
    ]))
    assert peak > 3.0
    assert wa_el < peak


def test_fig1b_transaction_overhead(benchmark, scale):
    """Insert time: DRAM vs PM vs PM with PMDK transactions."""
    spec = get_dataset("orkut")
    small = min(0.5, scale)
    edges = spec.generate(small)

    def one(**kw):
        g = DGAP(_naive_config(spec, small, **kw))
        before = g.pool.stats.snapshot()
        g.insert_edges(map(tuple, edges))
        return g.pool.stats.delta_since(before).modeled_ns * 1e-9

    def run():
        return {
            "DRAM": one(profile=DRAM),
            "PM": one(),                        # undo-log protected shifts
            "PM-TX": one(use_undo_log=False),   # PMDK transactions
        }

    times = run_once(benchmark, run)
    emit(format_table(
        "Fig 1(b): mutable CSR insert time by medium (Orkut proxy, seconds modeled)",
        ["medium", "seconds"],
        [(k, v) for k, v in times.items()],
        floatfmt="{:.4f}",
    ))
    assert times["DRAM"] < times["PM"] < times["PM-TX"]
    assert times["PM-TX"] > 1.05 * times["PM"]


def test_fig1c_inplace_updates(benchmark):
    """Persistent write latency: sequential vs random vs in-place."""
    n = 4096

    def run():
        out = {}
        dev = PMemDevice(64 << 20, profile=OPTANE_ADR)
        for i in range(n):
            dev.store(i * CACHE_LINE, b"x" * 8)
            dev.persist(i * CACHE_LINE, 8)
        out["Seq"] = dev.stats.modeled_ns / n

        dev = PMemDevice(64 << 20, profile=OPTANE_ADR)
        rng = np.random.default_rng(0)
        offs = rng.permutation(8 * n)[:n] * 5 * CACHE_LINE % (32 << 20)
        for off in offs:
            dev.store(int(off) // CACHE_LINE * CACHE_LINE, b"x" * 8)
            dev.persist(int(off) // CACHE_LINE * CACHE_LINE, 8)
        out["Rnd"] = dev.stats.modeled_ns / n

        dev = PMemDevice(64 << 20, profile=OPTANE_ADR)
        for _ in range(n):
            dev.store(0, b"x" * 8)
            dev.persist(0, 8)
        out["In-place"] = dev.stats.modeled_ns / n
        return out

    lat = run_once(benchmark, run)
    emit(format_table(
        "Fig 1(c): persistent 8B write latency by pattern (ns/write)",
        ["pattern", "ns"],
        [(k, v) for k, v in lat.items()],
    ))
    ratio = lat["In-place"] / lat["Seq"]
    emit(paper_vs_measured("fig1c", [
        ("in-place vs sequential (paper ~7x)", HEADLINES["inplace_vs_seq"], ratio, 4 < ratio < 12),
    ]))
    assert lat["Seq"] < lat["Rnd"] < lat["In-place"]
    assert 4 < ratio < 12
