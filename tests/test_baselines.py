"""Functional correctness of every compared system.

Each system ingests the same stream and must expose the same graph
(LLAMA after finalize — mid-stream it may legitimately lag by up to one
batch, which is tested separately as the paper's staleness property).
"""

import numpy as np
import pytest

from repro.algorithms import connected_components, pagerank
from repro.baselines import (
    SYSTEMS,
    BlockedAdjacencyList,
    DGAPSystem,
    GraphOneFD,
    LLAMA,
    StaticCSR,
    XPGraph,
)
from repro.datasets import rmat_edges, shuffle_edges
from repro.errors import ImmutableGraphError, VertexRangeError

NV = 200
EDGES = shuffle_edges(rmat_edges(NV, 3000, seed=42), seed=1)


def ref_adjacency():
    ref = {}
    for s, d in EDGES:
        ref.setdefault(int(s), []).append(int(d))
    return ref


@pytest.fixture(params=list(SYSTEMS))
def system(request):
    sys = SYSTEMS[request.param](NV, EDGES.shape[0])
    sys.insert_edges(map(tuple, EDGES))
    sys.finalize()
    return sys


class TestFunctionalEquivalence:
    def test_same_graph_as_reference(self, system):
        ref = ref_adjacency()
        view = system.analysis_view()
        indptr, dsts = view.out_csr()
        for v in range(NV):
            got = sorted(dsts[indptr[v] : indptr[v + 1]].tolist())
            assert got == sorted(ref.get(v, [])), (system.name, v)

    def test_edge_count(self, system):
        assert system.analysis_view().num_edges == EDGES.shape[0]

    def test_kernels_agree_across_systems(self, system):
        view = system.analysis_view()
        pr = pagerank(view, iterations=10)
        cc = connected_components(view)
        csr = StaticCSR(NV, EDGES).analysis_view()
        np.testing.assert_allclose(pr, pagerank(csr, iterations=10), rtol=1e-9)
        np.testing.assert_array_equal(cc, connected_components(csr))

    def test_insert_profile_positive(self, system):
        prof = system.insert_profile()
        assert prof.modeled_ns > 0
        assert prof.meps(1) > 0
        assert prof.seconds(16) <= prof.seconds(1)


class TestStaticCSR:
    def test_immutable(self):
        csr = StaticCSR(NV, EDGES)
        with pytest.raises(ImmutableGraphError):
            csr.insert_edge(0, 1)

    def test_empty_graph(self):
        csr = StaticCSR(5, np.empty((0, 2), dtype=np.int64))
        assert csr.analysis_view().num_edges == 0


class TestBAL:
    def test_block_chains(self):
        bal = BlockedAdjacencyList(NV, EDGES.shape[0])
        for _ in range(100):
            bal.insert_edge(3, 7)
        assert bal.degree[3] == 100
        assert len(bal.block_lists[3]) == 2  # 100 edges > one 62-edge block

    def test_vertex_bounds(self):
        bal = BlockedAdjacencyList(4, 100)
        with pytest.raises(VertexRangeError):
            bal.insert_edge(4, 0)

    def test_head_pointers_persistent(self):
        bal = BlockedAdjacencyList(NV, EDGES.shape[0])
        bal.insert_edge(5, 6)
        bal.pool.crash()
        assert bal.heads.view[5] != 0  # journaled link survived


class TestLLAMA:
    def test_analysis_lags_by_at_most_one_batch(self):
        llama = LLAMA(NV, 3000, batch_edges=500)
        llama.insert_edges(map(tuple, EDGES[:1234]))
        visible = llama.analysis_view().num_edges
        assert visible == 1000  # two full snapshots; 234 pending invisible
        llama.finalize()
        assert llama.analysis_view().num_edges == 1234

    def test_snapshot_count(self):
        llama = LLAMA(NV, 3000, batch_edges=300)
        llama.insert_edges(map(tuple, EDGES))
        assert llama.n_snapshots == 10

    def test_flattening_bounds_fragments(self):
        llama = LLAMA(NV, 3000, batch_edges=100, flatten_every=4)
        llama.insert_edges(map(tuple, EDGES))
        llama.finalize()
        assert max(len(f) for f in llama._frags.values()) <= 4 + 1


class TestGraphOne:
    def test_flush_cadence(self):
        go = GraphOneFD(NV, 1 << 18)
        for i in range(1 << 16):
            go.insert_edge(i % NV, (i + 1) % NV)
        assert go.flushes == 1

    def test_serializes_less_than_llama(self):
        assert GraphOneFD.insert_serial_fraction < LLAMA.insert_serial_fraction


class TestXPGraph:
    def test_archiving_threshold_effect(self):
        """Fig. 5: larger thresholds -> cheaper per-edge archiving."""
        def cost(threshold):
            xp = XPGraph(NV, EDGES.shape[0], archive_threshold=threshold)
            xp.insert_edges(map(tuple, EDGES))
            xp.finalize()
            return xp.modeled_insert_ns()

        assert cost(1 << 6) > cost(1 << 12)

    def test_log_fit_disables_archiving(self):
        xp = XPGraph(NV, EDGES.shape[0], log_capacity_edges=None)
        xp.insert_edges(map(tuple, EDGES))
        xp.finalize()
        assert xp.n_archives == 0
        xp2 = XPGraph(NV, EDGES.shape[0])
        xp2.insert_edges(map(tuple, EDGES))
        assert xp2.n_archives > 0

    def test_serial_fraction_depends_on_archiving(self):
        xp = XPGraph(NV, EDGES.shape[0], log_capacity_edges=None)
        xp.insert_edges(map(tuple, EDGES))
        assert xp.insert_serial_fraction == 0.05
        xp2 = XPGraph(NV, EDGES.shape[0])
        xp2.insert_edges(map(tuple, EDGES))
        assert xp2.insert_serial_fraction == 0.30


class TestDGAPSystem:
    def test_no_sw_overhead(self):
        assert DGAPSystem.sw_overhead_ns == 0.0

    def test_view_geometry_derived_from_state(self):
        sys = SYSTEMS["dgap"](NV, EDGES.shape[0])
        sys.insert_edges(map(tuple, EDGES))
        geo = sys.analysis_view().geometry
        assert geo.scan_overhead > 0
        assert geo.chain_rnd_per_edge >= 0


class TestComparativeShape:
    """The paper's qualitative comparison claims, at test scale."""

    def test_dgap_beats_graphone_on_inserts(self):
        res = {}
        for name in ("dgap", "graphone"):
            sys = SYSTEMS[name](NV, EDGES.shape[0])
            sys.insert_edges(map(tuple, EDGES))
            sys.finalize()
            res[name] = sys.insert_profile().meps(1)
        assert res["dgap"] > res["graphone"]

    def test_graphone_beats_dgap_on_bfs(self):
        from repro.algorithms import bfs

        times = {}
        for name in ("dgap", "graphone"):
            sys = SYSTEMS[name](NV, EDGES.shape[0])
            sys.insert_edges(map(tuple, EDGES))
            sys.finalize()
            view = sys.analysis_view()
            bfs(view, source=0)
            times[name] = view.seconds(1)
        assert times["graphone"] < times["dgap"]

    def test_csr_fastest_on_pagerank(self):
        csr_view = StaticCSR(NV, EDGES).analysis_view()
        pagerank(csr_view, 5)
        t_csr = csr_view.seconds(1)
        for name in SYSTEMS:
            sys = SYSTEMS[name](NV, EDGES.shape[0])
            sys.insert_edges(map(tuple, EDGES))
            sys.finalize()
            view = sys.analysis_view()
            pagerank(view, 5)
            assert view.seconds(1) >= t_csr * 0.99, name
