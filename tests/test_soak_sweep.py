"""Soak-sweep driver tests: the no-silent-corruption oracle end to end.

Small soaks must pass all three oracle legs (fault-free counter
identity, healthy byte identity, lossy containment-with-shortfall),
and the oracle must actually *reject* a subject that silently diverges
from its fault-free twin.
"""

import pytest

from repro import DGAP, DGAPConfig
from repro.pmem.faults import DEFAULT_POLICY, FaultPolicy
from repro.resilience import HealthState
from repro.testing import (
    SoakConfig,
    SoakFailure,
    soak_sweep,
)

CFG = dict(init_vertices=16, init_edges=512, segment_slots=64, elog_size=96)


def make_graph(injector, faults):
    return DGAP(DGAPConfig(**CFG), injector=injector, faults=faults)


def hot_ops(n):
    """Insert-only stream skewed onto few vertices so runs overflow into
    the log and rebalances (= accounted bulk reads) actually happen."""
    return [("insert", i % 4, (7 * i) % 64) for i in range(n)]


class TestWorkloadValidation:
    def test_rejects_deletes(self):
        with pytest.raises(ValueError, match="insert-only"):
            soak_sweep(make_graph, [("delete", 0, 1)], SoakConfig())

    def test_rejects_nonpositive_rounds(self):
        with pytest.raises(ValueError, match="rounds"):
            soak_sweep(make_graph, hot_ops(10), SoakConfig(rounds=0))


class TestFaultFreeIdentity:
    def test_managed_run_is_free_when_nothing_fails(self):
        rep = soak_sweep(
            make_graph, hot_ops(300),
            SoakConfig(faults=DEFAULT_POLICY, rounds=2, scrub_every=20),
        )
        assert rep.fault_points == 0
        assert rep.ops_applied == 300 and rep.ops_skipped == 0
        assert rep.health is HealthState.HEALTHY
        assert rep.byte_compared
        assert rep.quarantined == 0


class TestRuntimeSoak:
    def test_small_soak_survives_decay(self):
        pol = FaultPolicy(read_poison_rate=2e-3, transient_read_rate=5e-3, seed=1)
        rep = soak_sweep(
            make_graph, hot_ops(600),
            SoakConfig(faults=pol, rounds=3, scrub_every=10,
                       patrol_bytes=32 * 1024),
        )
        assert rep.fault_points > 0  # the soak actually injected faults
        assert rep.ops_applied + rep.ops_skipped == 600 or rep.read_only
        # Every round reports its health; the last one is the final state.
        assert rep.rounds[-1].health is rep.health

    def test_lossy_soak_enumerates_losses(self):
        """At a hot poison rate some repair goes lossy; the oracle still
        passes because every lost edge is enumerated."""
        pol = FaultPolicy(read_poison_rate=2e-2, seed=4)
        rep = soak_sweep(
            make_graph, hot_ops(600),
            SoakConfig(faults=pol, rounds=3, scrub_every=10,
                       patrol_bytes=32 * 1024),
        )
        assert rep.poison_events > 0
        assert rep.quarantined > 0
        if rep.lost_edges:
            assert rep.health in (HealthState.DEGRADED, HealthState.READ_ONLY)
            assert not rep.byte_compared


class TestOracleRejectsCorruption:
    def test_silently_dropped_insert_is_caught(self):
        """A subject that drops an edge with no MediaError and no
        DamageReport entry is exactly the silent corruption the oracle
        exists for."""
        calls = {"n": 0}

        def corrupt_factory(injector, faults):
            g = make_graph(injector, faults)
            calls["n"] += 1
            if calls["n"] == 1:  # the subject is built first
                orig = g.insert_edge

                def dropping(src, dst, thread_id=0):
                    if dst == 63:
                        return  # silently drop
                    return orig(src, dst, thread_id)

                g.insert_edge = dropping
            return g

        with pytest.raises(SoakFailure):
            soak_sweep(
                corrupt_factory, hot_ops(300),
                SoakConfig(faults=DEFAULT_POLICY, rounds=2, scrub_every=50),
            )
