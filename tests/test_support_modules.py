"""Coverage for previously untested support modules (ISSUE 5 satellite).

* ``repro/config.py`` — every ``__post_init__`` validation error fires
  with a readable message, and the derived ``elog_entries`` property.
* ``repro/errors.py`` — the exception hierarchy, the payload-carrying
  errors (``MediaError``, ``SimulatedCrash``) and their reprs.
* ``bench/__main__.py`` — argument parsing: bad dataset/kernel/batch
  size/subcommand exit nonzero with a message on stderr (argparse),
  not a traceback; help exits zero.
"""

import pytest

from repro.config import DGAPConfig
from repro.bench.__main__ import main
from repro import errors


# -- repro/config.py -------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"init_vertices": 0}, "must be positive"),
        ({"init_edges": -1}, "must be positive"),
        ({"elog_merge_fraction": 0.0}, "elog_merge_fraction"),
        ({"elog_merge_fraction": 1.5}, "elog_merge_fraction"),
        ({"tau_root": 0.0}, "tau_root"),
        ({"tau_root": 0.95, "tau_leaf": 0.9}, "tau_root"),
        ({"tau_leaf": 1.2}, "tau_root <= tau_leaf"),
        ({"rho_leaf": -0.1}, "rho_leaf"),
        ({"rho_leaf": 0.5, "rho_root": 0.4}, "rho_leaf"),
        ({"rho_root": 0.75}, "rho_root < tau_root"),
        ({"segment_slots": 63}, "power of two"),
        ({"segment_slots": 96}, "power of two"),
        ({"segment_slots": 32}, "power of two"),
        ({"gap_distribution": "randomly"}, "gap_distribution"),
    ],
)
def test_config_validation_errors(kwargs, match):
    with pytest.raises(ValueError, match=match):
        DGAPConfig(**kwargs)


def test_config_defaults_are_valid_and_paper_shaped():
    cfg = DGAPConfig()
    assert cfg.elog_size == 2048 and cfg.ulog_size == 2048  # paper defaults
    assert cfg.segment_slots & (cfg.segment_slots - 1) == 0
    assert 0 < cfg.tau_root <= cfg.tau_leaf <= 1.0
    assert 0 <= cfg.rho_leaf <= cfg.rho_root < cfg.tau_root


def test_config_elog_entries_derivation():
    from repro.core.edge_log import ENTRY_BYTES

    cfg = DGAPConfig(elog_size=2048)
    assert cfg.elog_entries == 2048 // ENTRY_BYTES
    tiny = DGAPConfig(elog_size=1)  # still at least one entry
    assert tiny.elog_entries == 1


def test_config_boundary_values_accepted():
    DGAPConfig(elog_merge_fraction=1.0)          # inclusive upper bound
    DGAPConfig(segment_slots=64)                 # smallest legal section
    DGAPConfig(tau_leaf=1.0, tau_root=1.0)       # degenerate but legal
    DGAPConfig(rho_leaf=0.0)                     # inclusive lower bound
    DGAPConfig(gap_distribution="uniform")


# -- repro/errors.py -------------------------------------------------------

def test_error_hierarchy_roots():
    for exc in (
        errors.PMemError,
        errors.GraphError,
        errors.SimulatedCrash,
    ):
        assert issubclass(exc, errors.ReproError)
    for exc in (
        errors.OutOfPMemError,
        errors.PoolLayoutError,
        errors.TransactionError,
        errors.MediaError,
    ):
        assert issubclass(exc, errors.PMemError)
    for exc in (
        errors.LockDisciplineError,
        errors.VertexRangeError,
        errors.ImmutableGraphError,
        errors.SnapshotError,
        errors.RecoveryError,
    ):
        assert issubclass(exc, errors.GraphError)
    # SimulatedCrash is NOT a bug class: it must not be a PMemError or
    # GraphError so `except GraphError` in callers never swallows it.
    assert not issubclass(errors.SimulatedCrash, errors.PMemError)
    assert not issubclass(errors.SimulatedCrash, errors.GraphError)


def test_media_error_carries_range():
    e = errors.MediaError("poisoned", off=256, length=64)
    assert e.off == 256 and e.length == 64
    assert isinstance(e, errors.ReproError)
    defaults = errors.MediaError("poisoned")
    assert defaults.off == -1 and defaults.length == 0


def test_simulated_crash_coordinates_and_repr():
    e = errors.SimulatedCrash(op="flush", op_index=7, total_index=19)
    assert e.op == "flush" and e.op_index == 7 and e.total_index == 19
    assert "flush" in str(e) and "#7" in str(e) and "#19" in str(e)
    assert repr(e) == "SimulatedCrash(op='flush', op_index=7, total_index=19)"
    bare = errors.SimulatedCrash()
    assert bare.op == "?" and bare.op_index == -1 and bare.total_index == -1
    assert "simulated power failure" in str(bare)


def test_one_except_catches_everything():
    for exc in (
        errors.OutOfPMemError("x"),
        errors.RecoveryError("x"),
        errors.SimulatedCrash(),
        errors.MediaError("x", off=0, length=1),
    ):
        with pytest.raises(errors.ReproError):
            raise exc


# -- bench/__main__.py argument parsing ------------------------------------

def test_cli_no_subcommand_exits_nonzero(capsys):
    with pytest.raises(SystemExit) as ei:
        main([])
    assert ei.value.code == 2
    assert "usage" in capsys.readouterr().err.lower()


def test_cli_unknown_subcommand_exits_nonzero(capsys):
    with pytest.raises(SystemExit) as ei:
        main(["frobnicate"])
    assert ei.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_cli_bad_dataset_exits_with_message(capsys):
    with pytest.raises(SystemExit) as ei:
        main(["insert", "--dataset", "no-such-graph"])
    assert ei.value.code == 2
    err = capsys.readouterr().err
    assert "invalid choice" in err and "no-such-graph" in err


def test_cli_bad_kernel_exits_with_message(capsys):
    with pytest.raises(SystemExit) as ei:
        main(["analysis", "--kernel", "dijkstra"])
    assert ei.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_cli_non_integer_batch_size_exits_with_message(capsys):
    with pytest.raises(SystemExit) as ei:
        main(["insert", "--batch-size", "lots"])
    assert ei.value.code == 2
    assert "invalid int value" in capsys.readouterr().err


def test_cli_bad_profile_experiment_exits_with_message(capsys):
    with pytest.raises(SystemExit) as ei:
        main(["profile", "warp-drive"])
    assert ei.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_cli_unknown_race_scenario_message_not_traceback():
    with pytest.raises(SystemExit) as ei:
        main(["race-check", "--scenarios", "not-a-scenario"])
    assert "unknown scenarios" in str(ei.value.code)


def test_cli_help_exits_zero(capsys):
    for argv in (["--help"], ["insert", "--help"], ["profile", "--help"]):
        with pytest.raises(SystemExit) as ei:
            main(argv)
        assert ei.value.code == 0
        assert "usage" in capsys.readouterr().out.lower()


def test_cli_batch_size_normalization():
    from repro.bench.__main__ import _batch_size

    class A:
        pass

    a = A()
    a.batch_size = 0
    assert _batch_size(a) is None  # <= 0 means "one unbounded batch"
    a.batch_size = -3
    assert _batch_size(a) is None
    a.batch_size = 7
    assert _batch_size(a) == 7
    assert _batch_size(A()) is not None  # default comes from the harness
