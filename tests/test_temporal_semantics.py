"""Differential suite for windowed temporal semantics (DESIGN.md §16).

The contract under test: :class:`repro.temporal.TemporalWindowGraph`
driving a real DGAP — batched adds, FIFO churn deletes, sliding-window
expiry down the tombstone path, density-triggered compaction sweeps —
produces *byte-identical* out- and in-CSR views, every step, to a naive
pure-python reference that implements the same window semantics with a
dict-of-lists adjacency and remove-last deletion.  The reference shares
no code with the library's read path; only the in-CSR counting sort is
the pinned ``build_in_csr`` builder (the single source of truth for
(dst, src, insertion) order, per DESIGN.md §7).

Hypothesis drives arbitrary streams (duplicate parallel edges, deletes
of absent pairs, empty steps) across window sizes including the
degenerate 0 (expire the current step's survivors immediately) and 1
(keep exactly the current step), with compaction both auto-triggered by
tombstone density and forced at fixed cadences, on single-pool and
sharded graphs.
"""

from collections import defaultdict

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DGAP, DGAPConfig
from repro.analysis.view import build_in_csr
from repro.analysis.viewcache import DGAPViewCache
from repro.errors import GraphError
from repro.temporal import TemporalWindowGraph

common = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

NV = 24
SMALL = dict(init_vertices=NV, init_edges=256, segment_slots=64)


def make_graph(**overrides):
    return DGAP(DGAPConfig(**{**SMALL, **overrides}))


# -- the naive reference ----------------------------------------------------


def _remove_last(lst, d):
    for i in range(len(lst) - 1, -1, -1):
        if lst[i] == d:
            del lst[i]
            return
    raise AssertionError(f"reference bookkeeping lost a copy of dst {d}")


class NaiveWindowRef:
    """Dict-of-lists window semantics, independent of the library.

    ``adj[src]`` is the append-ordered destination list; ``tags[(s, d)]``
    the (non-decreasing) birth steps of that pair's live copies.  A
    churn delete consumes the oldest tag; expiry of step ``e`` consumes
    every tag equal to ``e``.  Both remove the positionally *last*
    occurrence from the adjacency list — the tombstone path's observable
    effect on byte-identical parallel copies.
    """

    def __init__(self, window: int):
        self.window = window
        self.adj = defaultdict(list)
        self.tags = defaultdict(list)
        self.t = 0

    def step(self, adds, deletes):
        t = self.t
        self.t += 1
        for s, d in adds:
            self.adj[s].append(d)
            self.tags[(s, d)].append(t)
        for s, d in deletes:
            tags = self.tags.get((s, d))
            if not tags:
                continue  # no live copy: skipped, no tombstone
            tags.pop(0)
            _remove_last(self.adj[s], d)
        e = t - self.window
        if e >= 0:
            for (s, d), tags in list(self.tags.items()):
                while tags and tags[0] == e:
                    tags.pop(0)
                    _remove_last(self.adj[s], d)

    def csr(self, nv):
        counts = np.array(
            [len(self.adj.get(v, ())) for v in range(nv)], dtype=np.int64
        )
        indptr = np.zeros(nv + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        dsts = np.array(
            [d for v in range(nv) for d in self.adj.get(v, ())], dtype=np.int32
        )
        return (indptr, dsts), build_in_csr(indptr, dsts, nv)

    def live(self):
        return sum(len(v) for v in self.adj.values())


def assert_graph_matches_ref(graph, ref, where=""):
    nv = graph.num_vertices
    (ref_ip, ref_ds), (ref_iip, ref_isr) = ref.csr(nv)
    with graph.consistent_view() as snap:
        out_ip, out_ds = snap.to_csr()
        in_ip, in_sr = snap.to_csc()
    assert np.asarray(out_ip).tobytes() == ref_ip.tobytes(), where
    assert np.asarray(out_ds).tobytes() == ref_ds.tobytes(), where
    assert np.asarray(in_ip).tobytes() == ref_iip.tobytes(), where
    assert np.asarray(in_sr).tobytes() == ref_isr.tobytes(), where


# -- strategies -------------------------------------------------------------

pair = st.tuples(st.integers(0, NV - 1), st.integers(0, NV - 1))
step_s = st.tuples(st.lists(pair, max_size=12), st.lists(pair, max_size=6))
stream_s = st.lists(step_s, min_size=1, max_size=10)
window_s = st.integers(0, 3)


# -- differential properties ------------------------------------------------


class TestWindowedStreamDifferential:
    @given(stream_s, window_s)
    @common
    def test_csr_byte_identical_to_reference_every_step(self, stream, window):
        """Arbitrary streams, auto-compaction at a low threshold so the
        sweep fires inside the property (not only in dedicated tests)."""
        g = make_graph()
        wg = TemporalWindowGraph(g, window, compact_threshold=0.10)
        ref = NaiveWindowRef(window)
        for i, (adds, deletes) in enumerate(stream):
            st_ = wg.advance(adds, deletes)
            ref.step(adds, deletes)
            assert_graph_matches_ref(g, ref, where=f"step {i} ({st_})")
            assert wg.live_edges() == ref.live()
        g.check_invariants()

    @given(stream_s, window_s, st.integers(1, 3))
    @common
    def test_forced_compaction_cadence_is_invisible(self, stream, window, every):
        """Compaction at a fixed cadence (auto off) never changes reads,
        and the swept graph keeps its invariants."""
        g = make_graph()
        wg = TemporalWindowGraph(g, window, auto_compact=False)
        ref = NaiveWindowRef(window)
        for i, (adds, deletes) in enumerate(stream):
            wg.advance(adds, deletes)
            ref.step(adds, deletes)
            if (i + 1) % every == 0:
                before = g.tombstone_density()
                g.compact()
                assert g.tombstone_density() <= before
                g.check_invariants()
            assert_graph_matches_ref(g, ref, where=f"step {i}")

    @given(stream_s, window_s)
    @common
    def test_incremental_view_cache_matches_reference(self, stream, window):
        """The PR 3 epoch-versioned cache stays byte-identical to the
        reference under expiry tombstones and compaction sweeps."""
        g = make_graph()
        wg = TemporalWindowGraph(g, window, compact_threshold=0.15)
        cache = DGAPViewCache(g)
        ref = NaiveWindowRef(window)
        for i, (adds, deletes) in enumerate(stream):
            wg.advance(adds, deletes)
            ref.step(adds, deletes)
            with g.consistent_view() as snap:
                (out_ip, out_ds), (in_ip, in_sr) = cache.materialize(snap)
            (ref_ip, ref_ds), (ref_iip, ref_isr) = ref.csr(g.num_vertices)
            assert out_ip.tobytes() == ref_ip.tobytes(), f"step {i}"
            assert out_ds.tobytes() == ref_ds.tobytes(), f"step {i}"
            assert in_ip.tobytes() == ref_iip.tobytes(), f"step {i}"
            assert in_sr.tobytes() == ref_isr.tobytes(), f"step {i}"

    @given(stream_s, window_s)
    @common
    def test_sharded_windowed_stream_matches_reference(self, stream, window):
        """The same semantics hold when the window wrapper drives a
        sharded multi-pool graph (routing + merged global views)."""
        from repro.sharding import ShardedDGAP

        g = ShardedDGAP(2, DGAPConfig(**SMALL))
        wg = TemporalWindowGraph(g, window, compact_threshold=0.10)
        ref = NaiveWindowRef(window)
        for i, (adds, deletes) in enumerate(stream):
            wg.advance(adds, deletes)
            ref.step(adds, deletes)
            (out, inn) = g.global_csr()
            (ref_ip, ref_ds), (ref_iip, ref_isr) = ref.csr(g.num_vertices)
            assert np.asarray(out[0]).tobytes() == ref_ip.tobytes(), f"step {i}"
            assert np.asarray(out[1]).tobytes() == ref_ds.tobytes(), f"step {i}"
            assert np.asarray(inn[0]).tobytes() == ref_iip.tobytes(), f"step {i}"
            assert np.asarray(inn[1]).tobytes() == ref_isr.tobytes(), f"step {i}"


# -- degenerate windows -----------------------------------------------------


class TestDegenerateWindows:
    def test_window_zero_graph_empty_after_every_step(self):
        g = make_graph()
        wg = TemporalWindowGraph(g, 0, auto_compact=False)
        rng = np.random.default_rng(5)
        for t in range(6):
            adds = rng.integers(0, NV, size=(20, 2), dtype=np.int64)
            stats = wg.advance(adds)
            assert stats["expired"] == stats["added"]
            assert wg.live_edges() == 0
            assert int(g.va.live_degrees().sum()) == 0

    def test_window_one_keeps_exactly_the_current_step(self):
        g = make_graph()
        wg = TemporalWindowGraph(g, 1, auto_compact=False)
        rng = np.random.default_rng(6)
        prev = 0
        for t in range(6):
            adds = rng.integers(0, NV, size=(15, 2), dtype=np.int64)
            stats = wg.advance(adds)
            assert stats["expired"] == prev  # last step's copies all expire
            assert wg.live_edges() == stats["added"]
            prev = stats["added"]

    def test_churn_consumes_the_oldest_copy_first(self):
        """FIFO: a churn delete releases the oldest birth tag, so the
        later copy still expires with its own step."""
        g = make_graph()
        wg = TemporalWindowGraph(g, 3, auto_compact=False)
        wg.advance([(1, 2)])                   # step 0: birth tag 0
        wg.advance([(1, 2)], [(1, 2)])         # step 1: add tag 1, churn eats tag 0
        assert wg.live_pair_counts() == {(1, 2): 1}
        s2 = wg.advance([])                    # step 2
        s3 = wg.advance([])                    # step 3: tag-0 copy already gone
        assert (s2["expired"], s3["expired"]) == (0, 0)
        s4 = wg.advance([])                    # step 4: tag-1 copy expires
        assert s4["expired"] == 1
        assert wg.live_edges() == 0


# -- construction contracts -------------------------------------------------


class TestContracts:
    def test_negative_window_rejected(self):
        with pytest.raises(GraphError):
            TemporalWindowGraph(make_graph(), -1)

    def test_bad_compact_threshold_rejected(self):
        with pytest.raises(GraphError):
            TemporalWindowGraph(make_graph(), 2, compact_threshold=0.0)
        with pytest.raises(GraphError):
            TemporalWindowGraph(make_graph(), 2, compact_threshold=0.75)

    def test_adds_must_not_carry_tombstones(self):
        from repro.core.batch import EdgeBatch

        wg = TemporalWindowGraph(make_graph(), 2)
        batch = EdgeBatch(
            np.array([1]), np.array([2]), np.array([True])
        )
        with pytest.raises(GraphError):
            wg.advance(batch)

    def test_counters_ledger_balances(self):
        g = make_graph()
        wg = TemporalWindowGraph(g, 2, auto_compact=False)
        rng = np.random.default_rng(9)
        for _ in range(8):
            adds = rng.integers(0, NV, size=(10, 2), dtype=np.int64)
            dels = rng.integers(0, NV, size=(4, 2), dtype=np.int64)
            wg.advance(adds, dels)
        c = wg.counters()
        assert c["added"] - c["churn_deleted"] - c["expired"] == wg.live_edges()
        assert int(g.va.live_degrees().sum()) == wg.live_edges()
