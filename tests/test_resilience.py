"""ResilienceManager: quarantine, repair taxonomy, health, degraded mode.

Each test plants poison (or runtime fault policy) against a live DGAP
instance and checks the repair's contract from the table in
``repro/resilience/scrub.py``: EXACT repairs restore the damaged bytes
bit-for-bit, SCRUBBED repairs clear dead content, LOSSY repairs
enumerate every lost edge per vertex and leave the structure
consistent, and health only ever worsens.
"""

import numpy as np
import pytest

from repro import DGAP, DGAPConfig
from repro.errors import MediaError, ReadOnlyGraphError
from repro.pmem.constants import CACHE_LINE, XPLINE
from repro.pmem.faults import FaultPolicy
from repro.resilience import (
    DamageReport,
    HealthState,
    QuarantineEntry,
    QuarantineRegistry,
    RepairOutcome,
    ResilienceManager,
)
from repro.resilience.quarantine import OUTCOME_HEALTH

CFG = dict(init_vertices=512, init_edges=4096, segment_slots=64, elog_size=96)


def make_graph(faults=None, **over):
    return DGAP(DGAPConfig(**{**CFG, **over}), faults=faults)


def hot_graph(n=60, **over):
    """Graph with vertex 0 holding both array edges and a live log chain."""
    g = make_graph(**over)
    for i in range(n):
        g.insert_edge(0, i)
    return g


def region_bounds(g, name):
    off, dt, cnt = g.pool._directory[name]
    return off, off + dt.itemsize * cnt


class TestHealthLadder:
    def test_worst_is_monotone(self):
        h, d, ro = HealthState.HEALTHY, HealthState.DEGRADED, HealthState.READ_ONLY
        assert h.worst(d) is d and d.worst(h) is d
        assert d.worst(ro) is ro and ro.worst(h) is ro

    def test_outcome_health_mapping(self):
        assert OUTCOME_HEALTH[RepairOutcome.EXACT] is HealthState.HEALTHY
        assert OUTCOME_HEALTH[RepairOutcome.SCRUBBED] is HealthState.HEALTHY
        assert OUTCOME_HEALTH[RepairOutcome.LOSSY] is HealthState.DEGRADED
        assert OUTCOME_HEALTH[RepairOutcome.UNRECOVERABLE] is HealthState.READ_ONLY

    def test_registry_worst_outcome(self):
        reg = QuarantineRegistry()
        assert reg.worst_outcome_health() is HealthState.HEALTHY
        reg.add(QuarantineEntry(0, 64, "x", "edge-array", RepairOutcome.EXACT))
        assert reg.worst_outcome_health() is HealthState.HEALTHY
        reg.add(QuarantineEntry(64, 64, "x", "edge-array", RepairOutcome.LOSSY))
        assert reg.worst_outcome_health() is HealthState.DEGRADED

    def test_manager_health_never_improves(self):
        mgr = ResilienceManager(make_graph())
        mgr._set_health(HealthState.DEGRADED)
        mgr._set_health(HealthState.HEALTHY)
        assert mgr.health is HealthState.DEGRADED
        assert mgr.graph.health is HealthState.DEGRADED


class TestDamageReportAPI:
    def test_aggregates_and_inexact_ranges(self):
        exact = QuarantineEntry(0, 64, "edges.g0", "edge-array", RepairOutcome.EXACT)
        lossy = QuarantineEntry(
            64, 64, "edges.g0", "edge-array", RepairOutcome.LOSSY,
            vertices=(3,), lost_edges=2, lost_by_vertex=((3, 2),),
        )
        rep = DamageReport(health=HealthState.DEGRADED, entries=(exact, lossy))
        assert rep.n_quarantined == 2
        assert rep.lost_edges == 2
        assert rep.damaged_vertices == (3,)
        assert rep.inexact_ranges() == ((64, 128),)  # EXACT is exempt
        assert "degraded" in rep.summary() and "lossy=1" in rep.summary()


class TestScrubRepairs:
    def test_clean_graph_scrubs_to_nothing(self):
        mgr = ResilienceManager(hot_graph())
        assert mgr.full_scrub() == []
        assert mgr.health is HealthState.HEALTHY
        assert mgr.damage_report().n_quarantined == 0

    def test_vertexarr_exact_repair(self):
        g = hot_graph(dram_placement=False)
        lo, hi = region_bounds(g, f"vertexarr.degree.g{g.ea.gen}")
        xp = (lo // XPLINE + 1) * XPLINE
        assert xp + XPLINE <= hi
        before = bytes(g.pool.device.buf[xp : xp + XPLINE])
        g.pool.device.poison(xp, XPLINE)
        mgr = ResilienceManager(g)
        entries = mgr.full_scrub()
        assert entries and all(e.outcome is RepairOutcome.EXACT for e in entries)
        assert all(e.kind == "vertex-metadata" for e in entries)
        assert bytes(g.pool.device.buf[xp : xp + XPLINE]) == before
        assert not g.pool.device.poisoned_ranges()
        assert mgr.health is HealthState.HEALTHY

    def test_edge_array_lossy_repair(self):
        g = hot_graph()
        deg0 = int(g.va.degree[0])
        ad0 = int(g.va.array_degree[0])
        # Poison the XPLine holding vertex 0's pivot and run start.
        reg_off = g.ea.region.offset
        g.pool.device.poison(reg_off, XPLINE)
        mgr = ResilienceManager(g)
        entries = mgr.full_scrub()
        lossy = [e for e in entries if e.outcome is RepairOutcome.LOSSY]
        assert len(lossy) == 1 and lossy[0].kind == "edge-array"
        lost = dict(lossy[0].lost_by_vertex)
        assert lost and 0 in lost
        assert int(g.va.degree[0]) == deg0 - lost[0]
        assert int(g.va.array_degree[0]) == ad0 - lost[0]
        assert mgr.health is HealthState.DEGRADED
        assert not g.pool.device.poisoned_ranges()
        g.check_invariants()
        # The instance keeps ingesting and the new edge is readable.
        mgr.guarded_insert_edge(0, 999)
        assert 999 in [int(d) for d in g.out_neighbors(0)]

    def test_edge_log_lossy_repair(self):
        g = hot_graph()
        s0 = int(np.flatnonzero(g.logs.counts)[0])
        assert int(g.va.el[0]) >= 0  # vertex 0 has a live chain
        chain0 = int(g.va.degree[0]) - int(g.va.array_degree[0])
        assert chain0 > 0
        eps, reg = g.logs.entries_per_section, g.logs.region
        sec_off = reg.offset + s0 * eps * 3 * reg.itemsize
        g.pool.device.poison(sec_off, XPLINE)
        deg0 = int(g.va.degree[0])
        mgr = ResilienceManager(g)
        entries = mgr.full_scrub()
        lossy = [e for e in entries if e.outcome is RepairOutcome.LOSSY]
        assert len(lossy) == 1 and lossy[0].kind == "edge-log"
        lost = dict(lossy[0].lost_by_vertex)
        assert lost.get(0) == chain0  # the whole section (and chain) died
        assert int(g.va.degree[0]) == deg0 - chain0
        assert mgr.health is HealthState.DEGRADED
        g.check_invariants()
        mgr.guarded_insert_edge(0, 998)
        assert 998 in [int(d) for d in g.out_neighbors(0)]

    def test_idle_ulog_scrubbed(self):
        g = hot_graph()
        lo, hi = region_bounds(g, "ulog.pay.t3")
        xp = (lo // XPLINE + 1) * XPLINE
        assert xp + XPLINE <= hi
        g.pool.device.poison(xp, XPLINE)
        mgr = ResilienceManager(g)
        entries = mgr.full_scrub()
        assert entries and all(e.outcome is RepairOutcome.SCRUBBED for e in entries)
        assert all(e.kind == "undo-log" for e in entries)
        assert mgr.health is HealthState.HEALTHY
        assert not g.pool.device.poisoned_ranges()

    def test_straddling_line_fully_repaired(self):
        """A poisoned line across a region boundary is repaired by two
        partial writes; the manager must still leave the ECC line clean."""
        g = hot_graph()
        lo, hi = region_bounds(g, "ulog.hdr.t0")
        assert hi % CACHE_LINE != 0  # the boundary splits a cache line
        xp = (hi // XPLINE) * XPLINE
        g.pool.device.poison(xp, XPLINE)
        mgr = ResilienceManager(g)
        entries = mgr.full_scrub()
        # The range split into at least two region parts...
        assert len(entries) >= 2
        assert {e.region for e in entries} >= {"ulog.hdr.t0"}
        # ...and no latent poison survives the repair.
        assert not g.pool.device.poisoned_ranges()
        assert mgr.health is HealthState.HEALTHY

    def test_patrol_scrub_reaches_planted_poison(self):
        g = hot_graph()
        target = 8192  # inside the edge region, beyond the first windows
        g.pool.device.poison(target, 1)
        mgr = ResilienceManager(g, patrol_bytes=4096)
        assert mgr.scrub() == []  # window [0, 4096)
        assert mgr.scrub() == []  # window [4096, 8192)
        entries = mgr.scrub()     # window [8192, 12288) covers the plant
        assert entries
        assert not g.pool.device.poisoned_ranges()
        assert g.pool.stats.buckets.get("scrub", 0.0) > 0.0

    def test_patrol_cursor_wraps(self):
        g = make_graph()
        mgr = ResilienceManager(g, patrol_bytes=g.pool.device.size)
        mgr.scrub()
        assert mgr._patrol_cursor == 0  # wrapped to the start


class TestGuardedOperation:
    def test_guarded_insert_equals_plain_insert_when_clean(self):
        ga, gb = make_graph(), make_graph()
        mgr = ResilienceManager(ga)
        for i in range(80):
            assert mgr.guarded_insert_edge(i % 5, i) == []
            gb.insert_edge(i % 5, i)
        for v in range(5):
            assert [int(d) for d in ga.out_neighbors(v)] == [
                int(d) for d in gb.out_neighbors(v)
            ]

    def test_read_only_refuses_writes_serves_reads(self):
        g = hot_graph()
        mgr = ResilienceManager(g)
        mgr._set_health(HealthState.READ_ONLY)
        with pytest.raises(ReadOnlyGraphError):
            mgr.guarded_insert_edge(0, 1)
        with pytest.raises(ReadOnlyGraphError):
            mgr.check_writable()
        # Analytics still answer, with the report attached.
        result, rep = mgr.analyze(lambda snap: int(snap.to_csr()[1].size))
        assert result == int(g.va.degree[: g.num_vertices].sum())
        assert rep.health is HealthState.READ_ONLY

    def test_degraded_analytics_return_damage_report(self):
        g = hot_graph()
        g.pool.device.poison(g.ea.region.offset, XPLINE)
        mgr = ResilienceManager(g)
        mgr.full_scrub()
        assert mgr.health is HealthState.DEGRADED
        result, rep = mgr.analyze(lambda snap: int(snap.to_csr()[1].size))
        assert rep.health is HealthState.DEGRADED
        assert rep.lost_edges > 0
        assert result == int(g.va.degree[: g.num_vertices].sum())

    def test_guarded_ingest_survives_runtime_faults(self):
        """End-to-end mini-soak: hot ingest under spontaneous decay; every
        insert either lands, or its loss is enumerated in the report."""
        pol = FaultPolicy(read_poison_rate=0.02, seed=2)
        g = make_graph(faults=pol, init_vertices=16, init_edges=512)
        mgr = ResilienceManager(g)
        applied = 0
        for i in range(400):
            try:
                mgr.guarded_insert_edge(i % 4, (7 * i) % 64)
            except ReadOnlyGraphError:
                break
            except MediaError:
                continue  # enumerated skip: provably never landed
            applied += 1
        rep = mgr.damage_report()
        assert len(mgr.registry) > 0  # faults actually fired
        with g.pool.device.suspend_runtime_faults():
            if mgr.health is not HealthState.READ_ONLY:
                g.check_invariants()
            total = int(g.va.degree[: g.num_vertices].sum())
        assert total == applied - rep.lost_edges
