"""Kernel correctness against networkx / reference implementations."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import bfs, betweenness_centrality, connected_components, pagerank
from repro.analysis.view import CSRArraysView, StorageGeometry
from repro.datasets import rmat_edges


def make_view(edges, nv):
    edges = np.asarray(edges)
    order = np.argsort(edges[:, 0], kind="stable")
    e = edges[order]
    indptr = np.zeros(nv + 1, dtype=np.int64)
    np.cumsum(np.bincount(e[:, 0], minlength=nv), out=indptr[1:])
    return CSRArraysView(indptr, e[:, 1].astype(np.int32))


@pytest.fixture(params=[0, 1, 2])
def random_graph(request):
    nv = 120
    edges = rmat_edges(nv, 700, seed=request.param)
    # dedupe for clean networkx comparison
    edges = np.unique(edges, axis=0)
    G = nx.DiGraph()
    G.add_nodes_from(range(nv))
    G.add_edges_from(map(tuple, edges))
    return make_view(edges, nv), G, nv


class TestPageRank:
    def test_matches_reference(self, random_graph):
        view, G, nv = random_graph
        got = pagerank(view, iterations=50)
        # reference: same GAPBS variant computed naively
        deg = view.out_degrees().astype(float)
        score = np.full(nv, 1 / nv)
        for _ in range(50):
            new = np.full(nv, 0.15 / nv)
            for u, v in G.edges:
                new[v] += 0.85 * score[u] / deg[u]
            score = new
        np.testing.assert_allclose(got, score, rtol=1e-8)

    def test_ranks_correlate_with_networkx(self, random_graph):
        view, G, nv = random_graph
        got = pagerank(view, iterations=40)
        ref = nx.pagerank(G, alpha=0.85, max_iter=200)
        refv = np.array([ref[i] for i in range(nv)])
        # different dangling-mass handling => compare orderings
        top_got = set(np.argsort(got)[-10:].tolist())
        top_ref = set(np.argsort(refv)[-10:].tolist())
        assert len(top_got & top_ref) >= 7

    def test_sums_below_one(self, random_graph):
        view, _, _ = random_graph
        s = pagerank(view).sum()
        assert 0 < s <= 1.0 + 1e-9

    def test_accounts_time_per_iteration(self, random_graph):
        view, _, _ = random_graph
        pagerank(view, iterations=1)
        t1 = view.seconds()
        view.reset_clock()
        pagerank(view, iterations=10)
        assert view.seconds() == pytest.approx(10 * t1, rel=0.01)


class TestBFS:
    def test_parents_valid(self, random_graph):
        view, G, nv = random_graph
        parent = bfs(view, source=0)
        reachable = {0} | set(nx.descendants(G, 0))
        for v in range(nv):
            if v in reachable:
                assert parent[v] >= 0, v
                if v != 0:
                    assert G.has_edge(int(parent[v]), v)
            else:
                assert parent[v] == -1, v

    def test_depths_match_networkx(self, random_graph):
        view, G, nv = random_graph
        parent = bfs(view, source=0)
        ref = nx.single_source_shortest_path_length(G, 0)
        # walk parent pointers to compute our depth
        for v, d in ref.items():
            hops, u = 0, v
            while u != 0:
                u = int(parent[u])
                hops += 1
                assert hops <= nv
            assert hops == d, v

    def test_source_is_own_parent(self, random_graph):
        view, _, _ = random_graph
        assert bfs(view, source=5)[5] == 5

    def test_isolated_source(self):
        view = make_view(np.array([[1, 2]]), 4)
        parent = bfs(view, source=3)
        assert parent[3] == 3 and parent[1] == -1


class TestCC:
    def test_matches_networkx(self, random_graph):
        view, G, nv = random_graph
        comp = connected_components(view)
        for ref_comp in nx.connected_components(G.to_undirected()):
            labels = {int(comp[v]) for v in ref_comp}
            assert len(labels) == 1
            assert labels.pop() == min(ref_comp)

    def test_label_count(self, random_graph):
        view, G, nv = random_graph
        comp = connected_components(view)
        assert len(set(comp.tolist())) == nx.number_connected_components(G.to_undirected())

    def test_no_edges(self):
        view = make_view(np.empty((0, 2), dtype=np.int64), 5)
        np.testing.assert_array_equal(connected_components(view), np.arange(5))


class TestBC:
    @staticmethod
    def reference_dependency(G, s, nv):
        """Textbook Brandes single-source dependencies."""
        import collections

        sigma = collections.defaultdict(float)
        dist = {}
        preds = collections.defaultdict(list)
        sigma[s] = 1.0
        dist[s] = 0
        q = [s]
        order = []
        while q:
            nq = []
            for u in q:
                order.append(u)
            for u in q:
                for v in G.successors(u):
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        nq.append(v)
            q = sorted(set(nq), key=lambda x: x)
        # recompute sigma/preds by BFS order
        order = sorted(dist, key=lambda v: dist[v])
        sigma = collections.defaultdict(float)
        sigma[s] = 1.0
        for v in order:
            for w in G.successors(v):
                if dist.get(w) == dist[v] + 1:
                    sigma[w] += sigma[v]
                    preds[w].append(v)
        delta = collections.defaultdict(float)
        for w in reversed(order):
            for v in preds[w]:
                delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
        out = np.zeros(nv)
        for v, d in delta.items():
            out[v] = d
        out[s] = 0.0
        return out

    def test_matches_reference(self, random_graph):
        view, G, nv = random_graph
        got = betweenness_centrality(view, source=0)
        ref = self.reference_dependency(G, 0, nv)
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)

    def test_source_zeroed(self, random_graph):
        view, _, _ = random_graph
        assert betweenness_centrality(view, source=0)[0] == 0.0


class TestViewAccounting:
    def test_gap_overhead_slows_scans(self, random_graph):
        view, _, nv = random_graph
        indptr, dsts = view.out_csr()
        plain = CSRArraysView(indptr, dsts)
        gappy = CSRArraysView(indptr, dsts, StorageGeometry(name="gappy", scan_overhead=0.4))
        pagerank(plain, 5)
        pagerank(gappy, 5)
        assert gappy.seconds() > plain.seconds()

    def test_blocked_layout_slower_for_scans(self, random_graph):
        view, _, _ = random_graph
        indptr, dsts = view.out_csr()
        csr = CSRArraysView(indptr, dsts)
        bal = CSRArraysView(
            indptr, dsts,
            StorageGeometry(name="bal", edge_bytes=4.3, scan_rnd_per_vertex=1.0, frontier_rnd_per_vertex=2.0),
        )
        pagerank(csr, 5)
        pagerank(bal, 5)
        assert bal.seconds() > csr.seconds()

    def test_amdahl_scaling(self, random_graph):
        view, _, _ = random_graph
        pagerank(view, 10)
        t1, t16 = view.seconds(1), view.seconds(16)
        assert 8 < t1 / t16 <= 16

    def test_cc_scales_worse_than_pr(self, random_graph):
        view, _, _ = random_graph
        pagerank(view, 10)
        pr_speedup = view.seconds(1) / view.seconds(16)
        view.reset_clock()
        connected_components(view)
        cc_speedup = view.seconds(1) / view.seconds(16)
        assert cc_speedup < pr_speedup
