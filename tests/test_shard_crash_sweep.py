"""Crash sweeps over the sharded multi-pool graph.

What changes versus the single-pool sweeps of ``test_crash_sweep.py``:

* one :class:`CrashInjector` spans every shard device, so the sweep's
  crash-point coordinate enumerates a single machine-wide ordering of
  persistence events across all pools;
* a crash raised by one shard device power-fails the rest (the facade's
  whole-machine outage), so recovery always opens from a consistent
  multi-pool crash image;
* ``("batch", EdgeBatch)`` ops land crashes *between* the per-shard
  dispatches of one routed batch — the oracle accepts any per-vertex
  prefix of the in-flight batch (each vertex lives in exactly one
  shard, and the batched path preserves per-vertex stream order);
* modeled recovery time is the max over per-shard replay deltas
  (parallel recovery), reported via ``pool_clocks``.
"""

import numpy as np
import pytest

from repro import DGAPConfig
from repro.pmem.faults import DEFAULT_POLICY, TORN_STORES, FaultPolicy
from repro.sharding import ShardedDGAP
from repro.testing import (
    SweepConfig,
    crash_sweep,
    make_batched_insert_workload,
    make_insert_workload,
    pool_clocks,
)

CFG = dict(init_vertices=9, init_edges=256, segment_slots=64, elog_size=96)


def make_sharded(n):
    def factory(injector, faults):
        return ShardedDGAP(n, DGAPConfig(**CFG), injector=injector, faults=faults)

    return factory


def scalar_workload():
    """Inserts spread over every shard, plus deletes; forces log appends
    and at least one rebalance in the hottest shard."""
    ops = [("insert", d % 9, (d * 5) % 9) for d in range(60)]
    ops += [("insert", 0, d % 9) for d in range(30)]
    ops += [("delete", 0, 2), ("delete", 1, 5 % 9)]
    return ops


class TestShardedScalarSweep:
    @pytest.mark.parametrize("policy", [DEFAULT_POLICY, TORN_STORES],
                             ids=["default", "torn"])
    @pytest.mark.parametrize("n", [2, 3])
    def test_exhaustive_sweep_passes_oracle(self, n, policy):
        rep = crash_sweep(
            make_sharded(n),
            scalar_workload(),
            SweepConfig(faults=policy, exhaustive_threshold=100,
                        samples=120, idempotence_samples=3, seed=3),
        )
        assert rep.crash_points > 80
        assert rep.unrecoverable_count() == 0
        assert rep.in_flight_applied_count() > 0

    def test_sweep_is_deterministic(self):
        cfg = SweepConfig(exhaustive_threshold=0, samples=40,
                          idempotence_samples=2, seed=5)
        a = crash_sweep(make_sharded(3), scalar_workload(), cfg)
        b = crash_sweep(make_sharded(3), scalar_workload(), cfg)
        assert [(r.total_index, r.acked, r.in_flight_applied, r.recovery_ns)
                for r in a.results] == \
               [(r.total_index, r.acked, r.in_flight_applied, r.recovery_ns)
                for r in b.results]


class TestShardedBatchedSweep:
    def test_mid_dispatch_crashes_keep_prefix_consistency(self):
        # batch_size 8 over 3 shards: most batches split across several
        # shards, so sampled crash points land between the per-shard
        # dispatches of one routed batch — the tentpole's oracle case.
        rng = np.random.default_rng(2)
        edges = np.column_stack([
            rng.integers(0, 9, size=72), rng.integers(0, 9, size=72),
        ])
        rep = crash_sweep(
            make_sharded(3),
            make_batched_insert_workload(edges, batch_size=8),
            SweepConfig(exhaustive_threshold=100, samples=120,
                        idempotence_samples=3, seed=9),
        )
        assert rep.unrecoverable_count() == 0
        # partially-applied batches must actually occur for the oracle
        # run to mean anything
        assert rep.in_flight_applied_count() > 0

    def test_batched_rejects_tombstones(self):
        edges = np.array([[0, 1]])
        ops = make_batched_insert_workload(edges, batch_size=4)
        assert len(ops) == 1
        from repro.core.batch import EdgeBatch

        with pytest.raises(ValueError):
            make_batched_insert_workload(
                EdgeBatch(np.array([0]), np.array([1]), np.array([True]))
            )


class TestParallelRecoveryClock:
    def test_pool_clocks_shape(self):
        sh = ShardedDGAP(3, DGAPConfig(**CFG))
        clocks = pool_clocks(sh.pool)
        assert clocks.shape == (3,)
        single = make_sharded(1)(None, None)
        assert pool_clocks(single.pool).shape == (1,)

    def test_recovery_ns_is_max_over_shards_not_sum(self):
        sh = ShardedDGAP(3, DGAPConfig(**CFG))
        for kind, u, w in scalar_workload():
            (sh.insert_edge if kind == "insert" else sh.delete_edge)(u, w)
        sh.pool.crash()
        before = pool_clocks(sh.pool)
        ShardedDGAP.open(sh.pool, sh.config)
        deltas = pool_clocks(sh.pool) - before
        assert (deltas > 0).all()  # every shard actually replayed
        makespan = float(deltas.max())
        assert makespan < float(deltas.sum())
        # the group-stats clock agrees with the per-pool maximum
        assert sh.pool.stats.modeled_ns == max(
            p.stats.modeled_ns for p in sh.pool.pools
        )
