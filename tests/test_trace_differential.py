"""Differential tests: tracing is observationally free (ISSUE 5 satellite).

Twin-system pattern (as in ``tests/test_view_cache.py``): two identical
DGAP instances run the identical workload, one under an installed
:class:`~repro.obs.Tracer` (with device-op events on — the most
invasive configuration), one untraced.  The traced arm must be
indistinguishable from the untraced arm at every level the simulator
can observe:

* the **PM event stream** — every injector-visible persistence event,
  in order (recorded via a CrashInjector subclass);
* **byte-identical device state** — cache image and media image;
* **exactly-equal counters** — every integer counter and the float
  modeled clock, bit for bit (the tracer only *reads* snapshots, so
  there is no epsilon here), including through shutdown/reopen and
  crash/recovery.

This is the proof behind the acceptance criterion "tracing-off runs are
counter- and event-identical to pre-PR behaviour": the tracer's entire
interaction with the system is snapshot reads, so traced == untraced ==
pre-PR.
"""

import numpy as np
import pytest

from repro import DGAP, DGAPConfig
from repro.algorithms import pagerank
from repro.obs import Tracer, tracing
from repro.pmem.crash import CrashInjector

SMALL = dict(init_vertices=24, init_edges=256, segment_slots=64)
NV = SMALL["init_vertices"]


class RecordingInjector(CrashInjector):
    """Never fires; records the exact persistence-event stream."""

    def __init__(self):
        super().__init__()
        self.events = []

    def tick(self, event):
        self.events.append((event, 1))
        super().tick(event)

    def tick_many(self, event, n):
        if n > 0:
            self.events.append((event, int(n)))
        super().tick_many(event, n)


def make_twin():
    inj = RecordingInjector()
    g = DGAP(DGAPConfig(**SMALL), injector=inj)
    return g, inj


def workload_edges():
    rng = np.random.default_rng(42)
    return rng.integers(0, NV, size=(600, 2))


def run_workload(g: DGAP) -> None:
    """Mixed mutation + analysis workload hitting every hot path."""
    edges = workload_edges()
    g.insert_edges(edges[:500], batch_size=64)   # batched pipeline
    for s, d in edges[500:520]:
        g.insert_edge(int(s), int(d))            # scalar path
    for s, d in edges[:10]:
        g.delete_edge(int(s), int(d))            # tombstones
    g.insert_edges(edges[520:], batch_size=1)    # per-edge batch path
    with g.consistent_view() as snap:
        pagerank_view = snap.to_csr()
    assert pagerank_view[0].shape[0] == g.num_vertices + 1


def assert_stats_identical(a, b):
    da, db = dict(a.__dict__), dict(b.__dict__)
    ba, bb = da.pop("buckets"), db.pop("buckets")
    assert da == db  # integer counters AND float modeled_ns, exactly
    assert ba == bb


def assert_devices_identical(g1: DGAP, g2: DGAP):
    d1, d2 = g1.pool.device, g2.pool.device
    np.testing.assert_array_equal(d1.buf, d2.buf)
    np.testing.assert_array_equal(d1.media, d2.media)
    assert d1._dirty == d2._dirty
    assert_stats_identical(d1.stats, d2.stats)


def test_traced_run_is_event_and_counter_identical():
    g_plain, inj_plain = make_twin()
    g_traced, inj_traced = make_twin()

    run_workload(g_plain)

    tracer = Tracer(g_traced.pool.stats, device_ops=True)
    with tracing(tracer):
        run_workload(g_traced)

    assert inj_plain.events == inj_traced.events
    assert_devices_identical(g_plain, g_traced)
    assert tracer.span_count() > 0  # the traced arm really was traced


def test_traced_shutdown_reopen_is_identical():
    g_plain, _ = make_twin()
    g_traced, _ = make_twin()
    run_workload(g_plain)
    run_workload(g_traced)

    g_plain.shutdown()
    r_plain = DGAP.open(g_plain.pool, g_plain.config)

    tracer = Tracer(g_traced.pool.stats, device_ops=True)
    with tracing(tracer):
        g_traced.shutdown()
        r_traced = DGAP.open(g_traced.pool, g_traced.config)

    assert_devices_identical(g_plain, g_traced)
    assert r_plain.num_vertices == r_traced.num_vertices
    assert r_plain.num_edges == r_traced.num_edges
    np.testing.assert_array_equal(
        r_plain.va.live_degrees(), r_traced.va.live_degrees()
    )
    assert tracer.find("shutdown") and tracer.find("normal_restart")


def test_traced_crash_recovery_is_byte_identical():
    g_plain, inj_plain = make_twin()
    g_traced, inj_traced = make_twin()
    run_workload(g_plain)
    run_workload(g_traced)

    g_plain.pool.crash()
    snap_plain = g_plain.pool.stats.snapshot()
    r_plain = DGAP.open(g_plain.pool, g_plain.config)
    delta_plain = g_plain.pool.stats.delta_since(snap_plain)

    tracer = Tracer(g_traced.pool.stats, device_ops=True)
    with tracing(tracer):
        g_traced.pool.crash()
        snap_traced = g_traced.pool.stats.snapshot()
        r_traced = DGAP.open(g_traced.pool, g_traced.config)
    delta_traced = g_traced.pool.stats.delta_since(snap_traced)

    # identical event streams through crash + full recovery
    assert inj_plain.events == inj_traced.events
    # byte-identical recovered persistent state
    assert_devices_identical(g_plain, g_traced)
    # exactly-equal modeled recovery cost (floats compared with ==)
    assert delta_plain.modeled_ns == delta_traced.modeled_ns
    assert delta_plain.buckets.get("recovery") == delta_traced.buckets.get(
        "recovery"
    )
    # recovered graphs agree
    assert r_plain.num_edges == r_traced.num_edges
    np.testing.assert_array_equal(
        r_plain.va.live_degrees(), r_traced.va.live_degrees()
    )
    assert tracer.find("crash_recover")


def test_analysis_kernels_unperturbed_by_tracing():
    g_plain, _ = make_twin()
    g_traced, _ = make_twin()
    run_workload(g_plain)
    run_workload(g_traced)

    with g_plain.consistent_view() as snap:
        from repro.analysis.view import CSRArraysView

        view_plain = CSRArraysView(*snap.to_csr())
        ranks_plain = pagerank(view_plain, iterations=5)
        secs_plain = view_plain.seconds(1)

    tracer = Tracer(g_traced.pool.stats, device_ops=True)
    with tracing(tracer):
        with g_traced.consistent_view() as snap:
            from repro.analysis.view import CSRArraysView

            view_traced = CSRArraysView(*snap.to_csr())
            ranks_traced = pagerank(view_traced, iterations=5)
            secs_traced = view_traced.seconds(1)

    np.testing.assert_array_equal(ranks_plain, ranks_traced)
    assert secs_plain == secs_traced  # modeled analysis seconds, exactly
    assert tracer.find("pr")[0].attrs["analysis_par_ns"] > 0
