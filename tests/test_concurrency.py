"""Concurrency-control tests (paper §3.1.6) with real threads.

The GIL serializes bytecode but not compound critical sections, so the
per-section locks are load-bearing: without them, two writers could
interleave between the slot probe and the slot write and both claim the
same gap.  These tests run real writer threads with ``thread_safe=True``
and verify structural integrity and no lost updates.
"""

import threading

import numpy as np
import pytest

from repro import DGAP, DGAPConfig
from repro.core.locks import SectionLockTable
from repro.errors import LockDisciplineError


class TestSectionLockTable:
    def test_basic_acquire_release(self):
        t = SectionLockTable(4)
        t.acquire(2)
        t.release(2)

    def test_context_manager(self):
        t = SectionLockTable(4)
        with t.locked(1):
            pass

    def test_rebalance_blocks_writers(self):
        t = SectionLockTable(4)
        secs = t.begin_rebalance([1, 2])
        got = []

        def writer():
            t.acquire(1)
            got.append("acquired")
            t.release(1)

        th = threading.Thread(target=writer)
        th.start()
        th.join(timeout=0.2)
        assert got == []  # blocked on the rebalance flag
        t.end_rebalance(secs)
        th.join(timeout=2)
        assert got == ["acquired"]

    def test_rebalance_lock_order_sorted(self):
        t = SectionLockTable(8)
        secs = t.begin_rebalance([5, 2, 7, 2])
        assert secs == [2, 5, 7]
        t.end_rebalance(secs)

    def test_resize_rebuilds(self):
        t = SectionLockTable(2)
        t.resize(8)
        assert t.n_sections == 8
        with t.locked(7):
            pass

    def test_resize_requires_quiescence(self):
        """A table swap while another thread holds a section must raise,
        not orphan the holder's lock (the pre-fix resize bug)."""
        t = SectionLockTable(4)
        holding = threading.Event()
        done = threading.Event()

        def holder():
            t.acquire(1)
            holding.set()
            done.wait(5)
            t.release(1)

        th = threading.Thread(target=holder)
        th.start()
        assert holding.wait(2)
        with pytest.raises(LockDisciplineError):
            t.resize(8)
        done.set()
        th.join(timeout=2)
        # quiescent now: the same resize succeeds
        t.resize(8)
        assert t.n_sections == 8

    def test_resize_by_sole_holder_releases_and_swaps(self):
        """The resize path holds every section itself; its own holds are
        legal and the new table comes up free."""
        t = SectionLockTable(2)
        secs = t.begin_rebalance([0, 1])
        assert secs == [0, 1]
        t.resize(4)
        assert t.n_sections == 4
        assert t.held_sections() == {}
        with t.locked(3):
            pass

    def test_release_without_acquire_raises(self):
        t = SectionLockTable(4)
        with pytest.raises(LockDisciplineError):
            t.release(2)

    def test_acquire_rechecks_flag_after_winning_lock(self):
        """TOCTOU regression (real threads): a writer that passes the
        flag check before ``begin_rebalance`` flags the section must NOT
        end up inside the window — it backs off and waits.  Replayed
        deterministically in tests/test_racecheck.py; here the fixed
        table is hammered with the adversarial timing for good measure."""
        t = SectionLockTable(2)
        inside = []

        secs = t.begin_rebalance([0])

        def writer():
            t.acquire(0)  # must block until end_rebalance
            owner, count = t.holder(0)
            inside.append((owner, count))
            t.release(0)

        th = threading.Thread(target=writer)
        th.start()
        th.join(timeout=0.2)
        assert inside == []  # writer held out of the claimed window
        t.end_rebalance(secs)
        th.join(timeout=2)
        assert len(inside) == 1 and inside[0][1] == 1


class TestConcurrentWriters:
    @pytest.mark.parametrize("n_threads", [2, 4])
    def test_no_lost_updates_disjoint_vertices(self, n_threads):
        """Each thread owns a disjoint vertex set; all edges must land."""
        nv = 64
        per_thread = 400
        g = DGAP(DGAPConfig(
            init_vertices=nv, init_edges=n_threads * per_thread + 512,
            segment_slots=64, thread_safe=True,
        ))
        errors = []

        def writer(tid):
            try:
                for i in range(per_thread):
                    src = (tid + n_threads * (i % (nv // n_threads))) % nv
                    g.insert_edge(src, (i * 7 + tid) % nv, thread_id=tid)
            except Exception as e:  # pragma: no cover - failure reporting
                errors.append(e)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert g.num_edges == n_threads * per_thread

    def test_structure_valid_after_contended_writes(self):
        """Writers hammer the same vertices; PMA invariants must survive."""
        nv = 16
        g = DGAP(DGAPConfig(
            init_vertices=nv, init_edges=4096, segment_slots=64, thread_safe=True,
        ))
        n_threads, per_thread = 4, 300
        barrier = threading.Barrier(n_threads)
        errors = []

        def writer(tid):
            try:
                barrier.wait()
                for i in range(per_thread):
                    g.insert_edge(i % nv, (i + tid) % nv, thread_id=tid)
            except Exception as e:  # pragma: no cover
                errors.append(e)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert g.num_edges == n_threads * per_thread

        # structural integrity: dense increasing pivots, contiguous runs
        slots = g.ea.slots
        ppos = np.flatnonzero(slots < 0)
        vids = -slots[ppos].astype(np.int64) - 1
        np.testing.assert_array_equal(vids, np.arange(nv))
        total = int(g.va.degrees().sum())
        assert total == n_threads * per_thread

    def test_readers_see_consistent_snapshots_during_writes(self):
        nv = 32
        g = DGAP(DGAPConfig(
            init_vertices=nv, init_edges=8192, segment_slots=64, thread_safe=True,
        ))
        g.insert_edges([(i % nv, (i * 3) % nv) for i in range(500)])
        stop = threading.Event()
        failures = []

        def writer():
            i = 0
            while not stop.is_set():
                g.insert_edge(i % nv, (i * 5) % nv, thread_id=0)
                i += 1

        def reader():
            try:
                for _ in range(30):
                    with g.consistent_view() as snap:
                        indptr, dsts = snap.to_csr()
                        if indptr[-1] != snap.num_edges + np.count_nonzero(
                            snap.degree_t[: snap.num_vertices]
                            - snap.live_t[: snap.num_vertices]
                        ):
                            # degree_t counts tombstone slots; none here
                            if indptr[-1] != snap.num_edges:
                                failures.append((int(indptr[-1]), snap.num_edges))
            except Exception as e:  # pragma: no cover
                failures.append(e)

        wt = threading.Thread(target=writer)
        rt = threading.Thread(target=reader)
        wt.start()
        rt.start()
        rt.join()
        stop.set()
        wt.join()
        assert not failures
