"""Unit tests for pools, regions, allocators and PMDK-style transactions."""

import numpy as np
import pytest

from repro.errors import OutOfPMemError, PMemError, PoolLayoutError, TransactionError
from repro.pmem import (
    DRAM,
    OPTANE_ADR,
    CrashInjector,
    FreeListAllocator,
    PMemPool,
    Region,
    TransactionManager,
)
from repro.errors import SimulatedCrash


@pytest.fixture
def pool():
    return PMemPool(1 << 20)


class TestPool:
    def test_alloc_array_roundtrip(self, pool):
        r = pool.alloc_array("a", np.int64, 100, initial=0)
        r.write_slice(0, np.arange(100), persist=True)
        np.testing.assert_array_equal(pool.get_array("a").view, np.arange(100))

    def test_duplicate_root_rejected(self, pool):
        pool.alloc_array("a", np.int32, 4)
        with pytest.raises(PoolLayoutError):
            pool.alloc_array("a", np.int32, 4)

    def test_missing_root_rejected(self, pool):
        with pytest.raises(PoolLayoutError):
            pool.get_array("nope")

    def test_root_slots_survive_crash(self, pool):
        pool.write_root(3, 0xDEADBEEF)
        pool.crash()
        assert pool.read_root(3) == 0xDEADBEEF

    def test_root_slot_bounds(self, pool):
        with pytest.raises(PoolLayoutError):
            pool.read_root(64)
        with pytest.raises(PoolLayoutError):
            pool.write_root(-1, 0)

    def test_exhaustion(self):
        small = PMemPool(64 * 1024)
        with pytest.raises(OutOfPMemError):
            small.alloc_array("big", np.int64, 1 << 20)

    def test_alloc_survives_crash(self, pool):
        """The bump cursor is persistent: post-crash allocs don't overlap."""
        a = pool.alloc_array("a", np.int8, 1000, initial=7)
        pool.crash()
        b = pool.alloc_array("b", np.int8, 1000, initial=9)
        assert b.offset >= a.offset + 1000
        assert int(a.view[0]) == 7

    def test_rename_and_drop(self, pool):
        pool.alloc_array("a", np.int32, 4)
        pool.rename_array("a", "b")
        assert pool.has_array("b") and not pool.has_array("a")
        pool.drop_array("b")
        assert not pool.has_array("b")


class TestRegion:
    def test_bounds_checked(self, pool):
        r = pool.alloc_array("r", np.int32, 10)
        with pytest.raises(PMemError):
            r.write(10, 1)
        with pytest.raises(PMemError):
            r.read_slice(8, 3)

    def test_scalar_write_read(self, pool):
        r = pool.alloc_array("r", np.int32, 10, initial=0)
        r.write(3, -77, persist=True)
        assert r.read(3) == -77

    def test_view_is_readonly(self, pool):
        r = pool.alloc_array("r", np.int32, 10, initial=0)
        with pytest.raises(ValueError):
            r.view[0] = 1

    def test_subregion_aliases(self, pool):
        r = pool.alloc_array("r", np.int64, 64, initial=0)
        sub = r.subregion(8, 8)
        sub.write(0, 123, persist=True)
        assert r.view[8] == 123

    def test_nt_write_slice_durable(self, pool):
        r = pool.alloc_array("r", np.int32, 100, initial=0)
        r.nt_write_slice(10, np.full(50, 6, dtype=np.int32))
        pool.device.sfence()
        pool.crash()
        assert (pool.get_array("r").view[10:60] == 6).all()

    def test_payload_accounting(self, pool):
        before = pool.stats.payload_bytes
        r = pool.alloc_array("r", np.int32, 10, initial=0)
        base = pool.stats.payload_bytes
        r.write(0, 1, payload=4)
        assert pool.stats.payload_bytes - base == 4


class TestFreeList:
    def test_alloc_free_reuse(self, pool):
        fl = FreeListAllocator(pool.allocator, 256)
        a = fl.alloc()
        b = fl.alloc()
        assert a != b
        fl.free(a)
        c = fl.alloc()
        assert c == a
        assert fl.allocated_blocks == 2

    def test_block_size_rounds_to_line(self, pool):
        fl = FreeListAllocator(pool.allocator, 100)
        assert fl.block_bytes == 128


class TestTransactions:
    def test_commit_applies(self, pool):
        mgr = TransactionManager(pool)
        r = pool.alloc_array("d", np.int64, 8, initial=0)
        with mgr.tx() as t:
            t.add_region(r, 0, 2)
            r.write(0, 10, persist=True)
            r.write(1, 20, persist=True)
        assert list(r.view[:2]) == [10, 20]

    def test_abort_on_exception_rolls_back(self, pool):
        mgr = TransactionManager(pool)
        r = pool.alloc_array("d", np.int64, 8, initial=5)
        with pytest.raises(RuntimeError):
            with mgr.tx() as t:
                t.add_region(r, 0, 4)
                r.write_slice(0, [1, 2, 3, 4], persist=True)
                raise RuntimeError("boom")
        assert list(r.view[:4]) == [5, 5, 5, 5]

    def test_crash_mid_tx_rolls_back_on_recover(self, pool):
        inj = CrashInjector()
        pool.device.injector = inj
        mgr = TransactionManager(pool)
        r = pool.alloc_array("d", np.int64, 8, initial=1)

        inj.arm(1000000)  # placeholder; will re-arm below
        inj.disarm()
        try:
            with mgr.tx() as t:
                t.add_region(r, 0, 4)
                r.write(0, 99, persist=True)
                inj.arm(1, "store")
                r.write(1, 99, persist=True)  # crashes at the store
        except SimulatedCrash:
            pass
        assert mgr.recover() is True
        assert list(r.view[:4]) == [1, 1, 1, 1]

    def test_recover_idempotent(self, pool):
        mgr = TransactionManager(pool)
        assert mgr.recover() is False
        assert mgr.recover() is False

    def test_committed_tx_survives_crash(self, pool):
        mgr = TransactionManager(pool)
        r = pool.alloc_array("d", np.int64, 8, initial=0)
        with mgr.tx() as t:
            t.add_region(r, 0, 1)
            r.write(0, 42, persist=True)
        pool.crash()
        assert mgr.recover() is False
        assert pool.get_array("d").view[0] == 42

    def test_add_outside_tx_rejected(self, pool):
        mgr = TransactionManager(pool)
        t = mgr.tx()
        mgr._active = None
        with pytest.raises(TransactionError):
            t.add(0, 8)

    def test_nested_tx_rejected(self, pool):
        mgr = TransactionManager(pool)
        with mgr.tx():
            with pytest.raises(TransactionError):
                mgr.tx()

    def test_journal_overflow(self, pool):
        mgr = TransactionManager(pool, capacity=128)
        r = pool.alloc_array("d", np.int64, 64, initial=0)
        with pytest.raises(TransactionError):
            with mgr.tx() as t:
                t.add_region(r, 0, 64)

    def test_tx_is_much_more_expensive_than_raw(self):
        """Fig. 1(b): transactions add substantial overhead on PM."""
        raw = PMemPool(1 << 20, profile=OPTANE_ADR)
        r1 = raw.alloc_array("d", np.int64, 512, initial=0)
        base = raw.stats.modeled_ns
        for i in range(256):
            r1.write(i, i, persist=True)
        raw_ns = raw.stats.modeled_ns - base

        txp = PMemPool(1 << 20, profile=OPTANE_ADR)
        mgr = TransactionManager(txp)
        r2 = txp.alloc_array("d", np.int64, 512, initial=0)
        base = txp.stats.modeled_ns
        for i in range(256):
            with mgr.tx() as t:
                t.add_region(r2, i, 1)
                r2.write(i, i, persist=True)
        tx_ns = txp.stats.modeled_ns - base
        assert tx_ns > 2.5 * raw_ns
