"""Batched vs per-edge equivalence for the whole mutation pipeline.

The batched pipeline's core claim (ISSUE acceptance criterion): inserting
an :class:`EdgeBatch` is bit-equivalent — graph contents *and* modeled PM
media bytes — to inserting the same edges one at a time.

For DGAP the batch may *reorder* edges across sections (never within a
source vertex), so the exact contract is: after growing the vertex space
to the batch's maximum upfront (which ``_insert_batch`` does first), the
batched insert produces the same persistent state and the same integer
``PMemStats`` — stores, flushes by class, fences, media bytes — as
replaying ``insert_edge`` one edge at a time in the order the batch
recorded in ``last_batch_order``.  Against the *original* stream order
the graph contents still match exactly; only the flush-classification
mix (and hence modeled ns) may differ, because flush cost is inherently
order-dependent on the device.

The baseline systems don't reorder, so for them batched == per-edge in
stream order, counters and all.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DGAP, DGAPConfig
from repro.pmem import CrashInjector
from repro.bench.harness import build_system
from repro.core.batch import EdgeBatch
from repro.errors import SimulatedCrash

INT_STATS = (
    "stores",
    "stored_bytes",
    "payload_bytes",
    "flushes",
    "flushed_lines",
    "flushed_bytes",
    "seq_flushes",
    "rnd_flushes",
    "inplace_flushes",
    "media_bytes",
    "fences",
    "ntstores",
    "ntstored_bytes",
    "seq_read_bytes",
    "rnd_reads",
)

common = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

batches = st.lists(
    st.tuples(st.integers(0, 47), st.integers(0, 47), st.booleans()),
    min_size=1,
    max_size=400,
)


def dgap_stats(g):
    return {k: getattr(g.pool.stats, k) for k in INT_STATS}


def graph_sig(g):
    return {
        v: sorted(g.out_neighbors(v).tolist()) for v in range(g.num_vertices)
    }


def _to_batch(triples):
    arr = np.asarray(triples, dtype=np.int64)
    return EdgeBatch(arr[:, 0], arr[:, 1], arr[:, 2].astype(bool))


CFG = dict(init_vertices=16, init_edges=64)


class TestDGAPEquivalence:
    @given(batches)
    @common
    def test_batched_equals_replay_in_recorded_order(self, triples):
        batch = _to_batch(triples)
        a = DGAP(DGAPConfig(**CFG))
        n = a.insert_edges(batch)
        assert n == len(batch)
        order = a.last_batch_order
        np.testing.assert_array_equal(np.sort(order), np.arange(len(batch)))

        b = DGAP(DGAPConfig(**CFG))
        if batch.max_vertex() >= b.va.num_vertices:
            b.insert_vertex(batch.max_vertex())
        for i in order.tolist():
            b.insert_edge(int(batch.src[i]), int(batch.dst[i]),
                          tombstone=bool(batch.tombstone[i]))

        assert graph_sig(a) == graph_sig(b)
        assert dgap_stats(a) == dgap_stats(b)  # includes media_bytes
        assert a.pool.stats.modeled_ns == pytest.approx(
            b.pool.stats.modeled_ns, rel=1e-9
        )
        a.check_invariants()
        b.check_invariants()

    @given(batches)
    @common
    def test_batched_equals_stream_order_on_graph_contents(self, triples):
        batch = _to_batch(triples)
        a = DGAP(DGAPConfig(**CFG))
        a.insert_edges(batch)
        c = DGAP(DGAPConfig(**CFG))
        for s, d, t in triples:
            c.insert_edge(s, d, tombstone=bool(t))
        assert graph_sig(a) == graph_sig(c)
        assert a.num_edges == c.num_edges

    def test_per_source_order_is_preserved(self):
        # within one source, batch insertion must keep stream order
        # (neighbor lists are append-ordered until a rebalance sorts them)
        g = DGAP(DGAPConfig(**CFG))
        srcs = np.zeros(20, dtype=np.int64)
        dsts = np.arange(20, dtype=np.int64)[::-1].copy()
        g.insert_edges(EdgeBatch(srcs, dsts))
        h = DGAP(DGAPConfig(**CFG))
        for d in dsts.tolist():
            h.insert_edge(0, int(d))
        assert g.out_neighbors(0).tolist() == h.out_neighbors(0).tolist()

    def test_chunked_insert_counts_all_edges(self):
        rng = np.random.default_rng(0)
        arr = rng.integers(0, 40, size=(333, 2)).astype(np.int64)
        g = DGAP(DGAPConfig(**CFG))
        assert g.insert_edges(arr, batch_size=64) == 333

    def test_tombstones_count_as_accepted(self):
        g = DGAP(DGAPConfig(**CFG))
        b = EdgeBatch(
            np.array([1, 1, 1]), np.array([2, 2, 3]),
            np.array([False, True, False]),
        )
        assert g.insert_edges(b) == 3
        assert g.out_neighbors(1).tolist() == [3]


BASELINES = ("graphone", "llama", "xpgraph", "bal")


class TestBaselineEquivalence:
    @pytest.mark.parametrize("name", BASELINES)
    def test_batched_equals_per_edge(self, name):
        rng = np.random.default_rng(13)
        ne = 3000
        edges = rng.integers(0, 64, size=(ne, 2)).astype(np.int64)

        a = build_system(name, 64, ne)
        a.insert_edges(edges, batch_size=None)
        b = build_system(name, 64, ne)
        for s, d in edges.tolist():
            b.insert_edge(s, d)

        assert a.modeled_insert_ns() == pytest.approx(b.modeled_insert_ns(), rel=1e-9)
        assert a.pm_media_bytes() == b.pm_media_bytes()
        for da, db in zip(a._devices(), b._devices()):
            sa = {k: getattr(da.stats, k) for k in INT_STATS}
            sb = {k: getattr(db.stats, k) for k in INT_STATS}
            assert sa == sb
        pa, da_ = a.analysis_view()._materialize_out()
        pb, db_ = b.analysis_view()._materialize_out()
        for v in range(64):
            assert sorted(da_[pa[v] : pa[v + 1]].tolist()) == sorted(
                db_[pb[v] : pb[v + 1]].tolist()
            )

    @pytest.mark.parametrize("name", BASELINES)
    def test_chunking_does_not_change_state(self, name):
        rng = np.random.default_rng(29)
        ne = 2000
        edges = rng.integers(0, 48, size=(ne, 2)).astype(np.int64)
        a = build_system(name, 48, ne)
        a.insert_edges(edges, batch_size=None)
        b = build_system(name, 48, ne)
        b.insert_edges(edges, batch_size=77)
        assert a.modeled_insert_ns() == pytest.approx(b.modeled_insert_ns(), rel=1e-9)
        assert a.pm_media_bytes() == b.pm_media_bytes()


class TestMidBatchCrash:
    def _edges(self, n=600, nv=32, seed=3):
        rng = np.random.default_rng(seed)
        return rng.integers(0, nv, size=(n, 2)).astype(np.int64)

    @pytest.mark.parametrize("countdown", [1, 7, 50, 400, 2000])
    def test_crash_inside_batch_recovers_consistently(self, countdown):
        edges = self._edges()
        cfg = DGAPConfig(init_vertices=32, init_edges=128)
        inj = CrashInjector()
        g = DGAP(cfg, injector=inj)
        inj.arm(countdown, "store")
        try:
            g.insert_edges(edges)
            crashed = False
        except SimulatedCrash:
            crashed = True
        inj.disarm()
        if not crashed:
            return  # countdown beyond the batch's stores: nothing to test
        g2 = DGAP.open(g.pool, cfg)
        g2.check_invariants()
        # recovered state holds a subset of the batch (no invented edges,
        # no duplicates beyond the stream's own)
        want = {}
        for s, d in edges.tolist():
            want.setdefault(s, []).append(d)
        with g2.consistent_view() as snap:
            for v in range(32):
                got = sorted(snap.out_neighbors(v).tolist())
                assert _is_multisubset(got, sorted(want.get(v, []))), (v, got)
        # and the recovered graph keeps working
        n0 = g2.num_edges
        g2.insert_edges(self._edges(100, seed=4))
        assert g2.num_edges == n0 + 100
        g2.check_invariants()

    def test_crash_on_fence_recovers(self):
        edges = self._edges(400, seed=5)
        cfg = DGAPConfig(init_vertices=32, init_edges=128)
        inj = CrashInjector()
        g = DGAP(cfg, injector=inj)
        inj.arm(40, "fence")
        with pytest.raises(SimulatedCrash):
            g.insert_edges(edges)
        inj.disarm()
        g2 = DGAP.open(g.pool, cfg)
        g2.check_invariants()
        assert g2.num_edges <= 400


def _is_multisubset(sub, sup):
    it = iter(sup)
    for x in sub:
        for y in it:
            if y == x:
                break
            if y > x:
                return False
        else:
            return False
    return True
