"""Online serving layer: isolation, byte-identity, caching, error parity.

Four contracts (DESIGN.md §15):

* **Snapshot isolation** — a held :class:`~repro.serve.server.ServeView`
  never observes writes committed after its acquisition; a re-acquired
  view observes all of them (hypothesis interleavings, unsharded and
  sharded).
* **Byte-identity** — every served read equals a direct fresh-snapshot
  read of the same stream point, byte for byte (the twin runner).
* **Point-read caching** — ``DGAP.out_neighbors`` (and the server's
  ``acquire``) take a fresh snapshot only when the structure epoch
  moved; a read burst between writes pays one snapshot.
* **Error parity** — out-of-range point queries raise the same
  exception type with the same global-id message on ``DGAP`` and
  ``ShardedDGAP``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DGAP, DGAPConfig
from repro.analysis.view import ID_DTYPE
from repro.errors import VertexRangeError
from repro.serve import (
    QueryServer,
    ServeWorkloadConfig,
    ZipfianSampler,
    generate_workload,
    run_serve_workload,
)
from repro.serve.driver import SnapshotReader, _bytes_equal
from repro.sharding import ShardedDGAP

common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

NV = 24
SMALL = dict(init_vertices=NV, init_edges=256, segment_slots=64)


def small_graph(**overrides) -> DGAP:
    return DGAP(DGAPConfig(**{**SMALL, **overrides}))


def small_sharded(n=3, **overrides) -> ShardedDGAP:
    return ShardedDGAP(n, DGAPConfig(**{**SMALL, **overrides}))


def preload(g, n_edges=60, seed=3):
    rng = np.random.default_rng(seed)
    g.insert_edges(rng.integers(0, NV, size=(n_edges, 2)))


edge_lists = st.lists(
    st.tuples(st.integers(0, NV - 1), st.integers(0, NV - 1)),
    min_size=1,
    max_size=40,
)


# ---------------------------------------------------------------------------
# satellite: epoch-keyed point-read snapshot cache
# ---------------------------------------------------------------------------

class TestPointViewCache:
    def _spy(self, g):
        calls = []
        orig = g.consistent_view

        def counted():
            calls.append(1)
            return orig()

        g.consistent_view = counted
        return calls

    def test_read_burst_takes_one_snapshot(self):
        g = small_graph()
        preload(g)
        calls = self._spy(g)
        for v in range(NV):
            g.out_neighbors(v)
            g.out_neighbors(v)
        assert len(calls) == 1, "unchanged epoch must not re-snapshot"
        g.shutdown()

    def test_write_invalidates_point_view(self):
        g = small_graph()
        preload(g)
        calls = self._spy(g)
        before = g.out_neighbors(1)
        assert len(calls) == 1
        g.insert_edge(1, 5)
        after = g.out_neighbors(1)
        assert len(calls) == 2, "epoch moved: must take a fresh snapshot"
        assert after.size == before.size + 1 and after[-1] == 5
        g.shutdown()

    def test_out_neighbors_checks_range(self):
        g = small_graph()
        with pytest.raises(VertexRangeError):
            g.out_neighbors(-1)
        with pytest.raises(VertexRangeError):
            g.out_neighbors(NV)
        g.shutdown()

    def test_shutdown_releases_point_view(self):
        g = small_graph()
        preload(g)
        g.out_neighbors(0)
        g.shutdown()  # must not raise "active analysis snapshots"


# ---------------------------------------------------------------------------
# satellite: out-of-range error parity, unsharded vs sharded
# ---------------------------------------------------------------------------

class TestErrorParity:
    @pytest.mark.parametrize("bad", [-1, NV, NV + 7])
    def test_same_exception_and_message(self, bad):
        g = small_graph()
        s = small_sharded()
        messages = {}
        for name, host in (("dgap", g), ("sharded", s)):
            for query in (host.out_degree, host.out_neighbors):
                with pytest.raises(VertexRangeError) as exc:
                    query(bad)
                messages.setdefault(name, set()).add(str(exc.value))
        assert messages["dgap"] == messages["sharded"]
        (msg,) = messages["dgap"]
        assert f"vertex {bad} " in msg and f"[0, {NV})" in msg
        g.shutdown()
        s.shutdown()

    def test_serve_view_matches(self):
        g = small_graph()
        preload(g)
        view = QueryServer(g).acquire()
        with pytest.raises(VertexRangeError) as served:
            view.neighbors(NV)
        with pytest.raises(VertexRangeError) as direct:
            g.out_neighbors(NV)
        assert str(served.value) == str(direct.value)
        g.shutdown()


# ---------------------------------------------------------------------------
# satellite: snapshot isolation under interleaved writes
# ---------------------------------------------------------------------------

def _freeze(view):
    return (view.out_indptr.tobytes(), view.out_dsts.tobytes())


def _fresh_out_csr(graph):
    """Out-CSR straight from fresh snapshots (the trusted read path)."""
    if hasattr(graph, "shards"):
        return graph.global_csr()[0]
    with graph.consistent_view() as snap:
        indptr, dsts = snap.to_csr()
    return np.asarray(indptr), np.asarray(dsts)


def _run_isolation(graph, rounds, deletions):
    server = QueryServer(graph)
    v1 = server.acquire()
    pinned = _freeze(v1)
    total_before = int(v1.out_indptr[-1])

    live = []
    wrote = 0
    for edges in rounds:
        batch = np.asarray(edges, dtype=np.int64)
        graph.insert_edges(batch)
        live.extend(map(tuple, edges))
        wrote += len(edges)
        # deletes target edges this stream inserted, so they always
        # cancel a live occurrence
        for idx in deletions:
            if live:
                s, d = live.pop(idx % len(live))
                graph.delete_edge(s, d)
        deletions = deletions[len(deletions) // 2 :]

    # the held view is frozen at its epoch: same bytes, same totals
    assert _freeze(v1) == pinned
    assert int(v1.out_indptr[-1]) == total_before

    # a re-acquired view observes every committed write
    v2 = server.acquire()
    assert wrote and v2.epoch != v1.epoch
    ref_ip, ref_ds = _fresh_out_csr(graph)
    assert v2.out_indptr.tobytes() == np.asarray(ref_ip).tobytes()
    assert v2.out_dsts.tobytes() == np.asarray(ref_ds).tobytes()
    # net live count: preloaded edges plus the stream's surviving inserts
    assert int(v2.out_indptr[-1]) == len(live) + total_before


@common
@given(
    rounds=st.lists(edge_lists, min_size=1, max_size=4),
    deletions=st.lists(st.integers(0, 10_000), max_size=10),
)
def test_snapshot_isolation_unsharded(rounds, deletions):
    g = small_graph()
    preload(g)
    try:
        _run_isolation(g, rounds, deletions)
    finally:
        g.shutdown()


@common
@given(
    rounds=st.lists(edge_lists, min_size=1, max_size=4),
    deletions=st.lists(st.integers(0, 10_000), max_size=10),
)
def test_snapshot_isolation_sharded(rounds, deletions):
    s = small_sharded()
    preload(s)
    _run_isolation(s, rounds, deletions)


# ---------------------------------------------------------------------------
# tentpole: workload generator
# ---------------------------------------------------------------------------

class TestWorkload:
    def test_deterministic(self):
        cfg = ServeWorkloadConfig(n_ops=300, seed=11)
        a = generate_workload(50, cfg)
        b = generate_workload(50, cfg)
        assert len(a) == len(b) == 300
        for x, y in zip(a, b):
            assert x[0] == y[0]
            if x[0] == "write":
                assert x[1].src.tobytes() == y[1].src.tobytes()
                assert x[1].dst.tobytes() == y[1].dst.tobytes()
                assert x[1].tombstone.tobytes() == y[1].tombstone.tobytes()
            else:
                assert x == y

    def test_zipf_skew_and_bounds(self):
        rng = np.random.default_rng(0)
        z = ZipfianSampler(1000, 0.99, rng)
        draws = z.sample(rng, 20_000)
        assert draws.min() >= 0 and draws.max() < 1000
        counts = np.bincount(draws, minlength=1000)
        # the hottest key dwarfs the median under theta=0.99 skew
        assert counts.max() > 20 * max(np.median(counts), 1)

    def test_deletes_only_live_edges(self):
        cfg = ServeWorkloadConfig(n_ops=400, read_fraction=0.5, seed=2)
        ops = generate_workload(40, cfg)
        live = {}
        saw_delete = False
        for op in ops:
            if op[0] != "write":
                continue
            batch = op[1]
            for s, d, t in zip(batch.src, batch.dst, batch.tombstone):
                key = (int(s), int(d))
                if t:
                    saw_delete = True
                    assert live.get(key, 0) > 0, "tombstone for a dead edge"
                    live[key] -= 1
                else:
                    live[key] = live.get(key, 0) + 1
        assert saw_delete

    def test_read_mix_covers_all_classes(self):
        ops = generate_workload(60, ServeWorkloadConfig(n_ops=800, seed=4))
        kinds = {op[0] for op in ops}
        assert kinds == {
            "degree", "neighbors", "edge_exists", "k_hop", "top_k_degree", "write",
        }


# ---------------------------------------------------------------------------
# tentpole: served reads are byte-identical to fresh snapshot reads
# ---------------------------------------------------------------------------

def _twin(graph, nv, mode="closed"):
    cfg = ServeWorkloadConfig(n_ops=250, seed=5, n_clients=4, mode=mode)
    preload(graph, n_edges=80)
    report = run_serve_workload(graph, generate_workload(nv, cfg), cfg, twin_check=True)
    return report


class TestTwinIdentity:
    def test_unsharded(self):
        g = small_graph()
        report = _twin(g, NV)
        assert report.identity_checked and report.identity_ok
        assert report.reads and report.writes
        assert report.refreshes + report.reuses == report.reads
        g.shutdown()

    def test_sharded(self):
        s = small_sharded()
        report = _twin(s, NV)
        assert report.identity_ok
        assert report.refreshes + report.reuses == report.reads

    def test_open_loop(self):
        g = small_graph()
        report = _twin(g, NV, mode="open")
        assert report.identity_ok
        assert report.mode == "open"
        assert report.makespan_ns > 0
        g.shutdown()

    def test_stats_report_p99(self):
        g = small_graph()
        report = _twin(g, NV)
        stats = report.stats()
        assert stats, "no latency classes recorded"
        for cls, dist in stats.items():
            assert "p50_us" in dist and "p99_us" in dist, cls
        assert "write" in stats
        g.shutdown()

    def test_mismatch_detection(self):
        """The twin comparator must actually be able to fail."""
        assert not _bytes_equal(
            np.array([1, 2], dtype=np.int32), np.array([1, 2], dtype=np.int64)
        )
        assert not _bytes_equal((1, 2), (1, 3))
        assert _bytes_equal(np.array([3], dtype=ID_DTYPE), np.array([3], dtype=ID_DTYPE))


# ---------------------------------------------------------------------------
# tentpole: view reuse and query surface details
# ---------------------------------------------------------------------------

class TestQueryServer:
    def test_reuse_without_writes(self):
        g = small_graph()
        preload(g)
        server = QueryServer(g)
        views = {id(server.acquire()) for _ in range(10)}
        assert len(views) == 1
        assert server.refreshes == 1 and server.reuses == 9
        g.shutdown()

    def test_refresh_only_on_epoch_move(self):
        g = small_graph()
        preload(g)
        server = QueryServer(g)
        v1 = server.acquire()
        g.insert_edge(0, 1)
        v2 = server.acquire()
        v3 = server.acquire()
        assert v1 is not v2 and v2 is v3
        assert server.refreshes == 2 and server.reuses == 1
        g.shutdown()

    def test_k_hop_levels(self):
        g = small_graph()
        # path 0 -> 1 -> 2 -> 3 plus a cycle edge back to 0
        for s, d in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            g.insert_edge(s, d)
        view = QueryServer(g).acquire()
        np.testing.assert_array_equal(view.k_hop(0, 1), [1])
        np.testing.assert_array_equal(view.k_hop(0, 2), [1, 2])
        np.testing.assert_array_equal(view.k_hop(0, 4), [1, 2, 3])  # 0 excluded
        assert view.k_hop(0, 4).dtype == ID_DTYPE
        g.shutdown()

    def test_top_k_tie_break_by_id(self):
        g = small_graph()
        for s, d in [(5, 1), (5, 2), (3, 1), (3, 2), (7, 1)]:
            g.insert_edge(s, d)
        ids, degs = QueryServer(g).acquire().top_k_degree(3)
        np.testing.assert_array_equal(ids, [3, 5, 7])
        np.testing.assert_array_equal(degs, [2, 2, 1])
        g.shutdown()

    def test_edge_exists(self):
        g = small_graph()
        g.insert_edge(4, 9)
        view = QueryServer(g).acquire()
        assert view.edge_exists(4, 9) is True
        assert view.edge_exists(4, 8) is False
        assert view.edge_exists(9, 4) is False
        g.shutdown()

    def test_obs_spans_per_query_class(self):
        from repro.obs import Tracer, tracing

        g = small_graph()
        preload(g)
        cfg = ServeWorkloadConfig(n_ops=200, seed=9, n_clients=2)
        t = Tracer()
        with tracing(t):
            run_serve_workload(g, generate_workload(NV, cfg), cfg)
        for name in ("degree", "neighbors", "edge_exists", "k_hop",
                     "top_k_degree", "write"):
            found = t.find(f"serve_{name}")
            assert found, f"no serve_{name} spans recorded"
            assert all("modeled_latency_ns" in s.attrs for s in found), name
        g.shutdown()

    def test_snapshot_reader_matches_served_after_delete(self):
        g = small_graph()
        g.insert_edges([(2, 3), (2, 4), (2, 3)])
        g.delete_edge(2, 3)
        server = QueryServer(g)
        direct = SnapshotReader(g)
        view = server.acquire()
        assert view.degree(2) == direct.degree(2) == 2
        assert view.neighbors(2).tobytes() == direct.neighbors(2).tobytes()
        g.shutdown()
