"""Incremental analytics views: epoch tracking, cache identity, dtypes.

The contract under test (DESIGN.md §7): the epoch-versioned view cache
must be *invisible* — every cached materialization is element-identical
to a from-scratch rebuild of the same snapshot, kernel outputs and
modeled seconds are bit-identical cached vs uncached, and the counters
prove the cache really is incremental (it skips clean sections).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DGAPConfig
from repro.analysis.view import ID_DTYPE, INDPTR_DTYPE, build_in_csr
from repro.analysis.viewcache import DGAPViewCache
from repro.baselines import SYSTEMS, DGAPSystem, StaticCSR
from repro.bench.harness import SOURCE_KERNELS
from repro.algorithms import KERNELS

common = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

NV = 24
#: small geometry from the existing property tests: a few hundred edges
#: force merges, rebalances and at least one resize.
SMALL = dict(init_vertices=NV, init_edges=256, segment_slots=64)


def small_system(**overrides) -> DGAPSystem:
    cfg = DGAPConfig(**{**SMALL, **overrides})
    return DGAPSystem(cfg.init_vertices, cfg.init_edges, config=cfg)


def scratch_reference(system):
    """(out, in) CSR rebuilt from scratch off a fresh snapshot."""
    with system.graph.consistent_view() as snap:
        indptr, dsts = snap.to_csr()
    nv = system.graph.num_vertices
    return (np.asarray(indptr), np.asarray(dsts)), build_in_csr(
        np.asarray(indptr), np.asarray(dsts), nv
    )


def assert_view_matches_scratch(system, view):
    (ref_ip, ref_ds), (ref_iip, ref_isr) = scratch_reference(system)
    out_ip, out_ds = view.out_csr()
    in_ip, in_sr = view.in_csr()
    np.testing.assert_array_equal(out_ip, ref_ip)
    np.testing.assert_array_equal(out_ds, ref_ds)
    np.testing.assert_array_equal(in_ip, ref_iip)
    np.testing.assert_array_equal(in_sr, ref_isr)
    assert out_ip.dtype == ref_ip.dtype and out_ds.dtype == ref_ds.dtype
    assert in_ip.dtype == ref_iip.dtype and in_sr.dtype == ref_isr.dtype


# -- the tentpole property: cache == scratch under arbitrary histories ----

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("ins"), st.integers(0, NV - 1), st.integers(0, NV - 1)),
        st.tuples(st.just("del"), st.integers(0, NV - 1), st.integers(0, NV - 1)),
        st.tuples(
            st.just("batch"),
            st.lists(
                st.tuples(st.integers(0, NV - 1), st.integers(0, NV - 1)),
                min_size=1,
                max_size=40,
            ),
        ),
        st.tuples(st.just("analyze")),
    ),
    min_size=1,
    max_size=40,
)


class TestIncrementalViewProperty:
    @given(ops_strategy)
    @common
    def test_cached_view_identical_to_scratch(self, ops):
        """Arbitrary interleavings of inserts, deletes, batches and
        analysis rounds — enough volume on the small geometry to force
        merges, rebalance windows and resizes — never diverge the cached
        materialization from a from-scratch one (elements *and* dtypes).
        """
        system = small_system()
        for op in ops:
            if op[0] == "ins":
                system.graph.insert_edge(op[1], op[2])
            elif op[0] == "del":
                # deleting a missing edge is a no-op tombstone — legal
                system.graph.delete_edge(op[1], op[2])
            elif op[0] == "batch":
                system.insert_edges(np.array(op[1], dtype=np.int64))
            else:
                assert_view_matches_scratch(system, system.analysis_view())
        # always end with one analyze so every history is checked
        assert_view_matches_scratch(system, system.analysis_view())

    @given(ops_strategy)
    @common
    def test_second_view_cache_follows_first(self, ops):
        """A second, independent DGAPViewCache attached mid-history must
        agree too (epoch stamps are monotone, never cleared per-cache)."""
        system = small_system()
        late = None
        for i, op in enumerate(ops):
            if op[0] == "ins":
                system.graph.insert_edge(op[1], op[2])
            elif op[0] == "del":
                system.graph.delete_edge(op[1], op[2])
            elif op[0] == "batch":
                system.insert_edges(np.array(op[1], dtype=np.int64))
            else:
                system.analysis_view()
                if late is None:
                    late = DGAPViewCache(system.graph)
                with system.graph.consistent_view() as snap:
                    out, inn = late.materialize(snap)
        if late is not None:
            with system.graph.consistent_view() as snap:
                out, inn = late.materialize(snap)
            (ref_ip, ref_ds), (ref_iip, ref_isr) = scratch_reference(system)
            np.testing.assert_array_equal(out[0], ref_ip)
            np.testing.assert_array_equal(out[1], ref_ds)
            np.testing.assert_array_equal(inn[0], ref_iip)
            np.testing.assert_array_equal(inn[1], ref_isr)


# -- delete-heavy histories: tombstones and compaction sweeps --------------

#: each row inserts one edge and deletes its pair 1–2 times (a second
#: delete is an unmatched no-op tombstone), so every history is >50%
#: deletes — the regime the temporal expiry path lives in.
delete_heavy_ops = st.lists(
    st.tuples(
        st.integers(0, NV - 1),
        st.integers(0, NV - 1),
        st.integers(1, 2),  # deletes issued per insert
        st.booleans(),      # analyze right after this row
    ),
    min_size=4,
    max_size=30,
)


class TestDeleteHeavyHistories:
    @given(delete_heavy_ops, st.integers(0, 3))
    @common
    def test_cached_view_survives_delete_heavy_interleavings(self, rows, cmod):
        """Interleavings that are mostly deletions — matched tombstones,
        unmatched no-op tombstones, and periodic tombstone-merge
        compaction sweeps — never diverge the cached view from scratch."""
        system = small_system()
        n_ins = n_del = 0
        for i, (s, d, dels, analyze) in enumerate(rows):
            system.graph.insert_edge(s, d)
            n_ins += 1
            for _ in range(dels):
                system.graph.delete_edge(s, d)
                n_del += 1
            if analyze:
                assert_view_matches_scratch(system, system.analysis_view())
            if cmod and (i + 1) % (cmod + 1) == 0:
                system.graph.compact()
                assert_view_matches_scratch(system, system.analysis_view())
        system.graph.delete_edge(rows[0][0], rows[0][1])
        n_del += 1
        assert n_del > n_ins  # strictly delete-heavy, by construction
        assert_view_matches_scratch(system, system.analysis_view())

    @given(delete_heavy_ops)
    @common
    def test_batched_tombstones_match_scratch(self, rows):
        """The same delete-heavy histories applied as tombstone
        EdgeBatches (the temporal expiry path) instead of scalar ops."""
        from repro.core.batch import EdgeBatch

        system = small_system()
        for s, d, dels, analyze in rows:
            system.graph.insert_edge(s, d)
            src = np.full(dels, s, dtype=np.int64)
            dst = np.full(dels, d, dtype=np.int64)
            system.graph.insert_edges(
                EdgeBatch(src, dst, np.ones(dels, dtype=bool))
            )
            if analyze:
                assert_view_matches_scratch(system, system.analysis_view())
        if system.graph.tombstone_density() > 0:
            system.graph.compact()
        assert_view_matches_scratch(system, system.analysis_view())


# -- kernels: cached vs uncached bit-identity ------------------------------


class TestKernelIdentity:
    def test_outputs_and_modeled_seconds_bit_identical(self):
        rng = np.random.default_rng(7)
        edges = rng.integers(0, NV, size=(600, 2), dtype=np.int64)
        cached, scratch = small_system(), small_system()
        scratch.view_caching = False
        for part in np.array_split(edges, 3):
            cached.insert_edges(part)
            scratch.insert_edges(part)
            cached.finalize()
            scratch.finalize()
            for name, fn in KERNELS.items():
                vc, vs = cached.analysis_view(), scratch.analysis_view()
                vc.reset_clock()
                vs.reset_clock()
                args = (3,) if name in SOURCE_KERNELS else ()
                rc, rs = fn(vc, *args), fn(vs, *args)
                assert rc.tobytes() == rs.tobytes(), name
                assert rc.dtype == rs.dtype, name
                for threads in (1, 8, 16):
                    assert vc.seconds(threads) == vs.seconds(threads), name


# -- counters: the cache must actually be incremental ----------------------


class TestCounters:
    def build(self):
        # enough sections that one vertex's neighborhood is a strict
        # subset: 4096 slots / 128 = 32 sections
        system = small_system(init_vertices=64, init_edges=4096, segment_slots=128)
        rng = np.random.default_rng(3)
        edges = rng.integers(0, 64, size=(1200, 2), dtype=np.int64)
        system.insert_edges(edges)
        system.finalize()
        system.analysis_view()
        return system

    def test_unchanged_graph_is_a_whole_view_hit(self):
        system = self.build()
        c0 = system.view_counters()
        system.analysis_view()
        c1 = system.view_counters()
        assert c1["whole_view_hits"] == c0["whole_view_hits"] + 1
        assert c1["view_builds"] == c0["view_builds"]
        assert c1["sections_rebuilt"] == c0["sections_rebuilt"]
        assert c1["vertices_rebuilt"] == c0["vertices_rebuilt"]

    def test_localized_batch_rebuilds_dirty_sections_only(self):
        system = self.build()
        c0 = system.view_counters()
        batch = np.array([[5, 9], [5, 11], [5, 13]], dtype=np.int64)
        system.insert_edges(batch)
        system.finalize()
        view = system.analysis_view()
        c1 = system.view_counters()
        assert c1["incremental_builds"] == c0["incremental_builds"] + 1
        assert c1["full_rebuilds"] == c0["full_rebuilds"]
        d_secs = c1["sections_rebuilt"] - c0["sections_rebuilt"]
        assert 0 < d_secs < c1["sections_total"]
        assert c1["rows_reused"] > c0["rows_reused"]
        assert c1["delta_edges_merged"] > c0["delta_edges_merged"]
        assert_view_matches_scratch(system, view)


# -- aliasing: views never alias the persistent buffers --------------------


class TestAliasing:
    def make(self, caching):
        system = small_system()
        rng = np.random.default_rng(11)
        system.insert_edges(rng.integers(0, NV, size=(400, 2), dtype=np.int64))
        system.finalize()
        system.view_caching = caching
        return system

    @pytest.mark.parametrize("caching", [True, False])
    def test_view_arrays_do_not_alias_persistent_state(self, caching):
        """Pins the satellite decision to drop the defensive ``.copy()``
        in ``DGAPSystem._build_view``: ``to_csr`` (and the incremental
        cache) must hand out arrays that share no memory with the
        simulated PM buffer or the live slot array."""
        system = self.make(caching)
        view = system.analysis_view()
        indptr, dsts = view.out_csr()
        for persistent in (system.graph.pool.device.buf, system.graph.ea.slots):
            assert not np.shares_memory(dsts, persistent)
            assert not np.shares_memory(indptr, persistent)

    @pytest.mark.parametrize("caching", [True, False])
    def test_view_is_stable_under_later_mutations(self, caching):
        system = self.make(caching)
        view = system.analysis_view()
        indptr, dsts = view.out_csr()
        ip0, ds0 = indptr.copy(), dsts.copy()
        rng = np.random.default_rng(12)
        system.insert_edges(rng.integers(0, NV, size=(300, 2), dtype=np.int64))
        system.finalize()
        system.analysis_view()  # triggers a (possibly incremental) rebuild
        np.testing.assert_array_equal(indptr, ip0)
        np.testing.assert_array_equal(dsts, ds0)


# -- dtype standard across every system ------------------------------------


class TestDtypeStandard:
    def views(self):
        rng = np.random.default_rng(5)
        edges = rng.integers(0, 32, size=(300, 2), dtype=np.int64)
        for name, cls in SYSTEMS.items():
            system = cls(32, 400)
            system.insert_edges(edges)
            system.finalize()
            yield name, system.analysis_view()
        yield "csr", StaticCSR(32, edges).analysis_view()

    def test_csr_arrays_use_documented_dtypes(self):
        for name, view in self.views():
            out_ip, out_ds = view.out_csr()
            in_ip, in_sr = view.in_csr()
            assert out_ip.dtype == INDPTR_DTYPE, name
            assert in_ip.dtype == INDPTR_DTYPE, name
            assert out_ds.dtype == ID_DTYPE, name
            assert in_sr.dtype == ID_DTYPE, name
            # derived id arrays are intp: they are fancy-index operands
            assert view.out_src_ids().dtype == np.intp, name
            assert view.in_dst_ids().dtype == np.intp, name
            assert view.num_edges == out_ip[-1] == len(out_ds), name


# -- satellite: one shared multi_arange ------------------------------------


def test_multi_arange_single_implementation():
    from repro import nputil
    from repro.algorithms import common as algo_common
    from repro.core import snapshot as core_snapshot

    assert algo_common.multi_arange is nputil.multi_arange
    assert core_snapshot._multi_arange is nputil.multi_arange
    got = nputil.multi_arange(np.array([3, 10, 7]), np.array([2, 0, 3]))
    np.testing.assert_array_equal(got, [3, 4, 7, 8, 9])
