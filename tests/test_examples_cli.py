"""Smoke tests: every example script and CLI subcommand runs to completion."""

import os
import subprocess
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ENV = {**os.environ, "REPRO_SCALE": "0.1", "PYTHONPATH": os.path.join(ROOT, "src")}


def run(args, timeout=300):
    return subprocess.run(
        [sys.executable, *args], cwd=ROOT, env=ENV,
        capture_output=True, text=True, timeout=timeout,
    )


class TestExamples:
    @pytest.mark.parametrize(
        "script,needle",
        [
            ("examples/quickstart.py", "reopened from PM"),
            ("examples/cellular_hotspots.py", "collector restarted"),
            ("examples/crash_recovery_demo.py", "acknowledged edges intact"),
            ("examples/framework_comparison.py", "five systems"),
        ],
    )
    def test_example_runs(self, script, needle):
        res = run([script])
        assert res.returncode == 0, res.stderr[-2000:]
        assert needle in res.stdout


class TestCLI:
    def test_insert(self):
        res = run(["-m", "repro.bench", "insert", "--dataset", "citpatents", "--scale", "0.1"])
        assert res.returncode == 0, res.stderr[-2000:]
        assert "insert throughput" in res.stdout and "dgap" in res.stdout

    def test_analysis(self):
        res = run(["-m", "repro.bench", "analysis", "--dataset", "citpatents",
                   "--kernel", "bfs", "--scale", "0.1"])
        assert res.returncode == 0, res.stderr[-2000:]
        assert "BFS" in res.stdout and "vs CSR" in res.stdout

    def test_recovery(self):
        res = run(["-m", "repro.bench", "recovery", "--dataset", "citpatents", "--scale", "0.1"])
        assert res.returncode == 0, res.stderr[-2000:]
        assert "crash recovery" in res.stdout

    def test_ablation(self):
        res = run(["-m", "repro.bench", "ablation", "--scale", "0.05"])
        assert res.returncode == 0, res.stderr[-2000:]
        assert "no_el_ul_dp" in res.stdout

    def test_bad_dataset_rejected(self):
        res = run(["-m", "repro.bench", "insert", "--dataset", "nope"])
        assert res.returncode != 0
