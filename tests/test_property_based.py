"""Hypothesis property tests on the core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DGAP, DGAPConfig
from repro.core.encoding import decode_edge, decode_pivot, encode_edge, encode_pivot
from repro.core.pma_tree import DensityBounds, PMATree
from repro.core.snapshot import _apply_tombstones, _multi_arange
from repro.pmem import CACHE_LINE, PMemDevice

BOUNDS = DensityBounds(0.92, 0.70, 0.08, 0.30)

common = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 23), st.integers(0, 23)), min_size=0, max_size=300
)


class TestEncodingProperties:
    @given(st.integers(0, (1 << 30) - 2))
    @common
    def test_pivot_roundtrip(self, v):
        assert decode_pivot(encode_pivot(v)) == v

    @given(st.integers(0, (1 << 29) - 2), st.booleans())
    @common
    def test_edge_roundtrip(self, dst, tomb):
        assert decode_edge(encode_edge(dst, tomb)) == (dst, tomb)

    @given(st.integers(0, (1 << 29) - 2), st.integers(0, (1 << 29) - 2))
    @common
    def test_encodings_disjoint(self, a, b):
        # pivots negative, edges positive, gap zero: never collide
        assert encode_pivot(a) < 0 < encode_edge(b)


class TestPMATreeProperties:
    @given(st.integers(0, 63), st.integers(0, 6))
    @common
    def test_windows_nest(self, section, level):
        t = PMATree(64, 64, BOUNDS)
        lo1, hi1 = t.window_at(section, level)
        lo2, hi2 = t.window_at(section, min(level + 1, t.height))
        assert lo2 <= lo1 and hi1 <= hi2
        assert lo1 <= section < hi1

    @given(st.lists(st.integers(0, 64), min_size=16, max_size=16), st.integers(0, 15))
    @common
    def test_found_window_is_within_bound(self, occ, section):
        t = PMATree(16, 64, BOUNDS)
        occ = np.asarray(occ, dtype=np.int64)
        res = t.find_rebalance_window(occ, section)
        if res is not None:
            lo, hi, level = res
            assert occ[lo:hi].sum() / ((hi - lo) * 64) <= t.tau(level) + 1e-9
        else:
            assert t.needs_resize(occ)


class TestDeviceProperties:
    @given(st.data())
    @common
    def test_persisted_data_survives_crash(self, data):
        dev = PMemDevice(16 * 1024)
        n_ops = data.draw(st.integers(1, 20))
        persisted = {}
        for _ in range(n_ops):
            off = data.draw(st.integers(0, 255)) * CACHE_LINE
            val = data.draw(st.binary(min_size=1, max_size=16))
            dev.store(off, val)
            if data.draw(st.booleans()):
                dev.persist(off, len(val))
                persisted[off] = val
        dev.crash()
        for off, val in persisted.items():
            # the whole covering line persisted; the bytes must match the
            # last persisted value unless a later store to the same line
            # was also persisted (dict keeps last-per-offset anyway)
            assert bytes(dev.read(off, len(val))) == val


class TestSnapshotHelpers:
    @given(
        st.lists(st.integers(0, 1000), min_size=0, max_size=50),
        st.lists(st.integers(1, 30), min_size=0, max_size=50),
    )
    @common
    def test_multi_arange_matches_naive(self, starts, counts):
        n = min(len(starts), len(counts))
        s = np.asarray(starts[:n], dtype=np.int64)
        c = np.asarray(counts[:n], dtype=np.int64)
        got = _multi_arange(s, c)
        want = np.concatenate(
            [np.arange(a, a + k) for a, k in zip(s, c)] or [np.empty(0, np.int64)]
        )
        np.testing.assert_array_equal(got, want)

    @given(st.lists(st.tuples(st.integers(0, 5), st.booleans()), max_size=40))
    @common
    def test_tombstones_cancel_exactly_one_earlier(self, seq):
        dsts = np.array([d for d, _ in seq], dtype=np.int64)
        tomb = np.array([t for _, t in seq], dtype=bool)
        out = _apply_tombstones(dsts, tomb)
        # reference: simple stack simulation
        stacks = {}
        keep = []
        for i, (d, t) in enumerate(seq):
            if t:
                if stacks.get(d):
                    keep[stacks[d].pop()] = None
            else:
                keep.append(d)
                stacks.setdefault(d, []).append(len(keep) - 1)
        want = [d for d in keep if d is not None]
        assert out.tolist() == want


class TestDGAPProperties:
    @given(edge_lists)
    @common
    def test_insertion_order_always_preserved(self, edges):
        g = DGAP(DGAPConfig(init_vertices=24, init_edges=256, segment_slots=64))
        ref = {}
        for u, w in edges:
            g.insert_edge(u, w)
            ref.setdefault(u, []).append(w)
        with g.consistent_view() as snap:
            for v in range(24):
                assert list(snap.out_neighbors(v)) == ref.get(v, [])

    @given(edge_lists)
    @common
    def test_pma_invariants_after_any_workload(self, edges):
        g = DGAP(DGAPConfig(init_vertices=24, init_edges=256, segment_slots=64))
        g.insert_edges(edges)
        slots = g.ea.slots
        # pivots strictly increasing and dense
        ppos = np.flatnonzero(slots < 0)
        vids = -slots[ppos].astype(np.int64) - 1
        np.testing.assert_array_equal(vids, np.arange(g.num_vertices))
        # runs contiguous: between a pivot and its run end there are no gaps
        va = g.va
        for v in range(g.num_vertices):
            st_, ad = int(va.start[v]), int(va.array_degree[v])
            assert (slots[st_ : st_ + ad] > 0).all()
            end = int(ppos[v + 1]) if v + 1 < g.num_vertices else g.ea.capacity
            assert (slots[st_ + ad : end] == 0).all()
        # occupancy bookkeeping agrees with the array
        g.ea.recount_all()
        seg = g.ea.seg_occ.copy()
        assert seg.sum() == np.count_nonzero(slots)

    @given(edge_lists)
    @common
    def test_degree_cache_totals(self, edges):
        g = DGAP(DGAPConfig(init_vertices=24, init_edges=256, segment_slots=64))
        g.insert_edges(edges)
        with g.consistent_view() as snap:
            indptr, dsts = snap.to_csr()
            assert indptr[-1] == len(edges)
            assert snap.num_edges == len(edges)

    @given(edge_lists, st.integers(1, 200))
    @common
    def test_crash_anywhere_preserves_acked_prefix(self, edges, crash_at):
        from repro import SimulatedCrash
        from repro.pmem import CrashInjector

        inj = CrashInjector()
        cfg = DGAPConfig(init_vertices=24, init_edges=128, segment_slots=64, elog_size=96)
        g = DGAP(cfg, injector=inj)
        inj.arm(crash_at)
        acked = []
        try:
            for u, w in edges:
                g.insert_edge(u, w)
                acked.append((u, w))
        except SimulatedCrash:
            inj.disarm()
            g2 = DGAP.open(g.pool, cfg)
            ref = {}
            for u, w in acked:
                ref.setdefault(u, []).append(w)
            with g2.consistent_view() as snap:
                for v in range(g2.num_vertices):
                    got = list(snap.out_neighbors(v))
                    want = ref.get(v, [])
                    assert got[: len(want)] == want
                    assert len(got) <= len(want) + 1
