"""Shared test configuration: pinned hypothesis profiles.

The ``ci`` profile (selected with ``HYPOTHESIS_PROFILE=ci``) is fully
derandomized so CI runs — in particular the crash-sweep smoke job —
are reproducible run to run; ``dev`` is the default local behavior.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
