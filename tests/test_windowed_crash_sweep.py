"""Crash sweeps over windowed temporal workloads (the deletion fortress).

``make_windowed_workload`` replays a sliding-window stream as scalar
inserts, ``("expire", pairs)`` tombstone runs, and ``("compact",)``
tombstone-merge sweeps.  What the sweeps below pin:

* crashes *inside* an expiry run recover to the acked prefix plus some
  prefix of the in-flight run's deletes (the oracle tries every cut);
* crashes *inside* a compaction sweep are logically invisible — the
  rebalance-window crash protocol either drops the whole sweep (the
  ACTIVE undo window restores and recovery re-issues it as a plain
  rebalance) or completes it (COPYBACK redo), and reads never change
  either way;
* both hold exhaustively on a single pool, and under sampled sweeps on
  the sharded facade where one machine-wide crash power-fails every
  pool mid-stream.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DGAP, DGAPConfig
from repro.pmem.faults import DEFAULT_POLICY, TORN_STORES, FaultPolicy
from repro.sharding import ShardedDGAP
from repro.testing import (
    SweepConfig,
    crash_sweep,
    make_windowed_workload,
)
from repro.testing.crashsweep import _expected_state

CFG = dict(init_vertices=8, init_edges=256, segment_slots=64, elog_size=96)


def make_graph(injector, faults):
    return DGAP(DGAPConfig(**CFG), injector=injector, faults=faults)


def make_sharded(n):
    def factory(injector, faults):
        return ShardedDGAP(n, DGAPConfig(**CFG), injector=injector, faults=faults)

    return factory


def windowed_edges(n=20, seed=1):
    """Pairs with deliberate duplicates so expiry runs delete multiple
    copies and compaction finds matched tombstone pairs to drop."""
    rng = np.random.default_rng(seed)
    return [(int(s), int(d)) for s, d in
            zip(rng.integers(0, 8, n), rng.integers(0, 8, n))]


def windowed_workload():
    return make_windowed_workload(
        windowed_edges(), window=1, step=4, compact_every=2
    )


class TestBuilder:
    def test_op_structure(self):
        ops = make_windowed_workload(
            [(0, 1), (1, 2), (2, 3), (3, 4)], window=1, step=2, compact_every=2
        )
        kinds = [op[0] for op in ops]
        assert kinds == ["insert", "insert", "insert", "insert",
                         "expire", "compact"]
        assert ops[4] == ("expire", ((0, 1), (1, 2)))

    def test_window_zero_expires_each_step_immediately(self):
        ops = make_windowed_workload([(0, 1), (1, 2)], window=0, step=1,
                                     compact_every=5)
        assert ops == [("insert", 0, 1), ("expire", ((0, 1),)),
                       ("insert", 1, 2), ("expire", ((1, 2),))]

    def test_bad_geometry_rejected(self):
        for kw in ({"window": -1}, {"step": 0}, {"compact_every": 0}):
            with pytest.raises(ValueError):
                make_windowed_workload([(0, 1)], **kw)

    def test_compact_is_logically_invisible_to_expected_state(self):
        ops = windowed_workload()
        stripped = [op for op in ops if op[0] != "compact"]
        assert _expected_state(ops, 8) == _expected_state(stripped, 8)
        # and the workload actually contains both new op kinds
        kinds = {op[0] for op in ops}
        assert {"insert", "expire", "compact"} <= kinds

    def test_workload_exercises_compaction(self):
        """Guard: replayed crash-free, the workload drops tombstone
        pairs in at least one sweep (otherwise the sweeps below prove
        less than claimed)."""
        g = make_graph(None, None)
        from repro.testing.crashsweep import _apply_op

        for op in windowed_workload():
            _apply_op(g, op)
        assert g.n_compactions > 0
        assert g.tombstone_pairs_compacted > 0


class TestSinglePoolWindowedSweep:
    @pytest.mark.parametrize("policy", [DEFAULT_POLICY, TORN_STORES],
                             ids=["default", "torn"])
    def test_exhaustive_windowed_sweep_passes_oracle(self, policy):
        rep = crash_sweep(
            make_graph,
            windowed_workload(),
            SweepConfig(faults=policy, exhaustive_threshold=5000,
                        idempotence_samples=3, seed=2),
        )
        assert rep.exhaustive
        assert rep.unrecoverable_count() == 0
        assert rep.in_flight_applied_count() > 0

    def test_sweep_is_deterministic(self):
        cfg = SweepConfig(faults=TORN_STORES, exhaustive_threshold=0,
                          samples=40, idempotence_samples=2, seed=7)
        a = crash_sweep(make_graph, windowed_workload(), cfg)
        b = crash_sweep(make_graph, windowed_workload(), cfg)
        assert [(r.total_index, r.acked, r.in_flight_applied, r.recovery_ns)
                for r in a.results] == \
               [(r.total_index, r.acked, r.in_flight_applied, r.recovery_ns)
                for r in b.results]


class TestShardedWindowedSweep:
    @pytest.mark.parametrize("n", [2, 3])
    def test_sampled_windowed_sweep_passes_oracle(self, n):
        rep = crash_sweep(
            make_sharded(n),
            make_windowed_workload(windowed_edges(28, seed=4),
                                   window=2, step=5, compact_every=3),
            SweepConfig(exhaustive_threshold=100, samples=80,
                        idempotence_samples=2, seed=11),
        )
        assert rep.unrecoverable_count() == 0
        assert rep.in_flight_applied_count() > 0


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    data=st.data(),
    window=st.integers(0, 2),
    step=st.integers(1, 5),
    compact_every=st.integers(1, 3),
    torn=st.booleans(),
    seed=st.integers(0, 2**16),
)
def test_property_windowed_workloads_survive_random_crashes(
    data, window, step, compact_every, torn, seed
):
    """Any small windowed stream geometry, with and without torn stores,
    a handful of random crash points: the oracle always holds."""
    edges = data.draw(st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        min_size=4, max_size=24,
    ))
    rep = crash_sweep(
        make_graph,
        make_windowed_workload(edges, window=window, step=step,
                               compact_every=compact_every),
        SweepConfig(faults=FaultPolicy(torn_stores=torn, seed=seed),
                    exhaustive_threshold=0, samples=6,
                    idempotence_samples=1, seed=seed),
    )
    assert rep.unrecoverable_count() == 0
