"""Focused tests on recovery internals: scans, replay, reissue, DONE protocol."""

import numpy as np
import pytest

from repro import DGAP, DGAPConfig, SimulatedCrash
from repro.core.recovery import _scan_edge_array
from repro.core.undo_log import STATE_ACTIVE, STATE_COPYBACK, STATE_DONE, STATE_IDLE
from repro.errors import RecoveryError
from repro.pmem import CrashInjector

CFG = dict(init_vertices=16, init_edges=512, segment_slots=64)


class TestPivotScan:
    def test_scan_matches_dram_state(self):
        g = DGAP(DGAPConfig(**CFG))
        g.insert_edges([(i % 16, (i * 3) % 16) for i in range(400)])
        starts, array_deg, live = _scan_edge_array(g)
        np.testing.assert_array_equal(starts, g.va.starts())
        np.testing.assert_array_equal(array_deg, g.va.array_degrees())

    def test_scan_detects_corruption(self):
        g = DGAP(DGAPConfig(**CFG))
        # stomp a pivot with an out-of-order id, bypassing the API
        ppos = np.flatnonzero(g.ea.slots < 0)
        off = g.ea.byte_off(int(ppos[3]))
        g.pool.device.buf[off : off + 4] = np.frombuffer(
            np.int32(-1).tobytes(), dtype=np.uint8
        )  # vertex 0's pivot duplicated later
        with pytest.raises(RecoveryError):
            _scan_edge_array(g)

    def test_scan_counts_tombstones(self):
        g = DGAP(DGAPConfig(**CFG))
        g.insert_edge(1, 2)
        g.delete_edge(1, 2)
        # force both into the array (they are: gap inserts)
        starts, array_deg, live = _scan_edge_array(g)
        assert array_deg[1] == 2  # slot count
        assert live[1] == 0  # tombstone-adjusted


class TestUlogRecoveryBranches:
    def make(self):
        return DGAP(DGAPConfig(**CFG))

    def test_idle_is_noop(self):
        g = self.make()
        assert g.rebalancer.recover_ulog(g.ulogs[0]) is None

    def test_active_with_backup_restores_and_reports_window(self):
        g = self.make()
        ul = g.ulogs[0]
        original = g.ea.slots[:64].copy()
        ul.snapshot_window(0, 64, g.ea.byte_off(0), 256)
        g.pool.device.store(g.ea.byte_off(0), np.full(256, 7, np.uint8))
        g.pool.device.persist(g.ea.byte_off(0), 256)
        win = g.rebalancer.recover_ulog(ul)
        assert win == (0, 64)
        np.testing.assert_array_equal(g.ea.slots[:64], original)
        assert ul.read_header().state == STATE_IDLE

    def test_done_completes_log_clears(self):
        g = self.make(); g = DGAP(DGAPConfig(**CFG, elog_size=256))
        # put entries in section 0's log, then simulate a crash right
        # after a merge marked DONE but before the clears finished
        for d in range(60):
            g.insert_edge(0, d % 16)
        if g.logs.counts[0] == 0:
            pytest.skip("workload did not populate section 0's log")
        ul = g.ulogs[0]
        ul.begin(0, 64, 1)
        ul.mark_done(0, 64)
        g.rebalancer.recover_ulog(ul)
        assert ul.read_header().state == STATE_IDLE

    def test_copyback_redoes_copy(self):
        g = self.make()
        ul = g.ulogs[0]
        image = np.arange(1, 65, dtype=np.int32)  # fake final layout bytes
        scratch = g.rebalancer._get_scratch(256)
        g.pool.device.ntstore(scratch.offset, image.view(np.uint8))
        g.pool.device.sfence()
        ul.begin_copyback(0, 64, scratch.offset, 256)
        # crash before any copy happened; recovery must redo it fully
        g.rebalancer.recover_ulog(ul)
        np.testing.assert_array_equal(g.ea.slots[:64], image)
        assert ul.read_header().state == STATE_IDLE


class TestAcknowledgementSemantics:
    def test_unacked_edge_may_or_may_not_survive(self):
        """A crash between PM persist and DRAM update: the in-flight edge
        is recovered (it is persistent) but was never acknowledged."""
        inj = CrashInjector()
        g = DGAP(DGAPConfig(**CFG), injector=inj)
        g.insert_edge(1, 2)
        # crash exactly at the fence of the next insert's slot persist
        inj.arm(1, "fence")
        with pytest.raises(SimulatedCrash):
            g.insert_edge(1, 3)
        g2 = DGAP.open(g.pool, g.config)
        nb = g2.out_neighbors(1).tolist()
        assert nb[:1] == [2]
        assert nb in ([2], [2, 3])

    def test_recovery_is_idempotent(self):
        g = DGAP(DGAPConfig(**CFG))
        g.insert_edges([(i % 16, i % 16 + 0) for i in range(200)])
        g.pool.crash()
        g2 = DGAP.open(g.pool, g.config)
        state1 = {v: g2.out_neighbors(v).tolist() for v in range(16)}
        g2.pool.crash()  # crash again immediately (nothing new written)
        g3 = DGAP.open(g2.pool, g2.config)
        state2 = {v: g3.out_neighbors(v).tolist() for v in range(16)}
        assert state1 == state2
