"""Device-level fault model tests: torn stores, persist reorder, poison.

The clean ADR crash model (whole lines either persist or revert) is the
default and must be byte-identical to the pre-fault-model behavior;
each richer mode is opt-in via :class:`repro.pmem.faults.FaultPolicy`
and is pinned down here at the :class:`~repro.pmem.device.PMemDevice`
level.  End-to-end behavior (recovery under these policies) lives in
``test_crash_sweep.py`` and ``test_crash_recovery.py``.
"""

import numpy as np
import pytest

from repro.errors import MediaError, RecoveryError
from repro.pmem import PMemPool
from repro.pmem.constants import ATOMIC_WRITE, CACHE_LINE, XPLINE
from repro.pmem.device import PMemDevice
from repro.pmem.faults import (
    ADVERSARIAL,
    DEFAULT_POLICY,
    PERSIST_REORDER,
    TORN_STORES,
    FaultPolicy,
)
from repro.pmem.latency import OPTANE_EADR


def mkdev(policy=DEFAULT_POLICY, size=1 << 16, **kw):
    return PMemDevice(size, faults=policy, **kw)


class TestFaultPolicy:
    def test_defaults_inactive(self):
        assert not DEFAULT_POLICY.active
        assert TORN_STORES.active and PERSIST_REORDER.active and ADVERSARIAL.active

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(poison_on_crash=1.5)

    def test_rng_deterministic_per_ordinal(self):
        p = FaultPolicy(seed=42)
        a = p.rng_for_crash(3).integers(0, 1 << 30)
        b = p.rng_for_crash(3).integers(0, 1 << 30)
        c = p.rng_for_crash(4).integers(0, 1 << 30)
        assert a == b
        assert a != c


class TestTornStores:
    def test_default_policy_reverts_whole_lines(self):
        dev = mkdev()
        dev.store(0, b"\xaa" * CACHE_LINE)
        dev.crash()
        assert not dev.read(0, CACHE_LINE).any()

    def test_torn_crash_persists_8b_chunks(self):
        """Across seeds, a dirty line's chunks land independently, and
        every persisted piece is 8-byte aligned — never a partial chunk."""
        outcomes = set()
        for seed in range(12):
            dev = mkdev(TORN_STORES.with_seed(seed))
            dev.store(0, b"\xaa" * CACHE_LINE)
            dev.crash()
            media = bytes(dev.media[:CACHE_LINE])
            for c in range(CACHE_LINE // ATOMIC_WRITE):
                chunk = media[c * ATOMIC_WRITE : (c + 1) * ATOMIC_WRITE]
                assert chunk in (b"\x00" * ATOMIC_WRITE, b"\xaa" * ATOMIC_WRITE)
            outcomes.add(media)
        assert len(outcomes) > 1  # the coin actually varies

    def test_torn_crash_converges_buf_and_media(self):
        """After the crash the cache view equals the media view (power
        loss leaves no volatile state)."""
        dev = mkdev(TORN_STORES.with_seed(3))
        dev.store(64, bytes(range(64)))
        dev.crash()
        np.testing.assert_array_equal(dev.buf[64:128], dev.media[64:128])

    def test_flushed_lines_never_torn(self):
        dev = mkdev(TORN_STORES)
        dev.store(0, b"\xbb" * CACHE_LINE)
        dev.persist(0, CACHE_LINE)
        dev.crash()
        assert bytes(dev.read(0, CACHE_LINE)) == b"\xbb" * CACHE_LINE

    def test_torn_lines_counted(self):
        torn = 0
        for seed in range(8):
            dev = mkdev(TORN_STORES.with_seed(seed))
            dev.store(0, b"\xcc" * CACHE_LINE)
            dev.crash()
            torn += dev.stats.torn_lines
        assert torn > 0


class TestPersistReorder:
    def test_fenced_flush_always_durable(self):
        dev = mkdev(PERSIST_REORDER)
        dev.store(0, b"\x11" * 8)
        dev.persist(0, 8)  # clwb + sfence
        dev.crash()
        assert bytes(dev.read(0, 8)) == b"\x11" * 8

    def test_unfenced_flush_may_drop(self):
        """clwb without sfence orders nothing: across seeds the line
        sometimes persists and sometimes drops."""
        results = set()
        for seed in range(12):
            dev = mkdev(PERSIST_REORDER.with_seed(seed))
            dev.store(0, b"\x22" * 8)
            dev.clwb(0)
            dev.crash()
            results.add(bytes(dev.read(0, 8)))
        assert results == {b"\x00" * 8, b"\x22" * 8}

    def test_pending_line_persists_flush_time_content(self):
        """A store after the flush does not ride along with the flush."""
        for seed in range(12):
            dev = mkdev(PERSIST_REORDER.with_seed(seed))
            dev.store(0, b"\x33" * 8)
            dev.clwb(0)
            dev.store(0, b"\x44" * 8)  # re-dirties the line
            dev.crash()
            got = bytes(dev.read(0, 8))
            assert got in (b"\x00" * 8, b"\x33" * 8)  # never the unflushed 0x44

    def test_media_unchanged_until_fence(self):
        dev = mkdev(PERSIST_REORDER)
        dev.store(0, b"\x55" * 8)
        dev.clwb(0)
        assert not dev.media[:8].any()  # still pending
        dev.sfence()
        assert bytes(dev.media[:8]) == b"\x55" * 8

    def test_dropped_pending_counted(self):
        dropped = 0
        for seed in range(8):
            dev = mkdev(PERSIST_REORDER.with_seed(seed))
            for line in range(4):
                dev.store(line * CACHE_LINE, b"\x66" * 8)
                dev.clwb(line * CACHE_LINE)
            dev.crash()
            dropped += dev.stats.dropped_pending_lines
        assert dropped > 0

    def test_is_persisted_tracks_pending(self):
        dev = mkdev(PERSIST_REORDER)
        dev.store(0, b"\x77" * 8)
        dev.clwb(0)
        assert not dev.is_persisted(0, 8)
        dev.sfence()
        assert dev.is_persisted(0, 8)


class TestPolicyExemptions:
    def test_eadr_ignores_fault_policy(self):
        """Persistent caches flush everything at power loss — torn and
        reorder faults are ADR phenomena and must not apply."""
        dev = PMemDevice(1 << 16, profile=OPTANE_EADR, faults=ADVERSARIAL)
        dev.store(0, b"\x88" * CACHE_LINE)
        dev.crash()
        assert bytes(dev.read(0, CACHE_LINE)) == b"\x88" * CACHE_LINE

    def test_crash_ordinal_advances(self):
        dev = mkdev(TORN_STORES)
        assert dev.crash_ordinal == 0
        dev.crash()
        dev.crash()
        assert dev.crash_ordinal == 2
        assert dev.stats.crashes == 2


class TestPoison:
    def test_poisoned_read_raises_with_offset(self):
        dev = mkdev()
        dev.poison(XPLINE, 1)
        with pytest.raises(MediaError) as ei:
            dev.read(XPLINE + 5, 4)
        assert ei.value.off >= XPLINE
        assert dev.stats.media_errors == 1
        # reads elsewhere still fine
        dev.read(0, XPLINE)

    def test_poison_covers_whole_xpline(self):
        dev = mkdev()
        dev.poison(XPLINE + 10, 1)
        assert dev.check_poison(XPLINE, XPLINE)
        with pytest.raises(MediaError):
            dev.read(XPLINE + XPLINE - 1, 1)
        assert not dev.check_poison(0, XPLINE)
        assert dev.stats.poisoned_xplines == 1

    def test_rewrite_clears_poison(self):
        dev = mkdev()
        dev.poison(0, 1)
        dev.ntstore(0, np.zeros(XPLINE, dtype=np.uint8), payload=0)
        dev.sfence()
        assert not dev.check_poison(0, XPLINE)
        dev.read(0, XPLINE)  # no raise

    def test_flush_writeback_clears_poison(self):
        dev = mkdev()
        dev.poison(0, 1)
        dev.store(0, b"\x99" * XPLINE)
        dev.persist(0, XPLINE)
        assert not dev.check_poison(0, XPLINE)

    def test_poisoned_ranges_merges_neighbors(self):
        dev = mkdev()
        dev.poison(0, 2 * XPLINE)  # two adjacent XPLines
        dev.poison(4 * XPLINE, 1)
        assert dev.poisoned_ranges() == [(0, 2 * XPLINE), (4 * XPLINE, XPLINE)]

    def test_clear_poison(self):
        dev = mkdev()
        dev.poison(0, 1)
        dev.clear_poison(0, XPLINE)
        assert dev.poisoned_ranges() == []

    def test_poison_on_crash_probability_one(self):
        dev = mkdev(FaultPolicy(poison_on_crash=1.0))
        dev.store(0, b"\xee" * 8)  # dirty at crash -> lost -> poisoned
        dev.crash()
        assert dev.check_poison(0, 1)
        with pytest.raises(MediaError):
            dev.read(0, 8)


class TestRecoveryScrub:
    """Crash recovery repairs poison in dead state, reports it in live state."""

    def make_graph(self):
        from repro import DGAP, DGAPConfig

        g = DGAP(DGAPConfig(init_vertices=16, init_edges=256, segment_slots=64))
        for d in range(60):
            g.insert_edge(d % 16, (d * 3) % 16)
        return g

    def test_poison_in_meta_is_repaired(self):
        g = self.make_graph()
        g.shutdown()  # allocates meta.* arrays
        g.pool.crash()
        off, _, _ = g.pool._directory["meta.start"]
        g.pool.device.poison(off, 1)
        from repro import DGAP

        g2 = DGAP.open(g.pool, g.config)  # crash path ignores meta.*
        assert g2.num_edges == 60

    def test_poison_in_dead_generation_is_repaired(self):
        from repro import DGAP, DGAPConfig

        g = DGAP(DGAPConfig(init_vertices=16, init_edges=128, segment_slots=64))
        for d in range(100):
            g.insert_edge(d % 16, d % 16)
        g.rebalancer.resize()  # generation 0 becomes dead state
        assert g.ea.gen == 1
        g.pool.crash()
        off, _, _ = g.pool._directory["edges.g0"]
        g.pool.device.poison(off, 1)
        g2 = DGAP.open(g.pool, g.config)
        assert g2.num_edges == 100
        assert not g.pool.device.check_poison(off, 1)

    def test_poison_in_live_edges_is_reported(self):
        from repro import DGAP

        g = self.make_graph()
        g.pool.crash()
        off, _, _ = g.pool._directory[f"edges.g{g.ea.gen}"]
        g.pool.device.poison(off, 1)
        with pytest.raises(RecoveryError, match="edges.g"):
            DGAP.open(g.pool, g.config)

    def test_poison_in_pool_metadata_is_reported(self):
        from repro import DGAP

        g = self.make_graph()
        g.pool.crash()
        g.pool.device.poison(64, 1)  # root slots: not a named region
        with pytest.raises(RecoveryError, match="pool metadata"):
            DGAP.open(g.pool, g.config)
