"""Property tests for span attribution (ISSUE 5 satellite).

For random operation sequences against a small DGAP (the geometry from
``tests/test_view_cache.py`` that forces merges, rebalances and
resizes), the counter-snapshot attribution must satisfy, at every node
of the span forest:

* **containment** — children run inside their parent, counters are
  monotone, so the sum of child deltas never exceeds the parent's delta
  (exactly for integer counters; within float-summation tolerance for
  modeled ns);
* **partition** — root-span deltas plus the untraced remainder equal
  the device total from ``PMemStats`` (no double-count, no leak).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DGAP, DGAPConfig
from repro.obs import INT_COUNTER_FIELDS, Tracer, aggregate_phases, trace, tracing

common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

NV = 24
SMALL = dict(init_vertices=NV, init_edges=256, segment_slots=64)

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("ins"), st.integers(0, NV - 1), st.integers(0, NV - 1)),
        st.tuples(st.just("del"), st.integers(0, NV - 1), st.integers(0, NV - 1)),
        st.tuples(
            st.just("batch"),
            st.lists(
                st.tuples(st.integers(0, NV - 1), st.integers(0, NV - 1)),
                min_size=1,
                max_size=40,
            ),
        ),
        st.tuples(st.just("analyze")),
    ),
    min_size=1,
    max_size=40,
)


def apply_op(g: DGAP, op) -> None:
    if op[0] == "ins":
        g.insert_edge(op[1], op[2])
    elif op[0] == "del":
        g.delete_edge(op[1], op[2])
    elif op[0] == "batch":
        g.insert_edges(np.array(op[1], dtype=np.int64), batch_size=16)
    else:
        with g.consistent_view() as snap:
            snap.to_csr()


def child_sums(span):
    sums = {k: 0 for k in INT_COUNTER_FIELDS}
    ns = 0.0
    for c in span.children:
        assert c.delta is not None
        ns += c.delta.modeled_ns
        for k in INT_COUNTER_FIELDS:
            sums[k] += getattr(c.delta, k)
    return ns, sums


def assert_containment(span):
    """sum(children) <= parent, recursively."""
    ns, sums = child_sums(span)
    assert span.delta is not None
    tol = max(1e-9 * abs(span.delta.modeled_ns), 1e-6)
    assert ns <= span.delta.modeled_ns + tol, (
        f"span {span.name!r}: children modeled ns {ns} exceeds "
        f"parent delta {span.delta.modeled_ns}"
    )
    for k in INT_COUNTER_FIELDS:
        assert sums[k] <= getattr(span.delta, k), (
            f"span {span.name!r}: children {k} {sums[k]} exceeds "
            f"parent {getattr(span.delta, k)}"
        )
    for c in span.children:
        assert_containment(c)


@common
@given(ops=ops_strategy)
def test_child_spans_never_exceed_parent_and_roots_sum_to_total(ops):
    g = DGAP(DGAPConfig(**SMALL))
    tracer = Tracer(g.pool.stats)
    with tracing(tracer):
        for op in ops:
            with trace("op", kind=op[0]):
                apply_op(g, op)

    # containment at every level of the forest
    for root in tracer.roots:
        assert_containment(root)

    # partition: every op ran inside a root span, so root deltas sum to
    # the device total — integer counters exactly, modeled ns to float
    # summation tolerance.
    total = tracer.total_delta()
    for k in INT_COUNTER_FIELDS:
        got = sum(getattr(r.delta, k) for r in tracer.roots)
        assert got == getattr(total, k), (k, got, getattr(total, k))
    got_ns = sum(r.delta.modeled_ns for r in tracer.roots)
    assert got_ns == pytest.approx(total.modeled_ns, rel=1e-9, abs=1e-3)

    # the same identity as exposed through the aggregation used by
    # `bench profile`: self-attribution plus (untraced) partitions total
    rows, untraced = aggregate_phases(tracer)
    for k in INT_COUNTER_FIELDS:
        got = sum(r.counters[k] for r in rows) + untraced.counters[k]
        assert got == getattr(total, k)
    got_ns = sum(r.modeled_ns for r in rows) + untraced.modeled_ns
    assert got_ns == pytest.approx(total.modeled_ns, rel=1e-9, abs=1e-3)


@common
@given(ops=ops_strategy)
def test_wall_clock_containment(ops):
    """Child wall time never exceeds the parent's (perf_counter is monotone)."""
    g = DGAP(DGAPConfig(**SMALL))
    tracer = Tracer(g.pool.stats)
    with tracing(tracer):
        for op in ops:
            with trace("op", kind=op[0]):
                apply_op(g, op)

    def check(span):
        assert sum(c.wall_ns for c in span.children) <= span.wall_ns
        assert span.self_wall_ns() >= 0
        for c in span.children:
            check(c)

    for root in tracer.roots:
        check(root)
