"""Unit tests for the simulated persistent-memory device."""

import numpy as np
import pytest

from repro.errors import PMemError, SimulatedCrash
from repro.pmem import (
    CACHE_LINE,
    DRAM,
    OPTANE_ADR,
    OPTANE_EADR,
    XPLINE,
    CrashInjector,
    PMemDevice,
)


@pytest.fixture
def dev():
    return PMemDevice(64 * 1024, profile=OPTANE_ADR)


class TestStoreLoad:
    def test_store_then_read(self, dev):
        dev.store(128, b"hello world")
        assert bytes(dev.read(128, 11)) == b"hello world"

    def test_store_numpy(self, dev):
        arr = np.arange(16, dtype=np.int32)
        dev.store(256, arr)
        out = dev.read(256, 64).view(np.int32)
        np.testing.assert_array_equal(out, arr)

    def test_read_view_is_readonly(self, dev):
        dev.store(0, b"abc")
        view = dev.read(0, 3)
        with pytest.raises(ValueError):
            view[0] = 1

    def test_out_of_range_store_rejected(self, dev):
        with pytest.raises(PMemError):
            dev.store(dev.size - 2, b"toolong")

    def test_negative_offset_rejected(self, dev):
        with pytest.raises(PMemError):
            dev.store(-8, b"x")

    def test_size_rounds_to_xpline(self):
        d = PMemDevice(1000)
        assert d.size % XPLINE == 0
        assert d.size >= 1000

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            PMemDevice(0)


class TestPersistence:
    def test_unflushed_store_is_not_persisted(self, dev):
        dev.store(0, b"x" * 8)
        assert not dev.is_persisted(0, 8)

    def test_persist_marks_clean(self, dev):
        dev.store(0, b"x" * 8)
        dev.persist(0, 8)
        assert dev.is_persisted(0, 8)

    def test_crash_reverts_unflushed(self, dev):
        dev.store(0, b"AAAA")
        dev.persist(0, 4)
        dev.store(64, b"BBBB")  # different line, never flushed
        dev.crash()
        assert bytes(dev.read(0, 4)) == b"AAAA"
        assert bytes(dev.read(64, 4)) == b"\x00" * 4

    def test_crash_reverts_to_last_flushed_value(self, dev):
        dev.store(0, b"old!")
        dev.persist(0, 4)
        dev.store(0, b"new!")  # overwrite, unflushed
        dev.crash()
        assert bytes(dev.read(0, 4)) == b"old!"

    def test_partial_line_flush_covers_whole_line(self, dev):
        # flushing any byte of a line persists the whole 64B line
        dev.store(0, b"A" * CACHE_LINE)
        dev.clwb(10, 1)
        dev.sfence()
        dev.crash()
        assert bytes(dev.read(0, CACHE_LINE)) == b"A" * CACHE_LINE

    def test_multi_line_store_partial_flush(self, dev):
        dev.store(0, b"C" * (3 * CACHE_LINE))
        dev.persist(0, CACHE_LINE)  # only first line
        dev.crash()
        assert bytes(dev.read(0, CACHE_LINE)) == b"C" * CACHE_LINE
        assert bytes(dev.read(CACHE_LINE, CACHE_LINE)) == b"\x00" * CACHE_LINE

    def test_drain_all_persists_everything(self, dev):
        dev.store(0, b"x" * 300)
        dev.store(1024, b"y" * 10)
        dev.drain_all()
        assert dev.dirty_lines == 0
        dev.crash()
        assert bytes(dev.read(0, 3)) == b"xxx"
        assert bytes(dev.read(1024, 2)) == b"yy"

    def test_eadr_crash_keeps_unflushed(self):
        dev = PMemDevice(4096, profile=OPTANE_EADR)
        dev.store(0, b"KEEP")
        dev.crash()
        assert bytes(dev.read(0, 4)) == b"KEEP"

    def test_dram_crash_loses_everything(self):
        dev = PMemDevice(4096, profile=DRAM)
        dev.store(0, b"GONE")
        dev.persist(0, 4)
        dev.crash()
        assert bytes(dev.read(0, 4)) == b"\x00" * 4

    def test_dram_never_persisted(self):
        dev = PMemDevice(4096, profile=DRAM)
        dev.store(0, b"x")
        dev.persist(0, 1)
        assert not dev.is_persisted(0, 1)


class TestNtStore:
    def test_ntstore_is_immediately_durable(self, dev):
        dev.ntstore(0, b"NT" * 100)
        dev.crash()
        assert bytes(dev.read(0, 4)) == b"NTNT"

    def test_ntstore_cleans_dirty_lines(self, dev):
        dev.store(0, b"a" * 128)
        assert dev.dirty_lines == 2
        dev.ntstore(0, b"b" * 128)
        assert dev.dirty_lines == 0
        dev.crash()
        assert bytes(dev.read(0, 1)) == b"b"

    def test_ntstore_counts_media_bytes(self, dev):
        before = dev.stats.media_bytes
        dev.ntstore(0, b"z" * 1024)
        assert dev.stats.media_bytes - before == 1024


class TestStatsAndCosts:
    def test_store_counters(self, dev):
        dev.store(0, b"x" * 100, payload=4)
        assert dev.stats.stores == 1
        assert dev.stats.stored_bytes == 100
        assert dev.stats.payload_bytes == 4

    def test_write_amplification(self, dev):
        dev.store(0, b"x" * 28, payload=4)  # 7 bytes stored per payload byte
        assert dev.stats.write_amplification() == pytest.approx(7.0)

    def test_sequential_flushes_cheaper_than_random(self):
        seq = PMemDevice(1 << 20, profile=OPTANE_ADR)
        for i in range(64):
            seq.store(i * CACHE_LINE, b"x" * CACHE_LINE)
            seq.clwb(i * CACHE_LINE, CACHE_LINE)
        seq.sfence()

        rnd = PMemDevice(1 << 20, profile=OPTANE_ADR)
        # stride of 5 XPLines -> every flush misses the write buffer
        for i in range(64):
            off = (i * 5 * XPLINE + 7 * CACHE_LINE) % (1 << 20 - 1) // CACHE_LINE * CACHE_LINE
            rnd.store(off, b"x" * CACHE_LINE)
            rnd.clwb(off, CACHE_LINE)
        rnd.sfence()
        assert rnd.stats.modeled_ns > 1.5 * seq.stats.modeled_ns

    def test_inplace_flush_is_much_slower_than_seq(self):
        """Fig. 1(c): in-place persistent updates ~7x slower than sequential."""
        n = 256
        seq = PMemDevice(1 << 20, profile=OPTANE_ADR)
        for i in range(n):
            seq.store(i * CACHE_LINE, b"s" * 8)
            seq.persist(i * CACHE_LINE, 8)

        inp = PMemDevice(1 << 20, profile=OPTANE_ADR)
        for _ in range(n):
            inp.store(0, b"i" * 8)
            inp.persist(0, 8)

        ratio = inp.stats.modeled_ns / seq.stats.modeled_ns
        assert 3.0 < ratio < 15.0
        assert inp.stats.inplace_flushes > n * 0.9

    def test_media_write_combining_within_xpline(self, dev):
        # 4 consecutive line flushes in one XPLine -> one 256B media write
        before = dev.stats.media_bytes
        for i in range(4):
            dev.store(i * CACHE_LINE, b"x" * CACHE_LINE)
            dev.clwb(i * CACHE_LINE, CACHE_LINE)
        dev.sfence()
        assert dev.stats.media_bytes - before == XPLINE

    def test_clean_line_flush_is_cheap_and_not_counted_dirty(self, dev):
        dev.store(0, b"x" * CACHE_LINE)
        dev.persist(0, CACHE_LINE)
        flushed = dev.stats.flushed_lines
        dev.clwb(0, CACHE_LINE)  # already clean
        assert dev.stats.flushed_lines == flushed

    def test_bulk_flush_counts_dirty_only(self, dev):
        dev.store(0, b"x" * (32 * CACHE_LINE))
        dev.clwb(0, 64 * CACHE_LINE)  # bulk path (>=16 lines), half clean
        assert dev.stats.flushed_lines == 32

    def test_stats_delta(self, dev):
        dev.store(0, b"x" * 8)
        before = dev.stats.snapshot()
        dev.store(64, b"y" * 8)
        d = dev.stats.delta_since(before)
        assert d.stores == 1
        assert d.stored_bytes == 8

    def test_fence_counted(self, dev):
        dev.sfence()
        dev.sfence()
        assert dev.stats.fences == 2

    def test_accounted_reads_accrue_time(self, dev):
        t0 = dev.stats.modeled_ns
        dev.account_seq_read(1 << 20)
        t1 = dev.stats.modeled_ns
        dev.account_rnd_read(1000)
        t2 = dev.stats.modeled_ns
        assert t1 > t0 and t2 > t1
        assert dev.stats.seq_read_bytes == 1 << 20
        assert dev.stats.rnd_reads == 1000

    def test_buckets(self, dev):
        dev.account_seq_read(1000, bucket="scan")
        dev.account_seq_read(1000, bucket="scan")
        assert dev.stats.buckets["scan"] > 0


class TestCrashInjection:
    def test_crash_at_nth_flush(self):
        inj = CrashInjector()
        dev = PMemDevice(4096, injector=inj)
        inj.arm(2, "flush")
        dev.store(0, b"A" * 8)
        dev.persist(0, 8)  # flush #1 ok
        dev.store(64, b"B" * 8)
        with pytest.raises(SimulatedCrash):
            dev.persist(64, 8)  # flush #2 fires
        # the crash reverted the unflushed line
        assert bytes(dev.read(0, 1)) == b"A"
        assert bytes(dev.read(64, 1)) == b"\x00"

    def test_crash_at_nth_store(self):
        inj = CrashInjector()
        dev = PMemDevice(4096, injector=inj)
        inj.arm(3, "store")
        dev.store(0, b"1")
        dev.store(1, b"2")
        with pytest.raises(SimulatedCrash):
            dev.store(2, b"3")
        assert bytes(dev.read(2, 1)) == b"\x00"

    def test_injector_fires_once(self):
        inj = CrashInjector()
        dev = PMemDevice(4096, injector=inj)
        inj.arm(1, "store")
        with pytest.raises(SimulatedCrash):
            dev.store(0, b"x")
        dev.store(0, b"x")  # no longer armed

    def test_any_event_plan(self):
        inj = CrashInjector()
        dev = PMemDevice(4096, injector=inj)
        inj.arm(2)  # any event
        dev.store(0, b"x")
        with pytest.raises(SimulatedCrash):
            dev.sfence()

    def test_disarm(self):
        inj = CrashInjector()
        dev = PMemDevice(4096, injector=inj)
        inj.arm(1, "fence")
        inj.disarm()
        dev.sfence()

    def test_bad_plans_rejected(self):
        inj = CrashInjector()
        with pytest.raises(ValueError):
            inj.arm(0)
        with pytest.raises(ValueError):
            inj.arm(1, "nonsense")

    def test_crash_reports_both_indices(self):
        """The exception carries the per-kind index AND the canonical
        total event index, so a sweep can re-arm on either coordinate."""
        inj = CrashInjector()
        dev = PMemDevice(4096, injector=inj)
        inj.arm(1, "fence")
        dev.store(0, b"a")  # total event #1
        dev.store(8, b"b")  # total event #2
        dev.clwb(0)         # total event #3
        with pytest.raises(SimulatedCrash) as ei:
            dev.sfence()    # fence #1, total event #4
        crash = ei.value
        assert crash.op == "fence"
        assert crash.op_index == 1
        assert crash.total_index == 4
        text = str(crash)
        assert "fence" in text and "#1" in text and "#4" in text
        assert "op='fence'" in repr(crash)

    def test_plan_object_not_mutated_by_injector(self):
        """Arming copies the plan; the countdown lives in the injector,
        so one plan object can drive many sweep iterations."""
        from repro.pmem.crash import CrashPlan

        plan = CrashPlan(countdown=2, event="store")
        a = CrashInjector(plan)
        b = CrashInjector(plan)
        dev = PMemDevice(4096, injector=a)
        dev.store(0, b"x")
        assert a.remaining == 1
        assert plan.countdown == 2  # caller's plan untouched
        assert b.remaining == 2     # sibling injector unaffected
        with pytest.raises(SimulatedCrash):
            dev.store(8, b"y")
        assert plan.countdown == 2


class TestBulkReads:
    """The bulk read layer: load_batch / gather_span / copyback_stream."""

    def test_load_batch_returns_bytes_and_accounts(self, dev):
        dev.store(128, b"hello world")
        twin = PMemDevice(64 * 1024, profile=OPTANE_ADR)
        twin.store(128, b"hello world")
        out = dev.load_batch(128, 11)
        assert bytes(out) == b"hello world"
        twin.read(128, 11)
        twin.account_seq_read(11)
        assert vars(dev.stats) == vars(twin.stats)

    def test_load_batch_view_is_readonly(self, dev):
        view = dev.load_batch(0, 8)
        with pytest.raises(ValueError):
            view[0] = 1

    def test_gather_span_values_and_accounting(self, dev):
        arr = np.arange(256, dtype=np.int32)
        dev.store(0, arr)
        twin = PMemDevice(64 * 1024, profile=OPTANE_ADR)
        twin.store(0, arr)
        offs = np.asarray([4, 64, 400, 12], dtype=np.int64)
        rows = dev.gather_span(offs, 8)
        assert rows.shape == (4, 8)
        for r, off in zip(rows, offs):
            np.testing.assert_array_equal(r, dev.buf[off : off + 8])
        twin.account_rnd_read(4, 8)
        assert vars(dev.stats) == vars(twin.stats)

    def test_gather_span_empty_and_bounds(self, dev):
        assert dev.gather_span(np.empty(0, dtype=np.int64), 8).shape == (0, 8)
        with pytest.raises(PMemError):
            dev.gather_span(np.asarray([dev.size - 4]), 8)
        with pytest.raises(PMemError):
            dev.gather_span(np.asarray([0]), 0)

    def test_gather_span_poisoned_line_raises(self):
        from repro.errors import MediaError

        dev = PMemDevice(64 * 1024, profile=OPTANE_ADR)
        dev.poison(XPLINE, 1)
        with pytest.raises(MediaError):
            dev.gather_span(np.asarray([XPLINE, 0]), 8)
        assert dev.stats.media_errors == 1
        # offsets on healthy lines still gather fine
        assert dev.gather_span(np.asarray([0, CACHE_LINE]), 8).shape == (2, 8)

    @pytest.mark.parametrize(
        "src,dst,nbytes,chunk",
        [
            (0, 32768, 8192, 2048),    # aligned, exact chunks
            (3, 32771, 8192, 2048),    # misaligned lines
            (0, 32768, 9001, 2048),    # trailing partial chunk
            (0, 32768, 700, 2048),     # smaller than one chunk
        ],
    )
    def test_copyback_stream_matches_scalar_loop(self, src, dst, nbytes, chunk):
        def fill(d):
            rng = np.random.default_rng(7)
            d.ntstore(0, rng.integers(0, 256, 16384, dtype=np.uint8))
            d.sfence()

        fast = PMemDevice(64 * 1024, profile=OPTANE_ADR)
        ref = PMemDevice(64 * 1024, profile=OPTANE_ADR)
        fill(fast)
        fill(ref)
        fast.copyback_stream(src, dst, nbytes, chunk)
        pos = 0
        while pos < nbytes:  # the literal scalar stream
            n = min(chunk, nbytes - pos)
            ref.store(dst + pos, ref.buf[src + pos : src + pos + n].copy(), payload=0)
            ref.clwb(dst + pos, n)
            pos += n
        np.testing.assert_array_equal(fast.buf, ref.buf)
        np.testing.assert_array_equal(fast.media, ref.media)
        assert fast._dirty == ref._dirty
        sa, sb = vars(fast.stats), vars(ref.stats)
        ns_a, ns_b = sa.pop("modeled_ns"), sb.pop("modeled_ns")
        assert sa == sb
        assert ns_a == pytest.approx(ns_b)

    def test_copyback_stream_falls_back_under_armed_injector(self):
        inj = CrashInjector()
        dev = PMemDevice(64 * 1024, injector=inj)
        dev.ntstore(0, b"x" * 8192)
        dev.sfence()
        inj.arm(3, "flush")
        with pytest.raises(SimulatedCrash):
            dev.copyback_stream(0, 32768, 8192, 2048)
