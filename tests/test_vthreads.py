"""Virtual-thread scheduler tests: the event-level Table 3 cross-check."""

import numpy as np
import pytest

from repro import DGAP, DGAPConfig
from repro.datasets import get_dataset
from repro.workloads import VirtualThreadScheduler, simulate_threads

SPEC = get_dataset("orkut")
EDGES = SPEC.generate(0.2)
NV, _ = SPEC.sizes(0.2)


def make_graph():
    return DGAP(DGAPConfig(init_vertices=NV, init_edges=EDGES.shape[0]))


class TestScheduler:
    def test_single_thread_equals_serial_time(self):
        g = make_graph()
        res = VirtualThreadScheduler(g, 1).run(list(map(tuple, EDGES[:5000])))
        assert res.n_threads == 1
        assert res.lock_wait_s == 0.0
        assert res.makespan_s == pytest.approx(sum(res.thread_busy_s), rel=1e-6)

    def test_more_threads_scale_throughput(self):
        results = simulate_threads(make_graph, EDGES[:20000], thread_counts=(1, 8))
        speedup = results[8].meps / results[1].meps
        assert 2.0 < speedup <= 8.0

    def test_speedup_saturates_like_table3(self):
        """The paper's DGAP scales ~2.6x at 8T, ~2.9x at 16T (Table 3)."""
        results = simulate_threads(make_graph, EDGES[:20000], thread_counts=(1, 8, 16))
        s8 = results[8].meps / results[1].meps
        s16 = results[16].meps / results[1].meps
        assert s16 >= s8 * 0.95  # monotone-ish
        assert s16 < 16  # never perfect (locks + media bandwidth)

    def test_hot_section_contention_hurts(self):
        """All writers hitting one vertex's section must serialize."""
        hot = np.column_stack([
            np.zeros(8000, dtype=np.int64),
            np.arange(8000, dtype=np.int64) % NV,
        ])
        res_hot = simulate_threads(make_graph, hot, thread_counts=(8,))[8]
        res_spread = simulate_threads(make_graph, EDGES[:8000], thread_counts=(8,))[8]
        assert res_hot.utilization < res_spread.utilization
        assert res_hot.lock_wait_s > res_spread.lock_wait_s

    def test_agrees_with_analytic_model_in_shape(self):
        """Event-level replay and the Amdahl+bandwidth model should land
        in the same scaling band for DGAP (within ~2x of each other)."""
        from repro.baselines import DGAPSystem

        sys8 = DGAPSystem(NV, EDGES.shape[0])
        sys8.insert_edges(map(tuple, EDGES[:20000]))
        analytic = sys8.insert_profile(edges=20000)
        sim = simulate_threads(make_graph, EDGES[:20000], thread_counts=(8,))[8]
        ratio = sim.meps / analytic.meps(8)
        assert 0.4 < ratio < 2.5, (sim.meps, analytic.meps(8))

    def test_bad_thread_count(self):
        with pytest.raises(ValueError):
            VirtualThreadScheduler(make_graph(), 0)

    def test_result_fields(self):
        res = simulate_threads(make_graph, EDGES[:2000], thread_counts=(4,))[4]
        assert res.edges == 2000
        assert len(res.thread_busy_s) == 4
        assert res.pm_media_bytes > 0
        assert 0 < res.utilization <= 1.0
