"""Unit tests for the per-section edge logs and per-thread undo logs."""

import numpy as np
import pytest

from repro import DGAP, DGAPConfig
from repro.core.edge_log import ENTRY_BYTES, EdgeLogs
from repro.core.encoding import encode_edge
from repro.core.undo_log import (
    PHASE_COMPACT,
    STATE_ACTIVE,
    STATE_COPYBACK,
    STATE_DONE,
    STATE_IDLE,
    UndoLog,
)
from repro.errors import PMemError
from repro.pmem import PMemPool


@pytest.fixture
def pool():
    return PMemPool(4 << 20)


class TestEdgeLogs:
    def test_append_and_read(self, pool):
        logs = EdgeLogs(pool, n_sections=4, entries_per_section=16)
        g0 = logs.append(1, src=5, dst_enc=int(encode_edge(9)), back_gidx=-1)
        g1 = logs.append(1, src=5, dst_enc=int(encode_edge(11)), back_gidx=g0)
        assert logs.counts[1] == 2
        src, dst, back = logs.read_entry(g1)
        assert src == 5 and dst == int(encode_edge(11)) and back == g0
        assert logs.read_entry(g0)[2] == -1

    def test_chain_walk_newest_first(self, pool):
        logs = EdgeLogs(pool, 2, 16)
        g = -1
        for d in (1, 2, 3):
            g = logs.append(0, 7, int(encode_edge(d)), g)
        chain = logs.walk_chain(g)
        assert [c[2] for c in chain] == [int(encode_edge(3)), int(encode_edge(2)), int(encode_edge(1))]

    def test_walk_chain_limit(self, pool):
        logs = EdgeLogs(pool, 2, 16)
        g = -1
        for d in range(5):
            g = logs.append(0, 7, int(encode_edge(d)), g)
        assert len(logs.walk_chain(g, limit=2)) == 2

    def test_fill_fraction_and_overflow(self, pool):
        logs = EdgeLogs(pool, 2, 4)
        for d in range(4):
            logs.append(0, 1, int(encode_edge(d)), -1)
        assert logs.fill_fraction(0) == 1.0
        with pytest.raises(PMemError):
            logs.append(0, 1, int(encode_edge(99)), -1)

    def test_clear_section(self, pool):
        logs = EdgeLogs(pool, 2, 8)
        logs.append(0, 1, int(encode_edge(5)), -1)
        logs.clear_section(0)
        assert logs.counts[0] == 0 and logs.live_counts[0] == 0
        assert logs.section_entries(0).size == 0

    def test_invalidate_keeps_siblings(self, pool):
        logs = EdgeLogs(pool, 2, 8)
        ga = logs.append(0, 1, int(encode_edge(5)), -1)
        gb = logs.append(0, 2, int(encode_edge(6)), -1)
        logs.invalidate_entries([ga])
        assert logs.live_counts[0] == 1
        # sibling entry still readable
        assert logs.read_entry(gb)[0] == 2
        with pytest.raises(PMemError):
            logs.walk_chain(ga)

    def test_rebuild_counts_after_crash(self, pool):
        logs = EdgeLogs(pool, 4, 8)
        for d in range(5):
            logs.append(2, 1, int(encode_edge(d)), -1)
        logs.append(3, 2, int(encode_edge(7)), -1)
        pool.crash()  # appends are persisted, DRAM counters survive anyway
        fresh = EdgeLogs(pool, 4, 8, create=False)
        fresh.rebuild_counts()
        np.testing.assert_array_equal(fresh.counts, [0, 0, 5, 1])
        np.testing.assert_array_equal(fresh.live_counts, [0, 0, 5, 1])

    def test_rebuild_counts_skips_invalidated_interior(self, pool):
        logs = EdgeLogs(pool, 1, 8)
        g0 = logs.append(0, 1, int(encode_edge(1)), -1)
        logs.append(0, 2, int(encode_edge(2)), -1)
        logs.invalidate_entries([g0])
        fresh = EdgeLogs(pool, 1, 8, create=False)
        fresh.rebuild_counts()
        assert fresh.counts[0] == 2  # append frontier after the last entry
        assert fresh.live_counts[0] == 1

    def test_entry_is_12_bytes(self):
        assert ENTRY_BYTES == 12


class TestUndoLog:
    def test_lifecycle(self, pool):
        ul = UndoLog(pool, 0, 2048)
        ul.begin(100, 200, PHASE_COMPACT)
        h = ul.read_header()
        assert h.state == STATE_ACTIVE and (h.win_lo, h.win_hi) == (100, 200)
        ul.mark_done(100, 200)
        assert ul.read_header().state == STATE_DONE
        ul.finish()
        assert ul.read_header().state == STATE_IDLE

    def test_backup_restore(self, pool):
        ul = UndoLog(pool, 0, 2048)
        region = pool.alloc_array("data", np.uint8, 4096, initial=7)
        ul.begin(0, 1024, PHASE_COMPACT)
        ul.backup(region.offset, 512, step=1)
        # clobber the protected range
        pool.device.store(region.offset, np.zeros(512, np.uint8))
        pool.device.persist(region.offset, 512)
        assert ul.restore_if_valid()
        assert (region.view[:512] == 7).all()
        assert ul.read_header().valid == 0

    def test_restore_without_backup_is_noop(self, pool):
        ul = UndoLog(pool, 0, 2048)
        ul.begin(0, 10, PHASE_COMPACT)
        assert not ul.restore_if_valid()

    def test_snapshot_window_fused(self, pool):
        ul = UndoLog(pool, 0, 2048)
        region = pool.alloc_array("data", np.uint8, 4096, initial=3)
        fences_before = pool.stats.fences
        ul.snapshot_window(0, 128, region.offset, 512)
        assert pool.stats.fences - fences_before == 2  # the economy claim
        h = ul.read_header()
        assert h.state == STATE_ACTIVE and h.valid == 1 and h.length == 512
        pool.device.store(region.offset, np.zeros(512, np.uint8))
        pool.device.persist(region.offset, 512)
        assert ul.restore_if_valid()
        assert (region.view[:512] == 3).all()

    def test_oversize_backup_asserts(self, pool):
        ul = UndoLog(pool, 0, 256)
        with pytest.raises(AssertionError):
            ul.backup(0, 512, step=1)

    def test_copyback_state(self, pool):
        ul = UndoLog(pool, 0, 2048)
        ul.begin_copyback(0, 4096, 12345, 16384)
        h = ul.read_header()
        assert h.state == STATE_COPYBACK
        assert h.dst_off == 12345 and h.length == 16384

    def test_header_survives_crash(self, pool):
        ul = UndoLog(pool, 3, 2048)
        ul.begin(64, 128, PHASE_COMPACT)
        pool.crash()
        ul2 = UndoLog(pool, 3, 2048, create=False)
        h = ul2.read_header()
        assert h.state == STATE_ACTIVE and (h.win_lo, h.win_hi) == (64, 128)

    def test_per_thread_isolation(self, pool):
        a = UndoLog(pool, 0, 1024)
        b = UndoLog(pool, 1, 1024)
        a.begin(0, 10, PHASE_COMPACT)
        assert b.read_header().state == STATE_IDLE


class TestCompactionTombstoneAccounting:
    """Tombstone-merge sweeps vs the log/recovery accounting contracts.

    The audit behind the temporal expiry path: a compaction sweep
    removes *matched* tombstone+live pairs only, so

    * array entries shrink by exactly 2 per dropped pair and tombstone
      count by exactly 1 (the ``compact()`` stats ledger);
    * unmatched tombstones (deletes with no live copy) survive the
      sweep, which keeps the recovery scan's
      ``live = entries - 2 * tombstones`` derivation exact even for a
      fully-expired vertex run whose live degree is negative;
    * the per-section edge logs end the sweep drained (``el == -1`` for
      every vertex) with DRAM cursors that ``rebuild_counts`` reproduces
      from the persistent entries alone.
    """

    def graph(self):
        return DGAP(DGAPConfig(
            init_vertices=8, init_edges=256, segment_slots=64, elog_size=96
        ))

    def expired_run(self):
        """Vertex 3's run fully expires (every copy deleted), then two
        unmatched tombstones land on top; vertex 1 keeps live edges."""
        g = self.graph()
        for d in (0, 1, 2, 0, 4, 5):
            g.insert_edge(3, d)
        for d in (1, 2):
            g.insert_edge(1, d)
        for d in (0, 1, 2, 0, 4, 5):
            g.delete_edge(3, d)
        g.delete_edge(3, 6)  # unmatched: no live copy of (3, 6)
        g.delete_edge(3, 6)
        return g

    def test_stats_ledger_balances(self):
        g = self.expired_run()
        density_before = g.tombstone_density()
        stats = g.compact()
        assert stats["entries_before"] - stats["entries_after"] == \
            2 * stats["pairs_dropped"]
        assert stats["tombstones_before"] - stats["tombstones_after"] == \
            stats["pairs_dropped"]
        assert stats["pairs_dropped"] == 6
        assert stats["tombstones_after"] == 2  # the unmatched pair of deletes
        # non-increase is the contract; the surviving unmatched
        # tombstones keep this tiny graph pinned at 0.5
        assert g.tombstone_density() <= density_before
        assert g.n_compactions == 1
        assert g.tombstone_pairs_compacted == 6

    def test_fully_expired_run_keeps_scan_derivation_exact(self):
        g = self.expired_run()
        g.compact()
        va = g.va
        # the run is only the unmatched tombstones now
        assert int(va.degree[3]) == int(va.array_degree[3]) == 2
        assert int(va.live_degree[3]) == -2
        # recovery's derivation: live = entries - 2 * tombstones
        assert int(va.live_degree[3]) == int(va.degree[3]) - 2 * 2
        assert g.out_neighbors(3).size == 0
        np.testing.assert_array_equal(sorted(g.out_neighbors(1)), [1, 2])
        g.check_invariants()

    def test_logs_drained_and_cursors_rebuildable(self):
        g = self.graph()
        rng = np.random.default_rng(8)
        edges = rng.integers(0, 8, size=(150, 2), dtype=np.int64)
        g.insert_edges(edges)
        for s, d in edges[::3]:
            g.delete_edge(int(s), int(d))
        g.compact()
        assert (g.va.els() == -1).all()  # every chain merged by the sweep
        counts = g.logs.counts.copy()
        live = g.logs.live_counts.copy()
        g.logs.rebuild_counts()
        np.testing.assert_array_equal(g.logs.counts, counts)
        np.testing.assert_array_equal(g.logs.live_counts, live)

    def test_recovery_after_compaction_rebuilds_same_state(self):
        g = self.expired_run()
        g.insert_edges(np.array([[5, 1], [5, 2], [5, 1]], dtype=np.int64))
        g.delete_edge(5, 1)
        g.compact()
        before = {
            v: g.out_neighbors(v).tolist() for v in range(g.num_vertices)
        }
        deg = g.va.degrees().copy()
        live = g.va.live_degrees().copy()
        g.pool.crash()
        g2 = DGAP.open(g.pool, g.config)
        assert {
            v: g2.out_neighbors(v).tolist() for v in range(g2.num_vertices)
        } == before
        np.testing.assert_array_equal(g2.va.degrees(), deg)
        np.testing.assert_array_equal(g2.va.live_degrees(), live)
        assert g2.n_compactions == 0  # counters are runtime, not persistent
        g2.check_invariants()


class TestChainArrayPaths:
    """Ndarray chain walks: walk_chain_arrays and resolve_chains."""

    def test_walk_chain_arrays_matches_walk_chain(self, pool):
        logs = EdgeLogs(pool, 2, 16)
        g = -1
        for d in (4, 5, 6, 7):
            g = logs.append(1, 9, int(encode_edge(d)), g)
        gidxs, srcs, dst_encs = logs.walk_chain_arrays(g)
        expect = logs.walk_chain(g)
        assert list(zip(gidxs.tolist(), srcs.tolist(), dst_encs.tolist())) == expect
        assert srcs.tolist() == [9, 9, 9, 9]

    def test_walk_chain_arrays_limit_and_growth(self, pool):
        logs = EdgeLogs(pool, 8, 64)
        g = -1
        for d in range(50):  # force the chain buffer to grow past 32
            g = logs.append(0, 1, int(encode_edge(d)), g)
        gidxs, _, dst_encs = logs.walk_chain_arrays(g)
        assert gidxs.size == 50
        assert dst_encs[0] == int(encode_edge(49))  # newest first
        assert logs.walk_chain_arrays(g, limit=3)[0].size == 3

    def test_resolve_chains_matches_per_head_walks(self, pool):
        logs = EdgeLogs(pool, 4, 16)
        heads = []
        for v, n in ((0, 3), (1, 0), (2, 5), (3, 1)):
            g = -1
            for d in range(n):
                g = logs.append(v % 4, v, int(encode_edge(d)), g)
            heads.append(g)
        counts, gidxs, dst_encs = logs.resolve_chains(
            np.asarray(heads), expect_src=np.arange(4)
        )
        assert counts.tolist() == [3, 0, 5, 1]
        off = 0
        for h, c in zip(heads, counts.tolist()):
            walked = logs.walk_chain(h) if h >= 0 else []
            assert gidxs[off : off + c].tolist() == [w[0] for w in walked]
            assert dst_encs[off : off + c].tolist() == [w[2] for w in walked]
            off += c

    def test_resolve_chains_no_heads(self, pool):
        logs = EdgeLogs(pool, 2, 8)
        counts, gidxs, dst_encs = logs.resolve_chains(np.asarray([-1, -1]))
        assert counts.tolist() == [0, 0] and gidxs.size == 0 and dst_encs.size == 0

    def test_resolve_chains_corrupt_root_raises(self, pool):
        from repro.errors import GraphError

        logs = EdgeLogs(pool, 2, 8)
        head = logs.append(0, 6, int(encode_edge(1)), -1)  # oldest names src 6
        with pytest.raises(GraphError, match="vertex 5"):
            logs.resolve_chains(np.asarray([head]), expect_src=np.asarray([5]))

    def test_gather_entries_matches_read_entry(self, pool):
        logs = EdgeLogs(pool, 4, 16)
        gs = [logs.append(i % 4, i, int(encode_edge(i + 1)), -1) for i in range(6)]
        rows = logs.gather_entries(np.asarray(gs))
        for row, g in zip(rows, gs):
            src, dst_enc, back = logs.read_entry(g)
            assert (int(row[0]) - 1, int(row[1]), int(row[2]) - 2) == (src, dst_enc, back)
