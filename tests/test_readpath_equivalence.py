"""Scalar-reference vs vectorized read-path equivalence.

The bulk pmem read layer (``load_batch``/``gather_span``) rewrote the
rebalance gather/plan passes and the recovery scan/replay/cursor-rebuild
as whole-window NumPy operations; ``DGAPConfig.scalar_readpath`` keeps
the original per-slot/per-entry loops as a reference.  The contract is
exact equivalence: same results, same persistent bytes, and the same
device accounting (counters *and* modeled time, bit for bit).  These
tests pin that contract on randomized workloads, including tombstoned
edges, invalidated log entries, and torn (partially persisted) entries.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DGAP, DGAPConfig
from repro.core.edge_log import ENTRY_BYTES, EdgeLogs
from repro.core.encoding import encode_edge
from repro.errors import PMemError
from repro.pmem import PMemPool

common = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# (src, dst, delete?) op streams on a small vertex universe — small enough
# to hammer merges and rebalances, big enough to grow real chains.
op_streams = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15), st.booleans()),
    min_size=1,
    max_size=250,
)


def _build(scalar: bool, ops) -> DGAP:
    g = DGAP(
        DGAPConfig(
            init_vertices=16,
            init_edges=256,
            elog_size=96,  # 8 entries/section: frequent merges
            segment_slots=64,
            scalar_readpath=scalar,
        )
    )
    inserted = set()
    for src, dst, delete in ops:
        if delete and (src, dst) in inserted:
            g.delete_edge(src, dst)
            inserted.discard((src, dst))
        else:
            g.insert_edge(src, dst)
            inserted.add((src, dst))
    return g


def _assert_devices_equal(ga: DGAP, gb: DGAP) -> None:
    da, db = ga.pool.device, gb.pool.device
    assert np.array_equal(da.buf, db.buf)
    assert np.array_equal(da.media, db.media)
    sa, sb = vars(da.stats), vars(db.stats)
    assert sa == sb, {k: (sa[k], sb[k]) for k in sa if sa[k] != sb[k]}


def _assert_graphs_equal(ga: DGAP, gb: DGAP) -> None:
    _assert_devices_equal(ga, gb)
    va, vb = ga.va, gb.va
    nv = va.num_vertices
    assert nv == vb.num_vertices
    for name in ("degree", "live_degree", "array_degree", "start", "el"):
        np.testing.assert_array_equal(
            getattr(va, name)[:nv], getattr(vb, name)[:nv], err_msg=name
        )


class TestTwinWorkloads:
    """Whole-workload twins: every merge/rebalance lands identically."""

    @given(op_streams)
    @common
    def test_ingest_equivalence(self, ops):
        _assert_graphs_equal(_build(True, ops), _build(False, ops))

    @given(op_streams)
    @common
    def test_crash_recovery_equivalence(self, ops):
        gs, gv = _build(True, ops), _build(False, ops)
        gs.pool.crash()
        gv.pool.crash()
        rs = DGAP.open(gs.pool, gs.config)
        rv = DGAP.open(gv.pool, gv.config)
        _assert_graphs_equal(rs, rv)
        assert rs.num_edges == rv.num_edges

    @given(op_streams)
    @common
    def test_forced_rebalance_equivalence(self, ops):
        gs, gv = _build(True, ops), _build(False, ops)
        for g in (gs, gv):
            g.rebalancer.rebalance_window(0, g.ea.n_sections, g.ea.tree.height)
        _assert_graphs_equal(gs, gv)


class TestGatherPlanEquivalence:
    """The rebalance passes themselves, on the same graph instance."""

    @given(op_streams)
    @common
    def test_gather_matches_scalar(self, ops):
        g = _build(False, ops)
        lo, hi = 0, g.ea.capacity
        i0, j = 0, g.va.num_vertices
        res_v = g.rebalancer._gather(lo, hi, i0, j)
        res_s = g.rebalancer._gather_scalar(lo, hi, i0, j)
        assert res_v.total == res_s.total
        np.testing.assert_array_equal(res_v.sizes, res_s.sizes)
        np.testing.assert_array_equal(res_v.values[: res_v.sizes.sum()],
                                      res_s.values[: res_s.sizes.sum()])
        np.testing.assert_array_equal(np.asarray(res_v.chain_gidxs),
                                      np.asarray(res_s.chain_gidxs))
        for rv, rs in zip(res_v.runs, res_s.runs):
            np.testing.assert_array_equal(rv, rs)

    @given(op_streams)
    @common
    def test_gather_accounting_matches_scalar(self, ops):
        gs, gv = _build(True, ops), _build(False, ops)
        for g in (gs, gv):
            before = g.pool.device.stats.snapshot()
            g.rebalancer._gather(0, g.ea.capacity, 0, g.va.num_vertices)
            g._delta = g.pool.device.stats.delta_since(before)
        assert vars(gs._delta) == vars(gv._delta)

    @given(op_streams)
    @common
    def test_plan_matches_scalar(self, ops):
        g = _build(False, ops)
        res = g.rebalancer._gather(0, g.ea.capacity, 0, g.va.num_vertices)
        image_v, starts_v = g.rebalancer._plan(res)
        image_s, starts_s = g.rebalancer._plan_scalar(res)
        np.testing.assert_array_equal(np.asarray(image_v), np.asarray(image_s))
        np.testing.assert_array_equal(np.asarray(starts_v), np.asarray(starts_s))


class TestRecoveryEquivalenceWithFaults:
    """Cursor rebuild on logs with invalidated and torn entries."""

    @given(
        st.lists(  # (section, src, n_appends)
            st.tuples(st.integers(0, 3), st.integers(0, 9), st.integers(1, 10)),
            min_size=0,
            max_size=8,
        ),
        st.data(),
    )
    @common
    def test_rebuild_counts_equivalence(self, chains, data):
        pool = PMemPool(4 << 20)
        logs = EdgeLogs(pool, n_sections=4, entries_per_section=16)
        appended = []
        for section, src, n in chains:
            gidx = -1
            for k in range(n):
                if logs.fill_fraction(section) >= 1.0:
                    break
                gidx = logs.append(section, src, int(encode_edge(k)), gidx)
                appended.append(gidx)
        # invalidate a random subset (zero dst_enc, like post-merge cleanup)
        if appended:
            victims = data.draw(st.lists(st.sampled_from(appended), unique=True))
            logs.invalidate_entries(victims)
            # tear a random *interior* entry fully open: zero another field
            # too (a torn append persists any subset of its three fields)
            torn = data.draw(st.sampled_from(appended))
            s, slot = logs.locate(torn)
            logs.region.write(logs._base(s) + slot * 3 + 2, 0, payload=0)

        logs_v = EdgeLogs(pool, 4, 16, create=False)
        logs_v.rebuild_counts(scalar=False)
        logs_s = EdgeLogs(pool, 4, 16, create=False)
        logs_s.rebuild_counts(scalar=True)
        np.testing.assert_array_equal(logs_v.counts, logs_s.counts)
        np.testing.assert_array_equal(logs_v.live_counts, logs_s.live_counts)

    def test_rebuild_counts_accounting_matches(self):
        pools = []
        for scalar in (True, False):
            pool = PMemPool(1 << 20)
            logs = EdgeLogs(pool, 4, 16)
            g = -1
            for d in range(5):
                g = logs.append(2, 7, int(encode_edge(d)), g)
            before = pool.device.stats.snapshot()
            logs.rebuild_counts(scalar=scalar)
            pools.append(vars(pool.device.stats.delta_since(before)))
        assert pools[0] == pools[1]

    @given(op_streams)
    @common
    def test_recovery_scan_and_replay_match_scalar(self, ops):
        from repro.core import recovery as rec

        gs, gv = _build(True, ops), _build(False, ops)
        for g in (gs, gv):
            g.pool.crash()
        outs = []
        for g, scalar in ((gs, True), (gv, False)):
            g.logs.rebuild_counts(scalar=scalar)
            scan = rec._scan_edge_array_scalar(g) if scalar else rec._scan_edge_array(g)
            outs.append(scan)
        for a, b in zip(*outs):
            np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


class TestChainErrors:
    """Both walk forms reject invalidated chain hops identically."""

    def test_walk_and_resolve_agree_on_invalidated(self):
        pool = PMemPool(1 << 20)
        logs = EdgeLogs(pool, 2, 16)
        g0 = logs.append(0, 3, int(encode_edge(1)), -1)
        g1 = logs.append(0, 3, int(encode_edge(2)), g0)
        logs.invalidate_entries([g0])
        with pytest.raises(PMemError, match="invalidated entry"):
            logs.walk_chain(g1)
        with pytest.raises(PMemError, match="invalidated entry"):
            logs.resolve_chains(np.asarray([g1]))


class TestScratchBuffer:
    def test_grow_only_reuse(self):
        from repro.nputil import ScratchBuffer

        sb = ScratchBuffer()
        a = sb.take("x", 100, np.int64)
        assert a.size == 100
        b = sb.take("x", 50, np.int64)
        assert b.base is a.base or b.base is a  # same backing buffer reused
        c = sb.take("x", 10_000, np.int64)
        assert c.size == 10_000  # grew

    def test_zero_fill_and_dtype_keys(self):
        from repro.nputil import ScratchBuffer

        sb = ScratchBuffer()
        a = sb.take("k", 64, np.int32)
        a[:] = 7
        z = sb.take("k", 64, np.int32, zero=True)
        assert not z.any()
        other = sb.take("k", 64, np.int64)
        assert other.dtype == np.int64  # distinct per-dtype buffers

    def test_multi_arange_reference(self):
        from repro.nputil import multi_arange

        starts = np.asarray([5, 0, 100])
        counts = np.asarray([3, 0, 2])
        np.testing.assert_array_equal(multi_arange(starts, counts), [5, 6, 7, 100, 101])
        assert multi_arange(np.empty(0, np.int64), np.empty(0, np.int64)).size == 0
