"""Dataset proxy generators: determinism, shape, skew."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    PAPER_DATASETS,
    SMALL_DATASETS,
    get_dataset,
    rmat_edges,
    shuffle_edges,
    uniform_edges,
)


class TestRMAT:
    def test_shape_and_range(self):
        e = rmat_edges(256, 5000, seed=1)
        assert e.shape == (5000, 2)
        assert e.min() >= 0 and e.max() < 256

    def test_deterministic(self):
        a = rmat_edges(128, 1000, seed=7)
        b = rmat_edges(128, 1000, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_output(self):
        a = rmat_edges(128, 1000, seed=1)
        b = rmat_edges(128, 1000, seed=2)
        assert not np.array_equal(a, b)

    def test_no_self_loops(self):
        e = rmat_edges(64, 3000, seed=3)
        assert (e[:, 0] != e[:, 1]).all()

    def test_power_law_skew(self):
        """R-MAT hubs: the top 1% of vertices hold a large edge share."""
        e = rmat_edges(4096, 200_000, a=0.57, b=0.19, c=0.19, seed=5)
        deg = np.bincount(e[:, 0], minlength=4096)
        top = np.sort(deg)[-41:].sum()
        assert top / 200_000 > 0.10
        # uniform graphs are much flatter
        u = uniform_edges(4096, 200_000, seed=5)
        udeg = np.bincount(u[:, 0], minlength=4096)
        assert np.sort(udeg)[-41:].sum() < 0.5 * top

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            rmat_edges(1, 10)
        with pytest.raises(ValueError):
            rmat_edges(64, 10, a=0.5, b=0.3, c=0.3)

    def test_shuffle_is_permutation(self):
        e = rmat_edges(64, 500, seed=1)
        s = shuffle_edges(e, seed=2)
        assert not np.array_equal(e, s)
        assert np.array_equal(
            np.sort(e.view([("s", e.dtype), ("d", e.dtype)]).ravel()),
            np.sort(s.view([("s", e.dtype), ("d", e.dtype)]).ravel()),
        )


class TestRegistry:
    def test_all_six_paper_datasets(self):
        assert set(PAPER_DATASETS) == {
            "orkut", "livejournal", "citpatents", "twitter", "friendster", "protein"
        }

    def test_registry_adds_scale_notch(self):
        assert set(DATASETS) == set(PAPER_DATASETS) | {"scale"}
        s = get_dataset("scale")
        assert s.domain == "synthetic"
        # strictly above the largest paper proxy so shard runs have headroom
        assert s.proxy_vertices > max(p.proxy_vertices for p in PAPER_DATASETS.values())

    def test_ratios_match_paper_table2(self):
        assert get_dataset("orkut").ratio == 76
        assert get_dataset("livejournal").ratio == 18
        assert get_dataset("citpatents").ratio == 6
        assert get_dataset("twitter").ratio == 39
        assert get_dataset("friendster").ratio == 29
        assert get_dataset("protein").ratio == 149

    def test_sizes_scale(self):
        spec = get_dataset("orkut")
        nv1, ne1 = spec.sizes(1.0)
        nv2, ne2 = spec.sizes(2.0)
        assert nv2 == 2 * nv1 and ne2 == 2 * ne1
        assert ne1 == nv1 * 76

    def test_generate_deterministic(self):
        spec = get_dataset("livejournal")
        a = spec.generate(0.05)
        b = spec.generate(0.05)
        np.testing.assert_array_equal(a, b)

    def test_warmup_split(self):
        spec = get_dataset("orkut")
        edges = spec.generate(0.05)
        warm, timed = spec.split_warmup(edges)
        assert warm.shape[0] == int(edges.shape[0] * 0.10)
        assert warm.shape[0] + timed.shape[0] == edges.shape[0]

    def test_xpgraph_log_fit_rule(self):
        """Paper: the 8GB log holds 512M 16B edges — the small trio fits."""
        for ds in SMALL_DATASETS:
            assert get_dataset(ds).real_fits_xpgraph_log
        for ds in ("twitter", "friendster", "protein"):
            assert not get_dataset(ds).real_fits_xpgraph_log

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_dataset("facebook")
