"""Sharded multi-pool DGAP: partition algebra, routing, merged views.

The load-bearing contract is *byte identity*: a :class:`ShardedDGAP`
fed an edge stream materializes exactly the CSR (out and in) of an
unsharded DGAP fed the same stream — same dtypes, same element order,
same bytes — so every analysis kernel (including order-sensitive float
reductions like PageRank) is oblivious to sharding.
"""

import numpy as np
import pytest

from repro import DGAP, DGAPConfig
from repro.analysis.viewcache import DGAPViewCache
from repro.datasets import get_dataset
from repro.errors import GraphError
from repro.sharding import (
    ShardedDGAP,
    ShardRouter,
    global_vertex_count,
    local_count,
    local_ids_to_global,
    shard_config,
    shard_of,
    to_global,
    to_local,
)


def reference_csr(edges, nv, init_edges=None):
    """((out_indptr, out_dsts), (in_indptr, in_srcs)) of an unsharded build."""
    g = DGAP(DGAPConfig(init_vertices=nv, init_edges=init_edges or max(len(edges), 256)))
    g.insert_edges(edges)
    with g.consistent_view() as snap:
        return DGAPViewCache(g).materialize(snap)


def assert_csr_bytes_equal(a, b):
    (ao_ip, ao_ds), (ai_ip, ai_ss) = a
    (bo_ip, bo_ds), (bi_ip, bi_ss) = b
    for x, y in ((ao_ip, bo_ip), (ao_ds, bo_ds), (ai_ip, bi_ip), (ai_ss, bi_ss)):
        assert x.dtype == y.dtype
        assert x.tobytes() == y.tobytes()


def stream(n_edges=4000, nv=600, seed=11):
    rng = np.random.default_rng(seed)
    return np.column_stack([
        rng.integers(0, nv, size=n_edges),
        rng.integers(0, nv, size=n_edges),
    ]).astype(np.int64)


class TestPartition:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
    def test_bijective_over_prefix(self, n):
        g = np.arange(5000)
        r = shard_of(g, n)
        l = to_local(g, n)
        assert ((r >= 0) & (r < n)).all()
        np.testing.assert_array_equal(to_global(l, r, n), g)
        # distinct (shard, local) pairs — a bijection onto 0..4999
        assert len(set(zip(r.tolist(), l.tolist()))) == g.size

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("mg", [0, 1, 6, 7, 8, 100, 1023])
    def test_local_count_partitions_prefix(self, n, mg):
        counts = [local_count(mg, r, n) for r in range(n)]
        assert sum(counts) == mg + 1
        # counts match enumeration
        r_all = shard_of(np.arange(mg + 1), n)
        for r in range(n):
            assert counts[r] == int((r_all == r).sum())
        assert global_vertex_count(counts) == mg + 1

    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_local_ids_to_global_ascends_and_inverts(self, n):
        gids = local_ids_to_global(1000, 3 % n, n)
        assert (np.diff(gids) > 0).all()
        np.testing.assert_array_equal(to_local(gids, n), np.arange(1000))
        np.testing.assert_array_equal(shard_of(gids, n), 3 % n)

    def test_hub_ids_spread_across_shards(self):
        # RMAT hubs concentrate at ids divisible by large powers of two;
        # the block-mixed partition must not map them all to shard 0.
        hubs = np.arange(64) * 1024
        assert len(set(shard_of(hubs, 4).tolist())) == 4


class TestRouterAndConfig:
    def test_router_rejects_zero_shards(self):
        with pytest.raises(GraphError):
            ShardRouter(0)

    def test_shard_config_splits_initial_vertices_exactly(self):
        cfg = DGAPConfig(init_vertices=10, init_edges=1024)
        lcs = [shard_config(cfg, r, 3).init_vertices for r in range(3)]
        assert sum(lcs) == 10

    def test_shard_config_rejects_empty_shard(self):
        with pytest.raises(GraphError):
            shard_config(DGAPConfig(init_vertices=2, init_edges=64), 2, 4)

    def test_sharded_rejects_fewer_vertices_than_shards(self):
        with pytest.raises(GraphError):
            ShardedDGAP(4, DGAPConfig(init_vertices=2, init_edges=64))


class TestShardedFacade:
    def make(self, nv=600, n=4, init_edges=16384):
        return ShardedDGAP(n, DGAPConfig(init_vertices=nv, init_edges=init_edges))

    def test_vertex_and_edge_counts(self):
        sh = self.make(nv=600)
        assert sh.num_vertices == 600
        assert sh.num_edges == 0
        sh.insert_edges(stream(1000, nv=600))
        assert sh.num_edges == 1000

    def test_insert_vertex_grows_every_owner(self):
        sh = self.make(nv=10, n=3)
        sh.insert_vertex(99)
        assert sh.num_vertices == 100
        assert sum(s.num_vertices for s in sh.shards) == 100

    def test_scalar_insert_and_neighbors(self):
        sh = self.make(nv=50)
        sh.insert_edge(7, 30)
        sh.insert_edge(7, 12)
        sh.insert_edge(8, 7)
        assert sh.out_degree(7) == 2
        np.testing.assert_array_equal(np.sort(sh.out_neighbors(7)), [12, 30])
        assert sh.out_degree(0) == 0

    def test_delete_edge_tombstones(self):
        sh = self.make(nv=50)
        sh.insert_edge(3, 9)
        sh.insert_edge(3, 11)
        sh.delete_edge(3, 9)
        np.testing.assert_array_equal(sh.out_neighbors(3), [11])

    def test_group_stats_parallel_clock(self):
        sh = self.make(nv=600)
        before = sh.pool.stats.snapshot()
        sh.insert_edges(stream(2000, nv=600))
        d = sh.pool.stats.delta_since(before)
        per = [x.modeled_ns for x in d.per_shard]
        assert d.modeled_ns == max(per)
        assert d.media_bytes == sum(x.media_bytes for x in d.per_shard)
        assert sh.pool.stats.modeled_ns == max(
            p.stats.modeled_ns for p in sh.pool.pools
        )

    def test_check_invariants_runs_per_shard(self):
        sh = self.make(nv=600)
        sh.insert_edges(stream(1500, nv=600))
        sh.check_invariants()


class TestMergedViewIdentity:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_byte_identity_uniform_stream(self, n):
        edges = stream(4000, nv=600)
        sh = ShardedDGAP(n, DGAPConfig(init_vertices=600, init_edges=16384))
        sh.insert_edges(edges)
        assert_csr_bytes_equal(sh.global_csr(), reference_csr(edges, 600, 16384))

    def test_byte_identity_skewed_rmat_stream(self):
        spec = get_dataset("citpatents")
        edges = spec.generate(0.05)
        nv, _ = spec.sizes(0.05)
        sh = ShardedDGAP(4, DGAPConfig(init_vertices=nv, init_edges=len(edges)))
        sh.insert_edges(edges)
        assert_csr_bytes_equal(
            sh.global_csr(), reference_csr(edges, nv, len(edges))
        )

    def test_byte_identity_with_tombstones(self):
        rng = np.random.default_rng(5)
        edges = stream(3000, nv=400, seed=5)
        sh = ShardedDGAP(3, DGAPConfig(init_vertices=400, init_edges=16384))
        g = DGAP(DGAPConfig(init_vertices=400, init_edges=16384))
        sh.insert_edges(edges)
        g.insert_edges(edges)
        for i in rng.choice(len(edges), size=200, replace=False):
            s, d = int(edges[i, 0]), int(edges[i, 1])
            sh.delete_edge(s, d)
            g.delete_edge(s, d)
        with g.consistent_view() as snap:
            ref = DGAPViewCache(g).materialize(snap)
        assert_csr_bytes_equal(sh.global_csr(), ref)

    def test_byte_identity_incremental_refresh_and_growth(self):
        # second materialize goes down the merge-refresh path, and the
        # second batch grows the destination domain past init_vertices
        e1 = stream(2000, nv=300, seed=7)
        rng = np.random.default_rng(8)
        e2 = np.column_stack([
            rng.integers(0, 450, size=1500),
            rng.integers(0, 450, size=1500),
        ]).astype(np.int64)
        sh = ShardedDGAP(4, DGAPConfig(init_vertices=300, init_edges=16384))
        sh.insert_edges(e1)
        first = sh.global_csr()
        assert_csr_bytes_equal(first, reference_csr(e1, 300, 16384))
        sh.insert_edges(e2)
        assert sh.num_vertices == 450
        g = DGAP(DGAPConfig(init_vertices=300, init_edges=16384))
        g.insert_edges(np.concatenate([e1, e2]))
        gcache = DGAPViewCache(g)
        with g.consistent_view() as snap:
            ref = gcache.materialize(snap)
        assert_csr_bytes_equal(sh.global_csr(), ref)
        # a small no-growth delta must take the incremental merge path
        # in at least one shard — and stay byte-identical
        e3 = stream(60, nv=450, seed=21)
        sh.insert_edges(e3)
        g.insert_edges(e3)
        with g.consistent_view() as snap:
            ref = gcache.materialize(snap)
        assert_csr_bytes_equal(sh.global_csr(), ref)
        assert any(s.incremental_builds > 0 for s in sh._view_cache.stats)

    def test_identity_survives_shutdown_and_open(self):
        edges = stream(2500, nv=500, seed=9)
        cfg = DGAPConfig(init_vertices=500, init_edges=16384)
        sh = ShardedDGAP(4, cfg)
        sh.insert_edges(edges)
        want = sh.global_csr()
        sh.shutdown()
        sh2 = ShardedDGAP.open(sh.pool, cfg)
        assert sh2.num_vertices == 500
        assert sh2.num_edges == sh.num_edges
        assert_csr_bytes_equal(sh2.global_csr(), want)


class TestShardedVThreads:
    def test_run_sharded_beats_single_instance(self):
        from repro.workloads.vthreads import VirtualThreadScheduler, run_sharded

        spec = get_dataset("citpatents")
        edges = spec.generate(0.05)
        nv, _ = spec.sizes(0.05)
        pairs = [tuple(e) for e in edges.tolist()]

        single = DGAP(DGAPConfig(init_vertices=nv, init_edges=len(edges)))
        base = VirtualThreadScheduler(single, 16).run(pairs)

        sh = ShardedDGAP(4, DGAPConfig(init_vertices=nv, init_edges=len(edges)))
        res = run_sharded(sh, edges, 16)
        assert len(res.per_shard) == 4
        assert res.makespan_s == max(r.makespan_s for r in res.per_shard)
        # 4 independent media lanes: comfortably faster than one pool
        # (hub-section serial chains keep it below the ideal 4x)
        assert base.makespan_s / res.makespan_s > 1.4

    def test_run_sharded_matches_batched_contents(self):
        from repro.workloads.vthreads import run_sharded

        edges = stream(1200, nv=300, seed=13)
        sh = ShardedDGAP(3, DGAPConfig(init_vertices=300, init_edges=16384))
        run_sharded(sh, edges, 8)
        assert_csr_bytes_equal(sh.global_csr(), reference_csr(edges, 300, 16384))
