"""Golden-trace regression tests (ISSUE 5 satellite).

One small deterministic ingest — the orkut proxy at scale 0.1, fixed
generator seeds, the default batch pipeline — is traced and its span
tree plus per-span integer counter deltas are pinned as a JSON fixture.
Any unintentional drift in hot-path event structure (an extra flush per
batch round, a lost merge, a rebalance that stopped nesting under its
trigger) fails with a readable line diff.

Regenerate the fixture after an *intentional* change with::

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/test_golden_trace.py

and inspect the diff in review — the fixture is the contract.
"""

import difflib
import json
import os
from pathlib import Path

from repro.bench.profile import profile_insert
from repro.obs import Tracer, golden_tree, render_tree, tracing

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_trace.json"

DATASET = "orkut"
SCALE = 0.1
BATCH = 512


def build_golden_trace() -> Tracer:
    return profile_insert(DATASET, SCALE, BATCH)


def test_trace_matches_golden_fixture():
    doc = golden_tree(build_golden_trace())
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    assert GOLDEN_PATH.exists(), (
        f"missing fixture {GOLDEN_PATH}; generate it with "
        "REPRO_UPDATE_GOLDEN=1 pytest tests/test_golden_trace.py"
    )
    want = json.loads(GOLDEN_PATH.read_text())
    if doc == want:
        return
    diff = "\n".join(
        difflib.unified_diff(
            render_tree(want),
            render_tree(doc),
            fromfile="golden_trace.json (pinned)",
            tofile="this run",
            lineterm="",
        )
    )
    raise AssertionError(
        "trace structure drifted from the pinned golden fixture.\n"
        "If the change is intentional, regenerate with "
        "REPRO_UPDATE_GOLDEN=1 and review the diff:\n" + diff
    )


def test_golden_workload_is_deterministic():
    """Two runs of the pinned workload produce identical trees.

    Guards the fixture itself: if the workload ever becomes seed- or
    order-dependent the golden test would flake, so determinism is
    asserted directly.
    """
    a = golden_tree(build_golden_trace())
    b = golden_tree(build_golden_trace())
    assert a == b


def test_golden_fixture_contains_the_hot_phases():
    """The pinned workload must actually exercise the paper's hot paths."""
    doc = golden_tree(build_golden_trace())
    lines = "\n".join(render_tree(doc))
    for phase in ("insert_edges", "batch_round", "merge", "rebalance",
                  "write_window"):
        assert phase in lines, f"golden workload never hit {phase!r}"
    assert doc["total"]["stores"] > 10_000  # a real ingest, not a toy
