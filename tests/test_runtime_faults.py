"""Runtime (non-crash) media fault injection at the device level.

Crash-time faults are pinned in ``test_pmem_faults.py``; this file
covers the *runtime* regime PR 7 adds — spontaneous read-time poison,
transient read faults with bounded retry, the patrol ``scrub_scan``,
and fault suspension — plus the bulk-vs-scalar parity property: the
bulk read entry points (``load_batch``, ``gather_span``) must raise
exactly the :class:`~repro.errors.MediaError` (same byte range) a
per-unit scalar replay would, with identical pre-raise accounting.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MediaError
from repro.pmem.constants import CACHE_LINE, XPLINE
from repro.pmem.device import PMemDevice
from repro.pmem.faults import DEFAULT_POLICY, RUNTIME_HAZARD, FaultPolicy

SIZE = 1 << 14

#: Fault-side counters that must agree between bulk and scalar replays
#: at the moment a MediaError is raised (pre-raise accounting).
_FAULT_COUNTERS = (
    "media_errors", "transient_faults", "read_retries",
    "runtime_poison_events", "poisoned_xplines",
)


def mkdev(policy=DEFAULT_POLICY, size=SIZE):
    dev = PMemDevice(size, faults=policy)
    # Give reads something non-zero to return.
    dev.ntstore(0, (np.arange(size) % 251).astype(np.uint8), payload=0)
    dev.sfence()
    return dev


class TestPolicyValidation:
    def test_runtime_rates_are_probabilities(self):
        with pytest.raises(ValueError):
            FaultPolicy(read_poison_rate=1.5)
        with pytest.raises(ValueError):
            FaultPolicy(transient_read_rate=-0.1)

    def test_retry_knobs_validated(self):
        with pytest.raises(ValueError):
            FaultPolicy(read_retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(retry_backoff_ns=-1.0)

    def test_runtime_active_property(self):
        assert not DEFAULT_POLICY.runtime_active
        assert RUNTIME_HAZARD.runtime_active
        assert FaultPolicy(read_poison_rate=0.1).runtime_active
        assert FaultPolicy(transient_read_rate=0.1).runtime_active
        # Crash-time modes alone do not make the runtime side active.
        assert not FaultPolicy(torn_stores=True).runtime_active

    def test_runtime_rng_deterministic(self):
        p = FaultPolicy(seed=7, read_poison_rate=0.5)
        a = p.rng_runtime().random(8)
        b = p.rng_runtime().random(8)
        np.testing.assert_array_equal(a, b)
        c = p.with_seed(8).rng_runtime().random(8)
        assert not np.array_equal(a, c)


class TestDefaultOff:
    def test_default_policy_draws_nothing(self):
        """With runtime faults off the read path is byte- and
        counter-identical to the pre-PR behavior: no RNG stream exists,
        no fault counters move, no fault-retry bucket appears."""
        dev = mkdev()
        assert dev._rt_rng is None
        before = dev.stats.snapshot()
        for off in range(0, SIZE, CACHE_LINE):
            dev.read(off, CACHE_LINE)
        dev.load_batch(0, SIZE)
        dev.gather_span(np.arange(0, SIZE, 256, dtype=np.int64), 64)
        d = dev.stats.delta_since(before)
        for k in _FAULT_COUNTERS:
            assert getattr(d, k) == 0
        assert "fault-retry" not in dev.stats.buckets


class TestSpontaneousDecay:
    def test_certain_decay_raises_and_poisons(self):
        dev = mkdev(FaultPolicy(read_poison_rate=1.0))
        with pytest.raises(MediaError) as ei:
            dev.read(128, CACHE_LINE)
        err = ei.value
        assert err.off == 128 and err.length == CACHE_LINE
        assert dev.check_poison(128, CACHE_LINE)
        assert dev.stats.runtime_poison_events == 1
        assert dev.stats.media_errors == 1

    def test_poison_persists_after_escalation(self):
        dev = mkdev(FaultPolicy(read_poison_rate=1.0))
        with pytest.raises(MediaError):
            dev.read(0, 4)
        # Even with the hazard suspended, the line is now hard-poisoned.
        with dev.suspend_runtime_faults():
            with pytest.raises(MediaError):
                dev.read(0, 4)

    def test_same_seed_same_faults(self):
        def first_fault(dev):
            for off in range(0, SIZE, CACHE_LINE):
                try:
                    dev.read(off, CACHE_LINE)
                except MediaError as e:
                    return e.off
            return None

        pol = FaultPolicy(read_poison_rate=0.01, seed=5)
        a = first_fault(mkdev(pol))
        b = first_fault(mkdev(pol))
        assert a == b is not None


class TestTransientFaults:
    def test_persistent_transient_escalates_after_retries(self):
        pol = FaultPolicy(transient_read_rate=1.0, read_retries=4,
                          retry_backoff_ns=100.0)
        dev = mkdev(pol)
        t0 = dev.stats.modeled_ns
        with pytest.raises(MediaError):
            dev.read(0, 4)
        st = dev.stats
        assert st.transient_faults == 1
        assert st.read_retries == 4
        assert st.buckets["fault-retry"] == pytest.approx(400.0)
        assert st.modeled_ns - t0 >= 400.0
        # Escalation confirmed the fault as hard poison.
        assert st.runtime_poison_events == 1
        assert dev.check_poison(0, CACHE_LINE)

    def test_zero_retries_escalates_immediately(self):
        dev = mkdev(FaultPolicy(transient_read_rate=1.0, read_retries=0))
        with pytest.raises(MediaError):
            dev.read(0, 4)
        assert dev.stats.read_retries == 0

    def test_transients_mostly_recover(self):
        """At a moderate rate with generous retries, faults recover
        transparently: the caller sees data, not errors."""
        dev = mkdev(FaultPolicy(transient_read_rate=0.3, read_retries=16,
                                seed=3))
        for off in range(0, SIZE, CACHE_LINE):
            view = dev.read(off, CACHE_LINE)
            assert view[0] == off % 251
        st = dev.stats
        assert st.transient_faults > 0
        assert st.read_retries >= st.transient_faults
        assert st.media_errors == 0


class TestSuspension:
    def test_suspension_disables_draws(self):
        dev = mkdev(FaultPolicy(read_poison_rate=1.0))
        with dev.suspend_runtime_faults():
            dev.read(0, CACHE_LINE)  # no raise
        with pytest.raises(MediaError):
            dev.read(CACHE_LINE, CACHE_LINE)

    def test_suspension_is_reentrant(self):
        dev = mkdev(FaultPolicy(read_poison_rate=1.0))
        with dev.suspend_runtime_faults():
            with dev.suspend_runtime_faults():
                dev.read(0, CACHE_LINE)
            dev.read(0, CACHE_LINE)  # still suspended after inner exit
        with pytest.raises(MediaError):
            dev.read(0, CACHE_LINE)


class TestScrubScan:
    def test_finds_decay_without_raising(self):
        dev = mkdev(FaultPolicy(read_poison_rate=1.0))
        found = dev.scrub_scan(0, 1024)
        # Poison is XPLine-granular: the first failing line of each
        # XPLine poisons the whole 256 B block, so one find per XPLine.
        assert len(found) == 1024 // XPLINE
        assert all(n == CACHE_LINE for _, n in found)
        assert dev.check_poison(0, 1024)
        assert dev.stats.runtime_poison_events == len(found)
        assert dev.stats.media_errors == 0  # detection, not consumption

    def test_charges_scrub_bucket(self):
        dev = mkdev(FaultPolicy(read_poison_rate=0.0))
        t0 = dev.stats.modeled_ns
        assert dev.scrub_scan(0, 4096) == []
        assert dev.stats.modeled_ns > t0
        assert dev.stats.buckets.get("scrub", 0.0) > 0.0

    def test_suspended_scan_finds_nothing(self):
        dev = mkdev(FaultPolicy(read_poison_rate=1.0))
        with dev.suspend_runtime_faults():
            assert dev.scrub_scan(0, 1024) == []
        assert not dev.check_poison(0, 1024)

    def test_already_poisoned_lines_not_recounted(self):
        dev = mkdev(FaultPolicy(read_poison_rate=1.0))
        dev.poison(0, XPLINE)
        n0 = dev.stats.runtime_poison_events
        found = dev.scrub_scan(0, 2 * XPLINE)
        # Only the second XPLine is newly poisoned (one find: its first
        # failing line poisons the whole block, skipping the rest).
        assert {off for off, _ in found} == {XPLINE}
        assert dev.stats.runtime_poison_events - n0 == len(found)


# ----------------------------------------------------------------------
# satellite: bulk vs scalar MediaError parity (property test)
# ----------------------------------------------------------------------
def _counters(dev):
    return tuple(getattr(dev.stats, k) for k in _FAULT_COUNTERS)


def _outcome(fn):
    """Run ``fn``; return ('ok', bytes) or ('err', off, length)."""
    try:
        out = fn()
    except MediaError as e:
        return ("err", e.off, e.length)
    return ("ok", np.asarray(out).tobytes())


_policies = st.sampled_from([
    FaultPolicy(),
    FaultPolicy(read_poison_rate=0.05, seed=1),
    FaultPolicy(transient_read_rate=0.2, read_retries=2, seed=2),
    FaultPolicy(read_poison_rate=0.03, transient_read_rate=0.15,
                read_retries=1, seed=3),
])


class TestBulkScalarParity:
    @given(
        policy=_policies,
        poison_lines=st.sets(st.integers(0, SIZE // XPLINE - 1), max_size=3),
        off=st.integers(0, SIZE - 1),
        n=st.integers(1, 2048),
    )
    @settings(max_examples=60, deadline=None)
    def test_load_batch_matches_per_line_reads(self, policy, poison_lines, off, n):
        n = min(n, SIZE - off)
        bulk, scal = mkdev(policy), mkdev(policy)
        for dev in (bulk, scal):
            for xp in poison_lines:
                dev.poison(xp * XPLINE, 1)
        b4b, b4s = _counters(bulk), _counters(scal)

        def scalar():
            end = off + n
            chunks = []
            for a in range(off - off % CACHE_LINE, end, CACHE_LINE):
                lo, hi = max(a, off), min(a + CACHE_LINE, end)
                chunks.append(np.array(scal.read(lo, hi - lo)))
            scal.account_seq_read(n)
            return np.concatenate(chunks)

        ob = _outcome(lambda: bulk.load_batch(off, n))
        os_ = _outcome(scalar)
        assert ob[0] == os_[0]
        if ob[0] == "err":
            assert ob[1:] == os_[1:]  # identical byte range
        # Identical pre-raise (or post-success) fault accounting.
        db = tuple(a - b for a, b in zip(_counters(bulk), b4b))
        ds = tuple(a - b for a, b in zip(_counters(scal), b4s))
        assert db == ds
        assert bulk.poisoned_ranges() == scal.poisoned_ranges()

    @given(
        policy=_policies,
        poison_lines=st.sets(st.integers(0, SIZE // XPLINE - 1), max_size=3),
        offs=st.lists(st.integers(0, (SIZE - 64) // 4), min_size=1,
                      max_size=24).map(lambda xs: [x * 4 for x in xs]),
        unit=st.sampled_from([4, 12, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_gather_span_matches_per_unit_reads(self, policy, poison_lines, offs, unit):
        bulk, scal = mkdev(policy), mkdev(policy)
        for dev in (bulk, scal):
            for xp in poison_lines:
                dev.poison(xp * XPLINE, 1)
        arr = np.asarray(offs, dtype=np.int64)
        b4b, b4s = _counters(bulk), _counters(scal)

        def scalar():
            rows = [np.array(scal.read(o, unit)) for o in offs]
            scal.account_rnd_read(len(offs), unit)
            return np.stack(rows)

        ob = _outcome(lambda: bulk.gather_span(arr, unit))
        os_ = _outcome(scalar)
        assert ob[0] == os_[0]
        if ob[0] == "err":
            assert ob[1:] == os_[1:]
        db = tuple(a - b for a, b in zip(_counters(bulk), b4b))
        ds = tuple(a - b for a, b in zip(_counters(scal), b4s))
        assert db == ds
        assert bulk.poisoned_ranges() == scal.poisoned_ranges()
