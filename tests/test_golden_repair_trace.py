"""Golden-trace fixture for a forced scrub-and-repair pass (PR 7).

A deterministic damage scenario — explicit poison planted on an
edge-array XPLine, an idle undo-log payload, and a line straddling a
region boundary — is scrubbed and repaired under tracing, and the span
tree (scrub → repair per region part, quarantine, health_transition)
plus per-span write-path counter deltas are pinned as JSON.  Any drift
in how repairs charge the device, which regions a range splits into,
or when health transitions fire fails with a readable diff.

Regenerate after an *intentional* change with::

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/test_golden_repair_trace.py
"""

import difflib
import json
import os
from pathlib import Path

from repro import DGAP, DGAPConfig
from repro.errors import MediaError
from repro.obs import Tracer, golden_tree, render_tree, tracing
from repro.pmem.constants import XPLINE
from repro.resilience import HealthState, ResilienceManager

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_repair_trace.json"

CFG = dict(init_vertices=512, init_edges=4096, segment_slots=64, elog_size=96)


def build_repair_trace() -> Tracer:
    """Forced-repair scenario: deterministic poison, no fault RNG."""
    g = DGAP(DGAPConfig(**CFG))
    for i in range(60):  # vertex 0: array run + live log chain
        g.insert_edge(0, i)
    mgr = ResilienceManager(g)
    dev = g.pool.device

    tracer = Tracer(g.pool.stats)
    with tracing(tracer):
        # 1. Patrol scrub over planted damage: the edge-array XPLine
        #    holding vertex 0's pivot+run (lossy) and an idle undo-log
        #    payload (scrubbed).
        dev.poison(g.ea.region.offset, XPLINE)
        hdr_off, _, _ = g.pool._directory["ulog.pay.t3"]
        dev.poison((hdr_off // XPLINE + 1) * XPLINE, XPLINE)
        mgr.full_scrub()

        # 2. Demand-read path: a line straddling the ulog.hdr.t0 /
        #    unallocated boundary surfaces as a MediaError and is
        #    quarantined and repaired (two partial parts + completion).
        h0, _, _ = g.pool._directory["ulog.hdr.t0"]
        _, dt, cnt = g.pool._directory["ulog.hdr.t0"]
        hdr_end = h0 + dt.itemsize * cnt
        straddle = (hdr_end // XPLINE) * XPLINE
        dev.poison(straddle, XPLINE)
        mgr.handle_media_error(
            MediaError("forced", off=straddle, length=XPLINE)
        )

        # 3. The degraded instance keeps working: one guarded insert.
        mgr.guarded_insert_edge(0, 1000)
    assert mgr.health is HealthState.DEGRADED
    assert not dev.poisoned_ranges()
    return tracer


def test_repair_trace_matches_golden_fixture():
    doc = golden_tree(build_repair_trace())
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    assert GOLDEN_PATH.exists(), (
        f"missing fixture {GOLDEN_PATH}; generate it with "
        "REPRO_UPDATE_GOLDEN=1 pytest tests/test_golden_repair_trace.py"
    )
    want = json.loads(GOLDEN_PATH.read_text())
    if doc == want:
        return
    diff = "\n".join(
        difflib.unified_diff(
            render_tree(want),
            render_tree(doc),
            fromfile="golden_repair_trace.json (pinned)",
            tofile="this run",
            lineterm="",
        )
    )
    raise AssertionError(
        "repair trace drifted from the pinned golden fixture.\n"
        "If the change is intentional, regenerate with "
        "REPRO_UPDATE_GOLDEN=1 and review the diff:\n" + diff
    )


def test_repair_scenario_is_deterministic():
    a = golden_tree(build_repair_trace())
    b = golden_tree(build_repair_trace())
    assert a == b


def test_repair_trace_contains_the_resilience_spans():
    """The scenario must exercise every traced resilience code path."""
    doc = golden_tree(build_repair_trace())
    lines = "\n".join(render_tree(doc))
    for phase in ("scrub", "repair", "quarantine", "health_transition"):
        assert phase in lines, f"repair scenario never hit {phase!r}"
    # The lossy edge-array repair is what degrades the instance.
    assert "outcome=lossy" in lines
    assert "to_state=degraded" in lines
