"""Unit tests for the edge array and rebalancer internals."""

import numpy as np
import pytest

from repro import DGAP, DGAPConfig
from repro.core.edge_array import EdgeArray
from repro.core.encoding import encode_edge, encode_pivot
from repro.core.pma_tree import DensityBounds
from repro.pmem import PMemPool

BOUNDS = DensityBounds(0.92, 0.70, 0.08, 0.30)


@pytest.fixture
def ea():
    pool = PMemPool(8 << 20)
    return EdgeArray(pool, capacity_slots=1024, segment_slots=128, bounds=BOUNDS)


class TestEdgeArray:
    def test_geometry(self, ea):
        assert ea.n_sections == 8
        assert ea.section_of(0) == 0
        assert ea.section_of(127) == 0
        assert ea.section_of(128) == 1

    def test_bad_geometry_rejected(self):
        pool = PMemPool(1 << 20)
        with pytest.raises(ValueError):
            EdgeArray(pool, 1000, 128, BOUNDS)  # not a multiple
        with pytest.raises(ValueError):
            EdgeArray(pool, 128 * 3, 128, BOUNDS)  # non-pow2 sections

    def test_write_slot_persists(self, ea):
        ea.write_slot(5, encode_edge(7), payload=4, persist=True)
        ea.pool.crash()
        assert ea.slots[5] == encode_edge(7)

    def test_occupancy_tracking(self, ea):
        ea.write_slot(0, encode_pivot(0))
        ea.write_slot(1, encode_edge(3))
        ea.inc_occ(0, 2)
        assert ea.seg_occ[0] == 2
        ea.recount(0, 1024)
        assert ea.seg_occ[0] == 2 and ea.seg_occ.sum() == 2

    def test_recount_partial(self, ea):
        ea.write_slot(130, encode_edge(1))
        ea.recount(128, 256)
        assert ea.seg_occ[1] == 1
        assert ea.seg_occ[0] == 0  # untouched sections stay

    def test_combined_occupancy(self, ea):
        logs = np.zeros(8, dtype=np.int64)
        logs[2] = 5
        ea.seg_occ[2] = 3
        assert ea.combined_occupancy(logs)[2] == 8

    def test_pm_metadata_mirrors(self):
        pool = PMemPool(8 << 20)
        ea = EdgeArray(pool, 1024, 128, BOUNDS, pm_metadata=True)
        flushes = pool.stats.flushes
        ea.inc_occ(0)
        assert pool.stats.flushes > flushes


class TestRebalanceInternals:
    def make(self, **kw):
        return DGAP(DGAPConfig(init_vertices=16, init_edges=1024, segment_slots=64, **kw))

    def test_extend_covers_straddling_run(self):
        g = self.make()
        # grow vertex 0's run across the first segment boundary
        for d in range(100):
            g.insert_edge(0, d % 16)
        lo, hi, i0, j = g.rebalancer._extend(64, 128)
        assert lo <= int(g.va.start[0]) - 1  # pulled back to the pivot
        assert i0 == 0

    def test_gather_includes_chain(self):
        g = self.make()
        for d in range(200):
            g.insert_edge(0, d % 16)
        if g.va.el[0] >= 0:
            lo, hi, i0, j = g.rebalancer._extend(0, g.ea.capacity)
            res = g.rebalancer._gather(lo, hi, i0, j)
            assert res.runs[0].size == g.va.degree[0]
            assert len(res.chain_gidxs) > 0

    def test_plan_preserves_order_and_density(self):
        g = self.make()
        for d in range(120):
            g.insert_edge(d % 16, (d * 3) % 16)
        lo, hi, i0, j = g.rebalancer._extend(0, g.ea.capacity)
        res = g.rebalancer._gather(lo, hi, i0, j)
        image, new_starts = g.rebalancer._plan(res)
        assert image.size == hi - lo
        # pivots appear in vertex order at new_starts - 1 - lo
        for k, v in enumerate(range(i0, j)):
            assert image[new_starts[k] - 1 - lo] == encode_pivot(v)
            run = res.runs[k]
            got = image[new_starts[k] - lo : new_starts[k] - lo + run.size]
            np.testing.assert_array_equal(got, run)

    def test_gap_distribution_proportional(self):
        """VCSR weighting: bigger runs get more trailing gap."""
        g = self.make()
        for d in range(200):
            g.insert_edge(0, d % 16)  # hot vertex
        g.insert_edge(5, 1)
        lo, hi, i0, j = g.rebalancer._extend(0, g.ea.capacity)
        res = g.rebalancer._gather(lo, hi, i0, j)
        image, new_starts = g.rebalancer._plan(res)
        # gap after a run = next pivot - run end
        gaps = []
        for k in range(j - i0):
            end = new_starts[k] - lo + res.runs[k].size
            nxt = new_starts[k + 1] - 1 - lo if k + 1 < j - i0 else image.size
            gaps.append(nxt - end)
        assert gaps[0] == max(gaps)  # the hot vertex got the most room

    def test_resize_generation_switch(self):
        g = self.make()
        gen0 = g.ea.gen
        cap0 = g.ea.capacity
        g.rebalancer.resize()
        assert g.ea.gen == gen0 + 1
        assert g.ea.capacity >= 2 * cap0
        assert g.pool.read_root(1) == g.ea.gen  # ROOT_GEN committed
        # structure still valid
        g.insert_edge(3, 4)
        assert 4 in g.out_neighbors(3).tolist()

    def test_write_window_protected_small_and_large(self):
        g = self.make()
        img_small = np.zeros(64, dtype=np.int32)
        img_small[0] = encode_pivot(0)
        # beyond ULOG capacity (2048 B = 512 slots)
        img_large = np.zeros(1024, dtype=np.int32)
        img_large[0] = encode_pivot(0)
        g.rebalancer.write_window_protected(0, 64, img_small, 0)
        np.testing.assert_array_equal(g.ea.slots[:64], img_small)
        g.ulogs[0].finish()
        g.rebalancer.write_window_protected(0, 1024, img_large, 0)
        np.testing.assert_array_equal(g.ea.slots[:1024], img_large)

    def test_merge_clears_full_sections_only(self):
        g = self.make(elog_size=96)
        before = g.logs.live_counts.sum()
        for d in range(300):  # forces several merges
            g.insert_edge(0, d % 16)
        # whatever remains pending is consistent with the degree totals
        total = int(g.va.degrees().sum())
        in_array = int(g.va.array_degrees().sum())
        in_logs = int(g.logs.live_counts.sum())
        assert total == in_array + in_logs == 300


class TestBoundarySectionClears:
    def test_partial_window_invalidation_preserves_siblings(self):
        """A rebalance window that partially covers a section must
        invalidate only the merged vertices' log entries there."""
        from repro.core.encoding import encode_edge

        g = DGAP(DGAPConfig(init_vertices=16, init_edges=1024, segment_slots=64))
        logs = g.logs
        # plant entries in section 0's log for two vertices: one whose
        # pivot is inside the clear window, one outside
        inside_v = int(-g.ea.slots[np.flatnonzero(g.ea.slots < 0)[0]]) - 1
        pivots = np.flatnonzero(g.ea.slots < 0)
        outside_candidates = [int(-g.ea.slots[p]) - 1 for p in pivots if p >= 64]
        outside_v = outside_candidates[0]
        ga = logs.append(0, inside_v, int(encode_edge(5)), -1)
        gb = logs.append(0, outside_v, int(encode_edge(6)), -1)
        g.rebalancer._clears_by_window(0, 64)  # covers section 0 partially? no:
        # window [0, 64) == exactly section 0 -> full clear; use [0, 32)
        # to exercise the boundary path instead
        logs2 = g.logs
        if logs2.counts[0] == 0:
            # full-section path cleared everything; re-plant and do partial
            ga = logs2.append(0, inside_v, int(encode_edge(5)), -1)
            gb = logs2.append(0, outside_v, int(encode_edge(6)), -1)
        g.rebalancer._clears_by_window(0, 32)
        # the outside vertex's entry must survive, the inside one must not
        entries = logs2.section_entries(0)
        live_srcs = {int(e[0]) - 1 for e in entries if e[1] != 0}
        assert outside_v in live_srcs
        assert inside_v not in live_srcs
