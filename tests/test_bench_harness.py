"""Tests for the benchmark harness, reporting helpers and cost model glue."""

import numpy as np
import pytest

from repro.analysis import costs
from repro.analysis.view import CSR_PM_GEOMETRY, AnalysisClock, StorageGeometry
from repro.baselines.interfaces import InsertProfile, PM_WRITE_BW_BYTES_PER_S
from repro.bench.harness import build_system, get_built_system, get_static_csr, ingest, run_kernel
from repro.bench.reporting import format_table, paper_vs_measured
from repro.bench import paper_data
from repro.datasets import get_dataset


class TestInsertProfile:
    def test_t1_is_modeled_time(self):
        p = InsertProfile(edges=1000, modeled_ns=1e6, pm_media_bytes=0, serial_fraction=0.5)
        assert p.seconds(1) == pytest.approx(1e-3)
        assert p.meps(1) == pytest.approx(1.0)

    def test_amdahl(self):
        p = InsertProfile(edges=1000, modeled_ns=1e9, pm_media_bytes=0, serial_fraction=0.5)
        # 50% serial: at infinite threads, half the time remains
        assert p.seconds(10_000) == pytest.approx(0.5, rel=1e-3)

    def test_bandwidth_floor(self):
        p = InsertProfile(
            edges=1000, modeled_ns=1e9, pm_media_bytes=int(PM_WRITE_BW_BYTES_PER_S),
            serial_fraction=0.0,
        )
        # parallel time would be 1/16 s but the media floor is 1 s
        assert p.seconds(16) == pytest.approx(1.0)

    def test_floor_not_applied_single_thread(self):
        p = InsertProfile(
            edges=1000, modeled_ns=1e6, pm_media_bytes=int(PM_WRITE_BW_BYTES_PER_S),
            serial_fraction=0.0,
        )
        assert p.seconds(1) == pytest.approx(1e-3)


class TestAnalysisClock:
    def test_split(self):
        c = AnalysisClock()
        c.charge(1000, serial_fraction=0.25)
        assert c.ser_ns == pytest.approx(250)
        assert c.par_ns == pytest.approx(750)
        assert c.seconds(1) == pytest.approx(1e-6)
        assert c.seconds(3) == pytest.approx((250 + 250) * 1e-9)

    def test_reset(self):
        c = AnalysisClock()
        c.charge(10)
        c.reset()
        assert c.seconds(1) == 0


class TestGeometry:
    def test_csr_geometry_is_pure_stream(self):
        ns = CSR_PM_GEOMETRY.scan_ns(1000, 10_000)
        assert ns == pytest.approx(10_000 * 4 * costs.PM_SEQ_NS_PER_BYTE)

    def test_gap_overhead(self):
        g = StorageGeometry(name="x", scan_overhead=0.5)
        assert g.scan_ns(0, 1000) == pytest.approx(1000 * 4 * 1.5 * costs.PM_SEQ_NS_PER_BYTE)

    def test_frontier_includes_chain_term(self):
        g = StorageGeometry(name="x", chain_rnd_per_edge=0.5, chain_rnd_ns=100)
        base = StorageGeometry(name="y")
        assert g.frontier_ns(10, 100) == pytest.approx(base.frontier_ns(10, 100) + 50 * 100)


class TestHarness:
    def test_build_system_all_names(self):
        for name in ("dgap", "bal", "llama", "graphone", "xpgraph"):
            s = build_system(name, 64, 1000)
            assert s.name == name

    def test_ingest_checkpoints_after_warmup(self):
        spec = get_dataset("orkut")
        edges = spec.generate(0.03)
        nv, _ = spec.sizes(0.03)
        system = build_system("dgap", nv, edges.shape[0])
        res = ingest(system, spec, edges)
        assert res.edges_timed == edges.shape[0] - int(0.1 * edges.shape[0])
        assert res.dataset == "orkut"
        assert res.wall_s > 0

    def test_cache_returns_same_object(self):
        a, _ = get_built_system("graphone", "citpatents", scale=0.03)
        b, _ = get_built_system("graphone", "citpatents", scale=0.03)
        assert a is b

    def test_cache_distinguishes_kwargs(self):
        a, _ = get_built_system("xpgraph", "citpatents", scale=0.03)
        b, _ = get_built_system("xpgraph", "citpatents", scale=0.03, log_capacity_edges=None)
        assert a is not b

    def test_static_csr_cached(self):
        assert get_static_csr("citpatents", 0.03) is get_static_csr("citpatents", 0.03)

    def test_run_kernel_source_kernels(self):
        sys, _ = get_built_system("graphone", "citpatents", scale=0.03)
        view = sys.analysis_view()
        t = run_kernel(view, "bfs", source=0, threads=(1,))
        assert t[1] > 0


class TestReporting:
    def test_format_table(self):
        out = format_table("T", ["a", "b"], [["x", 1.5], ["yy", 2.25]])
        assert "== T ==" in out
        assert "1.50" in out and "yy" in out

    def test_paper_vs_measured_flags(self):
        out = paper_vs_measured("X", [("m", 1.0, 1.1, True), ("n", 2.0, 9.9, False)])
        assert "yes" in out and "NO" in out


class TestPaperData:
    def test_tables_cover_all_systems(self):
        for ds, row in paper_data.TABLE3_MEPS.items():
            assert set(row) == {"dgap", "bal", "llama", "graphone", "xpgraph"}, ds
            for trip in row.values():
                assert len(trip) == 3

    def test_table4_kernels(self):
        assert set(paper_data.TABLE4_SECONDS) == {"pr", "bfs", "bc", "cc"}

    def test_fig6_is_t1_column(self):
        assert paper_data.FIG6_MEPS["orkut"]["dgap"] == paper_data.TABLE3_MEPS["orkut"]["dgap"][0]
