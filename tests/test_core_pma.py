"""Unit tests for the PMA density tree, slot encoding and vertex array."""

import numpy as np
import pytest

from repro.core import encoding as enc
from repro.core.pma_tree import DensityBounds, PMATree
from repro.core.vertex_array import NO_EL, VertexArray, make_vertex_array
from repro.errors import VertexRangeError
from repro.pmem import PMemPool

BOUNDS = DensityBounds(tau_leaf=0.92, tau_root=0.70, rho_leaf=0.08, rho_root=0.30)


class TestEncoding:
    def test_pivot_roundtrip(self):
        for v in (0, 1, 17, enc.MAX_VERTEX):
            assert enc.decode_pivot(enc.encode_pivot(v)) == v
            assert enc.encode_pivot(v) < 0

    def test_edge_roundtrip(self):
        for dst in (0, 5, 12345):
            for tomb in (False, True):
                slot = enc.encode_edge(dst, tomb)
                assert slot > 0
                d, t = enc.decode_edge(slot)
                assert (d, t) == (dst, tomb)

    def test_gap_is_zero(self):
        assert enc.GAP == 0

    def test_vectorized_classification(self):
        slots = np.array(
            [0, enc.encode_pivot(3), enc.encode_edge(7), enc.encode_edge(9, True)],
            dtype=np.int32,
        )
        np.testing.assert_array_equal(enc.is_gap(slots), [True, False, False, False])
        np.testing.assert_array_equal(enc.is_pivot(slots), [False, True, False, False])
        np.testing.assert_array_equal(enc.is_edge(slots), [False, False, True, True])
        np.testing.assert_array_equal(enc.is_tombstone(slots), [False, False, False, True])
        assert enc.pivot_vertices(slots[1:2])[0] == 3
        np.testing.assert_array_equal(enc.edge_dsts(slots[2:]), [7, 9])


class TestPMATree:
    def test_thresholds_interpolate(self):
        t = PMATree(16, 64, BOUNDS)
        assert t.tau(0) == pytest.approx(0.92)
        assert t.tau(t.height) == pytest.approx(0.70)
        assert t.rho(0) == pytest.approx(0.08)
        assert t.rho(t.height) == pytest.approx(0.30)
        taus = [t.tau(h) for h in range(t.height + 1)]
        assert taus == sorted(taus, reverse=True)

    def test_single_section_tree(self):
        t = PMATree(1, 64, BOUNDS)
        assert t.height == 0
        assert t.tau(0) == pytest.approx(0.70)

    def test_non_pow2_rejected(self):
        with pytest.raises(ValueError):
            PMATree(12, 64, BOUNDS)

    def test_window_alignment(self):
        t = PMATree(8, 64, BOUNDS)
        assert t.window_at(5, 0) == (5, 6)
        assert t.window_at(5, 1) == (4, 6)
        assert t.window_at(5, 2) == (4, 8)
        assert t.window_at(5, 3) == (0, 8)

    def test_find_window_escalates(self):
        t = PMATree(4, 64, BOUNDS)
        occ = np.array([64, 0, 0, 0], dtype=np.int64)  # leaf 0 full
        lo, hi, level = t.find_rebalance_window(occ, 0)
        assert (lo, hi) == (0, 2) and level == 1

    def test_find_window_needs_resize(self):
        t = PMATree(4, 64, BOUNDS)
        occ = np.full(4, 63, dtype=np.int64)  # everything ~full
        assert t.find_rebalance_window(occ, 0) is None
        assert t.needs_resize(occ)

    def test_find_window_level0_ok(self):
        t = PMATree(4, 64, BOUNDS)
        occ = np.array([10, 0, 0, 0], dtype=np.int64)
        lo, hi, level = t.find_rebalance_window(occ, 0)
        assert level == 0

    def test_density(self):
        t = PMATree(4, 64, BOUNDS)
        occ = np.array([32, 32, 0, 0], dtype=np.int64)
        assert t.density(occ, 0, 2) == pytest.approx(0.5)
        assert t.density(occ, 0, 4) == pytest.approx(0.25)

    def test_section_slot_mapping(self):
        t = PMATree(4, 64, BOUNDS)
        assert t.section_of_slot(0) == 0
        assert t.section_of_slot(63) == 0
        assert t.section_of_slot(64) == 1
        assert t.slot_range(1, 3) == (64, 192)


class TestVertexArray:
    def test_init_state(self):
        va = VertexArray(10)
        assert va.num_vertices == 10
        assert (va.els() == NO_EL).all()
        assert va.degrees().sum() == 0

    def test_setters(self):
        va = VertexArray(4)
        va.set_degree(2, 5)
        va.set_start(2, 100)
        va.set_el(2, 7)
        assert va.degree[2] == 5 and va.start[2] == 100 and va.el[2] == 7

    def test_check(self):
        va = VertexArray(4)
        with pytest.raises(VertexRangeError):
            va.check(4)
        va.check(3)

    def test_grow_preserves(self):
        va = VertexArray(4)
        va.set_degree(3, 9)
        va.grow(100)
        assert va.num_vertices == 100
        assert va.degree[3] == 9
        assert va.el[50] == NO_EL

    def test_grow_noop_backwards(self):
        va = VertexArray(10)
        va.grow(5)
        assert va.num_vertices == 10

    def test_update_window(self):
        va = VertexArray(8)
        arrs = [np.arange(3) + k for k in range(5)]
        va.update_window(2, 5, arrs[0], arrs[1], arrs[2], arrs[3], arrs[4])
        np.testing.assert_array_equal(va.start[2:5], arrs[0])
        np.testing.assert_array_equal(va.degree[2:5], arrs[1])

    def test_pm_backend_mirrors(self):
        pool = PMemPool(1 << 20)
        va = make_vertex_array(8, dram_placement=False, pool=pool)
        before = pool.stats.flushes
        va.set_degree(3, 7)
        assert pool.stats.flushes > before  # persistent in-place update
        assert va._regions["degree"].view[3] == 7

    def test_pm_backend_requires_pool(self):
        with pytest.raises(ValueError):
            make_vertex_array(8, dram_placement=False, pool=None)

    def test_dram_backend_no_pm_traffic(self):
        va = make_vertex_array(8, dram_placement=True)
        assert va.is_dram
