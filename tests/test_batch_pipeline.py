"""Unit tests for the batched mutation pipeline's building blocks.

Covers the three layers beneath ``DGAP.insert_edges``:

* :class:`~repro.core.batch.EdgeBatch` construction/validation/grouping;
* the device's batched persistence ops (``store_batch`` / ``flush_span``
  / ``sfence_batch`` / ``persist_batch``), whose contract is *counter
  equivalence*: identical integer :class:`PMemStats` and media bytes to
  the scalar ``store``/``clwb``/``sfence`` loop they replace;
* :class:`~repro.core.edge_log.EdgeLogs` batched appends.
"""

import numpy as np
import pytest

from repro.core.batch import EdgeBatch, extend_adjacency
from repro.core.edge_log import EdgeLogs
from repro.core.encoding import MAX_VERTEX, TOMB_BIT, encode_edge
from repro.errors import GraphError, PMemError, SimulatedCrash, VertexRangeError
from repro.pmem import CACHE_LINE, DRAM, OPTANE_ADR, OPTANE_EADR, PMemDevice, PMemPool
from repro.pmem.crash import CrashInjector

INT_STATS = (
    "stores",
    "stored_bytes",
    "payload_bytes",
    "flushes",
    "flushed_lines",
    "flushed_bytes",
    "seq_flushes",
    "rnd_flushes",
    "inplace_flushes",
    "media_bytes",
    "fences",
    "ntstores",
    "ntstored_bytes",
)


def int_stats(dev):
    return {k: getattr(dev.stats, k) for k in INT_STATS}


class TestEdgeBatch:
    def test_coerce_ndarray(self):
        arr = np.array([[1, 2], [3, 4], [1, 5]], dtype=np.int64)
        b = EdgeBatch.coerce(arr)
        assert len(b) == 3
        np.testing.assert_array_equal(b.src, [1, 3, 1])
        np.testing.assert_array_equal(b.dst, [2, 4, 5])
        assert not b.tombstone.any()

    def test_coerce_pairs_and_passthrough(self):
        b = EdgeBatch.coerce([(0, 1), (2, 3)])
        assert list(b) == [(0, 1), (2, 3)]
        assert EdgeBatch.coerce(b) is b

    def test_coerce_empty(self):
        assert len(EdgeBatch.coerce(np.empty((0, 2), dtype=np.int64))) == 0
        assert len(EdgeBatch.coerce([])) == 0

    def test_coerce_bad_shape(self):
        with pytest.raises(GraphError):
            EdgeBatch.coerce(np.zeros((3, 3), dtype=np.int64))

    def test_length_mismatch(self):
        with pytest.raises(GraphError):
            EdgeBatch(np.array([1, 2]), np.array([3]))

    def test_validation_bounds(self):
        with pytest.raises(VertexRangeError):
            EdgeBatch(np.array([-1]), np.array([0]))
        with pytest.raises(VertexRangeError):
            EdgeBatch(np.array([0]), np.array([MAX_VERTEX + 1]))
        EdgeBatch(np.array([0]), np.array([MAX_VERTEX]))  # boundary OK

    def test_single_and_max_vertex(self):
        b = EdgeBatch.single(7, 9, tombstone=True)
        assert len(b) == 1 and b.tombstone[0]
        assert b.max_vertex() == 9
        assert EdgeBatch.empty().max_vertex() == -1

    def test_chunks(self):
        b = EdgeBatch(np.arange(10), np.arange(10))
        parts = list(b.chunks(4))
        assert [len(p) for p in parts] == [4, 4, 2]
        np.testing.assert_array_equal(
            np.concatenate([p.src for p in parts]), b.src
        )
        with pytest.raises(GraphError):
            list(b.chunks(0))

    def test_encoded_matches_scalar_encoding(self):
        b = EdgeBatch(
            np.array([0, 1, 2]), np.array([5, 6, 7]), np.array([False, True, False])
        )
        enc = b.encoded()
        assert enc[0] == encode_edge(5)
        assert enc[1] == encode_edge(6, tombstone=True)
        assert enc[1] & TOMB_BIT
        np.testing.assert_array_equal(b.live_deltas(), [1, -1, 1])

    def test_grouped_order_stable_per_source(self):
        sections = np.array([1, 0, 1, 0, 1])
        srcs = np.array([5, 2, 5, 2, 4])
        order = EdgeBatch.grouped_order(sections, srcs)
        # section-major, source-minor; equal keys keep stream order
        assert sections[order].tolist() == [0, 0, 1, 1, 1]
        assert order.tolist() == [1, 3, 4, 0, 2]

    def test_extend_adjacency_preserves_per_src_order(self):
        adj = [[] for _ in range(4)]
        srcs = np.array([2, 0, 2, 1, 0, 2])
        dsts = np.array([9, 8, 7, 6, 5, 4])
        extend_adjacency(adj, srcs, dsts)
        assert adj == [[8, 5], [6], [9, 7, 4], []]

    # -- routing hooks (shard_keys / select), used by ShardRouter.split --

    def test_shard_keys_match_partition_function(self):
        from repro.sharding.partition import shard_of

        b = EdgeBatch(np.array([0, 1, 7, 8, 1024]), np.array([1, 2, 3, 4, 5]))
        for n in (1, 2, 3, 4):
            np.testing.assert_array_equal(
                b.shard_keys(n), shard_of(b.src, n)
            )
        with pytest.raises(GraphError):
            b.shard_keys(0)

    def test_route_empty_batch(self):
        from repro.sharding import ShardRouter

        assert ShardRouter(4).split(EdgeBatch.empty()) == []
        assert ShardRouter(1).split(EdgeBatch.empty()) == []

    def test_route_all_tombstone_batch(self):
        from repro.sharding import ShardRouter

        b = EdgeBatch(
            np.array([0, 1, 2, 3]),
            np.array([9, 9, 9, 9]),
            np.ones(4, dtype=bool),
        )
        parts = ShardRouter(2).split(b)
        assert sum(len(sub) for _, sub in parts) == 4
        for _, sub in parts:
            assert sub.tombstone.all()
            assert sub.live_deltas().sum() == -len(sub)

    def test_route_single_vertex_hot_batch(self):
        # every edge shares one source: exactly one shard gets the whole
        # batch, and its local source is the same dense id throughout
        from repro.sharding import ShardRouter
        from repro.sharding.partition import shard_of, to_local

        src = 12
        b = EdgeBatch(np.full(32, src), np.arange(32))
        parts = ShardRouter(4).split(b)
        assert len(parts) == 1
        r, sub = parts[0]
        assert r == shard_of(src, 4)
        assert len(sub) == 32
        assert (sub.src == to_local(src, 4)).all()
        np.testing.assert_array_equal(sub.dst, b.dst)  # dsts stay global

    def test_select_preserves_tombstone_flags_and_copies(self):
        b = EdgeBatch(
            np.array([4, 5, 6, 7]),
            np.array([1, 2, 3, 4]),
            np.array([False, True, False, True]),
        )
        sub = b.select(np.array([1, 3]))
        np.testing.assert_array_equal(sub.tombstone, [True, True])
        np.testing.assert_array_equal(sub.src, [5, 7])
        sub.src[:] = 0  # a copy: mutating the sub-batch leaves b intact
        np.testing.assert_array_equal(b.src, [4, 5, 6, 7])

    def test_route_preserves_per_shard_stream_order(self):
        from repro.sharding import ShardRouter
        from repro.sharding.partition import shard_of, to_local

        rng = np.random.default_rng(3)
        srcs = rng.integers(0, 100, size=200)
        b = EdgeBatch(srcs, np.arange(200))
        for r, sub in ShardRouter(3).split(b):
            mask = shard_of(srcs, 3) == r
            np.testing.assert_array_equal(sub.src, to_local(srcs[mask], 3))
            np.testing.assert_array_equal(sub.dst, np.arange(200)[mask])


def _run_pattern(profile, fn_scalar, fn_batched):
    """Run the same op stream scalar vs batched; compare full device state."""
    a = PMemDevice(1 << 20, profile=profile)
    b = PMemDevice(1 << 20, profile=profile)
    fn_scalar(a)
    fn_batched(b)
    assert int_stats(a) == int_stats(b)
    assert abs(a.stats.modeled_ns - b.stats.modeled_ns) <= 1e-6 * max(
        1.0, a.stats.modeled_ns
    )
    np.testing.assert_array_equal(a.media, b.media)
    np.testing.assert_array_equal(a.buf, b.buf)
    assert a._dirty == b._dirty

    # The recent-flush maps may differ in already-expired entries (the
    # scalar path prunes lazily); only entries still inside the in-place
    # window can affect future classification.
    def effective(dev):
        lo = dev._flush_op + 1 - dev.profile.inplace_window
        return {ln: op for ln, op in dev._recent_flushes.items() if op >= lo}

    assert effective(a) == effective(b)
    assert a._flush_op == b._flush_op
    assert a._last_flush_line == b._last_flush_line
    assert a._last_media_xpline == b._last_media_xpline


PATTERNS = {
    # contiguous ascending units -> sequential flush stream
    "contiguous": np.arange(64, dtype=np.int64) * 12 + 256,
    # scattered offsets -> random-dominated
    "scattered": (np.arange(64, dtype=np.int64) * 977 + 64) % (1 << 18),
    # repeated same line -> in-place storm
    "inplace": np.tile(np.int64(512), 32),
    # strided across XPLines
    "strided": np.arange(32, dtype=np.int64) * 320,
    # a single unit
    "single": np.array([4096], dtype=np.int64),
    # units straddling cache-line boundaries
    "straddle": np.arange(16, dtype=np.int64) * 200 + CACHE_LINE - 4,
}


class TestDeviceBatchEquivalence:
    @pytest.mark.parametrize("profile", [OPTANE_ADR, OPTANE_EADR, DRAM])
    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    def test_persist_batch_counter_equivalent(self, profile, pattern):
        offs = PATTERNS[pattern]
        rng = np.random.default_rng(7)
        data = rng.integers(0, 2**31, size=(offs.size, 3), dtype=np.int32)

        def scalar(dev):
            rows = data.view(np.uint8).reshape(offs.size, -1)
            for i in range(offs.size):
                dev.store(int(offs[i]), rows[i], payload=4)
                dev.clwb(int(offs[i]), 12)
                dev.sfence()

        _run_pattern(
            profile, scalar, lambda dev: dev.persist_batch(offs, data, payload_per_unit=4)
        )

    def test_store_batch_without_flush(self):
        offs = PATTERNS["scattered"]
        data = np.arange(offs.size * 2, dtype=np.int32).reshape(offs.size, 2)

        def scalar(dev):
            rows = data.view(np.uint8).reshape(offs.size, -1)
            for i in range(offs.size):
                dev.store(int(offs[i]), rows[i])

        _run_pattern(OPTANE_ADR, scalar, lambda dev: dev.store_batch(offs, data))

    def test_flush_span_after_prewarmed_recent_flushes(self):
        # flushes issued *before* the batch can still classify the batch's
        # first `inplace_window` flushes as in-place.
        offs = np.array([0, 64, 128, 0, 64], dtype=np.int64)
        warm = np.array([0, 64], dtype=np.int64)

        def scalar(dev):
            for w in warm:
                dev.store(int(w), b"x" * 8)
                dev.clwb(int(w), 8)
            # interleaved per-unit store+flush — the stream flush_span models
            # (a repeated offset is re-stored, so its line is dirty again)
            for o in offs:
                dev.store(int(o), b"y" * 8)
                dev.clwb(int(o), 8)

        def batched(dev):
            for w in warm:
                dev.store(int(w), b"x" * 8)
                dev.clwb(int(w), 8)
            dev.store_batch(offs, np.frombuffer(b"y" * 8 * offs.size, dtype=np.uint8))
            dev.flush_span(offs, 8)

        _run_pattern(OPTANE_ADR, scalar, batched)
        # and the in-place path actually fired
        d = PMemDevice(1 << 20)
        batched(d)
        assert d.stats.inplace_flushes > 0

    def test_sfence_batch(self):
        def scalar(dev):
            for _ in range(17):
                dev.sfence()

        _run_pattern(OPTANE_ADR, scalar, lambda dev: dev.sfence_batch(17))

    def test_empty_batches_are_noops(self):
        dev = PMemDevice(1 << 16)
        before = int_stats(dev)
        z = np.empty(0, dtype=np.int64)
        dev.store_batch(z, np.empty(0, dtype=np.int32))
        dev.flush_span(z, 12)
        dev.sfence_batch(0)
        dev.persist_batch(z, np.empty(0, dtype=np.int32))
        assert int_stats(dev) == before

    def test_indivisible_data_rejected(self):
        dev = PMemDevice(1 << 16)
        with pytest.raises(PMemError):
            dev.store_batch(np.array([0, 64]), np.zeros(9, dtype=np.uint8))

    def test_out_of_range_rejected(self):
        dev = PMemDevice(1 << 12)
        with pytest.raises(PMemError):
            dev.store_batch(
                np.array([0, dev.size], dtype=np.int64), np.zeros(8, dtype=np.uint8)
            )


class TestRecentFlushBound:
    def test_recent_flushes_stay_bounded_scalar(self):
        dev = PMemDevice(8 << 20)
        cap = dev.recent_flush_capacity
        for i in range(4 * cap):
            off = i * CACHE_LINE
            dev.store(off, b"z" * 8)
            dev.clwb(off, 8)
        assert len(dev._recent_flushes) <= cap

    def test_recent_flushes_stay_bounded_batched(self):
        dev = PMemDevice(8 << 20)
        offs = np.arange(4 * dev.recent_flush_capacity, dtype=np.int64) * CACHE_LINE
        dev.persist_batch(offs, np.zeros((offs.size, 2), dtype=np.int32))
        assert len(dev._recent_flushes) <= dev.recent_flush_capacity

    def test_eviction_never_changes_classification(self):
        # Revisit a line *after* more than inplace_window other flushes:
        # must be random whether or not its entry was evicted.
        dev = PMemDevice(8 << 20)
        w = dev.profile.inplace_window
        lines = list(range(1, 3 * w)) + [0]
        dev.store(0, b"a" * 8)
        dev.clwb(0, 8)
        for ln in lines:
            dev.store(ln * CACHE_LINE, b"b" * 8)
            dev.clwb(ln * CACHE_LINE, 8)
        assert dev.stats.inplace_flushes == 0


class TestTickMany:
    def test_counts_match_scalar(self):
        a, b = CrashInjector(), CrashInjector()
        for _ in range(5):
            a.tick("store")
        b.tick_many("store", 5)
        assert a.counts == b.counts

    def test_armed_plan_fires_at_exact_index(self):
        inj = CrashInjector()
        inj.arm(3, "flush")
        inj.tick_many("store", 10)  # non-matching kind: no fire
        with pytest.raises(SimulatedCrash) as ei:
            inj.tick_many("flush", 5)
        assert inj.counts["flush"] == 3  # events past the crash never happen
        assert ei.value.op == "flush"

    def test_plan_beyond_run_decrements(self):
        inj = CrashInjector()
        inj.arm(10, "store")
        inj.tick_many("store", 4)
        assert inj.remaining == 6
        assert inj.plan.countdown == 10  # the plan itself is never mutated
        assert inj.counts["store"] == 4

    def test_armed_device_falls_back_to_scalar_loop(self):
        dev = PMemDevice(1 << 16)
        dev.injector.arm(5, "store")
        offs = np.arange(8, dtype=np.int64) * 64
        with pytest.raises(SimulatedCrash):
            dev.persist_batch(offs, np.zeros((8, 2), dtype=np.int32))
        # exactly 4 stores landed before the planned 5th
        assert dev.stats.stores == 4


class TestEdgeLogBatchedAppends:
    @pytest.fixture
    def pool(self):
        return PMemPool(4 << 20)

    def _scalar_logs(self, pool_size=4 << 20, **kw):
        return EdgeLogs(PMemPool(pool_size), **kw)

    def test_append_batch_equivalent(self, pool):
        kw = dict(n_sections=4, entries_per_section=32)
        a = self._scalar_logs(**kw)
        b = EdgeLogs(pool, **kw)
        srcs = np.arange(10, dtype=np.int64)
        encs = np.array([int(encode_edge(d)) for d in range(10)], dtype=np.int64)
        backs = np.full(10, -1, dtype=np.int64)
        ga = [a.append(2, int(s), int(e), -1) for s, e in zip(srcs, encs)]
        gb = b.append_batch(2, srcs, encs, backs)
        assert ga == gb.tolist()
        assert int_stats(a.pool.device) == int_stats(b.pool.device)
        np.testing.assert_array_equal(a.region.view, b.region.view)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_append_scatter_interleaved_equivalent(self, pool):
        kw = dict(n_sections=4, entries_per_section=32)
        a = self._scalar_logs(**kw)
        b = EdgeLogs(pool, **kw)
        # entries alternating between sections, as a batch's stream order does
        secs = np.array([0, 3, 0, 1, 3, 0], dtype=np.int64)
        srcs = np.array([5, 9, 5, 7, 9, 6], dtype=np.int64)
        encs = np.array([int(encode_edge(d)) for d in (1, 2, 3, 4, 5, 6)])
        backs = np.array([-1, -1, 0, -1, 33, -1], dtype=np.int64)
        ga = [
            a.append(int(s), int(v), int(e), int(bk))
            for s, v, e, bk in zip(secs, srcs, encs, backs)
        ]
        # caller-assigned gidxs: each section's cursor run, in stream order
        slot = np.zeros(4, dtype=np.int64)
        gidxs = np.empty(6, dtype=np.int64)
        for i, s in enumerate(secs):
            gidxs[i] = s * kw["entries_per_section"] + slot[s]
            slot[s] += 1
        gb = b.append_scatter(gidxs, srcs, encs, backs)
        assert ga == gb.tolist()
        assert int_stats(a.pool.device) == int_stats(b.pool.device)
        np.testing.assert_array_equal(a.region.view, b.region.view)
        np.testing.assert_array_equal(a.counts, b.counts)
        np.testing.assert_array_equal(a.live_counts, b.live_counts)
        np.testing.assert_array_equal(a.peak_counts, b.peak_counts)

    def test_append_batch_overflow(self, pool):
        logs = EdgeLogs(pool, n_sections=2, entries_per_section=4)
        srcs = np.zeros(5, dtype=np.int64)
        with pytest.raises(PMemError):
            logs.append_batch(0, srcs, srcs + 1, srcs - 1)

    def test_append_scatter_overflow(self, pool):
        logs = EdgeLogs(pool, n_sections=2, entries_per_section=4)
        logs.append(0, 1, int(encode_edge(1)), -1)
        logs.append(0, 1, int(encode_edge(2)), -1)
        # 3 more entries would push section 0 past its 4-entry capacity
        gidxs = np.arange(3, dtype=np.int64)
        z = np.zeros(3, dtype=np.int64)
        with pytest.raises(PMemError):
            logs.append_scatter(gidxs, z, z + 1, z - 1)

    def test_append_spans_equivalent(self, pool):
        kw = dict(n_sections=3, entries_per_section=16)
        a = self._scalar_logs(**kw)
        b = EdgeLogs(pool, **kw)
        secs = np.array([0, 2], dtype=np.int64)
        takes = np.array([2, 3], dtype=np.int64)
        srcs = np.array([1, 1, 8, 8, 9], dtype=np.int64)
        encs = np.array([int(encode_edge(d)) for d in (1, 2, 3, 4, 5)])
        backs = np.full(5, -1, dtype=np.int64)
        ga = []
        k = 0
        for s, t in zip(secs, takes):
            for _ in range(int(t)):
                ga.append(a.append(int(s), int(srcs[k]), int(encs[k]), -1))
                k += 1
        gb = b.append_spans(secs, takes, srcs, encs, backs)
        assert ga == gb.tolist()
        assert int_stats(a.pool.device) == int_stats(b.pool.device)
        np.testing.assert_array_equal(a.region.view, b.region.view)
