"""Tests for the Copy-on-Write Degree Cache (§6 future work)."""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DGAP, DGAPConfig
from repro.core.degree_cache import DEFAULT_CHUNK, CoWDegreeCache


def make_cache(n=100, chunk=16):
    deg = np.arange(n, dtype=np.int64)
    live = np.arange(n, dtype=np.int64)
    return CoWDegreeCache(deg, live, chunk=chunk)


class TestCoWCache:
    def test_read_through(self):
        c = make_cache()
        assert c.degree(5) == 5
        assert c.live_degree(99) == 99

    def test_write_without_pins_is_in_place(self):
        c = make_cache()
        c.set(3, 77, 70)
        assert c.degree(3) == 77
        assert c.chunks_copied == 0

    def test_snapshot_isolated_from_writes(self):
        c = make_cache()
        snap = c.snapshot()
        c.set(3, 999, 900)
        assert snap.degree(3) == 3  # pinned value
        assert c.degree(3) == 999  # live value
        snap.release()

    def test_copy_happens_once_per_pin_epoch(self):
        c = make_cache(n=64, chunk=16)
        snap = c.snapshot()
        for i in range(16):  # all writes hit chunk 0
            c.set(i, 1000 + i, 1000 + i)
        assert c.chunks_copied == 2  # one degree chunk + one live chunk
        snap.release()

    def test_untouched_chunks_stay_shared(self):
        c = make_cache(n=64, chunk=16)
        snap = c.snapshot()
        c.set(0, 5, 5)  # touches only chunk 0
        assert snap.shared_chunks == 3  # chunks 1..3 still shared
        snap.release()

    def test_new_snapshot_repins(self):
        c = make_cache(n=32, chunk=16)
        s1 = c.snapshot()
        c.set(0, 1, 1)
        copied1 = c.chunks_copied
        s2 = c.snapshot()
        c.set(0, 2, 2)
        assert c.chunks_copied > copied1  # repinned -> copied again
        assert s1.degree(0) == 0 and s2.degree(0) == 1 and c.degree(0) == 2
        s1.release()
        s2.release()

    def test_release_stops_copies(self):
        c = make_cache()
        s = c.snapshot()
        s.release()
        c.set(0, 9, 9)
        assert c.chunks_copied == 0

    def test_grow(self):
        c = make_cache(n=20, chunk=16)
        c.grow(50)
        assert c.num_vertices == 50
        assert c.degree(19) == 19
        assert c.degree(49) == 0
        c.set(49, 7, 7)
        assert c.degree(49) == 7

    def test_bulk_vectors(self):
        c = make_cache(n=40, chunk=16)
        s = c.snapshot()
        np.testing.assert_array_equal(s.degrees(), np.arange(40))
        np.testing.assert_array_equal(s.live_degrees(), np.arange(40))
        s.release()

    @given(st.lists(st.tuples(st.integers(0, 59), st.integers(0, 100)), max_size=80))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_snapshots_always_consistent(self, writes):
        c = make_cache(n=60, chunk=16)
        snap = c.snapshot()
        expected = {v: v for v in range(60)}
        for v, d in writes:
            c.set(v, d, d)
        for v in range(60):
            assert snap.degree(v) == expected[v]
        snap.release()


class TestDGAPWithCoW:
    CFG = dict(init_vertices=40, init_edges=2048, segment_slots=64, cow_degree_cache=True)

    def test_snapshot_semantics_identical_to_baseline(self):
        random.seed(21)
        edges = [(random.randrange(40), random.randrange(40)) for _ in range(2000)]
        results = {}
        for cow in (False, True):
            g = DGAP(DGAPConfig(init_vertices=40, init_edges=2048, segment_slots=64,
                                cow_degree_cache=cow))
            g.insert_edges(edges[:1000])
            snap = g.consistent_view()
            g.insert_edges(edges[1000:])
            results[cow] = {v: list(snap.out_neighbors(v)) for v in range(40)}
            snap.release()
        assert results[False] == results[True]

    def test_out_degree_without_materialization(self):
        g = DGAP(DGAPConfig(**self.CFG))
        g.insert_edge(1, 2)
        with g.consistent_view() as snap:
            assert snap.out_degree(1) == 1
            assert snap._degree_t is None  # per-vertex path stayed lazy

    def test_cheaper_than_copying_for_sparse_updates(self):
        """The §6 motivation: mostly-unchanged degrees shouldn't be copied."""
        g = DGAP(DGAPConfig(init_vertices=8192, init_edges=16384, cow_degree_cache=True))
        g.insert_edges([(i % 8192, (i + 1) % 8192) for i in range(4000)])
        snap = g.consistent_view()
        for i in range(50):  # a handful of updates in one chunk
            g.insert_edge(5, i % 8192)
        # 8192 vertices = 8 chunks/vector; only chunk 0 copied (deg + live)
        assert g._cow_cache.chunks_copied <= 4
        snap.release()

    def test_survives_shutdown_reopen(self):
        g = DGAP(DGAPConfig(**self.CFG))
        g.insert_edges([(1, 2), (2, 3)])
        g.shutdown()
        g2 = DGAP.open(g.pool, g.config)
        assert g2._cow_cache is not None
        with g2.consistent_view() as snap:
            assert snap.out_degree(1) == 1

    def test_tombstones_through_cow(self):
        g = DGAP(DGAPConfig(**self.CFG))
        g.insert_edge(1, 2)
        g.delete_edge(1, 2)
        with g.consistent_view() as snap:
            assert snap.out_degree(1) == 0
