"""End-to-end integration tests across modules.

Full pipelines: generate a dataset proxy -> ingest through the harness
-> analyze through the views -> crash -> recover -> analyze again, and
cross-system functional agreement on kernel outputs.
"""

import numpy as np
import pytest

from repro import DGAP, DGAPConfig, SimulatedCrash
from repro.algorithms import bfs, betweenness_centrality, connected_components, pagerank
from repro.analysis.view import CSRArraysView
from repro.baselines import SYSTEMS, StaticCSR
from repro.bench.harness import build_system, ingest, pick_source, run_kernel
from repro.datasets import get_dataset
from repro.pmem import CrashInjector

SCALE = 0.1


@pytest.fixture(scope="module")
def orkut():
    spec = get_dataset("orkut")
    edges = spec.generate(SCALE)
    nv, _ = spec.sizes(SCALE)
    return spec, edges, nv


class TestHarnessPipeline:
    def test_ingest_protocol(self, orkut):
        spec, edges, nv = orkut
        system = build_system("dgap", nv, edges.shape[0])
        result = ingest(system, spec, edges)
        assert result.edges_timed == edges.shape[0] - int(edges.shape[0] * 0.1)
        assert result.profile.meps(1) > 0
        assert result.write_amplification > 1.0
        assert system.analysis_view().num_edges == edges.shape[0]

    def test_all_systems_agree_on_kernels(self, orkut):
        spec, edges, nv = orkut
        ref = StaticCSR(nv, edges).analysis_view()
        src = int(np.argmax(ref.out_degrees()))
        ref_pr = pagerank(ref, 10)
        ref_cc = connected_components(ref)
        ref_bc = betweenness_centrality(ref, src)
        for name in SYSTEMS:
            system = build_system(name, nv, edges.shape[0])
            system.insert_edges(map(tuple, edges))
            system.finalize()
            view = system.analysis_view()
            np.testing.assert_allclose(pagerank(view, 10), ref_pr, rtol=1e-9, err_msg=name)
            np.testing.assert_array_equal(connected_components(view), ref_cc, err_msg=name)
            np.testing.assert_allclose(
                betweenness_centrality(view, src), ref_bc, rtol=1e-9, err_msg=name
            )

    def test_bfs_reaches_same_set_everywhere(self, orkut):
        spec, edges, nv = orkut
        ref = StaticCSR(nv, edges).analysis_view()
        src = int(np.argmax(ref.out_degrees()))
        reached_ref = bfs(ref, src) >= 0
        for name in ("dgap", "graphone"):
            system = build_system(name, nv, edges.shape[0])
            system.insert_edges(map(tuple, edges))
            system.finalize()
            reached = bfs(system.analysis_view(), src) >= 0
            np.testing.assert_array_equal(reached, reached_ref, err_msg=name)

    def test_run_kernel_thread_points(self, orkut):
        spec, edges, nv = orkut
        system = build_system("dgap", nv, edges.shape[0])
        system.insert_edges(map(tuple, edges))
        times = run_kernel(system.analysis_view(), "pr", threads=(1, 4, 16))
        assert times[1] > times[4] > times[16]


class TestCrashDuringPipeline:
    def test_ingest_crash_analyze_continue(self, orkut):
        """The full life cycle: ingest, crash mid-stream, recover, keep
        ingesting, analyze — results must equal an uninterrupted run."""
        spec, edges, nv = orkut
        inj = CrashInjector()
        cfg = DGAPConfig(init_vertices=nv, init_edges=edges.shape[0])
        g = DGAP(cfg, injector=inj)
        half = edges.shape[0] // 2
        g.insert_edges(map(tuple, edges[:half]))
        inj.arm(1, "flush")
        done = half
        try:
            for u, w in edges[half:]:
                g.insert_edge(int(u), int(w))
                done += 1
        except SimulatedCrash:
            pass
        inj.disarm()

        g2 = DGAP.open(g.pool, cfg)
        recovered = g2.num_edges
        assert done <= recovered <= done + 1
        # complete the stream (skip anything already acknowledged)
        g2.insert_edges(map(tuple, edges[recovered:]))
        assert g2.num_edges == edges.shape[0]

        with g2.consistent_view() as snap:
            view = CSRArraysView(*snap.to_csr())
            ranks = pagerank(view, 10)
        ref = pagerank(StaticCSR(nv, edges).analysis_view(), 10)
        np.testing.assert_allclose(ranks, ref, rtol=1e-9)

    def test_snapshot_survives_heavy_mutation_and_crash_of_later_state(self, orkut):
        spec, edges, nv = orkut
        cfg = DGAPConfig(init_vertices=nv, init_edges=edges.shape[0])
        g = DGAP(cfg)
        half = edges.shape[0] // 2
        g.insert_edges(map(tuple, edges[:half]))
        with g.consistent_view() as snap:
            indptr_before, dsts_before = snap.to_csr()
            g.insert_edges(map(tuple, edges[half:]))
            # snapshot data must be stable even though the array moved
            snap._csr = None  # force re-materialization through live structures
            indptr_after, dsts_after = snap.to_csr()
            np.testing.assert_array_equal(indptr_before, indptr_after)
            np.testing.assert_array_equal(dsts_before, dsts_after)


class TestSourcePicker:
    def test_pick_source_is_hub(self, orkut):
        src = pick_source("orkut", SCALE)
        spec, edges, nv = orkut
        deg = np.bincount(edges[:, 0], minlength=nv)
        assert deg[src] == deg.max()
