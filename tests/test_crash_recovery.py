"""Crash-consistency and recovery tests (paper §3.1.4–3.1.5).

The central guarantee, verified by exhaustive crash-point sweeps:
after a power failure at *any* store/flush/fence boundary, recovery
yields a graph that contains every acknowledged edge, in per-vertex
insertion order, with at most the single in-flight operation's edge
extra — across the normal path and every ablation mode.
"""

import random

import numpy as np
import pytest

from repro import DGAP, DGAPConfig, SimulatedCrash
from repro.pmem import CrashInjector

BASE = dict(init_vertices=48, init_edges=512, segment_slots=64, elog_size=256)


def crash_sweep(cfg, edges, crash_points, max_extra=1):
    """Run the workload, crash at each point, recover, and verify."""
    tested = 0
    for crash_at in crash_points:
        inj = CrashInjector()
        g = DGAP(cfg, injector=inj)
        inj.arm(crash_at)
        acked = []
        try:
            for u, w in edges:
                g.insert_edge(u, w)
                acked.append((u, w))
        except SimulatedCrash:
            pass
        else:
            return tested  # swept past the whole workload
        inj.disarm()
        tested += 1

        g2 = DGAP.open(g.pool, cfg)
        refd = {}
        for u, w in acked:
            refd.setdefault(u, []).append(w)
        with g2.consistent_view() as snap:
            for v in range(g2.num_vertices):
                got = list(snap.out_neighbors(v))
                want = refd.get(v, [])
                assert got[: len(want)] == want, (
                    f"crash@{crash_at}: vertex {v} lost/disordered edges: "
                    f"{got[:8]} vs {want[:8]}"
                )
                assert len(got) <= len(want) + max_extra, (
                    f"crash@{crash_at}: vertex {v} has phantom edges"
                )
    return tested


def make_edges(n, nv=48, seed=1, hot=None):
    random.seed(seed)
    out = []
    for i in range(n):
        u = hot if (hot is not None and i % 3 == 0) else random.randrange(nv)
        out.append((u, random.randrange(nv)))
    return out


class TestCrashSweeps:
    def test_sweep_default_config(self):
        edges = make_edges(900)
        n = crash_sweep(DGAPConfig(**BASE), edges, range(1, 4000, 41))
        assert n > 20

    def test_sweep_hot_vertex_forces_merges(self):
        edges = make_edges(900, hot=7, seed=2)
        n = crash_sweep(DGAPConfig(**BASE), edges, range(3, 4000, 53))
        assert n > 15

    def test_sweep_no_edge_log(self):
        edges = make_edges(700, seed=3)
        cfg = DGAPConfig(**BASE, use_edge_log=False)
        n = crash_sweep(cfg, edges, range(5, 5000, 71))
        assert n > 10

    def test_sweep_pmdk_tx_mode(self):
        edges = make_edges(600, seed=4)
        cfg = DGAPConfig(**BASE, use_edge_log=False, use_undo_log=False)
        n = crash_sweep(cfg, edges, range(7, 6000, 97))
        assert n > 10

    def test_sweep_dense_rebalance_every_point(self):
        """Exhaustive: every persistence event around forced rebalances."""
        cfg = DGAPConfig(init_vertices=16, init_edges=256, segment_slots=64, elog_size=96)
        edges = [(i % 16, (i * 5) % 16) for i in range(400)]
        n = crash_sweep(cfg, edges, range(1, 1200, 7))
        assert n > 50

    def test_sweep_with_deletions(self):
        random.seed(9)
        edges = []
        for i in range(500):
            edges.append((random.randrange(16), random.randrange(16)))
        cfg = DGAPConfig(init_vertices=16, init_edges=512, segment_slots=64)

        for crash_at in range(10, 2500, 111):
            inj = CrashInjector()
            g = DGAP(cfg, injector=inj)
            inj.arm(crash_at)
            live = {v: [] for v in range(16)}
            crashed = False
            try:
                for i, (u, w) in enumerate(edges):
                    if i % 5 == 4 and live[u]:
                        x = live[u][0]
                        g.delete_edge(u, x)
                        live[u].remove(x)
                    else:
                        g.insert_edge(u, w)
                        live[u].append(w)
            except SimulatedCrash:
                crashed = True
            if not crashed:
                break
            inj.disarm()
            g2 = DGAP.open(g.pool, cfg)
            with g2.consistent_view() as snap:
                for v in range(16):
                    got = sorted(snap.out_neighbors(v).tolist())
                    want = sorted(live[v])
                    # at most one in-flight op difference
                    diff = len(set_diff(got, want)) + len(set_diff(want, got))
                    assert diff <= 1, (crash_at, v, got, want)


def set_diff(a, b):
    bb = list(b)
    out = []
    for x in a:
        if x in bb:
            bb.remove(x)
        else:
            out.append(x)
    return out


class TestRecoveryPaths:
    def test_normal_restart_roundtrip(self):
        g = DGAP(DGAPConfig(**BASE))
        edges = make_edges(1000, seed=5)
        g.insert_edges(edges)
        ref = {}
        for u, w in edges:
            ref.setdefault(u, []).append(w)
        g.shutdown()
        g2 = DGAP.open(g.pool, g.config)
        with g2.consistent_view() as snap:
            for v in range(48):
                assert list(snap.out_neighbors(v)) == ref.get(v, [])

    def test_normal_restart_cheaper_than_crash(self):
        edges = make_edges(2000, seed=6)

        g = DGAP(DGAPConfig(**BASE))
        g.insert_edges(edges)
        g.shutdown()
        before = g.pool.stats.snapshot()
        DGAP.open(g.pool, g.config)
        normal_ns = g.pool.stats.delta_since(before).modeled_ns

        h = DGAP(DGAPConfig(**BASE))
        h.insert_edges(edges)
        h.pool.crash()
        before = h.pool.stats.snapshot()
        DGAP.open(h.pool, h.config)
        crash_ns = h.pool.stats.delta_since(before).modeled_ns
        assert crash_ns > normal_ns

    def test_reopen_after_reopen(self):
        g = DGAP(DGAPConfig(**BASE))
        g.insert_edges(make_edges(300, seed=7))
        g.shutdown()
        g2 = DGAP.open(g.pool, g.config)
        g2.insert_edge(1, 2)
        g2.shutdown()
        g3 = DGAP.open(g2.pool, g.config)
        assert g3.num_edges == 301

    def test_crash_recovery_can_continue_inserting(self):
        g = DGAP(DGAPConfig(**BASE))
        g.insert_edges(make_edges(500, seed=8))
        n0 = g.num_edges
        g.pool.crash()
        g2 = DGAP.open(g.pool, g.config)
        g2.insert_edges(make_edges(500, seed=9))
        assert g2.num_edges == n0 + 500
        # and survives a second crash
        g2.pool.crash()
        g3 = DGAP.open(g2.pool, g.config)
        assert g3.num_edges == n0 + 500

    def test_crash_after_resize_keeps_generation(self):
        cfg = DGAPConfig(init_vertices=16, init_edges=128, segment_slots=64)
        g = DGAP(cfg)
        g.insert_edges(make_edges(2000, nv=16, seed=10))
        assert g.n_resizes >= 1
        gen = g.ea.gen
        g.pool.crash()
        g2 = DGAP.open(g.pool, cfg)
        assert g2.ea.gen == gen
        assert g2.num_edges == 2000

    def test_recovery_rebuilds_degree_and_chains(self):
        g = DGAP(DGAPConfig(**BASE))
        for d in range(300):  # hot vertex: chains guaranteed
            g.insert_edge(3, d % 48)
        assert g.va.el[3] >= 0 or g.n_rebalances > 0
        g.pool.crash()
        g2 = DGAP.open(g.pool, g.config)
        assert g2.out_degree(3) == 300
        assert list(g2.out_neighbors(3)) == [d % 48 for d in range(300)]

    def test_empty_graph_recovery(self):
        g = DGAP(DGAPConfig(**BASE))
        g.pool.crash()
        g2 = DGAP.open(g.pool, g.config)
        assert g2.num_edges == 0
        assert g2.num_vertices == 48

    def test_open_blank_pool_rejected(self):
        from repro.errors import RecoveryError
        from repro.pmem import PMemPool

        with pytest.raises(RecoveryError):
            DGAP.open(PMemPool(1 << 20), DGAPConfig(**BASE))

    def test_eadr_platform_crash(self):
        """§2.1.3: DGAP works on eADR too — caches survive power loss."""
        from repro.pmem.latency import OPTANE_EADR

        cfg = DGAPConfig(**BASE, profile=OPTANE_EADR)
        g = DGAP(cfg)
        edges = make_edges(800, seed=11)
        g.insert_edges(edges)
        g.pool.crash()
        g2 = DGAP.open(g.pool, cfg)
        assert g2.num_edges == 800
