"""Crash-consistency and recovery tests (paper §3.1.4–3.1.5).

The central guarantee, verified by crash-point sweeps: after a power
failure at *any* store/flush/fence boundary, recovery yields a graph
that contains every acknowledged edge, in per-vertex insertion order,
with at most the single in-flight operation's edge extra — across the
normal path and every ablation mode.  The sweeps run on the shared
:mod:`repro.testing.crashsweep` driver (see ``test_crash_sweep.py`` for
the driver's own exhaustive/fault-policy coverage).
"""

import random

import numpy as np
import pytest

from repro import DGAP, DGAPConfig, SimulatedCrash
from repro.pmem import CrashInjector
from repro.testing import SweepConfig, crash_sweep, make_insert_workload

BASE = dict(init_vertices=48, init_edges=512, segment_slots=64, elog_size=256)


def make_graph_factory(cfg):
    return lambda injector, faults: DGAP(cfg, injector=injector, faults=faults)


def sweep(cfg, ops, samples, seed=0, **kw):
    """Sampled sweep via the shared driver (oracle raises on violation)."""
    return crash_sweep(
        make_graph_factory(cfg),
        ops,
        SweepConfig(exhaustive_threshold=0, samples=samples, seed=seed,
                    idempotence_samples=2, **kw),
    )


def make_edges(n, nv=48, seed=1, hot=None):
    random.seed(seed)
    out = []
    for i in range(n):
        u = hot if (hot is not None and i % 3 == 0) else random.randrange(nv)
        out.append((u, random.randrange(nv)))
    return out


class TestCrashSweeps:
    def test_sweep_default_config(self):
        ops = make_insert_workload(make_edges(900))
        rep = sweep(DGAPConfig(**BASE), ops, samples=60)
        assert rep.crash_points > 20

    def test_sweep_hot_vertex_forces_merges(self):
        ops = make_insert_workload(make_edges(900, hot=7, seed=2))
        rep = sweep(DGAPConfig(**BASE), ops, samples=40, seed=2)
        assert rep.crash_points > 15

    def test_sweep_no_edge_log(self):
        ops = make_insert_workload(make_edges(700, seed=3))
        cfg = DGAPConfig(**BASE, use_edge_log=False)
        rep = sweep(cfg, ops, samples=25, seed=3)
        assert rep.crash_points > 10

    def test_sweep_pmdk_tx_mode(self):
        ops = make_insert_workload(make_edges(600, seed=4))
        cfg = DGAPConfig(**BASE, use_edge_log=False, use_undo_log=False)
        rep = sweep(cfg, ops, samples=25, seed=4)
        assert rep.crash_points > 10

    def test_sweep_dense_rebalance_many_points(self):
        """Dense sampling of every phase around forced rebalances."""
        cfg = DGAPConfig(init_vertices=16, init_edges=256, segment_slots=64, elog_size=96)
        ops = make_insert_workload([(i % 16, (i * 5) % 16) for i in range(400)])
        rep = sweep(cfg, ops, samples=120, seed=5)
        assert rep.crash_points > 50
        # the sweep crossed rebalance/merge activity, not just gap inserts
        assert {r.op for r in rep.results} >= {"store", "flush", "fence"}

    def test_sweep_with_deletions(self):
        """Mixed insert/delete workload: multiset oracle, same driver."""
        random.seed(9)
        live = {v: [] for v in range(16)}
        ops = []
        for i in range(500):
            u, w = random.randrange(16), random.randrange(16)
            if i % 5 == 4 and live[u]:
                x = live[u][0]
                ops.append(("delete", u, x))
                live[u].remove(x)
            else:
                ops.append(("insert", u, w))
                live[u].append(w)
        cfg = DGAPConfig(init_vertices=16, init_edges=512, segment_slots=64)
        rep = sweep(cfg, ops, samples=25, seed=9)
        assert rep.crash_points > 10


class TestRecoveryPaths:
    def test_normal_restart_roundtrip(self):
        g = DGAP(DGAPConfig(**BASE))
        edges = make_edges(1000, seed=5)
        g.insert_edges(edges)
        ref = {}
        for u, w in edges:
            ref.setdefault(u, []).append(w)
        g.shutdown()
        g2 = DGAP.open(g.pool, g.config)
        with g2.consistent_view() as snap:
            for v in range(48):
                assert list(snap.out_neighbors(v)) == ref.get(v, [])

    def test_normal_restart_cheaper_than_crash(self):
        edges = make_edges(2000, seed=6)

        g = DGAP(DGAPConfig(**BASE))
        g.insert_edges(edges)
        g.shutdown()
        before = g.pool.stats.snapshot()
        DGAP.open(g.pool, g.config)
        normal_ns = g.pool.stats.delta_since(before).modeled_ns

        h = DGAP(DGAPConfig(**BASE))
        h.insert_edges(edges)
        h.pool.crash()
        before = h.pool.stats.snapshot()
        DGAP.open(h.pool, h.config)
        crash_ns = h.pool.stats.delta_since(before).modeled_ns
        assert crash_ns > normal_ns

    def test_reopen_after_reopen(self):
        g = DGAP(DGAPConfig(**BASE))
        g.insert_edges(make_edges(300, seed=7))
        g.shutdown()
        g2 = DGAP.open(g.pool, g.config)
        g2.insert_edge(1, 2)
        g2.shutdown()
        g3 = DGAP.open(g2.pool, g.config)
        assert g3.num_edges == 301

    def test_crash_recovery_can_continue_inserting(self):
        g = DGAP(DGAPConfig(**BASE))
        g.insert_edges(make_edges(500, seed=8))
        n0 = g.num_edges
        g.pool.crash()
        g2 = DGAP.open(g.pool, g.config)
        g2.insert_edges(make_edges(500, seed=9))
        assert g2.num_edges == n0 + 500
        # and survives a second crash
        g2.pool.crash()
        g3 = DGAP.open(g2.pool, g.config)
        assert g3.num_edges == n0 + 500

    def test_crash_after_resize_keeps_generation(self):
        cfg = DGAPConfig(init_vertices=16, init_edges=128, segment_slots=64)
        g = DGAP(cfg)
        g.insert_edges(make_edges(2000, nv=16, seed=10))
        assert g.n_resizes >= 1
        gen = g.ea.gen
        g.pool.crash()
        g2 = DGAP.open(g.pool, cfg)
        assert g2.ea.gen == gen
        assert g2.num_edges == 2000

    def test_recovery_rebuilds_degree_and_chains(self):
        g = DGAP(DGAPConfig(**BASE))
        for d in range(300):  # hot vertex: chains guaranteed
            g.insert_edge(3, d % 48)
        assert g.va.el[3] >= 0 or g.n_rebalances > 0
        g.pool.crash()
        g2 = DGAP.open(g.pool, g.config)
        assert g2.out_degree(3) == 300
        assert list(g2.out_neighbors(3)) == [d % 48 for d in range(300)]

    def test_empty_graph_recovery(self):
        g = DGAP(DGAPConfig(**BASE))
        g.pool.crash()
        g2 = DGAP.open(g.pool, g.config)
        assert g2.num_edges == 0
        assert g2.num_vertices == 48

    def test_open_blank_pool_rejected(self):
        from repro.errors import RecoveryError
        from repro.pmem import PMemPool

        with pytest.raises(RecoveryError):
            DGAP.open(PMemPool(1 << 20), DGAPConfig(**BASE))

    def test_shutdown_flag_store_not_fenced_takes_crash_path(self):
        """A crash with the NORMAL_SHUTDOWN root stored but not yet
        fenced must reopen through crash recovery, not the fast path.

        ``shutdown()`` ends with ``write_root(ROOT_SHUTDOWN, 1)`` =
        store + clwb + sfence; crashing on the clwb leaves the flag in
        the CPU cache only, so ADR reverts it and the pool looks
        crashed — which it is: metadata durability was never ordered.
        """
        from repro.core.rebalance import ROOT_SHUTDOWN

        cfg = DGAPConfig(**BASE)
        edges = make_edges(400, seed=12)

        # dry run: count shutdown's persistence events
        inj = CrashInjector()
        g = DGAP(cfg, injector=inj)
        g.insert_edges(edges)
        base = inj.total_events
        g.shutdown()
        shutdown_events = inj.total_events - base
        assert g.pool.read_root(ROOT_SHUTDOWN) == 1

        # replay, crashing at the flag's clwb (last event is its sfence)
        inj = CrashInjector()
        g = DGAP(cfg, injector=inj)
        g.insert_edges(edges)
        inj.arm(shutdown_events - 1)
        with pytest.raises(SimulatedCrash):
            g.shutdown()
        inj.disarm()
        assert g.pool.read_root(ROOT_SHUTDOWN) == 0  # store was reverted

        g2 = DGAP.open(g.pool, cfg)
        assert g2.num_edges == 400
        ref = {}
        for u, w in edges:
            ref.setdefault(u, []).append(w)
        for v in range(48):
            assert list(g2.out_neighbors(v)) == ref.get(v, [])

    def test_shutdown_flag_unfenced_under_persist_reorder(self):
        """Same boundary under the persist-reorder policy: the flushed
        flag line may or may not hit media at the crash; either way the
        reopened graph must equal the pre-crash one."""
        from repro.core.rebalance import ROOT_SHUTDOWN
        from repro.pmem.faults import PERSIST_REORDER

        cfg = DGAPConfig(**BASE)
        edges = make_edges(300, seed=13)
        ref = {}
        for u, w in edges:
            ref.setdefault(u, []).append(w)

        inj = CrashInjector()
        g = DGAP(cfg, injector=inj, faults=PERSIST_REORDER)
        g.insert_edges(edges)
        base = inj.total_events
        g.shutdown()
        shutdown_events = inj.total_events - base

        seen_flags = set()
        for seed in range(4):
            inj = CrashInjector()
            g = DGAP(cfg, injector=inj, faults=PERSIST_REORDER.with_seed(seed))
            g.insert_edges(edges)
            inj.arm(shutdown_events)  # the final sfence: flush is pending
            with pytest.raises(SimulatedCrash):
                g.shutdown()
            inj.disarm()
            flag = g.pool.read_root(ROOT_SHUTDOWN)
            seen_flags.add(flag)
            g2 = DGAP.open(g.pool, cfg)
            assert g2.num_edges == 300
            for v in range(48):
                assert list(g2.out_neighbors(v)) == ref.get(v, [])
        # across seeds the coin lands both ways: the flag persisted on
        # some runs (fast restart) and was dropped on others (crash path)
        assert seen_flags == {0, 1}

    def test_eadr_platform_crash(self):
        """§2.1.3: DGAP works on eADR too — caches survive power loss."""
        from repro.pmem.latency import OPTANE_EADR

        cfg = DGAPConfig(**BASE, profile=OPTANE_EADR)
        g = DGAP(cfg)
        edges = make_edges(800, seed=11)
        g.insert_edges(edges)
        g.pool.crash()
        g2 = DGAP.open(g.pool, cfg)
        assert g2.num_edges == 800
