"""Latency-model and config-validation tests."""

import pytest

from repro.config import DGAPConfig
from repro.pmem.latency import DRAM, OPTANE_ADR, OPTANE_EADR, get_profile


class TestProfiles:
    def test_registry(self):
        assert get_profile("dram") is DRAM
        assert get_profile("optane-adr") is OPTANE_ADR
        assert get_profile("optane-eadr") is OPTANE_EADR
        with pytest.raises(KeyError):
            get_profile("nvme")

    def test_paper_asymmetries(self):
        """§2.1.2: PM writes ~7-8x DRAM; reads ~2-3x DRAM."""
        write_ratio = (
            OPTANE_ADR.store_per_line_ns + OPTANE_ADR.flush_rnd_per_line_ns
        ) / (DRAM.store_per_line_ns + DRAM.flush_rnd_per_line_ns)
        assert 5 < write_ratio < 12
        read_ratio = OPTANE_ADR.read_rnd_per_line_ns / DRAM.read_rnd_per_line_ns
        assert 2 < read_ratio < 5

    def test_inplace_penalty_only_on_adr(self):
        assert OPTANE_ADR.flush_inplace_extra_ns > 0
        assert OPTANE_EADR.flush_inplace_extra_ns == 0
        assert DRAM.flush_inplace_extra_ns == 0

    def test_eadr_flags(self):
        assert OPTANE_EADR.persistent_caches
        assert not OPTANE_ADR.persistent_caches
        assert DRAM.volatile and not OPTANE_ADR.volatile

    def test_helpers(self):
        assert OPTANE_ADR.seq_read_ns(1000) == pytest.approx(1000 * OPTANE_ADR.read_seq_per_byte_ns)
        assert OPTANE_ADR.rnd_read_ns(10) == pytest.approx(10 * OPTANE_ADR.read_rnd_per_line_ns)
        assert OPTANE_ADR.rnd_read_ns(10, 128) == pytest.approx(20 * OPTANE_ADR.read_rnd_per_line_ns)

    def test_with_overrides(self):
        p = OPTANE_ADR.with_overrides(fence_ns=1.0)
        assert p.fence_ns == 1.0
        assert OPTANE_ADR.fence_ns != 1.0  # frozen original untouched


class TestConfigValidation:
    def test_defaults_are_papers(self):
        cfg = DGAPConfig()
        assert cfg.elog_size == 2048  # ELOG_SZ = 2K
        assert cfg.ulog_size == 2048  # ULOG_SZ = 2K
        assert cfg.elog_merge_fraction == 0.90

    def test_elog_entries(self):
        assert DGAPConfig(elog_size=2048).elog_entries == 170  # 12B entries

    @pytest.mark.parametrize(
        "kw",
        [
            dict(init_vertices=0),
            dict(init_edges=-1),
            dict(elog_merge_fraction=0.0),
            dict(elog_merge_fraction=1.5),
            dict(tau_leaf=0.5, tau_root=0.7),
            dict(rho_root=0.8, tau_root=0.7),
            dict(segment_slots=100),  # not a power of two
            dict(segment_slots=32),  # too small
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            DGAPConfig(**kw)

    def test_ablation_combinations_constructible(self):
        for el in (True, False):
            for ul in (True, False):
                for dp in (True, False):
                    DGAPConfig(use_edge_log=el, use_undo_log=ul, dram_placement=dp)
