"""Tests for the crash-sweep driver and its recovery oracle.

The acceptance bar for the fault model: an **exhaustive** sweep (every
persistence event) of a small insert+rebalance workload passes the
prefix-consistency oracle under the clean ADR model, the torn-store
model, and the persist-reorder model; poison sweeps either repair or
report; and recovery is idempotent under crash-during-recovery.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DGAP, DGAPConfig
from repro.pmem.faults import (
    ADVERSARIAL,
    DEFAULT_POLICY,
    PERSIST_REORDER,
    TORN_STORES,
    FaultPolicy,
)
from repro.testing import (
    SweepConfig,
    SweepFailure,
    crash_sweep,
    make_insert_workload,
    verify_recovered_graph,
)

CFG = dict(init_vertices=8, init_edges=256, segment_slots=64, elog_size=96)


def make_graph(injector, faults):
    return DGAP(DGAPConfig(**CFG), injector=injector, faults=faults)


def rebalance_workload():
    """~80 ops hitting every insert path: gap inserts, log appends, a
    forced merge+rebalance, and a couple of deletions."""
    ops = [("insert", 0, d % 8) for d in range(76)]
    ops += [("insert", 3, 1), ("insert", 5, 2)]
    ops += [("delete", 0, 2), ("delete", 3, 1)]
    return ops


def exercised_paths(ops):
    g = make_graph(None, None)
    for kind, u, w in ops:
        (g.insert_edge if kind == "insert" else g.delete_edge)(u, w)
    return g


class TestExhaustiveSweeps:
    def test_workload_actually_rebalances(self):
        """Guard: the sweep workload covers log appends and a rebalance
        (otherwise the exhaustive sweeps below prove less than claimed)."""
        g = exercised_paths(rebalance_workload())
        assert g.n_log_inserts > 0
        assert g.n_rebalances > 0
        assert g.n_array_inserts > 0

    @pytest.mark.parametrize(
        "policy", [DEFAULT_POLICY, TORN_STORES, PERSIST_REORDER, ADVERSARIAL],
        ids=["default", "torn", "reorder", "adversarial"],
    )
    def test_exhaustive_insert_rebalance_sweep(self, policy):
        rep = crash_sweep(
            make_graph,
            rebalance_workload(),
            SweepConfig(faults=policy, exhaustive_threshold=5000,
                        idempotence_samples=6),
        )
        assert rep.exhaustive
        assert rep.crash_points == rep.total_events > 200
        assert rep.unrecoverable_count() == 0
        assert sum(1 for r in rep.results if r.idempotence_checked) == 6
        # crash points landed on every event kind
        assert {r.op for r in rep.results} >= {"store", "flush", "fence", "ntstore"}

    def test_poison_sweep_repairs_or_reports(self):
        policy = FaultPolicy(torn_stores=True, persist_reorder=True,
                             poison_on_crash=0.2, seed=11)
        rep = crash_sweep(
            make_graph,
            rebalance_workload(),
            SweepConfig(faults=policy, exhaustive_threshold=5000,
                        idempotence_samples=4),
        )
        assert rep.exhaustive
        # every point either passed the oracle or reported the damage
        unrec = [r for r in rep.results if r.unrecoverable]
        assert 0 < len(unrec) < rep.crash_points
        for r in unrec:
            assert "media error" in r.detail

    def test_sweep_is_deterministic(self):
        cfg = SweepConfig(faults=TORN_STORES, exhaustive_threshold=5000,
                          idempotence_samples=3)
        a = crash_sweep(make_graph, rebalance_workload(), cfg)
        b = crash_sweep(make_graph, rebalance_workload(), cfg)
        assert [(r.total_index, r.acked, r.in_flight_applied, r.recovery_ns)
                for r in a.results] == \
               [(r.total_index, r.acked, r.in_flight_applied, r.recovery_ns)
                for r in b.results]


class TestSampledSweeps:
    def test_sampling_above_threshold(self):
        rep = crash_sweep(
            make_graph,
            rebalance_workload(),
            SweepConfig(exhaustive_threshold=10, samples=25,
                        idempotence_samples=2, seed=7),
        )
        assert not rep.exhaustive
        assert rep.crash_points <= 25
        assert rep.crash_points > 15
        # sampled coordinates are total-event indices within range
        for r in rep.results:
            assert 1 <= r.total_index <= rep.total_events

    def test_report_stats(self):
        rep = crash_sweep(
            make_graph,
            make_insert_workload([(0, d % 8) for d in range(30)]),
            SweepConfig(exhaustive_threshold=1000, idempotence_samples=0),
        )
        stats = rep.recovery_stats()
        from repro.bench.reporting import DISTRIBUTION_KEYS

        assert set(stats) == {f"{k}_us" for k in DISTRIBUTION_KEYS}
        assert stats["min_us"] <= stats["p50_us"] <= stats["p90_us"]
        assert stats["p90_us"] <= stats["p95_us"] <= stats["p99_us"] <= stats["max_us"]
        assert rep.recovery_ns().size == rep.crash_points


class TestOracle:
    def test_oracle_rejects_lost_acked_edge(self):
        g = make_graph(None, None)
        ops = make_insert_workload([(0, 1), (0, 2), (0, 3)])
        for _, u, w in ops[:2]:
            g.insert_edge(u, w)
        # claim all three were acked: the missing (0, 3) must be flagged
        with pytest.raises(SweepFailure, match="vertex 0"):
            verify_recovered_graph(g, ops, acked=3)

    def test_oracle_rejects_phantom_edge(self):
        g = make_graph(None, None)
        ops = make_insert_workload([(0, 1), (2, 5)])
        for _, u, w in ops:
            g.insert_edge(u, w)
        g.insert_edge(4, 4)  # never in the workload
        with pytest.raises(SweepFailure, match="vertex 4"):
            verify_recovered_graph(g, ops, acked=2)

    def test_oracle_accepts_in_flight_either_way(self):
        ops = make_insert_workload([(0, 1), (0, 2)])
        g = make_graph(None, None)
        g.insert_edge(0, 1)
        assert verify_recovered_graph(g, ops, acked=1) is False
        g.insert_edge(0, 2)
        assert verify_recovered_graph(g, ops, acked=1) is True

    def test_oracle_rejects_duplicate_of_acked_edge(self):
        g = make_graph(None, None)
        ops = make_insert_workload([(0, 1)])
        g.insert_edge(0, 1)
        g.insert_edge(0, 1)  # applied twice
        with pytest.raises(SweepFailure):
            verify_recovered_graph(g, ops, acked=1)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            crash_sweep(make_graph, [], SweepConfig())

    def test_unknown_op_kind_rejected(self):
        with pytest.raises(ValueError):
            crash_sweep(make_graph, [("upsert", 0, 1)], SweepConfig())


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    data=st.data(),
    torn=st.booleans(),
    reorder=st.booleans(),
    seed=st.integers(0, 2**16),
)
def test_property_random_workloads_survive_random_crashes(data, torn, reorder, seed):
    """Any small random workload, any fault combination, a handful of
    random crash points: the oracle always holds."""
    edges = data.draw(st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        min_size=5, max_size=40,
    ))
    policy = FaultPolicy(torn_stores=torn, persist_reorder=reorder, seed=seed)
    rep = crash_sweep(
        make_graph,
        make_insert_workload(edges),
        SweepConfig(faults=policy, exhaustive_threshold=0, samples=6,
                    idempotence_samples=1, seed=seed),
    )
    assert rep.unrecoverable_count() == 0
