"""Deterministic race checking of the §3.1.6 lock protocol.

Four layers, bottom up:

* the **oracle** judged on synthetic event logs (every rule fires on
  its minimal counterexample and stays quiet on the clean protocol);
* the **scheduler** driving cooperative workers through exhaustive
  interleavings, including a manufactured deadlock;
* the **regression** demonstrations: the deliberately-unfixed lock
  table (pre-fix check-then-act ``acquire``, quiescence-free
  ``resize``) replayed under the racy interleavings, with the oracle
  flagging both historical bugs — and the fixed table staying clean
  over the *same* exhausted schedule space;
* real-``DGAP`` **scenarios** (writer/writer, writer/rebalancer,
  writer/resize, reader/writer) swept clean post-fix, plus a
  hypothesis property that any explored schedule is linearizable
  (element-identical to some serial order of the two writers' ops).
"""

import functools
import itertools
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DGAP, DGAPConfig
from repro.errors import LockDisciplineError
from repro.testing.racecheck import (
    EventRecorder,
    InstrumentedSectionLockTable,
    SCENARIOS,
    ScenarioSpec,
    UnfixedSectionLockTable,
    check_lock_discipline,
    dry_run,
    events_from_tuples,
    explore_scenario,
    instrument,
    race_check,
    RaceCheckConfig,
    run_scenario,
    scenario_writer_rebalancer,
    _writer,
)
from repro.testing.schedules import (
    DeterministicScheduler,
    ScheduleDeadlock,
    explore_schedules,
    run_schedule,
)
from repro.workloads.vthreads import VirtualThreadScheduler


def rules(violations):
    return sorted({v.rule for v in violations})


# ----------------------------------------------------------------------
# the oracle on synthetic logs
# ----------------------------------------------------------------------


class TestOracle:
    def test_clean_writer_and_window(self):
        evs = events_from_tuples([
            ("acquire", "w", 2),
            ("release", "w", 2),
            ("flag-set", "r", 1),
            ("flag-set", "r", 2),
            ("window-lock", "r", 1),
            ("window-lock", "r", 2),
            ("window-unlock", "r", 2),
            ("window-unlock", "r", 1),
            ("flag-clear", "r", 1),
            ("flag-clear", "r", 2),
        ])
        assert check_lock_discipline(evs) == []

    def test_acquire_while_flagged(self):
        evs = events_from_tuples([
            ("flag-set", "r", 3),
            ("acquire", "w", 3),  # the TOCTOU: writer entered a claimed section
        ])
        assert rules(check_lock_discipline(evs)) == ["acquire-while-flagged"]

    def test_flag_setter_locking_its_own_window_is_fine(self):
        evs = events_from_tuples([
            ("flag-set", "r", 3),
            ("window-lock", "r", 3),
            ("window-unlock", "r", 3),
            ("flag-clear", "r", 3),
        ])
        assert check_lock_discipline(evs) == []

    def test_out_of_order_acquisition(self):
        evs = events_from_tuples([
            ("acquire", "w", 5),
            ("acquire", "w", 2),  # descending: breaks the total order
        ])
        assert rules(check_lock_discipline(evs)) == ["out-of-order"]

    def test_reentrant_reacquire_is_not_out_of_order(self):
        evs = events_from_tuples([
            ("acquire", "w", 2),
            ("acquire", "w", 5),
            ("acquire", "w", 2),  # re-entrant on an already-held section
            ("release", "w", 2),
            ("release", "w", 5),
            ("release", "w", 2),
        ])
        assert check_lock_discipline(evs) == []

    def test_release_without_acquire(self):
        evs = events_from_tuples([("release", "w", 1)])
        assert rules(check_lock_discipline(evs)) == ["release-without-acquire"]

    def test_flag_wait_while_holding(self):
        evs = events_from_tuples([
            ("acquire", "w", 1),
            ("flag-wait", "w", 2),  # the deadlock precondition
        ])
        assert rules(check_lock_discipline(evs)) == ["flag-wait-while-holding"]

    def test_resize_while_held_by_other(self):
        evs = events_from_tuples([
            ("acquire", "w", 1),
            ("resize", "r", -1),
        ])
        assert rules(check_lock_discipline(evs)) == ["resize-while-held"]

    def test_resize_by_holder_is_fine_and_resets_state(self):
        evs = events_from_tuples([
            ("flag-set", "r", 0),
            ("window-lock", "r", 0),
            ("resize", "r", -1),
            ("acquire", "w", 0),  # fresh table: no stale double-hold
            ("release", "w", 0),
        ])
        assert check_lock_discipline(evs) == []

    def test_double_hold(self):
        evs = events_from_tuples([
            ("acquire", "a", 4),
            ("acquire", "b", 4),  # mutual exclusion itself failed
        ])
        assert rules(check_lock_discipline(evs)) == ["double-hold"]

    def test_flag_clear_by_non_setter(self):
        evs = events_from_tuples([
            ("flag-set", "a", 1),
            ("flag-clear", "b", 1),
        ])
        assert rules(check_lock_discipline(evs)) == ["flag-clear-by-non-setter"]

    def test_legacy_vthread_upgrade_order_is_flagged(self):
        # The virtual-thread scheduler used to model a rebalance as
        # acquiring the whole window *while still holding* the writer's
        # section — a lock upgrade that can include lower sections.
        evs = events_from_tuples([
            ("acquire", "vt0", 2),
            ("window-lock", "vt0", 1),  # window extends left of the hold
        ])
        assert rules(check_lock_discipline(evs)) == ["out-of-order"]


# ----------------------------------------------------------------------
# the deterministic scheduler
# ----------------------------------------------------------------------


class TestScheduler:
    def test_exhaustive_interleavings_of_two_steppers(self):
        # two workers × two yield-separated appends: C(4,2)=6 orders
        observed = set()

        def make_case():
            sched = DeterministicScheduler()
            log = []

            def worker(tag):
                def run():
                    for i in range(2):
                        log.append(f"{tag}{i}")
                        sched.yield_point("op")
                return run

            sched.spawn("A", worker("a"))
            sched.spawn("B", worker("b"))

            def finish():
                observed.add(tuple(log))

            return sched, finish

        report = explore_schedules(make_case, max_schedules=100)
        assert report.exhaustive
        assert len(observed) == 6

    def test_replay_is_deterministic(self):
        def make_case():
            sched = DeterministicScheduler()
            log = []

            def worker(tag):
                def run():
                    log.append(tag)
                    sched.yield_point("op")
                    log.append(tag.upper())
                return run

            sched.spawn("A", worker("a"))
            sched.spawn("B", worker("b"))
            make_case.last = log
            return sched, lambda: None

        t1 = run_schedule(make_case, prefix=["B", "A", "B", "A"])
        log1 = make_case.last
        t2 = run_schedule(make_case, prefix=list(t1.trace))
        assert make_case.last == log1
        assert t2.trace == t1.trace

    def test_deadlock_is_detected_not_hung(self):
        # classic AB/BA on two plain locks via cooperative try-loops
        sched = DeterministicScheduler()
        la, lb = threading.Lock(), threading.Lock()

        def coop_lock(lock, tag):
            while not lock.acquire(blocking=False):
                sched.yield_point(f"blocked:{tag}", blocked_on=("lock", tag))

        def worker(first, second, ftag, stag):
            def run():
                coop_lock(first, ftag)
                sched.yield_point("op")
                coop_lock(second, stag)
            return run

        sched.spawn("A", worker(la, lb, "a", "b"))
        sched.spawn("B", worker(lb, la, "b", "a"))
        with pytest.raises(ScheduleDeadlock):
            # A takes la, B takes lb, then both spin on the other's lock
            sched.run(prefix=["A", "A", "B", "B"])


# ----------------------------------------------------------------------
# regressions: the pre-fix table under the racy interleavings
# ----------------------------------------------------------------------


def _raw_table_case(table_cls, writer_body, other_body, n_sections=4):
    """A two-worker script over a bare (instrumented) lock table."""
    sched = DeterministicScheduler()
    table = table_cls(n_sections, sched=sched)
    rec = table.recorder

    def named(name, body):
        def run():
            rec.name_thread(name)
            body(table, sched)
        return run

    sched.spawn("writer", named("writer", writer_body))
    sched.spawn("other", named("other", other_body))
    return sched, table


class TestPreFixRegressions:
    """The oracle must *detect* both pre-fix races, per the issue."""

    def test_unfixed_acquire_admits_writer_into_claimed_window(self):
        # Deterministic replay of the TOCTOU interleaving: the writer
        # passes the flag check, the rebalancer flags the section, and
        # the unfixed writer still completes its acquire.
        def writer(t, sched):
            t.acquire(0)
            sched.yield_point("op")
            t.release(0)

        def rebal(t, sched):
            secs = t.begin_rebalance([0])
            sched.yield_point("op")
            t.end_rebalance(secs)

        # one writer step: start → the lock-request yield (flag check
        # passed, lock not yet taken — the TOCTOU gap).  One rebalancer
        # step: flag-set, then parked at its window-request yield (lock
        # not yet taken either).  Then the writer acquires.
        prefix = ["writer", "other", "writer"]

        sched, table = _raw_table_case(UnfixedSectionLockTable, writer, rebal)
        sched.run(prefix=prefix)
        vs = check_lock_discipline(table.recorder.events)
        assert "acquire-while-flagged" in rules(vs)

        # same schedule, fixed table: the post-acquire re-check backs
        # off (an acquire-retry event) and no violation is possible.
        sched, table = _raw_table_case(InstrumentedSectionLockTable, writer, rebal)
        sched.run(prefix=prefix)
        kinds = {e.kind for e in table.recorder.events}
        assert "acquire-retry" in kinds or "flag-wait" in kinds
        assert check_lock_discipline(table.recorder.events) == []

    def test_unfixed_resize_swaps_table_under_a_holder(self):
        def writer(t, sched):
            t.acquire(0)
            sched.yield_point("op")
            t.release(0)

        def resizer(t, sched):
            t.resize(8)

        # two writer steps: start → lock-request, then acquire → parked
        # at the "op" yield STILL HOLDING section 0; the resize then
        # swaps the table wholesale underneath it.
        prefix = ["writer", "writer", "other"]
        sched, table = _raw_table_case(UnfixedSectionLockTable, writer, resizer)
        sched.run(prefix=prefix)
        vs = check_lock_discipline(table.recorder.events)
        assert "resize-while-held" in rules(vs)
        assert "release-without-acquire" in rules(vs)

    def test_fixed_resize_raises_instead_of_corrupting(self):
        def writer(t, sched):
            t.acquire(0)
            sched.yield_point("op")
            t.release(0)

        def resizer(t, sched):
            t.resize(8)

        sched, table = _raw_table_case(InstrumentedSectionLockTable, writer, resizer)
        trace = sched.run(prefix=["writer", "writer", "other"])
        assert isinstance(trace.errors.get("other"), LockDisciplineError)
        assert check_lock_discipline(table.recorder.events) == []

    def test_exhaustive_sweep_finds_toctou_in_unfixed_dgap(self):
        """End-to-end: real DGAP + unfixed table, full schedule space."""
        build = functools.partial(
            scenario_writer_rebalancer, table_cls=UnfixedSectionLockTable
        )
        outcomes, exhaustive = explore_scenario(build, max_schedules=400)
        assert exhaustive, "unfixed writer/rebalancer space must be exhaustible"
        dirty = [o for o in outcomes if o.violations]
        assert dirty, "the pre-fix TOCTOU must be reachable by some schedule"
        assert all(
            "acquire-while-flagged" in rules(o.violations) for o in dirty
        )


# ----------------------------------------------------------------------
# post-fix scenario sweeps
# ----------------------------------------------------------------------


class TestScenarioSweeps:
    def test_writer_rebalancer_exhaustive_and_clean(self):
        """The issue's headline acceptance: every writer/rebalancer
        schedule, exhaustively, with the oracle and graph invariants."""
        outcomes, exhaustive = explore_scenario(
            SCENARIOS["writer-rebalancer"], max_schedules=400
        )
        assert exhaustive
        assert len(outcomes) > 50  # a real space, not a degenerate one
        for o in outcomes:
            assert o.clean, (o.trace.trace, [str(v) for v in o.violations], o.error)

    @pytest.mark.parametrize("name", ["writer-writer", "writer-writer-shared"])
    def test_writer_writer_exhaustive_and_clean(self, name):
        outcomes, exhaustive = explore_scenario(SCENARIOS[name], max_schedules=500)
        assert exhaustive
        for o in outcomes:
            assert o.clean, (o.trace.trace, [str(v) for v in o.violations], o.error)

    @pytest.mark.parametrize("name", ["writer-resize", "reader-writer"])
    def test_sampled_scenarios_clean(self, name):
        outcomes, _ = explore_scenario(SCENARIOS[name], max_schedules=60, seed=7)
        for o in outcomes:
            assert o.clean, (o.trace.trace, [str(v) for v in o.violations], o.error)

    def test_race_check_report_shape(self):
        report = race_check(RaceCheckConfig(
            max_schedules=25, scenarios=["writer-writer", "writer-rebalancer"],
        ))
        assert report.ok
        assert report.schedules == 50
        assert report.violations == 0
        assert [s.name for s in report.scenarios] == ["writer-writer", "writer-rebalancer"]

    def test_dry_run_counts(self):
        counts = dry_run("writer-rebalancer")
        c = counts["writer-rebalancer"]
        assert c["flag-set"] >= 1 and c["window-lock"] >= 1
        assert c["decision-points"] > 0


# ----------------------------------------------------------------------
# virtual threads share the oracle
# ----------------------------------------------------------------------


class TestVThreadOracle:
    def test_modeled_event_stream_is_discipline_clean(self):
        nv = 32
        # tight array so the hot vertex forces real rebalance windows
        g = DGAP(DGAPConfig(init_vertices=nv, init_edges=512, segment_slots=64))
        vts = VirtualThreadScheduler(g, n_threads=4, record_events=True)
        edges = [(0, (i * 7) % nv or 1) for i in range(400)]
        vts.run(edges)
        assert any(k == "window-lock" for k, _, _ in vts.events)
        vs = check_lock_discipline(events_from_tuples(vts.events))
        assert vs == [], [str(v) for v in vs[:5]]


# ----------------------------------------------------------------------
# linearizability (hypothesis property, pinned profile via conftest)
# ----------------------------------------------------------------------


def _serial_adjacencies(seq_a, seq_b, sources):
    """Final adjacency tuples for every serial interleaving of the two
    per-thread op sequences (order-preserving merges)."""
    results = set()
    n, m = len(seq_a), len(seq_b)
    for picks in itertools.combinations(range(n + m), n):
        merged, ia, ib = [], 0, 0
        pickset = set(picks)
        for i in range(n + m):
            if i in pickset:
                merged.append(seq_a[ia]); ia += 1
            else:
                merged.append(seq_b[ib]); ib += 1
        g = DGAP(DGAPConfig(init_vertices=8, init_edges=2048, segment_slots=64))
        for src, dst in merged:
            g.insert_edge(src, dst)
        results.add(tuple(
            tuple(int(x) for x in g.out_neighbors(s)) for s in sources
        ))
    return results


@st.composite
def _two_writer_ops(draw):
    edge = st.tuples(st.integers(0, 3), st.integers(0, 7))
    seq_a = draw(st.lists(edge, min_size=1, max_size=3))
    seq_b = draw(st.lists(edge, min_size=1, max_size=3))
    seed = draw(st.integers(0, 2**31 - 1))
    return seq_a, seq_b, seed


@settings(max_examples=15, deadline=None)
@given(_two_writer_ops())
def test_schedules_are_linearizable(ops):
    """Any explored schedule leaves the graph element-identical to SOME
    serial order of the two writers' operations (satellite d)."""
    seq_a, seq_b, seed = ops
    sources = sorted({s for s, _ in seq_a + seq_b})
    holder = {}

    def build(sched):
        g = DGAP(DGAPConfig(
            init_vertices=8, init_edges=2048, segment_slots=64, thread_safe=True,
        ))
        rec = instrument(g, sched)
        holder["g"] = g
        return ScenarioSpec(
            graph=g, recorder=rec,
            workers={
                "A": _writer(g, sched, rec, "A", seq_a, thread_id=0),
                "B": _writer(g, sched, rec, "B", seq_b, thread_id=1),
            },
            validate=lambda: None,
        )

    out = run_scenario(build, rng=np.random.default_rng(seed))
    assert out.clean, (out.trace.trace, [str(v) for v in out.violations], out.error)
    g = holder["g"]
    observed = tuple(
        tuple(int(x) for x in g.out_neighbors(s)) for s in sources
    )
    assert observed in _serial_adjacencies(seq_a, seq_b, sources)
