"""Functional tests for the DGAP facade: inserts, snapshots, deletes, growth."""

import random

import numpy as np
import pytest

from repro import DGAP, DGAPConfig
from repro.errors import GraphError, SnapshotError, VertexRangeError

SMALL = dict(init_vertices=32, init_edges=256, segment_slots=64)


@pytest.fixture
def g():
    return DGAP(DGAPConfig(**SMALL))


class TestInsert:
    def test_single_edge(self, g):
        g.insert_edge(1, 2)
        assert g.num_edges == 1
        assert g.out_degree(1) == 1
        assert list(g.out_neighbors(1)) == [2]

    def test_insertion_order_preserved(self, g):
        g.insert_edge(1, 6)
        g.insert_edge(1, 2)  # paper: (1->2) stored after (1->6)
        assert list(g.out_neighbors(1)) == [6, 2]

    def test_duplicate_edges_kept(self, g):
        for _ in range(3):
            g.insert_edge(4, 4)
        assert list(g.out_neighbors(4)) == [4, 4, 4]

    def test_many_random_inserts_roundtrip(self, g):
        random.seed(7)
        ref = {}
        for _ in range(4000):
            u, w = random.randrange(32), random.randrange(32)
            g.insert_edge(u, w)
            ref.setdefault(u, []).append(w)
        with g.consistent_view() as snap:
            for v in range(32):
                assert list(snap.out_neighbors(v)) == ref.get(v, [])
        assert g.n_resizes >= 1  # 4000 edges vs init 256: growth exercised

    def test_skewed_inserts(self, g):
        """One hot vertex should push through edge logs + rebalances."""
        ref = []
        for d in range(2000):
            g.insert_edge(0, d % 32)
            ref.append(d % 32)
        assert list(g.out_neighbors(0)) == ref
        assert g.n_log_inserts > 0

    def test_insert_edges_bulk(self, g):
        n = g.insert_edges([(0, 1), (1, 2), (2, 3)])
        assert n == 3 and g.num_edges == 3

    def test_counters(self, g):
        g.insert_edges((i % 32, (i * 7) % 32) for i in range(500))
        assert g.n_edges_inserted == 500
        assert g.n_array_inserts + g.n_log_inserts + g.n_shift_inserts == 500


class TestVertexGrowth:
    def test_auto_grow_on_edge(self, g):
        g.insert_edge(100, 5)
        assert g.num_vertices == 101
        assert list(g.out_neighbors(100)) == [5]

    def test_insert_vertex_explicit(self, g):
        g.insert_vertex(40)
        assert g.num_vertices == 41
        assert g.out_degree(40) == 0

    def test_grow_then_insert_everywhere(self, g):
        g.insert_vertex(63)
        for v in range(64):
            g.insert_edge(v, 63 - v)
        for v in range(64):
            assert list(g.out_neighbors(v)) == [63 - v]

    def test_vertex_range_limit(self, g):
        with pytest.raises(VertexRangeError):
            g.insert_vertex(1 << 31)


class TestDelete:
    def test_delete_removes_one_occurrence(self, g):
        g.insert_edge(1, 2)
        g.insert_edge(1, 2)
        g.delete_edge(1, 2)
        assert list(g.out_neighbors(1)) == [2]
        assert g.out_degree(1) == 1

    def test_delete_then_reinsert(self, g):
        g.insert_edge(1, 2)
        g.delete_edge(1, 2)
        g.insert_edge(1, 2)
        assert list(g.out_neighbors(1)) == [2]

    def test_deleted_invisible_to_new_snapshot(self, g):
        g.insert_edge(3, 4)
        g.delete_edge(3, 4)
        with g.consistent_view() as snap:
            assert snap.out_degree(3) == 0
            assert snap.out_neighbors(3).size == 0

    def test_delete_heavy_workload(self, g):
        random.seed(11)
        live = {v: [] for v in range(32)}
        for i in range(3000):
            u = random.randrange(32)
            if live[u] and random.random() < 0.3:
                w = random.choice(live[u])
                g.delete_edge(u, w)
                live[u].remove(w)
            else:
                w = random.randrange(32)
                g.insert_edge(u, w)
                live[u].append(w)
        with g.consistent_view() as snap:
            for v in range(32):
                assert sorted(snap.out_neighbors(v).tolist()) == sorted(live[v]), v
        assert g.num_edges == sum(len(x) for x in live.values())


class TestSnapshots:
    def test_snapshot_isolation(self, g):
        g.insert_edge(0, 1)
        snap = g.consistent_view()
        g.insert_edge(0, 2)
        assert list(snap.out_neighbors(0)) == [1]  # update invisible
        snap2 = g.consistent_view()
        assert list(snap2.out_neighbors(0)) == [1, 2]
        snap.release()
        snap2.release()

    def test_snapshot_isolation_through_merges(self):
        """Inserts after t must stay invisible even across merges/rebalances."""
        # tiny edge logs + a hot vertex that outgrows its gap share force
        # frequent log merges and rebalances
        g = DGAP(DGAPConfig(init_vertices=32, init_edges=4000, segment_slots=64, elog_size=96))
        random.seed(3)
        pre = {}
        for _ in range(800):
            u, w = random.randrange(32), random.randrange(32)
            g.insert_edge(u, w)
            pre.setdefault(u, []).append(w)
        snap = g.consistent_view()
        for i in range(2500):  # hammer one vertex: merges + rebalances
            g.insert_edge(7, i % 32)
        assert g.n_rebalances > 0 and g.n_log_inserts > 0
        for v in range(32):
            assert list(snap.out_neighbors(v)) == pre.get(v, []), v
        snap.release()

    def test_csr_matches_per_vertex(self, g):
        random.seed(4)
        for _ in range(1000):
            g.insert_edge(random.randrange(32), random.randrange(32))
        with g.consistent_view() as snap:
            indptr, dsts = snap.to_csr()
            for v in range(32):
                np.testing.assert_array_equal(
                    dsts[indptr[v] : indptr[v + 1]], snap.out_neighbors(v)
                )

    def test_csr_with_pending_chains(self, g):
        # hammer one vertex to leave entries in the edge log, then CSR
        for d in range(200):
            g.insert_edge(5, d % 32)
        with g.consistent_view() as snap:
            indptr, dsts = snap.to_csr()
            assert list(dsts[indptr[5] : indptr[6]]) == [d % 32 for d in range(200)]

    def test_csc_is_transpose(self, g):
        g.insert_edges([(0, 1), (2, 1), (1, 0)])
        with g.consistent_view() as snap:
            in_indptr, in_srcs = snap.to_csc()
            assert sorted(in_srcs[in_indptr[1] : in_indptr[2]].tolist()) == [0, 2]

    def test_use_after_release(self, g):
        snap = g.consistent_view()
        snap.release()
        with pytest.raises(SnapshotError):
            snap.out_neighbors(0)

    def test_num_edges_live(self, g):
        g.insert_edge(0, 1)
        g.delete_edge(0, 1)
        with g.consistent_view() as snap:
            assert snap.num_edges == 0

    def test_shutdown_with_active_snapshot_rejected(self, g):
        snap = g.consistent_view()
        with pytest.raises(GraphError):
            g.shutdown()
        snap.release()


class TestAblationModes:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(use_edge_log=False),
            dict(use_edge_log=False, use_undo_log=False),
            dict(use_edge_log=False, use_undo_log=False, dram_placement=False),
            dict(dram_placement=False),
        ],
    )
    def test_functionally_identical(self, kw):
        random.seed(9)
        g = DGAP(DGAPConfig(**SMALL, **kw))
        ref = {}
        for _ in range(1500):
            u, w = random.randrange(32), random.randrange(32)
            g.insert_edge(u, w)
            ref.setdefault(u, []).append(w)
        with g.consistent_view() as snap:
            for v in range(32):
                assert list(snap.out_neighbors(v)) == ref.get(v, [])

    def test_edge_log_reduces_stored_bytes(self):
        """The headline §4.4 claim: EL cuts insert write traffic."""
        random.seed(12)
        edges = [(random.randrange(64), random.randrange(64)) for _ in range(4000)]

        def traffic(**kw):
            g = DGAP(DGAPConfig(init_vertices=64, init_edges=1024, segment_slots=64, **kw))
            before = g.pool.stats.snapshot()
            g.insert_edges(edges)
            return g.pool.stats.delta_since(before)

        with_el = traffic()
        without = traffic(use_edge_log=False)
        assert without.stored_bytes > 1.3 * with_el.stored_bytes
        assert without.modeled_ns > with_el.modeled_ns


class TestInvariantChecker:
    def test_clean_after_workload(self):
        random.seed(31)
        g = DGAP(DGAPConfig(**SMALL))
        for _ in range(3000):
            g.insert_edge(random.randrange(32), random.randrange(32))
        g.check_invariants()

    def test_clean_after_crash_recovery(self):
        random.seed(32)
        g = DGAP(DGAPConfig(**SMALL))
        for _ in range(1500):
            g.insert_edge(random.randrange(32), random.randrange(32))
        g.pool.crash()
        g2 = DGAP.open(g.pool, g.config)
        g2.check_invariants()

    def test_detects_corruption(self):
        from repro.errors import GraphError

        g = DGAP(DGAPConfig(**SMALL))
        g.insert_edge(1, 2)
        # corrupt a pivot behind the API's back
        import numpy as np

        ppos = int(np.flatnonzero(g.ea.slots < 0)[2])
        off = g.ea.byte_off(ppos)
        g.pool.device.buf[off : off + 4] = np.frombuffer(
            np.int32(0).tobytes(), dtype=np.uint8
        )
        with pytest.raises(GraphError):
            g.check_invariants()


class TestGapDistribution:
    @pytest.mark.parametrize("strategy", ["proportional", "uniform"])
    def test_both_strategies_correct(self, strategy):
        random.seed(33)
        g = DGAP(DGAPConfig(init_vertices=32, init_edges=512, segment_slots=64,
                            gap_distribution=strategy))
        ref = {}
        for _ in range(2500):
            u, w = random.randrange(32), random.randrange(32)
            g.insert_edge(u, w)
            ref.setdefault(u, []).append(w)
        g.check_invariants()
        with g.consistent_view() as snap:
            for v in range(32):
                assert list(snap.out_neighbors(v)) == ref.get(v, [])

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            DGAPConfig(gap_distribution="random")
