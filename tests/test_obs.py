"""Unit tests for the ``repro.obs`` tracing subsystem.

Covers the tracer's own contract — no-op when off, correct tree
construction, exact self-attribution arithmetic, device-event capture,
exporter output — independent of the DGAP instrumentation (which the
golden/differential/property tests exercise).
"""

import json

import numpy as np
import pytest

from repro import DGAP, DGAPConfig
from repro.errors import SimulatedCrash
from repro.obs import (
    INT_COUNTER_FIELDS,
    Tracer,
    active_tracer,
    aggregate_phases,
    annotate,
    chrome_trace_events,
    golden_tree,
    kernel_span,
    render_tree,
    trace,
    tracing,
    write_chrome_trace,
)
from repro.obs import tracer as tracer_mod
from repro.pmem import device as device_mod
from repro.pmem.crash import CrashInjector, CrashPlan

SMALL = dict(init_vertices=24, init_edges=256, segment_slots=64)


def small_graph(**kw):
    return DGAP(DGAPConfig(**{**SMALL, **kw}))


def test_trace_is_noop_when_off():
    assert active_tracer() is None
    cm1 = trace("anything", a=1)
    cm2 = trace("else")
    assert cm1 is cm2  # the shared no-op singleton: no allocation per call
    with cm1:
        annotate(x=1)  # must not raise
    assert device_mod.TRACE_HOOK is None


def test_span_tree_structure_and_indices():
    t = Tracer()
    with tracing(t):
        with trace("a"):
            with trace("b"):
                pass
            with trace("c"):
                with trace("d"):
                    pass
        with trace("e"):
            pass
    assert [r.name for r in t.roots] == ["a", "e"]
    a = t.roots[0]
    assert [c.name for c in a.children] == ["b", "c"]
    assert [c.name for c in a.children[1].children] == ["d"]
    # preorder indices are assigned at entry
    assert [s.index for _, s in t.walk()] == [0, 1, 2, 3, 4]
    assert t.span_count() == 5
    assert [s.name for s in t.find("c")] == ["c"]
    assert active_tracer() is None  # uninstalled by the context manager


def test_span_survives_exceptions_and_records_error():
    t = Tracer()
    with tracing(t):
        with pytest.raises(ValueError):
            with trace("outer"):
                with trace("inner"):
                    raise ValueError("boom")
    outer = t.roots[0]
    assert outer.name == "outer"
    assert outer.children[0].name == "inner"
    assert outer.attrs["error"] == "ValueError"
    assert outer.children[0].attrs["error"] == "ValueError"


def test_uninstall_closes_leftover_open_spans():
    t = Tracer()
    t.install()
    span = t.span("left-open").__enter__()
    t.uninstall()
    assert t.roots and t.roots[0] is span
    assert span.wall_ns >= 0
    assert active_tracer() is None


def test_install_errors():
    t1, t2 = Tracer(), Tracer()
    t1.install()
    with pytest.raises(RuntimeError):
        t2.install()  # one at a time
    t1.uninstall()
    with pytest.raises(RuntimeError):
        t1.install()  # no re-install of a used tracer
    with pytest.raises(RuntimeError):
        t1.uninstall()  # not installed
    t2.install()
    t2.uninstall()


def test_annotate_targets_innermost_span():
    t = Tracer()
    with tracing(t):
        with trace("outer"):
            annotate(level="outer")
            with trace("inner"):
                annotate(level="inner", extra=1)
    assert t.roots[0].attrs == {"level": "outer"}
    assert t.roots[0].children[0].attrs == {"level": "inner", "extra": 1}


def test_counter_attribution_against_device():
    g = small_graph()
    t = Tracer(g.pool.stats)
    dev = g.pool.device
    with tracing(t):
        with trace("parent"):
            dev.store(0, b"\x01" * 8)
            with trace("child"):
                dev.persist(0, 8)  # clwb + sfence
            dev.store(64, b"\x02" * 4)
    parent, child = t.roots[0], t.roots[0].children[0]
    assert parent.delta.stores == 2
    assert parent.delta.flushes == 1
    assert parent.delta.fences == 1
    assert child.delta.stores == 0
    assert child.delta.flushes == 1
    assert child.delta.fences == 1
    # self = delta - children, exactly
    self_d = parent.self_delta()
    assert self_d.stores == 2 and self_d.flushes == 0 and self_d.fences == 0
    assert self_d.modeled_ns == pytest.approx(
        parent.delta.modeled_ns - child.delta.modeled_ns
    )
    total = t.total_delta()
    assert total.stores == 2 and total.flushes == 1 and total.fences == 1


def test_aggregate_phases_partitions_the_total():
    g = small_graph()
    rng = np.random.default_rng(3)
    edges = rng.integers(0, SMALL["init_vertices"], size=(400, 2))
    t = Tracer(g.pool.stats)
    with tracing(t):
        g.insert_edges(edges, batch_size=64)
        g.pool.device.store(0, b"\x05")  # outside any span? no — root-less
    rows, untraced = aggregate_phases(t)
    total = t.total_delta()
    for f in INT_COUNTER_FIELDS:
        assert sum(r.counters[f] for r in rows) + untraced.counters[f] == getattr(
            total, f
        ), f
    modeled = sum(r.modeled_ns for r in rows) + untraced.modeled_ns
    assert modeled == pytest.approx(total.modeled_ns, rel=1e-9, abs=1e-3)
    # the bare store above ran outside every span -> lands in (untraced)
    assert untraced.counters["stores"] == 1


def test_device_events_capture_and_cap():
    g = small_graph()
    t = Tracer(g.pool.stats, device_ops=True, max_device_events=3)
    dev = g.pool.device
    with tracing(t):
        for i in range(5):
            dev.store(i * 64, b"\x01")
    assert len(t.device_events) == 3
    assert t.dropped_device_events == 2
    kinds = {e[0] for e in t.device_events}
    assert kinds == {"store"}
    assert device_mod.TRACE_HOOK is None  # uninstalled


def test_device_events_cover_batched_ops():
    g = small_graph()
    t = Tracer(g.pool.stats, device_ops=True)
    dev = g.pool.device
    offs = np.arange(4, dtype=np.int64) * 64
    data = np.zeros((4, 4), dtype=np.uint8)
    with tracing(t):
        dev.persist_batch(offs, data)
    kinds = [(k, n) for k, _, n, _ in t.device_events]
    assert ("store", 4) in kinds and ("flush", 4) in kinds and ("fence", 4) in kinds


def test_device_events_identical_counts_under_crash_injection():
    # The scalar crash-sensitive fallback must emit per-op events that
    # sum to the batched path's counts.
    g = small_graph()
    t = Tracer(g.pool.stats, device_ops=True)
    inj = CrashInjector(CrashPlan(10**9))  # armed far away: scalar fallback
    g2 = DGAP(DGAPConfig(**SMALL), injector=inj)
    t2 = Tracer(g2.pool.stats, device_ops=True)
    edges = np.array([[1, 2], [2, 3], [3, 4]])
    with tracing(t):
        g.insert_edges(edges, batch_size=0)
    with tracing(t2):
        g2.insert_edges(edges, batch_size=0)

    def totals(tr):
        acc = {}
        for kind, _, n, nb in tr.device_events:
            c, b = acc.get(kind, (0, 0))
            acc[kind] = (c + n, b + nb)
        return acc

    assert totals(t) == totals(t2)


def test_kernel_span_records_analysis_clock():
    from repro.algorithms import pagerank
    from repro.analysis.view import CSRArraysView

    g = small_graph()
    g.insert_edges(np.array([[0, 1], [1, 2], [2, 0]]))
    with g.consistent_view() as snap:
        view = CSRArraysView(*snap.to_csr())
    t = Tracer(g.pool.stats)
    with tracing(t):
        pagerank(view, iterations=2)
    spans = t.find("pr")
    assert len(spans) == 1
    assert spans[0].attrs["analysis_par_ns"] > 0
    # kernels never touch the device
    assert spans[0].delta.stores == 0 and spans[0].delta.modeled_ns == 0.0


def test_kernel_span_is_noop_when_off():
    from repro.algorithms import pagerank
    from repro.analysis.view import CSRArraysView

    g = small_graph()
    g.insert_edges(np.array([[0, 1], [1, 0]]))
    with g.consistent_view() as snap:
        ranks = pagerank(CSRArraysView(*snap.to_csr()), iterations=2)
    assert ranks.shape[0] == g.num_vertices


def test_chrome_trace_events_nest_on_modeled_timeline(tmp_path):
    g = small_graph()
    rng = np.random.default_rng(5)
    edges = rng.integers(0, SMALL["init_vertices"], size=(300, 2))
    t = Tracer(g.pool.stats, device_ops=True)
    with tracing(t):
        g.insert_edges(edges, batch_size=64)
    events = chrome_trace_events(t)
    xs = [e for e in events if e["ph"] == "X"]
    assert xs, "no complete events emitted"
    for e in xs:
        assert e["ts"] >= 0 and e["dur"] >= 0
    # children nest inside parents on the modeled timeline
    spans = {id(s): s for _, s in t.walk()}
    for s in spans.values():
        for c in s.children:
            assert c.t0_modeled >= s.t0_modeled
            assert (
                c.t0_modeled + c.delta.modeled_ns
                <= s.t0_modeled + s.delta.modeled_ns + 1e-6
            )
    path = tmp_path / "trace.json"
    n = write_chrome_trace(t, str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == n
    assert any(e["ph"] == "i" for e in doc["traceEvents"])  # device events


def test_golden_tree_round_trip_and_rendering():
    g = small_graph()
    t = Tracer(g.pool.stats)
    with tracing(t):
        g.insert_edges(np.array([[0, 1], [1, 2], [2, 3], [3, 0]]))
    doc = golden_tree(t)
    assert doc["span_count"] == t.span_count()
    # JSON round trip is identity (fixture-file safety)
    assert json.loads(json.dumps(doc)) == doc
    lines = render_tree(doc)
    assert lines[0] == f"span_count={t.span_count()}"
    assert any("insert_edges" in ln for ln in lines)


def test_profile_table_sums_and_total_row():
    from repro.bench.reporting import profile_table

    g = small_graph()
    rng = np.random.default_rng(7)
    edges = rng.integers(0, SMALL["init_vertices"], size=(500, 2))
    t = Tracer(g.pool.stats)
    with tracing(t):
        g.insert_edges(edges, batch_size=128)
    table = profile_table(t, title="unit")
    assert "== unit ==" in table
    assert "(untraced)" in table and "total" in table
    assert "batch_round" in table


def test_crash_inside_span_closes_cleanly():
    inj = CrashInjector()
    g = DGAP(DGAPConfig(**SMALL), injector=inj)
    inj.arm(5)
    t = Tracer(g.pool.stats)
    with tracing(t):
        with pytest.raises(SimulatedCrash):
            with trace("doomed"):
                for i in range(50):
                    g.insert_edge(1, 2)
    doomed = t.find("doomed")[0]
    assert doomed.delta is not None
    assert doomed.attrs["error"] == "SimulatedCrash"
