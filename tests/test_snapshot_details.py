"""Focused tests on snapshot internals: chain slicing, CSR splicing, CSC."""

import random

import numpy as np
import pytest

from repro import DGAP, DGAPConfig
from repro.core.snapshot import _multi_arange

CFG = dict(init_vertices=24, init_edges=1024, segment_slots=64)


class TestChainSlicing:
    def test_snapshot_between_log_appends(self):
        """degree_t falls inside the chain: skip-newest/take logic (§3.1.3)."""
        g = DGAP(DGAPConfig(**CFG))
        # exhaust vertex 0's gap so later edges land in the edge log
        for d in range(80):
            g.insert_edge(0, d % 24)
        snap_mid = g.consistent_view()
        deg_mid = snap_mid.out_degree(0)
        for d in range(40):  # newer entries the snapshot must skip
            g.insert_edge(0, (d * 7) % 24)
        assert list(snap_mid.out_neighbors(0)) == [d % 24 for d in range(deg_mid)]
        snap_mid.release()

    def test_merge_after_snapshot_moves_chain_into_array(self):
        g = DGAP(DGAPConfig(**CFG, elog_size=96))
        for d in range(60):
            g.insert_edge(0, d % 24)
        snap = g.consistent_view()
        rebal_before = g.n_rebalances
        for d in range(400):  # forces merges of vertex 0's section
            g.insert_edge(0, (d + 5) % 24)
        assert g.n_rebalances > rebal_before
        # snapshot still reads its 60 edges although the chain merged
        assert list(snap.out_neighbors(0)) == [d % 24 for d in range(60)]
        snap.release()

    def test_multiple_concurrent_snapshots_different_times(self):
        g = DGAP(DGAPConfig(**CFG))
        snaps = []
        expected = []
        seq = []
        for round_ in range(4):
            for d in range(25):
                g.insert_edge(3, d)
                seq.append(d)
            snaps.append(g.consistent_view())
            expected.append(list(seq))
        for snap, want in zip(snaps, expected):
            assert list(snap.out_neighbors(3)) == want
            snap.release()


class TestCSRDetails:
    def test_csr_cached(self):
        g = DGAP(DGAPConfig(**CFG))
        g.insert_edges([(1, 2), (3, 4)])
        with g.consistent_view() as snap:
            a = snap.to_csr()
            b = snap.to_csr()
            assert a[0] is b[0] and a[1] is b[1]

    def test_csr_empty_graph(self):
        g = DGAP(DGAPConfig(**CFG))
        with g.consistent_view() as snap:
            indptr, dsts = snap.to_csr()
            assert indptr[-1] == 0 and dsts.size == 0

    def test_csr_with_tombstones_spliced(self):
        g = DGAP(DGAPConfig(**CFG))
        g.insert_edges([(1, 2), (1, 3), (2, 5)])
        g.delete_edge(1, 2)
        with g.consistent_view() as snap:
            indptr, dsts = snap.to_csr()
            assert list(dsts[indptr[1] : indptr[2]]) == [3]
            assert list(dsts[indptr[2] : indptr[3]]) == [5]
            assert indptr[-1] == 2

    def test_csr_mixed_special_and_plain(self):
        """Chain vertices and tombstone vertices splice around plain ones."""
        random.seed(13)
        g = DGAP(DGAPConfig(**CFG))
        ref = {}
        for _ in range(500):
            u, w = random.randrange(24), random.randrange(24)
            g.insert_edge(u, w)
            ref.setdefault(u, []).append(w)
        for d in range(120):  # chain vertex
            g.insert_edge(7, d % 24)
            ref.setdefault(7, []).append(d % 24)
        g.delete_edge(3, ref[3][0])  # tombstone vertex
        ref[3].remove(ref[3][0])
        with g.consistent_view() as snap:
            indptr, dsts = snap.to_csr()
            for v in range(24):
                got = list(dsts[indptr[v] : indptr[v + 1]])
                if v == 3:
                    assert sorted(got) == sorted(ref.get(3, []))
                else:
                    assert got == ref.get(v, []), v

    def test_csc_counts_match(self):
        random.seed(14)
        g = DGAP(DGAPConfig(**CFG))
        indeg = np.zeros(24, dtype=int)
        for _ in range(300):
            u, w = random.randrange(24), random.randrange(24)
            g.insert_edge(u, w)
            indeg[w] += 1
        with g.consistent_view() as snap:
            in_indptr, in_srcs = snap.to_csc()
            np.testing.assert_array_equal(np.diff(in_indptr), indeg)


class TestMultiArange:
    def test_empty(self):
        assert _multi_arange(np.empty(0, np.int64), np.empty(0, np.int64)).size == 0

    def test_zero_counts_skipped(self):
        out = _multi_arange(np.array([5, 10, 20]), np.array([2, 0, 1]))
        np.testing.assert_array_equal(out, [5, 6, 20])
