#!/usr/bin/env python
"""Stdlib-only line-coverage checker for the repro package.

The CI image deliberately carries no third-party coverage tooling, so
this implements just enough: run the test suite under a line tracer,
count executed lines per file under ``src/repro``, and compare against
the set of executable lines derived by compiling each source file and
walking its code objects (``co_lines``).

On Python 3.12+ it uses ``sys.monitoring`` with per-location DISABLE
(near-zero overhead after first hit); on older interpreters it falls
back to ``sys.settrace``, returning ``None`` for frames outside the
package so foreign code runs untraced.

Usage::

    python tools/check_coverage.py [--fail-under PCT] [pytest args...]

Exits nonzero if pytest fails or measured coverage is below the floor.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def executable_lines(path: Path) -> set:
    """Lines with executable code, via compile + recursive co_consts walk."""
    code = compile(path.read_text(), str(path), "exec")
    lines = set()
    stack = [code]
    while stack:
        co = stack.pop()
        for _, _, line in co.co_lines():
            if line is not None:
                lines.add(line)
        for const in co.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # a module's code object reports line 0 for some preamble ops
    lines.discard(0)
    return lines


class Collector:
    def __init__(self, root: Path):
        self.root = str(root) + os.sep
        self.hits = {}  # filename -> set of lines

    def wants(self, filename: str) -> bool:
        return filename.startswith(self.root)

    # -- sys.monitoring backend (3.12+) -----------------------------------

    def start_monitoring(self):
        mon = sys.monitoring
        self._mon = mon
        self._tool = mon.COVERAGE_ID
        mon.use_tool_id(self._tool, "repro-coverage")

        def on_line(code, line):
            fn = code.co_filename
            if not self.wants(fn):
                return mon.DISABLE
            self.hits.setdefault(fn, set()).add(line)
            return mon.DISABLE  # one hit per location is all we need

        mon.register_callback(self._tool, mon.events.LINE, on_line)
        mon.set_events(self._tool, mon.events.LINE)

    def stop_monitoring(self):
        self._mon.set_events(self._tool, 0)
        self._mon.free_tool_id(self._tool)

    # -- sys.settrace backend (<=3.11) ------------------------------------

    def start_settrace(self):
        def tracer(frame, event, arg):
            fn = frame.f_code.co_filename
            if not self.wants(fn):
                return None  # leave foreign frames untraced
            if event == "line":
                self.hits.setdefault(fn, set()).add(frame.f_lineno)
            return tracer

        sys.settrace(tracer)

    def stop_settrace(self):
        sys.settrace(None)

    def start(self):
        if hasattr(sys, "monitoring"):
            self.start_monitoring()
        else:
            self.start_settrace()

    def stop(self):
        if hasattr(sys, "monitoring"):
            self.stop_monitoring()
        else:
            self.stop_settrace()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--fail-under",
        type=float,
        default=None,
        metavar="PCT",
        help="exit nonzero if total line coverage is below PCT",
    )
    ap.add_argument(
        "pytest_args",
        nargs="*",
        help="arguments forwarded to pytest (default: -q tests); "
        "flags pass through too",
    )
    args, extra = ap.parse_known_args(argv)
    args.pytest_args += extra  # forward unrecognized flags (-q, -x, ...)

    sys.path.insert(0, str(REPO / "src"))
    import pytest  # noqa: E402  (after sys.path fix)

    pytest_args = args.pytest_args or ["-q", str(REPO / "tests")]

    collector = Collector(SRC)
    collector.start()
    try:
        rc = pytest.main(pytest_args)
    finally:
        collector.stop()
    if rc != 0:
        print(f"pytest failed (exit {rc}); not evaluating coverage",
              file=sys.stderr)
        return int(rc)

    total_exec = total_hit = 0
    rows = []
    for path in sorted(SRC.rglob("*.py")):
        exe = executable_lines(path)
        hit = collector.hits.get(str(path), set()) & exe
        total_exec += len(exe)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(exe) if exe else 100.0
        rows.append((path.relative_to(REPO), len(exe), len(hit), pct))

    name_w = max(len(str(r[0])) for r in rows)
    print(f"{'file':<{name_w}}  {'lines':>6} {'hit':>6} {'cover':>7}")
    for rel, exe, hit, pct in rows:
        print(f"{str(rel):<{name_w}}  {exe:>6} {hit:>6} {pct:>6.1f}%")
    total_pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':<{name_w}}  {total_exec:>6} {total_hit:>6} "
          f"{total_pct:>6.1f}%")

    if args.fail_under is not None and total_pct < args.fail_under:
        print(
            f"coverage {total_pct:.1f}% is below the floor "
            f"{args.fail_under:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
