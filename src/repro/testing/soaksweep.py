"""Soak-sweep driver: sustained ingest under *runtime* media faults.

The crash sweep (:mod:`repro.testing.crashsweep`) proves every power-cut
boundary recovers; this driver proves the complementary claim for PR 7:
a **live** instance survives uncorrectable media errors raised *during*
normal operation.  One soak run drives ``T`` rounds of

    guarded ingest  →  patrol scrub  →  analytics

against a graph whose device injects spontaneous read poison and
transient read faults (:class:`~repro.pmem.faults.FaultPolicy` runtime
fields), with every fault routed through the
:class:`~repro.resilience.ResilienceManager` repair path.  A fault-free
**twin** — same factory, same op stream, runtime faults off, no manager
— is grown alongside as the reference.

The **no-silent-corruption oracle** at the end of the run:

* if no lossy repair occurred, every vertex's neighbor sequence on the
  subject equals the twin's exactly; after a lossy repair (compaction
  frees run slots the twin doesn't have, so later inserts legitimately
  land in different positions) the subject's neighbor *multiset* must
  be contained in the twin's with the shortfall equal exactly to the
  per-vertex losses enumerated in the final
  :class:`~repro.resilience.DamageReport` — an edge may be lost to
  media damage only if the report names it;
* structural invariants hold and the edge-log cursors match an
  independent rebuild (same checks as the crash-sweep oracle);
* no latent poison: unless the instance went READ_ONLY, every poisoned
  line was found and repaired by the end of the run;
* if no lossy/unrecoverable repair occurred, the subject's device bytes
  equal the twin's everywhere outside the report's
  :meth:`~repro.resilience.DamageReport.inexact_ranges`;
* a **fault-free** soak (runtime rates zero) must be byte-identical to
  the unmanaged twin and identical on every write-side counter — the
  resilience machinery is provably free when nothing fails.

Violations raise :class:`SoakFailure` naming the vertex/range.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MediaError, ReadOnlyGraphError
from ..pmem.crash import CrashInjector
from ..pmem.faults import FaultPolicy, RUNTIME_HAZARD
from ..resilience import DamageReport, HealthState, ResilienceManager
from .crashsweep import GraphFactory, Op, make_insert_workload

#: Stats fields that must be identical between a managed fault-free run
#: and the unmanaged twin (reads/modeled time are exempt: patrol scrub
#: legitimately charges sequential-read time to the ``scrub`` bucket).
_WRITE_COUNTERS = (
    "stores", "stored_bytes", "payload_bytes",
    "flushes", "flushed_lines", "flushed_bytes",
    "seq_flushes", "rnd_flushes", "inplace_flushes", "media_bytes",
    "fences", "ntstores", "ntstored_bytes",
    "crashes", "torn_lines", "dropped_pending_lines",
    "poisoned_xplines", "media_errors",
    "transient_faults", "read_retries", "runtime_poison_events",
)


class SoakFailure(AssertionError):
    """The no-silent-corruption oracle rejected a soak run."""


@dataclass
class SoakConfig:
    """Knobs for one soak run."""

    faults: FaultPolicy = RUNTIME_HAZARD
    rounds: int = 4
    """Ingest→scrub→analyze rounds; the op stream is split evenly."""
    scrub_every: int = 64
    """Run one patrol-scrub step every this-many guarded inserts."""
    patrol_bytes: int = 64 * 1024
    analyze_rounds: bool = True
    """Run a guarded analytics kernel (edge count over a consistent
    view) at the end of every round."""
    max_retries: int = 3
    check_invariants: bool = True
    check_log_cursors: bool = True


@dataclass
class SoakRoundResult:
    """What one round observed (all counts are per-round deltas)."""

    round_index: int
    ops_applied: int
    scrub_steps: int
    transient_faults: int
    read_retries: int
    poison_events: int
    quarantined: int
    lost_edges: int
    health: HealthState
    analyzed: bool = False
    analysis_result: Optional[object] = None


@dataclass
class SoakReport:
    """Everything a soak run learned; feeds the §4.4-style soak table."""

    config: SoakConfig
    rounds: List[SoakRoundResult] = field(default_factory=list)
    report: Optional[DamageReport] = None
    ops_applied: int = 0
    ops_total: int = 0
    read_only: bool = False
    ops_skipped: int = 0
    """Inserts dropped after exhausting repair-retries without landing
    (skipped on the twin too, so they are not corruption)."""
    byte_compared: bool = False
    """Whether the run qualified for the byte-identity check (no lossy
    or unrecoverable repair diverged the layouts)."""

    @property
    def health(self) -> HealthState:
        return self.report.health if self.report else HealthState.HEALTHY

    @property
    def fault_points(self) -> int:
        """Distinct injected fault events the run survived."""
        return sum(r.transient_faults + r.poison_events for r in self.rounds)

    @property
    def transient_faults(self) -> int:
        return sum(r.transient_faults for r in self.rounds)

    @property
    def poison_events(self) -> int:
        return sum(r.poison_events for r in self.rounds)

    @property
    def lost_edges(self) -> int:
        return self.report.lost_edges if self.report else 0

    @property
    def quarantined(self) -> int:
        return self.report.n_quarantined if self.report else 0


# ----------------------------------------------------------------------
# oracle helpers
# ----------------------------------------------------------------------
def _lost_per_vertex(report: DamageReport) -> Dict[int, int]:
    lost: Dict[int, int] = {}
    for e in report.entries:
        for v, n in e.lost_by_vertex:
            lost[v] = lost.get(v, 0) + n
    return lost


def _check_vertex(
    v: int, got: List[int], want: List[int], lost_v: int,
    *, strict: bool, relax: bool = False,
) -> None:
    """One vertex of the containment-with-enumerated-shortfall oracle.

    ``strict`` (no lossy repair diverged the layouts) demands the exact
    twin sequence.  After a lossy repair the compacted run has gaps the
    twin's doesn't, so later inserts legitimately land in different
    *positions* — neighbor order is not an API guarantee — but the
    multiset must still be contained in the twin's with the shortfall
    exactly the enumerated losses.  ``relax`` admits the one op that
    was in flight when the instance went READ_ONLY.
    """
    if strict and not relax:
        if got != want:
            raise SoakFailure(
                f"vertex {v}: subject neighbors {got} != fault-free twin's "
                f"{want} despite no lossy repair (silent divergence)"
            )
        return
    extra = Counter(got) - Counter(want)
    if extra:
        raise SoakFailure(
            f"vertex {v}: subject has neighbors {dict(extra)} beyond the "
            f"fault-free twin's (phantom or duplicate edge introduced by "
            f"a repair or retry)"
        )
    short = len(want) - len(got)
    if short != lost_v and not (relax and 0 <= short - lost_v <= 1):
        raise SoakFailure(
            f"silent corruption at vertex {v}: twin has {len(want)} edges, "
            f"subject has {len(got)}, but the DamageReport enumerates only "
            f"{lost_v} lost edges for it"
        )


def _structural_checks(g, cfg: SoakConfig, where: str) -> None:
    if cfg.check_invariants:
        try:
            g.check_invariants()
        except Exception as exc:
            raise SoakFailure(f"[{where}] structural invariants violated: {exc}") from exc
    if cfg.check_log_cursors:
        from ..core.edge_log import EdgeLogs

        fresh = EdgeLogs(
            g.pool, g.logs.n_sections, g.logs.entries_per_section,
            gen=g.ea.gen, create=False,
        )
        fresh.rebuild_counts()
        if not (
            np.array_equal(fresh.counts, g.logs.counts)
            and np.array_equal(fresh.live_counts, g.logs.live_counts)
        ):
            raise SoakFailure(
                f"[{where}] edge-log cursors disagree with an independent rebuild"
            )


def _byte_compare(subject_dev, twin_dev, exempt: Sequence[Tuple[int, int]]) -> None:
    a, b = subject_dev.buf, twin_dev.buf
    if a.size != b.size:
        raise SoakFailure("subject and twin devices differ in size")
    diff = a != b
    for lo, hi in exempt:
        diff[lo:hi] = False
    bad = np.flatnonzero(diff)
    if bad.size:
        raise SoakFailure(
            f"{bad.size} device bytes differ from the fault-free twin outside "
            f"the report's inexact ranges (first at offset {int(bad[0])}) — "
            f"a repair was not byte-exact where it claimed to be"
        )


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def soak_sweep(
    make_graph: GraphFactory,
    ops: Sequence[Op],
    config: Optional[SoakConfig] = None,
) -> SoakReport:
    """Soak ``ops`` through a managed graph under runtime faults.

    ``make_graph(injector, faults)`` is the crash-sweep factory shape;
    it is called twice, once with ``config.faults`` (the subject) and
    once with the runtime-fault fields zeroed (the fault-free twin).
    The workload must be insert-only: a lost tombstone would silently
    *resurrect* an edge, which no containment oracle can distinguish
    from a phantom insert.  Raises :class:`SoakFailure` on the first
    oracle violation; otherwise returns a :class:`SoakReport`.
    """
    cfg = config or SoakConfig()
    ops = list(ops)
    if any(op[0] != "insert" for op in ops):
        raise ValueError("soak workloads must be insert-only")
    if cfg.rounds <= 0:
        raise ValueError("rounds must be positive")

    clean = dataclasses.replace(
        cfg.faults, read_poison_rate=0.0, transient_read_rate=0.0
    )
    subject = make_graph(CrashInjector(), cfg.faults)
    twin = make_graph(CrashInjector(), clean)
    mgr = ResilienceManager(
        subject, patrol_bytes=cfg.patrol_bytes, max_retries=cfg.max_retries
    )

    out = SoakReport(config=cfg, ops_total=len(ops))
    stats = subject.pool.stats
    per_round = max(1, -(-len(ops) // cfg.rounds))
    applied = 0
    in_flight: Optional[Op] = None

    for r in range(cfg.rounds):
        chunk = ops[r * per_round : (r + 1) * per_round]
        if not chunk and r > 0:
            break
        before = stats.snapshot()
        q0, lost0 = len(mgr.registry), mgr.damage_report().lost_edges
        scrubs = done = 0
        for op in chunk:
            _, src, dst = op
            try:
                mgr.guarded_insert_edge(src, dst)
            except ReadOnlyGraphError:
                out.read_only = True
                in_flight = op
                break
            except MediaError:
                # Retries exhausted with the insert provably not landed
                # (the landed check failed every attempt): skip it on the
                # twin too so the reference stays aligned.
                out.ops_skipped += 1
                continue
            twin.insert_edge(src, dst)
            applied += 1
            done += 1
            if done % cfg.scrub_every == 0:
                mgr.scrub()
                scrubs += 1

        analyzed = False
        result = None
        if cfg.analyze_rounds and not out.read_only:
            result, _ = mgr.analyze(lambda snap: int(snap.to_csr()[1].size))
            analyzed = True

        delta = stats.delta_since(before)
        rep = mgr.damage_report()
        out.rounds.append(
            SoakRoundResult(
                round_index=r,
                ops_applied=done,
                scrub_steps=scrubs,
                transient_faults=delta.transient_faults,
                read_retries=delta.read_retries,
                poison_events=delta.runtime_poison_events,
                quarantined=len(mgr.registry) - q0,
                lost_edges=rep.lost_edges - lost0,
                health=rep.health,
                analyzed=analyzed,
                analysis_result=result,
            )
        )
        if out.read_only:
            break

    out.ops_applied = applied
    out.report = mgr.damage_report()

    # ------------------------------------------------------------------
    # the no-silent-corruption oracle
    # ------------------------------------------------------------------
    if not out.read_only and subject.pool.device.poisoned_ranges():
        raise SoakFailure(
            "latent poison survived the run on a non-READ_ONLY instance: "
            f"{subject.pool.device.poisoned_ranges()}"
        )

    from ..resilience import RepairOutcome

    by = out.report.by_outcome()
    diverged = bool(
        by.get(RepairOutcome.LOSSY, 0) or by.get(RepairOutcome.UNRECOVERABLE, 0)
    )
    lost = _lost_per_vertex(out.report)
    nv = twin.num_vertices
    relax_src = in_flight[1] if in_flight is not None else None
    with subject.pool.device.suspend_runtime_faults():
        for v in range(nv):
            try:
                got = [int(d) for d in subject.out_neighbors(v)] if v < subject.num_vertices else []
            except MediaError:
                if out.read_only:
                    continue  # damaged remainder of a READ_ONLY instance
                raise
            want = [int(d) for d in twin.out_neighbors(v)]
            if relax_src == v:
                # The op in flight when the instance went READ_ONLY may
                # have landed on the subject; the twin never applied it.
                want = want + [in_flight[2]]
            _check_vertex(
                v, got, want, lost.get(v, 0),
                strict=not diverged, relax=(relax_src == v),
            )

        if not out.read_only:
            _structural_checks(subject, cfg, where="soak-end")

    if not diverged:
        _byte_compare(
            subject.pool.device, twin.pool.device, out.report.inexact_ranges()
        )
        out.byte_compared = True

    if not cfg.faults.runtime_active:
        # The resilience layer must be free when nothing fails.
        s, t = subject.pool.stats, twin.pool.stats
        for k in _WRITE_COUNTERS:
            if getattr(s, k) != getattr(t, k):
                raise SoakFailure(
                    f"fault-free soak is not counter-identical to an unmanaged "
                    f"run: {k} = {getattr(s, k)} vs {getattr(t, k)}"
                )
        if out.report.n_quarantined:
            raise SoakFailure("fault-free soak quarantined ranges")

    return out


__all__ = [
    "SoakConfig",
    "SoakFailure",
    "SoakReport",
    "SoakRoundResult",
    "soak_sweep",
    "make_insert_workload",
]
