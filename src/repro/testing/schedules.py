"""Deterministic interleaving of real threads (the racecheck substrate).

Python gives no control over when the GIL switches threads, so racing
threads "for a while" and hoping is neither deterministic nor
exhaustive.  This module replaces preemption with **cooperative
single-stepping**: worker threads are real ``threading.Thread``s, but
every one of them blocks at *yield points* (injected by the
instrumented lock table at instrumentation boundaries, and by scenario
scripts between operations) until the driver grants it exactly one
step.  Between two yield points only the granted thread runs, so a
schedule — the sequence of grant choices — fully determines the
interleaving, and replaying the same choices replays the same
execution.  This is stateless model checking in the style of the
crash-sweep driver: enumerate the event space, replay from scratch per
point, oracle every outcome.

Blocking is cooperative too: the instrumented table never parks a
thread inside ``lock.acquire()``; it try-locks and, on failure, yields
with a ``blocked_on`` annotation.  The driver *parks* such a thread —
it stops being schedulable until some other thread completes a step
that is not itself a failed retry (only real steps can change who holds
what).  If every live thread is parked and a retry round makes no
progress, the schedule deadlocked: :class:`ScheduleDeadlock` names the
blocked resources, which is itself a checkable outcome (the fixed lock
protocol never deadlocks; see ``core/locks.py``).

:func:`explore_schedules` turns single runs into coverage: depth-first
enumeration of every grant choice (exhaustive for small scenarios —
the frontier empties), falling back to seeded-random sampling when the
space is larger than the budget.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


class ScheduleError(RuntimeError):
    """The driver lost a worker (it neither yielded nor finished)."""


class ScheduleDeadlock(ScheduleError):
    """Every live thread is parked and retries make no progress."""


@dataclass
class _Worker:
    name: str
    thread: Optional[threading.Thread] = None
    at_yield: bool = False
    arrivals: int = 0
    go: bool = False
    done: bool = False
    label: str = ""
    blocked_on: Optional[Tuple] = None
    parked: bool = False
    error: Optional[BaseException] = None


@dataclass
class Decision:
    """One grant choice: who ran, and who else could have."""

    chosen: str
    candidates: Tuple[str, ...]


@dataclass
class ScheduleTrace:
    """Everything one driven run produced."""

    trace: List[str] = field(default_factory=list)
    decisions: List[Decision] = field(default_factory=list)
    errors: Dict[str, BaseException] = field(default_factory=dict)
    deadlocked: bool = False


class DeterministicScheduler:
    """Grant-one-step-at-a-time driver for a set of worker callables."""

    #: seconds the driver waits for a worker to reach a yield point
    #: before declaring it lost (a *real* block, which instrumented code
    #: must never do).
    STEP_TIMEOUT = 10.0

    def __init__(self):
        self._cv = threading.Condition()
        self._workers: Dict[str, _Worker] = {}
        self._order: List[str] = []
        self._idents: Dict[int, str] = {}

    # -- worker side -----------------------------------------------------
    def spawn(self, name: str, fn: Callable[[], None]) -> None:
        """Register and start a worker; it parks at an implicit first yield."""
        st = _Worker(name=name)

        def body():
            self._idents[threading.get_ident()] = name
            try:
                self.yield_point("start")
                fn()
            except BaseException as exc:  # noqa: BLE001 - reported, not hidden
                st.error = exc
            finally:
                with self._cv:
                    st.done = True
                    self._cv.notify_all()

        st.thread = threading.Thread(target=body, name=name, daemon=True)
        self._workers[name] = st
        self._order.append(name)
        st.thread.start()

    def current_worker(self) -> Optional[str]:
        return self._idents.get(threading.get_ident())

    def yield_point(self, label: str, blocked_on: Optional[Tuple] = None) -> None:
        """Block the calling worker until the driver grants its next step.

        No-op when called from a thread the scheduler does not own
        (lets instrumented structures be shared with unscheduled code).
        """
        name = self.current_worker()
        if name is None:
            return
        st = self._workers[name]
        with self._cv:
            st.label = label
            st.blocked_on = blocked_on
            st.arrivals += 1
            st.at_yield = True
            self._cv.notify_all()
            while not st.go:
                self._cv.wait()
            st.go = False
            st.at_yield = False

    # -- driver side -----------------------------------------------------
    def _await_yield(self, st: _Worker) -> bool:
        """Wait until ``st`` is at a yield point; False if it finished."""
        deadline = self.STEP_TIMEOUT
        while not (st.at_yield or st.done):
            if not self._cv.wait(timeout=deadline):
                raise ScheduleError(
                    f"worker {st.name!r} neither yielded nor finished within "
                    f"{self.STEP_TIMEOUT}s — a non-cooperative block?"
                )
        return not st.done

    def step(self, name: str) -> bool:
        """Run ``name`` for one step; True if it progressed past a retry.

        A step that starts blocked on a resource and ends blocked on the
        same resource is a *bounce* (a failed try-lock retry): it cannot
        have changed shared state, so it does not unpark anyone.
        """
        st = self._workers[name]
        with self._cv:
            if not self._await_yield(st):
                return False
            was_blocked = st.blocked_on
            a0 = st.arrivals
            st.go = True
            self._cv.notify_all()
            while st.arrivals == a0 and not st.done:
                if not self._cv.wait(timeout=self.STEP_TIMEOUT):
                    raise ScheduleError(
                        f"worker {name!r} did not come back to a yield point "
                        f"within {self.STEP_TIMEOUT}s"
                    )
            bounced = (
                not st.done
                and was_blocked is not None
                and st.blocked_on == was_blocked
            )
            if bounced:
                st.parked = True
            else:
                for other in self._workers.values():
                    other.parked = False
            return not bounced

    def runnable(self) -> List[str]:
        with self._cv:
            return [
                n for n in self._order
                if not self._workers[n].done and self._workers[n].at_yield
            ]

    def live(self) -> List[str]:
        return [n for n in self._order if not self._workers[n].done]

    def run(
        self,
        prefix: Sequence[str] = (),
        rng: Optional[np.random.Generator] = None,
        max_steps: int = 100_000,
    ) -> ScheduleTrace:
        """Drive every worker to completion under one schedule.

        The first ``len(prefix)`` grant choices are forced (a replayed
        schedule); afterwards the lowest-registered runnable worker is
        chosen, or a seeded-random one when ``rng`` is given.  Each
        choice and its candidate set are recorded so an explorer can
        branch on the alternatives.
        """
        out = ScheduleTrace()
        retry_rounds = 0
        while True:
            with self._cv:
                for st in self._workers.values():
                    self._await_yield(st)
            live = self.live()
            if not live:
                break
            if len(out.trace) >= max_steps:
                raise ScheduleError(f"schedule exceeded {max_steps} steps")
            candidates = [n for n in live if not self._workers[n].parked]
            if not candidates:
                # Everyone is parked: give each one retry round, and
                # declare deadlock if whole rounds pass with no progress
                # (retry_rounds only resets on a progressing step).
                if retry_rounds > len(live) + 1:
                    out.deadlocked = True
                    blocked = {
                        n: self._workers[n].blocked_on for n in live
                    }
                    self._abandon()
                    err = ScheduleDeadlock(
                        f"all live workers are blocked: {blocked}"
                    )
                    err.partial = out
                    raise err
                retry_rounds += 1
                for n in live:
                    self._workers[n].parked = False
                candidates = live
            i = len(out.trace)
            if i < len(prefix) and prefix[i] in candidates:
                choice = prefix[i]
            elif rng is not None:
                choice = candidates[int(rng.integers(len(candidates)))]
            else:
                choice = candidates[0]
            out.decisions.append(Decision(choice, tuple(candidates)))
            out.trace.append(choice)
            if self.step(choice):
                retry_rounds = 0
        for n, st in self._workers.items():
            if st.error is not None:
                out.errors[n] = st.error
        return out

    def _abandon(self) -> None:
        """Release every worker so daemon threads can die (failed run)."""
        with self._cv:
            for st in self._workers.values():
                st.go = True
            self._cv.notify_all()


# ----------------------------------------------------------------------
# schedule exploration
# ----------------------------------------------------------------------
#: Builds fresh workers for one run and returns (scheduler, finish):
#: the callable has already spawned its workers on the scheduler;
#: ``finish()`` validates the end state (raises on violation).
CaseFactory = Callable[[], Tuple[DeterministicScheduler, Callable[[], None]]]


@dataclass
class ExplorationReport:
    """Coverage summary of one :func:`explore_schedules` call."""

    schedules: int = 0
    exhaustive: bool = False
    decision_points: int = 0
    deadlocks: int = 0
    traces: List[ScheduleTrace] = field(default_factory=list)


def run_schedule(
    make_case: CaseFactory,
    prefix: Sequence[str] = (),
    rng: Optional[np.random.Generator] = None,
) -> ScheduleTrace:
    """One fresh case driven under one schedule; runs its validator."""
    sched, finish = make_case()
    trace = sched.run(prefix=prefix, rng=rng)
    for name, err in trace.errors.items():
        raise ScheduleError(f"worker {name!r} raised under {trace.trace}") from err
    finish()
    return trace


def explore_schedules(
    make_case: CaseFactory,
    max_schedules: int = 200,
    seed: int = 0,
) -> ExplorationReport:
    """DFS over grant choices, replaying from scratch per schedule.

    Exhaustive when the branch frontier empties within ``max_schedules``
    runs (``report.exhaustive``); otherwise the remaining budget is
    spent on seeded-random schedules, mirroring the crash sweep's
    exhaustive-below-threshold / sampled-above behavior.
    """
    report = ExplorationReport()
    frontier: List[List[str]] = [[]]
    seen: set = set()
    while frontier and report.schedules < max_schedules:
        prefix = frontier.pop()
        trace = run_schedule(make_case, prefix=prefix)
        report.schedules += 1
        report.decision_points += len(trace.decisions)
        report.traces.append(trace)
        for i in range(len(prefix), len(trace.decisions)):
            d = trace.decisions[i]
            for alt in d.candidates:
                if alt != d.chosen:
                    branch = trace.trace[:i] + [alt]
                    key = tuple(branch)
                    if key not in seen:
                        seen.add(key)
                        frontier.append(branch)
    report.exhaustive = not frontier
    rng = np.random.default_rng(seed)
    while report.schedules < max_schedules and not report.exhaustive:
        trace = run_schedule(make_case, rng=rng)
        report.schedules += 1
        report.decision_points += len(trace.decisions)
        report.traces.append(trace)
    return report


__all__ = [
    "CaseFactory",
    "Decision",
    "DeterministicScheduler",
    "ExplorationReport",
    "ScheduleDeadlock",
    "ScheduleError",
    "ScheduleTrace",
    "explore_schedules",
    "run_schedule",
]
