"""Reusable verification harnesses (crash sweeps, recovery oracles).

Not imported by the library's runtime paths — this package backs the
test suite and the ``--crash-sweep`` bench mode.
"""

from .crashsweep import (
    CrashPointResult,
    SweepConfig,
    SweepFailure,
    SweepReport,
    crash_sweep,
    make_insert_workload,
    verify_recovered_graph,
)

__all__ = [
    "CrashPointResult",
    "SweepConfig",
    "SweepFailure",
    "SweepReport",
    "crash_sweep",
    "make_insert_workload",
    "verify_recovered_graph",
]
