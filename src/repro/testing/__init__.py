"""Reusable verification harnesses (crash sweeps, race checks, oracles).

Not imported by the library's runtime paths — this package backs the
test suite and the ``crash-sweep`` / ``race-check`` bench modes.
"""

from .crashsweep import (
    CrashPointResult,
    SweepConfig,
    SweepFailure,
    SweepReport,
    crash_sweep,
    make_batched_insert_workload,
    make_insert_workload,
    make_windowed_workload,
    pool_clocks,
    verify_recovered_graph,
)
from .racecheck import (
    EventRecorder,
    InstrumentedSectionLockTable,
    LockEvent,
    RaceCheckConfig,
    RaceCheckReport,
    SCENARIOS,
    ScenarioReport,
    UnfixedSectionLockTable,
    Violation,
    check_lock_discipline,
    events_from_tuples,
    explore_scenario,
    race_check,
    run_scenario,
)
from .soaksweep import (
    SoakConfig,
    SoakFailure,
    SoakReport,
    SoakRoundResult,
    soak_sweep,
)
from .schedules import (
    DeterministicScheduler,
    ExplorationReport,
    ScheduleDeadlock,
    ScheduleError,
    ScheduleTrace,
    explore_schedules,
    run_schedule,
)

__all__ = [
    "CrashPointResult",
    "DeterministicScheduler",
    "EventRecorder",
    "ExplorationReport",
    "InstrumentedSectionLockTable",
    "LockEvent",
    "RaceCheckConfig",
    "RaceCheckReport",
    "SCENARIOS",
    "ScenarioReport",
    "ScheduleDeadlock",
    "ScheduleError",
    "ScheduleTrace",
    "SoakConfig",
    "SoakFailure",
    "SoakReport",
    "SoakRoundResult",
    "SweepConfig",
    "SweepFailure",
    "SweepReport",
    "UnfixedSectionLockTable",
    "Violation",
    "check_lock_discipline",
    "crash_sweep",
    "events_from_tuples",
    "make_batched_insert_workload",
    "make_windowed_workload",
    "pool_clocks",
    "explore_scenario",
    "explore_schedules",
    "make_insert_workload",
    "race_check",
    "run_schedule",
    "run_scenario",
    "soak_sweep",
    "verify_recovered_graph",
]
