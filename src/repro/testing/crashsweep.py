"""Exhaustive crash-sweep driver with a recovery oracle (paper §3.1.4/§4.4).

DGAP's claim is crash consistency at *every* instruction boundary, so
this driver tests every boundary: a dry run counts the workload's
persistence events (stores, flushes, fences, ntstores), then for each
crash point ``k`` the workload is replayed from scratch with the
injector armed at the ``k``-th event, the device power-fails there
(honoring the configured :class:`~repro.pmem.faults.FaultPolicy` —
torn stores, persist reorder, poison), the pool is reopened through
:func:`~repro.core.recovery.open_from_pool`, and the recovered graph is
checked against the **prefix-consistency oracle**:

* every operation acknowledged (returned) before the crash is visible;
* the single in-flight operation is applied at most once or not at all;
* no other phantom or duplicate edges exist anywhere;
* the PMA structural invariants hold (``DGAP.check_invariants``:
  pivots, runs, degrees, section occupancy);
* the edge-log cursors match an independent rebuild from the log bytes.

Sweeps are exhaustive below ``exhaustive_threshold`` total events and a
seeded random sample above it.  For a configurable subsample of crash
points the driver additionally verifies recovery **idempotence**: it
crashes *during* recovery (at a seeded event), recovers again, and
requires the result to equal a reference recovery of the same crashed
image.

Oracle violations raise :class:`SweepFailure` naming the exact crash
point (op kind, per-kind index, total index) to re-arm for debugging.

The driver is graph-shape agnostic: a :class:`~repro.sharding.sharded.
ShardedDGAP` factory works unchanged because every shard device shares
one injector (a single machine-wide event ordering), the facade
power-fails sibling devices when one shard crashes, ``pool_clocks``
measures recovery as the max over per-shard modeled clock deltas
(shards replay concurrently), and ``("batch", EdgeBatch)`` workload ops
(:func:`make_batched_insert_workload`) sweep crashes that land
*mid-dispatch* — between per-shard sub-batches of one routed batch —
against a per-vertex-prefix oracle.
"""

from __future__ import annotations

import copy
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.batch import DEFAULT_BATCH_SIZE, EdgeBatch
from ..errors import MediaError, RecoveryError, SimulatedCrash
from ..pmem.crash import CrashInjector
from ..pmem.faults import DEFAULT_POLICY, FaultPolicy

#: One workload operation: ``("insert" | "delete", src, dst)``, a routed
#: bulk mutation ``("batch", EdgeBatch)`` (insert-only batches; see
#: :func:`make_batched_insert_workload`), a window-expiry delete run
#: ``("expire", ((src, dst), ...))``, or a tombstone-merge sweep
#: ``("compact",)`` (see :func:`make_windowed_workload`).
Op = Tuple

#: Builds a fresh system on a fresh pool wired to the given injector and
#: fault policy; the driver calls it once per crash point.
GraphFactory = Callable[[CrashInjector, FaultPolicy], "object"]


class SweepFailure(AssertionError):
    """The recovery oracle rejected the graph recovered at a crash point."""


@dataclass
class SweepConfig:
    """Knobs for one sweep run."""

    faults: FaultPolicy = DEFAULT_POLICY
    exhaustive_threshold: int = 1000
    """Sweep every crash point when the workload has at most this many events."""
    samples: int = 200
    """Seeded-random sample size above the exhaustive threshold."""
    seed: int = 0
    idempotence_samples: int = 5
    """Crash points that additionally get a crash-during-recovery check."""
    recovery_crash_window: int = 64
    """Crash-during-recovery points are drawn from the first this-many events."""
    check_invariants: bool = True
    check_log_cursors: bool = True
    continue_after_recovery: int = 0
    """Extra workload ops to apply on the recovered graph (smoke that it's live)."""


@dataclass
class CrashPointResult:
    """Outcome of one crash point (the oracle passed)."""

    total_index: int
    """Workload-relative total event index — re-arm the injector with
    this after construction to reproduce the crash (the embedded
    ``SimulatedCrash`` repr additionally carries the device-absolute
    indices, which include construction events)."""
    op: str
    op_index: int
    acked: int
    in_flight_applied: Optional[bool]
    recovery_ns: float
    idempotence_checked: bool = False
    unrecoverable: bool = False
    """Recovery *reported* unrepairable media damage instead of repairing.

    Only a legal outcome when the policy poisons lines at crash time;
    the report carries the refusal message so operators see what died.
    """
    detail: str = ""


@dataclass
class SweepReport:
    """Everything a sweep learned; ``recovery_ns`` feeds the §4.4 report."""

    total_events: int
    exhaustive: bool
    policy: FaultPolicy
    results: List[CrashPointResult] = field(default_factory=list)

    @property
    def crash_points(self) -> int:
        return len(self.results)

    def recovery_ns(self) -> np.ndarray:
        return np.array(
            [r.recovery_ns for r in self.results if not r.unrecoverable],
            dtype=np.float64,
        )

    def recovery_stats(self) -> Dict[str, float]:
        """Recovery-time summary (µs) along ``DISTRIBUTION_KEYS``.

        Routed through the shared :func:`repro.bench.reporting.
        distribution_stats` helper (imported lazily — ``repro.bench``
        pulls the whole harness in, which this testing module must not
        do at import time).
        """
        from ..bench.reporting import distribution_stats

        return distribution_stats(self.recovery_ns() * 1e-3, unit="us")

    def in_flight_applied_count(self) -> int:
        return sum(1 for r in self.results if r.in_flight_applied)

    def unrecoverable_count(self) -> int:
        return sum(1 for r in self.results if r.unrecoverable)


# ----------------------------------------------------------------------
# workloads and expected state
# ----------------------------------------------------------------------
def make_insert_workload(edges: Sequence[Tuple[int, int]]) -> List[Op]:
    """Wrap an edge list as an insert-only ops list."""
    return [("insert", int(s), int(d)) for s, d in edges]


def make_batched_insert_workload(
    edges, batch_size: int = DEFAULT_BATCH_SIZE
) -> List[Op]:
    """Chunk an edge stream into ``("batch", EdgeBatch)`` ops.

    One op = one routed dispatch round: on a sharded graph each batch
    is split per shard and the sub-batches dispatched in turn, so a
    crash can land *between* per-shard dispatches of one op — exactly
    the torn-multi-shard-batch case the sweep must cover.  Batches are
    insert-only (the per-vertex-prefix in-flight oracle relies on the
    batched ingest path's stream-order contract for inserts).
    """
    batch = EdgeBatch.coerce(edges)
    if batch.tombstone.any():
        raise ValueError("batched sweep workloads must be insert-only")
    return [("batch", c) for c in batch.chunks(batch_size)]


def make_windowed_workload(
    edges,
    window: int = 2,
    step: int = 6,
    compact_every: int = 3,
) -> List[Op]:
    """Sliding-window temporal workload: inserts, expiry runs, sweeps.

    Consecutive ``step``-sized slices of ``edges`` are the timestamped
    steps.  Each step contributes its scalar inserts, then — once the
    window is full — one ``("expire", pairs)`` op deleting the step
    that just fell out of the ``window``-step window, and every
    ``compact_every``-th step one ``("compact",)`` tombstone-merge
    sweep.  A sweep over this workload therefore lands crash points
    inside expiry tombstone runs, the log merges they trigger, *and*
    whole-array compaction windows.
    """
    if window < 0 or step < 1 or compact_every < 1:
        raise ValueError("window >= 0, step >= 1, compact_every >= 1 required")
    pairs = [(int(s), int(d)) for s, d in edges]
    steps = [pairs[i : i + step] for i in range(0, len(pairs), step)]
    ops: List[Op] = []
    for t, chunk in enumerate(steps):
        ops.extend(("insert", s, d) for s, d in chunk)
        expired = t - window
        if expired >= 0 and steps[expired]:
            ops.append(("expire", tuple(steps[expired])))
        if (t + 1) % compact_every == 0:
            ops.append(("compact",))
    return ops


def _apply_op(g, op: Op) -> None:
    kind = op[0]
    if kind == "insert":
        g.insert_edge(op[1], op[2])
    elif kind == "delete":
        g.delete_edge(op[1], op[2])
    elif kind == "batch":
        # Chunking already happened in the workload builder; one op is
        # one dispatch round.
        g.insert_edges(op[1], batch_size=None)
    elif kind == "expire":
        for s, d in op[1]:
            g.delete_edge(s, d)
    elif kind == "compact":
        g.compact()
    else:
        raise ValueError(f"unknown workload op kind {kind!r}")


def _batch_per_src(batch: EdgeBatch) -> Dict[int, List[int]]:
    """Per-source destination sequence of a batch, in stream order."""
    per: Dict[int, List[int]] = {}
    for s, d in zip(batch.src.tolist(), batch.dst.tolist()):
        per.setdefault(s, []).append(d)
    return per


def _ordered_ops(ops: Sequence[Op]) -> bool:
    """Insert-only workloads guarantee per-vertex order; deletes don't.

    A compaction sweep preserves live order (it only drops matched
    tombstone pairs), so it keeps an insert-only workload ordered.
    """
    return all(op[0] in ("insert", "batch", "compact") for op in ops)


def _remove_last(lst: List[int], d: int) -> None:
    for i in range(len(lst) - 1, -1, -1):
        if lst[i] == d:
            del lst[i]
            break


def _expected_state(ops: Sequence[Op], nv: int) -> Dict[int, List[int]]:
    """Per-vertex neighbor sequence after applying ``ops`` in order."""
    state: Dict[int, List[int]] = {v: [] for v in range(nv)}
    for op in ops:
        kind = op[0]
        if kind == "insert":
            state.setdefault(op[1], []).append(op[2])
        elif kind == "batch":
            for s, d in zip(op[1].src.tolist(), op[1].dst.tolist()):
                state.setdefault(s, []).append(d)
        elif kind == "delete":
            _remove_last(state.setdefault(op[1], []), op[2])
        elif kind == "expire":
            for s, d in op[1]:
                _remove_last(state.setdefault(s, []), d)
        elif kind == "compact":
            pass  # logically invisible: live adjacency is unchanged
        else:
            raise ValueError(f"unknown workload op kind {kind!r}")
    return state


def _graph_state(g) -> Dict[int, List[int]]:
    return {v: [int(d) for d in g.out_neighbors(v)] for v in range(g.num_vertices)}


def _match(got: List[int], want: List[int], ordered: bool) -> bool:
    if ordered:
        return got == want
    return Counter(got) == Counter(want)


# ----------------------------------------------------------------------
# the oracle
# ----------------------------------------------------------------------
def verify_recovered_graph(
    g,
    ops: Sequence[Op],
    acked: int,
    *,
    where: str = "?",
    check_invariants: bool = True,
    check_log_cursors: bool = True,
) -> Optional[bool]:
    """Assert prefix consistency; returns whether the in-flight op landed.

    ``acked`` operations completed before the crash; operation
    ``ops[acked]`` (if any) was in flight.  A scalar in-flight op may be
    visible exactly once or not at all.  An in-flight ``("batch", ...)``
    op may be *partially* visible, but only as a per-vertex prefix of
    the batch's per-source destination sequence — the batched ingest
    path processes each vertex's edges in stream order (scalar
    equivalence contract), and on a sharded graph a crash between
    per-shard dispatches leaves whole shards unapplied, which is still a
    per-vertex prefix (each vertex lives in exactly one shard).  An
    in-flight ``("expire", pairs)`` run applies its scalar deletes in
    order, so the recovered state must match the acked prefix plus the
    first ``j`` deletes for *some* ``j`` (the delete at the crash is
    itself at-most-once, covered by ``j`` vs ``j+1``).  An in-flight
    ``("compact",)`` sweep is logically invisible — crashed-out or
    completed, the live adjacency must equal the acked prefix exactly.
    Everything else must match the acked prefix exactly.  Raises
    :class:`SweepFailure` naming ``where`` otherwise.
    """
    nv = g.num_vertices
    ordered = _ordered_ops(ops)
    without = _expected_state(ops[:acked], nv)
    in_flight: Optional[Op] = ops[acked] if acked < len(ops) else None
    if in_flight is not None and in_flight[0] == "compact":
        in_flight = None  # invisible either way: plain acked-prefix check
    in_flight_batch = in_flight is not None and in_flight[0] == "batch"
    batch_extra: Dict[int, List[int]] = (
        _batch_per_src(in_flight[1]) if in_flight_batch else {}
    )
    if in_flight is not None and in_flight[0] == "expire":
        return _verify_in_flight_expire(
            g, ops, acked, in_flight,
            where=where,
            check_invariants=check_invariants,
            check_log_cursors=check_log_cursors,
        )
    with_op = None
    if in_flight is not None and not in_flight_batch:
        with_op = _expected_state(list(ops[: acked + 1]), nv)

    in_flight_applied: Optional[bool] = None
    for v in range(nv):
        got = [int(d) for d in g.out_neighbors(v)]
        want = without.get(v, [])
        if in_flight_batch and v in batch_extra:
            extra = batch_extra[v]
            tail = got[len(want):]
            if got[: len(want)] != want or tail != extra[: len(tail)]:
                raise SweepFailure(
                    f"[{where}] vertex {v}: recovered {got} is not the acked "
                    f"prefix {want} plus a prefix of the in-flight batch's "
                    f"edges {extra}"
                )
            if tail:
                in_flight_applied = True
        elif in_flight is not None and not in_flight_batch and in_flight[1] == v:
            if _match(got, want, ordered):
                in_flight_applied = False
            elif _match(got, with_op[v], ordered):
                in_flight_applied = True
            else:
                raise SweepFailure(
                    f"[{where}] vertex {v}: recovered {got} matches neither the "
                    f"acked prefix {want} nor prefix+in-flight {with_op[v]}"
                )
        elif not _match(got, want, ordered):
            raise SweepFailure(
                f"[{where}] vertex {v}: recovered {got} != acked prefix {want} "
                f"(phantom, duplicate or lost edge)"
            )
    if in_flight_batch and in_flight_applied is None:
        in_flight_applied = False

    _verify_structure(g, where, check_invariants, check_log_cursors)
    return in_flight_applied


def _verify_in_flight_expire(
    g,
    ops: Sequence[Op],
    acked: int,
    in_flight: Op,
    *,
    where: str,
    check_invariants: bool,
    check_log_cursors: bool,
) -> Optional[bool]:
    """Oracle for a crash inside an ``("expire", pairs)`` delete run.

    The run's deletes are acked one by one, so the persisted state must
    equal the acked prefix plus the first ``j`` expiry deletes for some
    ``0 <= j <= len(pairs)`` — tried longest-first so the reported
    ``in_flight_applied`` reflects the deepest matching prefix.
    """
    nv = g.num_vertices
    ordered = _ordered_ops(ops)
    pairs = list(in_flight[1])
    got = {v: [int(d) for d in g.out_neighbors(v)] for v in range(nv)}
    matched_j: Optional[int] = None
    for j in range(len(pairs), -1, -1):
        cand = list(ops[:acked]) + ([("expire", tuple(pairs[:j]))] if j else [])
        want = _expected_state(cand, nv)
        if all(_match(got.get(v, []), want.get(v, []), ordered) for v in range(nv)):
            matched_j = j
            break
    if matched_j is None:
        want0 = _expected_state(list(ops[:acked]), nv)
        bad = next(
            v for v in range(nv)
            if not _match(got.get(v, []), want0.get(v, []), ordered)
        )
        raise SweepFailure(
            f"[{where}] vertex {bad}: recovered {got.get(bad)} matches no "
            f"prefix of the in-flight expire run {pairs} over the acked "
            f"state {want0.get(bad)}"
        )
    _verify_structure(g, where, check_invariants, check_log_cursors)
    return matched_j > 0


def _verify_structure(
    g, where: str, check_invariants: bool, check_log_cursors: bool
) -> None:
    """Shared structural half of the oracle: invariants + log cursors."""
    if check_invariants:
        try:
            g.check_invariants()
        except Exception as exc:
            raise SweepFailure(f"[{where}] structural invariants violated: {exc}") from exc

    if check_log_cursors:
        from ..core.edge_log import EdgeLogs

        # A sharded graph exposes its members via ``shards``; every
        # shard's cursors must match its own independent rebuild.
        for part in getattr(g, "shards", [g]):
            fresh = EdgeLogs(
                part.pool, part.logs.n_sections, part.logs.entries_per_section,
                gen=part.ea.gen, create=False,
            )
            fresh.rebuild_counts()
            if not (
                np.array_equal(fresh.counts, part.logs.counts)
                and np.array_equal(fresh.live_counts, part.logs.live_counts)
            ):
                raise SweepFailure(
                    f"[{where}] edge-log cursors disagree with an independent "
                    f"rebuild: {part.logs.counts.tolist()} vs {fresh.counts.tolist()}"
                )


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def _count_events(make_graph: GraphFactory, ops: Sequence[Op], cfg: SweepConfig) -> int:
    """Dry run: persistence events the workload generates (post-construction)."""
    inj = CrashInjector()
    g = make_graph(inj, cfg.faults)
    base = inj.total_events
    for op in ops:
        _apply_op(g, op)
    return inj.total_events - base


def _run_workload(g, ops: Sequence[Op]) -> Tuple[int, Optional[SimulatedCrash]]:
    acked = 0
    try:
        for op in ops:
            _apply_op(g, op)
            acked += 1
    except SimulatedCrash as crash:
        return acked, crash
    return acked, None


def pool_clocks(pool) -> np.ndarray:
    """Per-pool modeled clocks: one entry per shard pool, one for a plain pool.

    Shards replay concurrently on the modeled clock, so recovery time is
    ``max(after - before)`` over this vector — max-over-shards, never the
    sum.  (Delta-of-max would under-count when the busiest pool before
    the crash is not the one that replays longest.)
    """
    pools = getattr(pool, "pools", None)
    if pools is None:
        return np.array([pool.stats.modeled_ns])
    return np.array([p.stats.modeled_ns for p in pools])


def _reference_recovery(g, open_graph) -> Tuple[Dict[int, List[int]], float]:
    """Recover a deep copy of the crashed pool; its state is the reference."""
    ref_pool = copy.deepcopy(g.pool)
    ref_pool.device.injector = CrashInjector()  # never crashes
    ns0 = pool_clocks(ref_pool)
    ref = open_graph(ref_pool, g.config)
    return _graph_state(ref), float((pool_clocks(ref_pool) - ns0).max())


def crash_sweep(
    make_graph: GraphFactory,
    ops: Sequence[Op],
    config: Optional[SweepConfig] = None,
) -> SweepReport:
    """Sweep crash points of ``ops`` over fresh graphs; oracle every recovery.

    ``make_graph(injector, faults)`` must build a fresh system on a
    fresh pool each call (construction runs with the injector disarmed;
    only workload events are swept).  Raises :class:`SweepFailure` on
    the first oracle violation; otherwise returns a
    :class:`SweepReport`.
    """
    cfg = config or SweepConfig()
    ops = list(ops)
    rng = np.random.default_rng(cfg.seed)

    total = _count_events(make_graph, ops, cfg)
    if total <= 0:
        raise ValueError("workload generates no persistence events")

    exhaustive = total <= cfg.exhaustive_threshold
    if exhaustive:
        points = list(range(1, total + 1))
    else:
        points = sorted(
            int(k) + 1
            for k in rng.choice(total, size=min(cfg.samples, total), replace=False)
        )
    n_idem = min(cfg.idempotence_samples, len(points))
    idem_points = (
        set(int(p) for p in rng.choice(points, size=n_idem, replace=False))
        if n_idem
        else set()
    )

    report = SweepReport(total_events=total, exhaustive=exhaustive, policy=cfg.faults)
    for k in points:
        inj = CrashInjector()
        g = make_graph(inj, cfg.faults)
        open_graph = type(g).open
        inj.arm(k)
        acked, crash = _run_workload(g, ops)
        inj.disarm()
        if crash is None:
            # Event counts can drift a little between the dry run and an
            # armed run only if the workload itself is nondeterministic;
            # a late point then just degenerates to a full-run check.
            verify_recovered_graph(
                g, ops, acked, where=f"no-crash@{k}",
                check_invariants=cfg.check_invariants,
                check_log_cursors=cfg.check_log_cursors,
            )
            continue

        where = repr(crash)
        pool = g.pool
        idem = k in idem_points
        try:
            if idem:
                ref_state, rec_ns = _reference_recovery(g, open_graph)
                # Crash *during* recovery at a seeded event, then recover again.
                r = int(rng.integers(1, cfg.recovery_crash_window + 1))
                inj.arm(r)
                try:
                    g2 = open_graph(pool, g.config)
                except SimulatedCrash:
                    inj.disarm()
                    g2 = open_graph(pool, g.config)
                inj.disarm()
                got = _graph_state(g2)
                ordered = _ordered_ops(ops)
                for v, want in ref_state.items():
                    if not _match(got.get(v, []), want, ordered):
                        raise SweepFailure(
                            f"[{where}] recovery is not idempotent: after a crash "
                            f"during recovery (event #{r}) and a second recovery, "
                            f"vertex {v} is {got.get(v)} but a clean recovery of "
                            f"the same image gives {want}"
                        )
            else:
                ns0 = pool_clocks(pool)
                g2 = open_graph(pool, g.config)
                rec_ns = float((pool_clocks(pool) - ns0).max())
        except (RecoveryError, MediaError) as exc:
            inj.disarm()
            if cfg.faults.poison_on_crash <= 0.0 and not cfg.faults.runtime_active:
                raise SweepFailure(
                    f"[{where}] recovery refused a crash image produced with "
                    f"no media faults configured: {exc}"
                ) from exc
            # Poisoned lines landed on state recovery must read: the
            # contract is to *report* the damaged region, which it did.
            report.results.append(
                CrashPointResult(
                    total_index=k,
                    op=crash.op,
                    op_index=crash.op_index,
                    acked=acked,
                    in_flight_applied=None,
                    recovery_ns=0.0,
                    idempotence_checked=False,
                    unrecoverable=True,
                    detail=str(exc),
                )
            )
            continue

        applied = verify_recovered_graph(
            g2, ops, acked, where=where,
            check_invariants=cfg.check_invariants,
            check_log_cursors=cfg.check_log_cursors,
        )
        if cfg.continue_after_recovery and acked < len(ops):
            for op in ops[acked + 1 : acked + 1 + cfg.continue_after_recovery]:
                _apply_op(g2, op)
        report.results.append(
            CrashPointResult(
                total_index=k,
                op=crash.op,
                op_index=crash.op_index,
                acked=acked,
                in_flight_applied=applied,
                recovery_ns=rec_ns,
                idempotence_checked=idem,
            )
        )
    return report


__all__ = [
    "Op",
    "GraphFactory",
    "SweepFailure",
    "SweepConfig",
    "CrashPointResult",
    "SweepReport",
    "crash_sweep",
    "make_insert_workload",
    "make_batched_insert_workload",
    "make_windowed_workload",
    "pool_clocks",
    "verify_recovered_graph",
]
