"""Lock-discipline race checker for the §3.1.6 concurrency protocol.

Three pieces, mirroring the crash-sweep architecture (enumerate →
replay → oracle):

* :class:`InstrumentedSectionLockTable` — a drop-in
  ``SectionLockTable`` that records every protocol event (acquire,
  release, flag set/clear/wait, window lock/unlock, resize) with the
  acting thread, and — when attached to a
  :class:`~repro.testing.schedules.DeterministicScheduler` — yields at
  every instrumentation boundary where no internal lock is held, so the
  driver controls exactly where threads interleave.

* :func:`check_lock_discipline` — the oracle.  It replays an event log
  against the protocol rules and reports every violation: a writer
  completing an acquire on a section flagged by a rebalance window
  (the TOCTOU), two holders on one section (mutual exclusion lost —
  the broken-resize symptom), out-of-order acquisition, flag-waiting
  while holding a lock (the deadlock precondition), releases without a
  matching acquire, lock-table resizes while another thread holds a
  section, and flag clears by a thread that never set the flag.  The
  oracle never inspects live lock state — only the log — so it works
  identically on the fixed table, the deliberately-unfixed table, and
  the virtual-thread scheduler's modeled event stream.

* scenario drivers + :func:`race_check` — small real-``DGAP``
  workloads (writer/writer, writer/rebalancer, writer/resize,
  reader/writer) whose schedule space is explored exhaustively when it
  fits the budget and by seeded sampling otherwise; every schedule is
  oracle-checked AND the end state is validated (no lost edges,
  structural invariants, degree caches consistent).

:class:`UnfixedSectionLockTable` re-creates the two pre-fix bugs —
check-then-act ``acquire`` and quiescence-free ``resize`` — so the
regression tests can replay the historical interleavings and watch the
oracle flag them; see ``tests/test_racecheck.py``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import DGAPConfig
from ..core.dgap import DGAP
from ..core.locks import SectionLockTable
from ..errors import LockDisciplineError
from .schedules import (
    DeterministicScheduler,
    ScheduleDeadlock,
    ScheduleTrace,
)

# ----------------------------------------------------------------------
# events + instrumented tables
# ----------------------------------------------------------------------


@dataclass
class LockEvent:
    """One protocol event, attributed to a thread."""

    seq: int
    thread: str
    kind: str
    section: int
    info: Dict = field(default_factory=dict)

    def __str__(self) -> str:  # compact, for failure messages
        sec = f" s{self.section}" if self.section >= 0 else ""
        return f"[{self.seq}] {self.thread}: {self.kind}{sec}"


class EventRecorder:
    """Append-only event log shared by one table (and its scenario)."""

    def __init__(self):
        self.events: List[LockEvent] = []
        self._names: Dict[int, str] = {}

    def name_thread(self, name: str) -> None:
        self._names[threading.get_ident()] = name

    def thread_name(self, ident: int) -> str:
        return self._names.get(ident, threading.current_thread().name)

    def record(self, kind: str, section: int, info: Dict) -> LockEvent:
        ev = LockEvent(
            seq=len(self.events),
            thread=self.thread_name(threading.get_ident()),
            kind=kind,
            section=section,
            info=info,
        )
        self.events.append(ev)
        return ev

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out


#: trace kinds emitted with no internal lock held — the only points
#: where the instrumented table may yield to the scheduler.  Everything
#: else is recorded under ``_cond`` and yielding there would block the
#: whole schedule on a real (non-cooperative) lock.
_YIELD_SAFE_KINDS = frozenset({"lock-request", "window-request", "acquire-retry"})


class InstrumentedSectionLockTable(SectionLockTable):
    """Records every protocol event; optionally scheduler-driven.

    With a scheduler attached, the blocking primitives become
    cooperative: ``_lock_acquire`` try-locks in a yield loop (the
    scheduler parks the thread until someone else makes progress) and
    ``_cond_wait`` drops ``_cond``, yields, and re-acquires — so no
    worker ever blocks for real and every interleaving is schedulable.
    """

    def __init__(
        self,
        n_sections: int,
        recorder: Optional[EventRecorder] = None,
        sched: Optional[DeterministicScheduler] = None,
    ):
        self.recorder = recorder if recorder is not None else EventRecorder()
        self.sched = sched
        super().__init__(n_sections)

    def _trace(self, kind: str, section: int = -1, **info) -> None:
        self.recorder.record(kind, section, info)
        if self.sched is not None and kind in _YIELD_SAFE_KINDS:
            self.sched.yield_point(f"{kind}:{section}")

    def _lock_acquire(self, lock: threading.RLock, section: int) -> None:
        if self.sched is None or self.sched.current_worker() is None:
            lock.acquire()
            return
        while not lock.acquire(blocking=False):
            self.sched.yield_point(
                f"lock-blocked:{section}", blocked_on=("section", section)
            )

    def _cond_wait(self) -> None:
        if self.sched is None or self.sched.current_worker() is None:
            self._cond.wait()
            return
        # Cooperative flag wait: drop the condition lock (exactly what
        # Condition.wait would do), park until another thread's step may
        # have cleared a flag, re-take, and let the caller re-check.
        self._cond.release()
        try:
            self.sched.yield_point("flag-blocked", blocked_on=("flag", -1))
        finally:
            self._cond.acquire()


class UnfixedSectionLockTable(InstrumentedSectionLockTable):
    """The pre-fix protocol, instrumented — for regression tests ONLY.

    Reintroduces the two historical bugs this PR fixes:

    * ``acquire`` checks the rebalance flag and *then* acquires the
      lock with no re-check — the check-to-acquire gap lets a writer
      slip into a section a ``begin_rebalance`` just claimed;
    * ``resize`` swaps the lock/flag arrays wholesale with no
      quiescence check — a current holder keeps an orphaned old lock
      (mutual exclusion silently lost) and later releases into the
      void.

    Releases that would raise are recorded as ``release-void`` instead
    so the racy run can complete and the oracle can judge the full log.
    """

    def acquire(self, section: int) -> None:
        with self._cond:
            while self._rebalancing[section]:
                self._trace("flag-wait", section)
                self._cond_wait()
            lock = self._locks[section]
        self._trace("lock-request", section)
        self._lock_acquire(lock, section)
        with self._cond:
            self._note_acquire(section)
            self._trace("acquire", section)

    def acquire_many(self, sections) -> List[int]:
        secs = sorted(set(int(s) for s in sections))
        with self._cond:
            while any(self._rebalancing[s] for s in secs):
                self._trace("flag-wait", next(s for s in secs if self._rebalancing[s]))
                self._cond_wait()
            locks = [self._locks[s] for s in secs]
        for s, lock in zip(secs, locks):
            self._trace("lock-request", s)
            self._lock_acquire(lock, s)
        with self._cond:
            for s in secs:
                self._note_acquire(s)
                self._trace("acquire", s)
        return secs

    def release(self, section: int) -> None:
        with self._cond:
            lock = self._locks[section]
            owner, count = self._holds[section]
            if count > 0 and owner == threading.get_ident():
                self._note_release(section)
                self._trace("release", section)
            else:
                self._trace("release-void", section)
        try:
            lock.release()
        except RuntimeError:
            pass  # released a lock it never held — the point of the demo

    def resize(self, n_sections: int) -> None:
        with self._cond:
            self._build(n_sections)
            self._trace("resize", -1, n_sections=n_sections)
            self._cond.notify_all()


# ----------------------------------------------------------------------
# the oracle
# ----------------------------------------------------------------------


@dataclass
class Violation:
    """One protocol breach found in an event log."""

    rule: str
    index: int
    thread: str
    section: int
    message: str

    def __str__(self) -> str:
        return f"{self.rule} @ event {self.index} ({self.thread}, s{self.section}): {self.message}"


def check_lock_discipline(events: Sequence[LockEvent]) -> List[Violation]:
    """Replay an event log against the §3.1.6 protocol rules.

    Pure function of the log: tracks who holds what and who flagged
    what, and emits a :class:`Violation` for every breach.  Rules:

    ``acquire-while-flagged``
        a *writer* acquire completed on a section whose rebalance flag
        is up and was set by another thread — the TOCTOU.  (Window
        locks are exempt: the flag-setter locking its own window is the
        protocol.)
    ``double-hold``
        an acquire completed while another thread holds the section:
        mutual exclusion itself failed (possible only once the lock
        objects were swapped under a holder).
    ``out-of-order``
        a thread took a section lower than one it already holds —
        breaks the ascending total order the deadlock-freedom argument
        rests on.  Re-entrant re-acquires are exempt.
    ``flag-wait-while-holding``
        a thread waited on a rebalance flag while holding any section
        lock — the other deadlock precondition.
    ``release-without-acquire``
        a release (or window unlock) by a thread with no matching hold.
    ``resize-while-held``
        the lock table was rebuilt while a thread other than the
        resizer held a section.
    ``flag-clear-by-non-setter``
        a flag decrement by a thread with no outstanding set.
    """
    holds: Dict[int, Dict[str, int]] = {}
    flags: Dict[int, Dict[str, int]] = {}
    out: List[Violation] = []

    def v(rule: str, ev: LockEvent, msg: str) -> None:
        out.append(Violation(rule, ev.seq, ev.thread, ev.section, msg))

    def held_by(t: str) -> List[int]:
        return [s for s, m in holds.items() if m.get(t, 0) > 0]

    for ev in events:
        t, s, kind = ev.thread, ev.section, ev.kind
        if kind in ("acquire", "window-lock"):
            others = [o for o, c in holds.get(s, {}).items() if c > 0 and o != t]
            if others:
                v("double-hold", ev, f"also held by {others}")
            if kind == "acquire":
                setters = [o for o, c in flags.get(s, {}).items() if c > 0 and o != t]
                if setters:
                    v(
                        "acquire-while-flagged", ev,
                        f"section flagged for rebalance by {setters}",
                    )
            mine = holds.setdefault(s, {})
            if mine.get(t, 0) == 0:
                higher = [h for h in held_by(t) if h > s]
                if higher:
                    v("out-of-order", ev, f"already holds higher sections {higher}")
            mine[t] = mine.get(t, 0) + 1
        elif kind in ("release", "window-unlock"):
            mine = holds.setdefault(s, {})
            if mine.get(t, 0) <= 0:
                v("release-without-acquire", ev, "no matching acquire")
            else:
                mine[t] -= 1
        elif kind == "release-void":
            v("release-without-acquire", ev, "released into a swapped table")
        elif kind == "flag-set":
            flags.setdefault(s, {})
            flags[s][t] = flags[s].get(t, 0) + 1
        elif kind == "flag-clear":
            fl = flags.setdefault(s, {})
            if fl.get(t, 0) <= 0:
                v("flag-clear-by-non-setter", ev, "no outstanding flag-set")
            else:
                fl[t] -= 1
        elif kind == "flag-wait":
            held = held_by(t)
            if held:
                v("flag-wait-while-holding", ev, f"holds sections {held}")
        elif kind == "resize":
            foreign = sorted(
                s2 for s2, m in holds.items()
                for o, c in m.items() if c > 0 and o != t
            )
            if foreign:
                v("resize-while-held", ev, f"sections {foreign} held by other threads")
            # The table was rebuilt: all holds/flags refer to dead objects.
            holds.clear()
            flags.clear()
    return out


def events_from_tuples(tuples: Iterable[Tuple[str, str, int]]) -> List[LockEvent]:
    """Adapt ``(kind, thread, section)`` streams (e.g. the virtual-thread
    scheduler's modeled events) to the oracle's event type."""
    return [
        LockEvent(seq=i, thread=t, kind=k, section=s)
        for i, (k, t, s) in enumerate(tuples)
    ]


# ----------------------------------------------------------------------
# scenarios: small real-DGAP workloads under the scheduler
# ----------------------------------------------------------------------


@dataclass
class ScenarioSpec:
    """One fresh, instrumented case: workers + end-state validator."""

    graph: DGAP
    recorder: EventRecorder
    workers: Dict[str, Callable[[], None]]
    validate: Callable[[], None]


#: builds a fresh ScenarioSpec wired to the given scheduler
ScenarioBuilder = Callable[[DeterministicScheduler], ScenarioSpec]


def _make_graph(nv: int = 8, init_edges: int = 2048) -> DGAP:
    return DGAP(DGAPConfig(
        init_vertices=nv, init_edges=init_edges,
        segment_slots=64, thread_safe=True,
    ))


def instrument(
    g: DGAP,
    sched: Optional[DeterministicScheduler] = None,
    table_cls: type = InstrumentedSectionLockTable,
) -> EventRecorder:
    """Swap ``g.locks`` for an instrumented table; returns its recorder."""
    table = table_cls(g.ea.n_sections, sched=sched)
    g.locks = table
    return table.recorder


def _op(sched: DeterministicScheduler) -> None:
    """Operation-boundary yield point for scenario scripts."""
    sched.yield_point("op")


def _writer(g, sched, rec, name, edges, thread_id=0):
    def run():
        rec.name_thread(name)
        for src, dst in edges:
            g.insert_edge(src, dst, thread_id=thread_id)
            _op(sched)
    return run


def _base_validate(g: DGAP, expect_edges: int):
    def validate():
        g.check_invariants()
        got = g.num_edges
        if got != expect_edges:
            raise AssertionError(f"lost edges: expected {expect_edges}, have {got}")
        # degree caches agree with the structure scan check_invariants did
        deg = g.va.degrees()[: g.va.num_vertices]
        if int(deg.sum()) < expect_edges:
            raise AssertionError("degree cache undercounts inserted edges")
    return validate


def scenario_writer_writer(sched: DeterministicScheduler) -> ScenarioSpec:
    """Two writers, disjoint sources in different sections."""
    g = _make_graph()
    rec = instrument(g, sched)
    e_a = [(0, 1), (0, 2)]
    e_b = [(7, 3), (7, 4)]
    return ScenarioSpec(
        graph=g, recorder=rec,
        workers={
            "writerA": _writer(g, sched, rec, "writerA", e_a, thread_id=0),
            "writerB": _writer(g, sched, rec, "writerB", e_b, thread_id=1),
        },
        validate=_base_validate(g, len(e_a) + len(e_b)),
    )


def scenario_writer_writer_shared(sched: DeterministicScheduler) -> ScenarioSpec:
    """Two writers hammering the same source vertex."""
    g = _make_graph()
    rec = instrument(g, sched)
    e_a = [(3, 1), (3, 2)]
    e_b = [(3, 5), (3, 6)]

    def validate():
        _base_validate(g, 4)()
        got = sorted(int(x) for x in g.out_neighbors(3))
        if got != [1, 2, 5, 6]:
            raise AssertionError(f"adjacency of v3 wrong: {got}")

    return ScenarioSpec(
        graph=g, recorder=rec,
        workers={
            "writerA": _writer(g, sched, rec, "writerA", e_a, thread_id=0),
            "writerB": _writer(g, sched, rec, "writerB", e_b, thread_id=1),
        },
        validate=validate,
    )


def scenario_writer_rebalancer(
    sched: DeterministicScheduler,
    table_cls: type = InstrumentedSectionLockTable,
    writer_edges: int = 1,
) -> ScenarioSpec:
    """A writer inserting into the section a rebalance window claims.

    This is the TOCTOU scenario: the rebalancer flags and locks the
    writer's section while the writer sits in its check-to-acquire gap.
    With ``table_cls=UnfixedSectionLockTable`` the historical race is
    replayable (see the regression tests).
    """
    g = _make_graph()
    # pre-load vertex 0's run so the merge has material to move
    for i in range(6):
        g.insert_edge(0, i + 1)
    rec = instrument(g, sched, table_cls=table_cls)
    sec = int(g.ea.section_of(int(g.va.start[0])))
    edges = [(0, 10 + k) for k in range(writer_edges)]

    def rebalancer():
        rec.name_thread("rebal")
        g.rebalancer.merge_section(sec, thread_id=1)
        _op(sched)

    n0 = g.num_edges
    return ScenarioSpec(
        graph=g, recorder=rec,
        workers={
            "writer": _writer(g, sched, rec, "writer", edges, thread_id=0),
            "rebal": rebalancer,
        },
        validate=_base_validate(g, n0 + len(edges)),
    )


def scenario_writer_resize(sched: DeterministicScheduler) -> ScenarioSpec:
    """A writer racing a full edge-array resize (generation switch)."""
    g = _make_graph()
    for i in range(4):
        g.insert_edge(1, i + 2)
    rec = instrument(g, sched)
    edges = [(6, 1), (6, 2)]

    def resizer():
        rec.name_thread("resizer")
        g.rebalancer.resize(thread_id=1)
        _op(sched)

    n0 = g.num_edges
    return ScenarioSpec(
        graph=g, recorder=rec,
        workers={
            "writer": _writer(g, sched, rec, "writer", edges, thread_id=0),
            "resizer": resizer,
        },
        validate=_base_validate(g, n0 + len(edges)),
    )


def scenario_reader_writer(sched: DeterministicScheduler) -> ScenarioSpec:
    """Analysis snapshots taken while a writer appends to one vertex."""
    g = _make_graph()
    rec = instrument(g, sched)
    edges = [(2, d) for d in (1, 3, 4)]
    seen: List[Tuple[int, int]] = []

    def reader():
        rec.name_thread("reader")
        for _ in range(3):
            with g.consistent_view() as view:
                d = view.out_degree(2)
                # let the writer mutate between the degree read and the
                # adjacency materialization — the snapshot must not care
                sched.yield_point("mid-view")
                n = len(view.out_neighbors(2))
                seen.append((d, n))
            _op(sched)

    def validate():
        _base_validate(g, len(edges))()
        for d, n in seen:
            if d != n:
                raise AssertionError(f"snapshot degree {d} != materialized {n}")
        degs = [d for d, _ in seen]
        if degs != sorted(degs):
            raise AssertionError(f"snapshot degrees went backwards: {degs}")

    return ScenarioSpec(
        graph=g, recorder=rec,
        workers={
            "writer": _writer(g, sched, rec, "writer", edges, thread_id=0),
            "reader": reader,
        },
        validate=validate,
    )


SCENARIOS: Dict[str, ScenarioBuilder] = {
    "writer-writer": scenario_writer_writer,
    "writer-writer-shared": scenario_writer_writer_shared,
    "writer-rebalancer": scenario_writer_rebalancer,
    "writer-resize": scenario_writer_resize,
    "reader-writer": scenario_reader_writer,
}


# ----------------------------------------------------------------------
# driving scenarios through schedules
# ----------------------------------------------------------------------


@dataclass
class ScheduleOutcome:
    """One scenario run under one schedule, fully judged."""

    trace: ScheduleTrace
    events: List[LockEvent]
    violations: List[Violation]
    error: Optional[str] = None
    deadlocked: bool = False

    @property
    def clean(self) -> bool:
        return not self.violations and self.error is None and not self.deadlocked


def run_scenario(
    build: ScenarioBuilder,
    prefix: Sequence[str] = (),
    rng: Optional[np.random.Generator] = None,
) -> ScheduleOutcome:
    """One fresh scenario instance under one schedule, oracle-checked."""
    sched = DeterministicScheduler()
    spec = build(sched)
    for name, fn in spec.workers.items():
        sched.spawn(name, fn)
    deadlocked = False
    try:
        trace = sched.run(prefix=prefix, rng=rng)
    except ScheduleDeadlock as exc:
        trace = exc.partial
        deadlocked = True
    error = None
    if deadlocked:
        error = "deadlock: every live worker blocked"
    for name, exc in trace.errors.items():
        error = f"worker {name!r} raised {type(exc).__name__}: {exc}"
        break
    violations = check_lock_discipline(spec.recorder.events)
    if error is None and not deadlocked:
        try:
            spec.validate()
        except Exception as exc:  # noqa: BLE001 - judged, not hidden
            error = f"validate: {exc}"
    return ScheduleOutcome(
        trace=trace,
        events=spec.recorder.events,
        violations=violations,
        error=error,
        deadlocked=deadlocked,
    )


def explore_scenario(
    build: ScenarioBuilder,
    max_schedules: int = 150,
    seed: int = 0,
) -> Tuple[List[ScheduleOutcome], bool]:
    """DFS over a scenario's grant choices; seeded sampling past budget.

    Returns every outcome plus whether the branch frontier emptied
    (schedule space exhausted).  Same shape as the crash sweep:
    exhaustive below the budget, sampled above it.
    """
    outcomes: List[ScheduleOutcome] = []
    frontier: List[List[str]] = [[]]
    seen: set = set()
    while frontier and len(outcomes) < max_schedules:
        prefix = frontier.pop()
        out = run_scenario(build, prefix=prefix)
        outcomes.append(out)
        for i in range(len(prefix), len(out.trace.decisions)):
            d = out.trace.decisions[i]
            for alt in d.candidates:
                if alt != d.chosen:
                    branch = out.trace.trace[:i] + [alt]
                    key = tuple(branch)
                    if key not in seen:
                        seen.add(key)
                        frontier.append(branch)
    exhaustive = not frontier
    rng = np.random.default_rng(seed)
    while len(outcomes) < max_schedules and not exhaustive:
        outcomes.append(run_scenario(build, rng=rng))
    return outcomes, exhaustive


# ----------------------------------------------------------------------
# the sweep driver (bench `race-check` + CI smoke)
# ----------------------------------------------------------------------


@dataclass
class RaceCheckConfig:
    """Budget knobs for :func:`race_check` (mirrors ``SweepConfig``)."""

    max_schedules: int = 120
    seed: int = 0
    scenarios: Optional[List[str]] = None  # None = all


@dataclass
class ScenarioReport:
    name: str
    schedules: int = 0
    exhaustive: bool = False
    decision_points: int = 0
    events: int = 0
    violations: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.violations == 0 and not self.failures


@dataclass
class RaceCheckReport:
    """Coverage + verdicts across all scenarios."""

    scenarios: List[ScenarioReport] = field(default_factory=list)

    @property
    def schedules(self) -> int:
        return sum(s.schedules for s in self.scenarios)

    @property
    def violations(self) -> int:
        return sum(s.violations for s in self.scenarios)

    @property
    def failures(self) -> List[str]:
        return [f for s in self.scenarios for f in s.failures]

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.scenarios)


def race_check(config: Optional[RaceCheckConfig] = None) -> RaceCheckReport:
    """Explore every scenario's schedule space and judge every run."""
    cfg = config or RaceCheckConfig()
    names = cfg.scenarios or list(SCENARIOS)
    report = RaceCheckReport()
    for name in names:
        build = SCENARIOS[name]
        sr = ScenarioReport(name=name)
        outcomes, sr.exhaustive = explore_scenario(
            build, max_schedules=cfg.max_schedules, seed=cfg.seed
        )
        sr.schedules = len(outcomes)
        for out in outcomes:
            sr.decision_points += len(out.trace.decisions)
            sr.events += len(out.events)
            sr.violations += len(out.violations)
            if out.violations:
                sr.failures.append(
                    f"{name} schedule {out.trace.trace}: "
                    + "; ".join(str(v) for v in out.violations[:3])
                )
            elif out.error is not None:
                sr.failures.append(f"{name} schedule {out.trace.trace}: {out.error}")
        report.scenarios.append(sr)
    return report


def dry_run(scenario: Optional[str] = None) -> Dict[str, Dict[str, int]]:
    """One default-schedule run per scenario: event counts by kind.

    The race-check analogue of the crash sweep's dry-run mode — shows
    how many instrumentation events (≈ interleaving points) each
    scenario produces, before committing to a full exploration.
    """
    names = [scenario] if scenario else list(SCENARIOS)
    out: Dict[str, Dict[str, int]] = {}
    for name in names:
        result = run_scenario(SCENARIOS[name])
        if result.error or result.violations:
            raise LockDisciplineError(
                f"dry run of {name!r} not clean: error={result.error} "
                f"violations={[str(v) for v in result.violations]}"
            )
        counts = {}
        for ev in result.events:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        counts["decision-points"] = len(result.trace.decisions)
        out[name] = counts
    return out


__all__ = [
    "EventRecorder",
    "InstrumentedSectionLockTable",
    "LockEvent",
    "RaceCheckConfig",
    "RaceCheckReport",
    "SCENARIOS",
    "ScenarioReport",
    "ScenarioSpec",
    "ScheduleOutcome",
    "UnfixedSectionLockTable",
    "Violation",
    "check_lock_discipline",
    "dry_run",
    "events_from_tuples",
    "explore_scenario",
    "instrument",
    "race_check",
    "run_scenario",
]
