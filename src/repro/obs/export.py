"""Exporters for :class:`~repro.obs.tracer.Tracer` forests.

Three consumers:

* :func:`aggregate_phases` — per-phase *self* attribution (each span's
  delta minus its children's), grouped by span name.  Self values
  partition the traced interval, so the modeled-ns column of the
  ``bench profile`` table sums to the run total by construction.
* :func:`chrome_trace_events` / :func:`write_chrome_trace` — Chrome
  trace-event JSON (the ``{"traceEvents": [...]}`` format), loadable in
  Perfetto / ``chrome://tracing``.  Spans are complete ("X") events on
  the *modeled* timeline: ``modeled_ns`` is monotone non-decreasing, so
  child events always nest inside their parents.
* :func:`golden_tree` / :func:`render_tree` — a deterministic, purely
  structural serialization (span names, nesting, integer counter
  deltas) used by the golden-trace regression test.  Floats (modeled
  ns) and wall times are deliberately excluded so the fixture is stable
  across Python versions and machines while still pinning the hot-path
  event structure.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..pmem.stats import PMemStats
from .tracer import Span, Tracer

#: integer PMemStats fields carried into aggregation rows and golden trees
#: (every counter except the float modeled clock and the buckets dict).
INT_COUNTER_FIELDS: Tuple[str, ...] = (
    "stores",
    "stored_bytes",
    "payload_bytes",
    "flushes",
    "flushed_lines",
    "flushed_bytes",
    "seq_flushes",
    "rnd_flushes",
    "inplace_flushes",
    "media_bytes",
    "fences",
    "ntstores",
    "ntstored_bytes",
    "seq_read_bytes",
    "rnd_reads",
    "crashes",
    "torn_lines",
    "dropped_pending_lines",
    "poisoned_xplines",
    "media_errors",
)


# -- per-phase aggregation -------------------------------------------------

class PhaseRow:
    """Aggregated self-attribution for all spans sharing one name."""

    __slots__ = ("name", "count", "modeled_ns", "wall_ns", "counters")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.modeled_ns = 0.0
        self.wall_ns = 0
        self.counters: Dict[str, int] = {k: 0 for k in INT_COUNTER_FIELDS}

    def add_self(self, span: Span) -> None:
        self.count += 1
        self.wall_ns += span.self_wall_ns()
        d = span.self_delta()
        if d is None:
            return
        self.modeled_ns += d.modeled_ns
        for k in INT_COUNTER_FIELDS:
            self.counters[k] += getattr(d, k)

    def write_amplification(self) -> float:
        payload = self.counters["payload_bytes"]
        return self.counters["stored_bytes"] / payload if payload else 0.0


def aggregate_phases(tracer: Tracer) -> Tuple[List[PhaseRow], Optional[PhaseRow]]:
    """Group self-attribution by span name; return (rows, untraced).

    ``untraced`` covers device activity between install and uninstall
    that fell outside every root span (None when the tracer had no
    stats).  Rows are sorted by descending self modeled ns; the modeled
    ns over all rows plus ``untraced`` equals ``tracer.total_delta()``
    exactly (up to float associativity), and the integer counters
    exactly, because self deltas partition the interval.
    """
    rows: Dict[str, PhaseRow] = {}
    for _, span in tracer.walk():
        row = rows.get(span.name)
        if row is None:
            row = rows[span.name] = PhaseRow(span.name)
        row.add_self(span)
    ordered = sorted(rows.values(), key=lambda r: (-r.modeled_ns, r.name))

    untraced: Optional[PhaseRow] = None
    total = tracer.total_delta()
    if total is not None:
        untraced = PhaseRow("(untraced)")
        untraced.modeled_ns = total.modeled_ns
        untraced.wall_ns = 0
        for k in INT_COUNTER_FIELDS:
            untraced.counters[k] = getattr(total, k)
        for root in tracer.roots:
            if root.delta is None:
                continue
            untraced.modeled_ns -= root.delta.modeled_ns
            for k in INT_COUNTER_FIELDS:
                untraced.counters[k] -= getattr(root.delta, k)
    return ordered, untraced


# -- Chrome trace-event JSON ----------------------------------------------

_MODELED_TID = 1
_DEVICE_TID = 2


def _span_event(span: Span) -> Dict[str, Any]:
    args: Dict[str, Any] = dict(span.attrs)
    args["wall_ns"] = span.wall_ns
    if span.delta is not None:
        for k in INT_COUNTER_FIELDS:
            v = getattr(span.delta, k)
            if v:
                args[k] = v
        if span.delta.payload_bytes:
            args["write_amplification"] = round(
                span.delta.write_amplification(), 4
            )
        ts = span.t0_modeled / 1e3
        dur = span.delta.modeled_ns / 1e3
    else:
        # No stats: fall back to the wall timeline (still nests correctly).
        ts = span.t0_wall / 1e3
        dur = span.wall_ns / 1e3
    return {
        "name": span.name,
        "cat": "modeled",
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": 1,
        "tid": _MODELED_TID,
        "args": args,
    }


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro modeled device"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": _MODELED_TID,
            "args": {"name": "spans (modeled time)"},
        },
    ]
    for _, span in tracer.walk():
        events.append(_span_event(span))
    if tracer.device_events:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": _DEVICE_TID,
            "args": {"name": "device ops"},
        })
        for kind, at_ns, count, nbytes in tracer.device_events:
            events.append({
                "name": kind,
                "cat": "device",
                "ph": "i",
                "s": "t",
                "ts": at_ns / 1e3,
                "pid": 1,
                "tid": _DEVICE_TID,
                "args": {"count": count, "bytes": nbytes},
            })
    return events


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write ``{"traceEvents": [...]}`` JSON; returns the event count."""
    events = chrome_trace_events(tracer)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "modeled_ns (ts/dur are modeled microseconds)",
            "dropped_device_events": tracer.dropped_device_events,
        },
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
    return len(events)


# -- golden-tree serialization --------------------------------------------

#: counters pinned by the golden fixture: the write-path structure
#: (stores/flushes/fences and their byte totals).  Read-side counters and
#: anything float-valued are excluded for cross-platform stability.
GOLDEN_COUNTERS: Tuple[str, ...] = (
    "stores",
    "stored_bytes",
    "payload_bytes",
    "flushes",
    "flushed_lines",
    "fences",
    "ntstores",
    "media_bytes",
)


def _golden_span(span: Span) -> Dict[str, Any]:
    node: Dict[str, Any] = {"name": span.name}
    if span.delta is not None:
        counters = {
            k: getattr(span.delta, k)
            for k in GOLDEN_COUNTERS
            if getattr(span.delta, k)
        }
        if counters:
            node["counters"] = counters
    keep = {
        k: v for k, v in sorted(span.attrs.items())
        if isinstance(v, (int, str, bool)) and not isinstance(v, float)
    }
    if keep:
        node["attrs"] = keep
    if span.children:
        node["children"] = [_golden_span(c) for c in span.children]
    return node


def golden_tree(tracer: Tracer) -> Dict[str, Any]:
    """Deterministic structural summary of a trace for fixture pinning."""
    doc: Dict[str, Any] = {
        "version": 1,
        "span_count": tracer.span_count(),
        "roots": [_golden_span(r) for r in tracer.roots],
    }
    total = tracer.total_delta()
    if total is not None:
        doc["total"] = {
            k: getattr(total, k) for k in GOLDEN_COUNTERS if getattr(total, k)
        }
    return doc


def render_tree(doc: Dict[str, Any]) -> List[str]:
    """Flatten a golden tree into readable lines for diffing in failures."""
    lines = [f"span_count={doc.get('span_count')}"]
    total = doc.get("total")
    if total:
        lines.append(
            "total: " + " ".join(f"{k}={v}" for k, v in sorted(total.items()))
        )

    def walk(node: Dict[str, Any], depth: int) -> None:
        parts = [("  " * depth) + node["name"]]
        attrs = node.get("attrs")
        if attrs:
            parts.append(
                "[" + " ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
            )
        counters = node.get("counters")
        if counters:
            parts.append(
                " ".join(f"{k}={v}" for k, v in sorted(counters.items()))
            )
        lines.append(" ".join(parts))
        for child in node.get("children", ()):
            walk(child, depth + 1)

    for root in doc.get("roots", ()):
        walk(root, 0)
    return lines


__all__ = [
    "INT_COUNTER_FIELDS",
    "GOLDEN_COUNTERS",
    "PhaseRow",
    "aggregate_phases",
    "chrome_trace_events",
    "write_chrome_trace",
    "golden_tree",
    "render_tree",
]
