"""Observability layer: hierarchical spans with modeled-time attribution.

``repro.obs`` attributes modeled nanoseconds, wall nanoseconds, and the
full :class:`~repro.pmem.stats.PMemStats` counter block (stores, flushes,
fences, media bytes, write amplification) to hierarchical spans —
``insert_edges`` → ``batch_round`` → ``merge`` → device ops — without
perturbing the system under observation.

Zero overhead when off: every instrumentation site calls
:func:`trace`, which returns a shared no-op context manager unless a
:class:`Tracer` has been installed.  When on, spans only *read* device
state (counter snapshots via ``PMemStats.snapshot``/``delta_since`` and
``time.perf_counter_ns``); they never store, flush, fence, or charge
modeled time, so a traced run is event- and counter-identical to an
untraced one (proven by ``tests/test_trace_differential.py``).

Typical use::

    from repro.obs import Tracer, tracing

    g = DGAP(config)
    tracer = Tracer(g.pool.stats)
    with tracing(tracer):
        g.insert_edges(edges)
    for root in tracer.roots:
        print(root.name, root.delta.modeled_ns, root.delta.flushes)

Exporters live in :mod:`repro.obs.export` (Chrome trace-event JSON for
Perfetto, golden-tree serialization for regression fixtures, and the
per-phase aggregation behind ``python -m repro.bench profile``).
"""

from .export import (
    INT_COUNTER_FIELDS,
    aggregate_phases,
    chrome_trace_events,
    golden_tree,
    render_tree,
    write_chrome_trace,
)
from .tracer import (
    Span,
    Tracer,
    active_tracer,
    annotate,
    kernel_span,
    trace,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "annotate",
    "kernel_span",
    "trace",
    "tracing",
    "INT_COUNTER_FIELDS",
    "aggregate_phases",
    "chrome_trace_events",
    "golden_tree",
    "render_tree",
    "write_chrome_trace",
]
