"""Hierarchical spans with counter-snapshot attribution.

Design contract (see DESIGN.md §11):

* **Zero overhead when off.** ``trace(name)`` is the only call sites pay
  for; with no tracer installed it returns one shared no-op context
  manager (``_NOOP``) and allocates nothing.
* **Observationally free when on.** A span records
  ``PMemStats.snapshot()`` at entry and ``delta_since`` at exit, plus
  ``time.perf_counter_ns``.  Snapshots are pure reads — the tracer never
  issues a store/flush/fence and never charges modeled time, so the PM
  event stream and every counter (including float ``modeled_ns``) are
  *exactly* equal with tracing on or off.
* **Exact attribution.** Because counters are monotone within a run and
  deltas are taken at span boundaries, a child span's delta is a subset
  of its parent's: for every integer counter,
  ``sum(child.delta) <= parent.delta`` and
  ``parent self = parent.delta - sum(child.delta)`` with no
  double-counting.  Root-span deltas partition the traced interval, so
  per-phase *self* values sum exactly to ``Tracer.total_delta()``
  (the property tests in ``tests/test_trace_properties.py`` pin this).

Spans nest via a per-tracer stack; the structure is purely dynamic
(whatever ``with trace(...)`` blocks actually execute), so a span opened
inside ``insert_edges`` by the rebalancer becomes a child of the insert
span — exactly the attribution the paper's phase-breakdown figures need.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..pmem import device as _device_mod
from ..pmem.stats import PMemStats


class _NoopSpan:
    """Shared do-nothing context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:  # pragma: no cover - trivial
        pass


_NOOP = _NoopSpan()

#: the installed tracer, or None (module-level so ``trace`` is one load +
#: one None check on the hot path).
_ACTIVE: Optional["Tracer"] = None


class Span:
    """One timed, counter-attributed region; also its own context manager."""

    __slots__ = (
        "tracer",
        "name",
        "attrs",
        "index",
        "children",
        "t0_wall",
        "wall_ns",
        "t0_modeled",
        "delta",
        "_snap0",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.index = -1
        self.children: List[Span] = []
        self.t0_wall = 0
        self.wall_ns = 0
        self.t0_modeled = 0.0
        self.delta: Optional[PMemStats] = None
        self._snap0: Optional[PMemStats] = None

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "Span":
        t = self.tracer
        self.index = t._next_index()
        t._stack.append(self)
        st = t.stats
        if st is not None:
            self._snap0 = st.snapshot()
            self.t0_modeled = self._snap0.modeled_ns
        self.t0_wall = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_ns = time.perf_counter_ns() - self.t0_wall
        t = self.tracer
        st = t.stats
        if st is not None and self._snap0 is not None:
            self.delta = st.delta_since(self._snap0)
            self._snap0 = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = t._stack
        # Under an exception (e.g. a SimulatedCrash unwinding several
        # nested spans) each ``with`` exits in order, so the top of the
        # stack is always ``self``; the guard keeps a mispaired manual
        # __exit__ from corrupting the tree.
        if stack and stack[-1] is self:
            stack.pop()
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(self)
        else:
            t.roots.append(self)
        return False

    # -- helpers -----------------------------------------------------------
    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    @property
    def modeled_ns(self) -> float:
        return self.delta.modeled_ns if self.delta is not None else 0.0

    def self_delta(self) -> Optional[PMemStats]:
        """This span's counters minus everything attributed to children."""
        if self.delta is None:
            return None
        acc = self.delta.snapshot()
        for child in self.children:
            if child.delta is None:
                continue
            for k, v in child.delta.__dict__.items():
                if k == "buckets":
                    continue
                setattr(acc, k, getattr(acc, k) - v)
            for k, v in child.delta.buckets.items():
                acc.buckets[k] = acc.buckets.get(k, 0.0) - v
        acc.buckets = {k: v for k, v in acc.buckets.items() if v != 0.0}
        return acc

    def self_wall_ns(self) -> int:
        return self.wall_ns - sum(c.wall_ns for c in self.children)

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "Span"]]:
        """Pre-order (depth, span) traversal of this subtree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ns = f"{self.delta.modeled_ns:.0f}ns" if self.delta is not None else "open"
        return f"Span({self.name!r}, {ns}, children={len(self.children)})"


class Tracer:
    """Collects a forest of :class:`Span` trees plus optional device events.

    Parameters
    ----------
    stats:
        The :class:`PMemStats` block to snapshot at span boundaries
        (normally ``graph.pool.stats``).  ``None`` traces wall time and
        structure only.
    device_ops:
        When true, install a hook in :mod:`repro.pmem.device` that
        records every primitive (store/flush/fence/ntstore) as a flat
        event — useful for fine-grained traces, but large; off by
        default.
    max_device_events:
        Cap on recorded device events; beyond it events are counted in
        ``dropped_device_events`` instead of stored.
    """

    def __init__(
        self,
        stats: Optional[PMemStats] = None,
        *,
        device_ops: bool = False,
        max_device_events: int = 200_000,
    ):
        self.stats = stats
        self.device_ops = device_ops
        self.max_device_events = max_device_events
        self.roots: List[Span] = []
        self.device_events: List[Tuple[str, float, int, int]] = []
        self.dropped_device_events = 0
        self._stack: List[Span] = []
        self._counter = 0
        self._install_snap: Optional[PMemStats] = None
        self._installed = False

    # -- span creation -----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def _next_index(self) -> int:
        i = self._counter
        self._counter = i + 1
        return i

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- device events -----------------------------------------------------
    def _device_event(self, kind: str, count: int, nbytes: int) -> None:
        if len(self.device_events) >= self.max_device_events:
            self.dropped_device_events += 1
            return
        at = self.stats.modeled_ns if self.stats is not None else 0.0
        self.device_events.append((kind, at, count, nbytes))

    # -- install / uninstall ----------------------------------------------
    def install(self) -> None:
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a tracer is already installed")
        if self._installed:
            raise RuntimeError("a Tracer cannot be re-installed; create a new one")
        self._installed = True
        if self.stats is not None:
            self._install_snap = self.stats.snapshot()
        _ACTIVE = self
        if self.device_ops:
            _device_mod.TRACE_HOOK = self._device_event

    def uninstall(self) -> None:
        global _ACTIVE
        if _ACTIVE is not self:
            raise RuntimeError("this tracer is not installed")
        _ACTIVE = None
        _device_mod.TRACE_HOOK = None
        # Close any spans left open by a non-local exit so the forest is
        # well-formed for exporters.
        while self._stack:
            self._stack[-1].__exit__(None, None, None)

    def total_delta(self) -> Optional[PMemStats]:
        """Everything the device did between install and now (or uninstall)."""
        if self.stats is None or self._install_snap is None:
            return None
        return self.stats.delta_since(self._install_snap)

    # -- inspection --------------------------------------------------------
    def walk(self) -> Iterator[Tuple[int, Span]]:
        for root in self.roots:
            yield from root.walk()

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    def find(self, name: str) -> List[Span]:
        return [s for _, s in self.walk() if s.name == name]


# -- module-level API (the only thing instrumented code touches) -----------

def active_tracer() -> Optional[Tracer]:
    return _ACTIVE


def trace(name: str, **attrs: Any):
    """Open a span under the installed tracer, or a no-op when off.

    The off path is one global load and a ``None`` check — no
    allocation, no branching on configuration objects.
    """
    t = _ACTIVE
    if t is None:
        return _NOOP
    return Span(t, name, attrs)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost open span (no-op when off)."""
    t = _ACTIVE
    if t is None:
        return
    cur = t.current
    if cur is not None:
        cur.attrs.update(attrs)


@contextmanager
def tracing(tracer: Tracer):
    """Install ``tracer`` for the duration of the block."""
    tracer.install()
    try:
        yield tracer
    finally:
        tracer.uninstall()


@contextmanager
def kernel_span(name: str, view):
    """Span around an analysis kernel, annotated with the view clock.

    Kernels charge the :class:`~repro.analysis.view.AnalysisClock` on
    their view rather than device stats, so the span additionally
    records the parallel/serial analysis nanoseconds accumulated while
    it was open.
    """
    t = _ACTIVE
    if t is None:
        yield
        return
    clock = getattr(view, "clock", None)
    par0 = clock.par_ns if clock is not None else 0.0
    ser0 = clock.ser_ns if clock is not None else 0.0
    with Span(t, name, {}) as sp:
        try:
            yield sp
        finally:
            if clock is not None:
                sp.attrs["analysis_par_ns"] = clock.par_ns - par0
                sp.attrs["analysis_ser_ns"] = clock.ser_ns - ser0


__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "annotate",
    "kernel_span",
    "trace",
    "tracing",
]
