"""The compared systems of the paper's evaluation (§4.1).

* :class:`StaticCSR` — immutable GAPBS CSR on PM (analysis baseline);
* :class:`BlockedAdjacencyList` — BAL on PM (insertion baseline);
* :class:`LLAMA` — multi-versioned CSR snapshots;
* :class:`GraphOneFD` — DRAM edge list + adjacency archive, PM-flushed;
* :class:`XPGraph` — PM edge log + PM adjacency list, DRAM cache;
* :class:`DGAPSystem` — the paper's contribution, same interface.
"""

from .bal import BlockedAdjacencyList
from .csr import StaticCSR
from .dgap_system import DGAPSystem
from .graphone import GraphOneFD
from .interfaces import (
    PM_WRITE_BW_BYTES_PER_S,
    DynamicGraphSystem,
    InsertProfile,
    ViewReuseStats,
)
from .llama import LLAMA
from .xpgraph import XPGraph

#: constructor registry for the benchmark harness (dynamic systems only;
#: StaticCSR has a different signature and cannot ingest).
SYSTEMS = {
    "dgap": DGAPSystem,
    "bal": BlockedAdjacencyList,
    "llama": LLAMA,
    "graphone": GraphOneFD,
    "xpgraph": XPGraph,
}

__all__ = [
    "DynamicGraphSystem",
    "InsertProfile",
    "ViewReuseStats",
    "PM_WRITE_BW_BYTES_PER_S",
    "StaticCSR",
    "BlockedAdjacencyList",
    "LLAMA",
    "GraphOneFD",
    "XPGraph",
    "DGAPSystem",
    "SYSTEMS",
]
