"""DGAP wrapped in the common compared-system interface.

All insert costs come from the simulated substrate (no software-path
calibration constant — the whole point of DGAP is that its protocol
*is* the cost).  The analysis geometry is derived from the live PMA
state: gap overhead = how much of the edge array a full scan streams
beyond the useful edges; chain share = pending edge-log entries per
edge.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis import costs
from ..analysis.view import BaseGraphView, CSRArraysView, StorageGeometry
from ..analysis.viewcache import DGAPViewCache
from ..config import DGAPConfig
from ..core.batch import EdgeBatch
from ..core.dgap import DGAP
from .interfaces import DynamicGraphSystem


class DGAPSystem(DynamicGraphSystem):
    """The paper's contribution, as a compared system."""

    name = "dgap"
    #: rebalances briefly lock whole section windows (paper: |log v|
    #: section locks; Table 3 shows ~2.9-3.4x at 16 threads before the
    #: media-bandwidth ceiling).
    insert_serial_fraction = 0.04
    sw_overhead_ns = 0.0

    def __init__(
        self,
        num_vertices: int,
        expected_edges: int,
        config: Optional[DGAPConfig] = None,
    ):
        super().__init__()
        self.config = config or DGAPConfig(
            init_vertices=num_vertices, init_edges=expected_edges
        )
        self.graph = DGAP(self.config)
        self._inc_cache = DGAPViewCache(self.graph)

    # -- updates ------------------------------------------------------------
    def insert_edge(self, src: int, dst: int) -> None:
        self.graph.insert_edge(src, dst)
        self._sw_edges += 1

    def insert_batch(self, batch: EdgeBatch) -> int:
        """Hand the whole batch to DGAP's section-grouped pipeline."""
        n = self.graph.insert_edges(batch)
        self._sw_edges += n
        return n

    # -- analysis -------------------------------------------------------------
    @property
    def view_epoch(self) -> int:
        """DGAP's own structure epoch keys whole-view reuse."""
        return int(self.graph.structure_epoch)

    def view_counters(self):
        """Whole-view reuse + incremental-materialization counters."""
        c = self._inc_cache.stats.as_dict()
        c["whole_view_hits"] = self.view_stats.hits
        c["view_builds"] = self.view_stats.builds
        c["sections_total"] = int(self.graph.ea.n_sections)
        return c

    def _build_view(self) -> BaseGraphView:
        with self.graph.consistent_view() as snap:
            if self.view_caching:
                out, inn = self._inc_cache.materialize(snap)
                indptr, dsts = out
            else:
                # From-scratch path.  No defensive copy: to_csr builds
                # its arrays by fancy indexing / fresh allocation and
                # never returns views into the persistent buffers (the
                # aliasing test in tests/test_view_cache.py pins this).
                indptr, dsts = snap.to_csr()
                inn = None
        ne = max(1, int(indptr[-1]))
        nv = self.graph.num_vertices
        live_log = float(self.graph.logs.live_counts.sum())
        chain_share = live_log / ne
        # Full scans read each vertex's run via the vertex array: gaps
        # are skipped, but run boundaries waste partial cache lines
        # (~16 B per vertex — low-degree vertices pack several runs per
        # line), and the per-section edge logs are streamed for their
        # pending entries (12 B each).
        scan_overhead = (nv * 16.0 + live_log * 12.0) / (ne * costs.EDGE_BYTES)
        geometry = StorageGeometry(
            name="dgap",
            edge_bytes=costs.EDGE_BYTES,
            scan_overhead=scan_overhead,
            # per-vertex degree-cache + start lookups are DRAM; the PM
            # random access per frontier vertex includes the chance of a
            # run straddling cache lines and the el-pointer check.
            scan_rnd_per_vertex=0.0,
            frontier_rnd_per_vertex=1.35,
            frontier_rnd_ns=costs.PM_RND_NS,
            chain_rnd_per_edge=chain_share,
            chain_rnd_ns=costs.PM_RND_NS,
        )
        view = CSRArraysView(indptr, dsts, geometry)
        if inn is not None:
            view._derived["in"] = inn
        return view

    def _devices(self):
        return (self.graph.pool.device,)


__all__ = ["DGAPSystem"]
