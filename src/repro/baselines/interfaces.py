"""Common interface for every compared graph system (paper §4.1).

Each system executes its real storage protocol against the simulated
substrate: persistent structures live in a :class:`PMemPool` (modeled
Optane costs), DRAM-side structures in a DRAM-profile device.  Modeled
insert time is whatever those devices accrued, plus a per-edge
``sw_overhead_ns`` constant modeling the framework's software path
(atomics, hashing, allocation) — calibrated once against the paper's
Orkut single-thread MEPS (Fig. 6) and documented per system; DGAP needs
none (its costs come entirely from the substrate).

Thread scaling (Table 3) uses :class:`InsertScalingModel`: time at p
threads is ``max(serial + parallel/p, pm_media_bytes / PM_WRITE_BW)`` —
Amdahl over each architecture's serialization (LLAMA's single-threaded
snapshotting, GraphOne/XPGraph archiving) plus the Optane media
write-bandwidth ceiling that caps every system near 6-8 MEPS in the
paper's 16-thread column.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..analysis.view import BaseGraphView
from ..core.batch import DEFAULT_BATCH_SIZE, EdgeBatch, EdgeLike
from ..pmem.device import PMemDevice
from ..pmem.latency import DRAM, OPTANE_ADR
from ..pmem.pool import PMemPool

#: Aggregate Optane media write bandwidth of the paper's 6-DIMM testbed
#: (interleaved small writes; well below the pure-stream peak).
PM_WRITE_BW_BYTES_PER_S = 2.3e9


@dataclass
class InsertProfile:
    """Everything needed to evaluate insert time at any thread count."""

    edges: int
    modeled_ns: float
    pm_media_bytes: int
    serial_fraction: float

    def seconds(self, threads: int = 1) -> float:
        """Modeled ingest seconds at ``threads`` writer threads."""
        ser = self.modeled_ns * self.serial_fraction
        par = self.modeled_ns - ser
        t = (ser + par / max(1, threads)) * 1e-9
        bw_floor = self.pm_media_bytes / PM_WRITE_BW_BYTES_PER_S
        return max(t, bw_floor) if threads > 1 else t

    def meps(self, threads: int = 1) -> float:
        """Throughput in million edges per second at ``threads`` threads."""
        s = self.seconds(threads)
        return self.edges / s / 1e6 if s > 0 else float("inf")


@dataclass
class ViewReuseStats:
    """Epoch-keyed whole-view reuse counters (see ``analysis_view``)."""

    builds: int = 0
    hits: int = 0


class DynamicGraphSystem(ABC):
    """A graph store under evaluation: ingest a stream, analyze snapshots."""

    name: str = "?"
    #: Amdahl serial fraction of the insert path (see module docstring).
    insert_serial_fraction: float = 0.0
    #: per-edge software-path cost (ns) — calibration, documented per system.
    sw_overhead_ns: float = 0.0
    #: epoch-keyed view reuse (and, for DGAP, incremental CSR
    #: maintenance).  A host-wall-clock optimization only: modeled
    #: times and kernel outputs are identical either way.
    view_caching: bool = True

    def __init__(self) -> None:
        self._sw_edges = 0
        self._view_epoch = 0
        self._view_cache: Optional[Tuple[int, BaseGraphView]] = None
        self.view_stats = ViewReuseStats()

    # -- updates ------------------------------------------------------------
    @abstractmethod
    def insert_edge(self, src: int, dst: int) -> None: ...

    def insert_batch(self, batch: EdgeBatch) -> int:
        """Ingest one :class:`EdgeBatch`; returns accepted mutation count.

        The default replays the batch through :meth:`insert_edge` —
        accounting-identical to the historical per-edge stream.  Each
        system overrides this with its architecture's natural batch path
        (archiving chunks, snapshot deltas, log spans), every override
        preserving scalar-equivalent device accounting.
        """
        for s, d in zip(batch.src.tolist(), batch.dst.tolist()):
            self.insert_edge(s, d)
        return len(batch)

    def insert_edges(
        self, edges: EdgeLike, batch_size: Optional[int] = DEFAULT_BATCH_SIZE
    ) -> int:
        """Insert a stream of edges; returns how many were accepted.

        Accepts an :class:`EdgeBatch`, an ``(N, 2)`` ndarray, or any
        iterable of ``(src, dst)`` pairs — no per-tuple unpacking on the
        array paths.  ``batch_size`` splits the stream into consecutive
        sub-batches (default 512; None or <= 0 = one unbounded batch).
        """
        batch = EdgeBatch.coerce(edges)
        if len(batch) == 0:
            return 0
        if batch_size is None or batch_size <= 0 or len(batch) <= batch_size:
            return self.insert_batch(batch)
        n = 0
        for chunk in batch.chunks(batch_size):
            n += self.insert_batch(chunk)
        return n

    def finalize(self) -> None:
        """Flush any buffered state (end of an ingest phase)."""

    # -- analysis -------------------------------------------------------------
    @property
    def view_epoch(self) -> int:
        """Monotone version of the *analyzable* graph.

        Bumped by :meth:`_note_mutation` whenever the graph an
        ``analysis_view`` would expose changes.  Systems whose analysis
        lags ingestion (LLAMA's snapshots) bump on snapshot creation
        instead of per insert — preserving their staleness semantics.
        """
        return self._view_epoch

    def _note_mutation(self) -> None:
        self._view_epoch += 1

    def analysis_view(self) -> BaseGraphView:
        """A view over the system's current analyzable graph.

        Epoch-keyed whole-view reuse: if the analyzable graph did not
        change since the last call, the cached view's arrays and derived
        caches (in-CSR, degree/id arrays) are handed out again under a
        fresh clock.  Each caller always gets its own
        :class:`~repro.analysis.view.AnalysisClock`, so accounting is
        unaffected; disable with ``view_caching = False`` to force
        from-scratch materialization on every call.
        """
        epoch = self.view_epoch
        cached = self._view_cache
        if self.view_caching and cached is not None and cached[0] == epoch:
            self.view_stats.hits += 1
            return cached[1].clone()  # type: ignore[attr-defined]
        view = self._build_view()
        self.view_stats.builds += 1
        if self.view_caching and hasattr(view, "clone"):
            self._view_cache = (epoch, view)
        return view

    @abstractmethod
    def _build_view(self) -> BaseGraphView:
        """Materialize a fresh view of the current analyzable graph."""

    # -- accounting ---------------------------------------------------------------
    @abstractmethod
    def _devices(self) -> Tuple[PMemDevice, ...]: ...

    def modeled_insert_ns(self) -> float:
        """Total modeled ingest time: device costs + software path."""
        ns = sum(d.stats.modeled_ns for d in self._devices())
        return ns + self._sw_edges * self.sw_overhead_ns

    def pm_media_bytes(self) -> int:
        """Bytes written to persistent media (the bandwidth-cap input)."""
        return sum(
            d.stats.media_bytes for d in self._devices() if not d.profile.volatile
        )

    def checkpoint(self) -> "SystemCheckpoint":
        """Snapshot counters (to measure a post-warm-up window)."""
        return SystemCheckpoint(
            self.modeled_insert_ns(), self.pm_media_bytes(), self._sw_edges
        )

    def insert_profile(self, since: Optional["SystemCheckpoint"] = None,
                       edges: Optional[int] = None) -> InsertProfile:
        """Summarize ingest since ``since`` for thread-count evaluation."""
        base = since or SystemCheckpoint(0.0, 0, 0)
        n_edges = edges if edges is not None else self._sw_edges - base.edges
        return InsertProfile(
            edges=n_edges,
            modeled_ns=self.modeled_insert_ns() - base.ns,
            pm_media_bytes=self.pm_media_bytes() - base.media,
            serial_fraction=self.insert_serial_fraction,
        )


@dataclass
class SystemCheckpoint:
    """Counter snapshot delimiting a measured ingest window."""

    ns: float
    media: int
    edges: int


def make_dram_device(size: int, name: str) -> PMemDevice:
    """A DRAM-profile device for a system's volatile structures."""
    return PMemDevice(size, profile=DRAM, name=name)


__all__ = [
    "DynamicGraphSystem",
    "InsertProfile",
    "SystemCheckpoint",
    "ViewReuseStats",
    "PM_WRITE_BW_BYTES_PER_S",
    "make_dram_device",
]
