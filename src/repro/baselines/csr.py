"""Static Compressed Sparse Row on persistent memory (paper §4.1).

The GAPBS CSR ported to PM: immutable, built in one pass with
non-temporal streaming stores, and the analysis-performance baseline
every Fig. 7/8 number is normalized to.  ``insert_edge`` after
construction raises — CSR "cannot be updated" (§4.1) — which is exactly
why it exists as a baseline rather than a contender.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..analysis.view import CSR_PM_GEOMETRY, BaseGraphView, CSRArraysView
from ..errors import ImmutableGraphError
from ..pmem.latency import OPTANE_ADR, LatencyModel
from ..pmem.pool import PMemPool
from .interfaces import DynamicGraphSystem


class StaticCSR(DynamicGraphSystem):
    """Immutable CSR, built once on PM."""

    name = "csr"
    insert_serial_fraction = 0.0

    def __init__(
        self,
        num_vertices: int,
        edges: np.ndarray,
        profile: LatencyModel = OPTANE_ADR,
    ):
        super().__init__()
        edges = np.asarray(edges, dtype=np.int64)
        self.num_vertices = num_vertices
        ne = edges.shape[0]
        pool_bytes = max(1 << 20, (num_vertices + 1) * 8 + ne * 4 + (1 << 16))
        self.pool = PMemPool(pool_bytes, profile=profile, name="csr")

        order = np.argsort(edges[:, 0], kind="stable") if ne else np.empty(0, np.int64)
        sorted_dst = edges[order, 1].astype(np.int32) if ne else np.empty(0, np.int32)
        counts = np.bincount(edges[:, 0], minlength=num_vertices) if ne else np.zeros(num_vertices, np.int64)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])

        self.indptr_region = self.pool.alloc_array("indptr", np.int64, num_vertices + 1)
        self.indptr_region.nt_write_slice(0, indptr)
        self.dsts_region = self.pool.alloc_array("dsts", np.int32, max(ne, 1))
        if ne:
            self.dsts_region.nt_write_slice(0, sorted_dst)
        self.pool.device.sfence()
        self._ne = ne
        self._sw_edges = ne

    # -- updates ------------------------------------------------------------
    def insert_edge(self, src: int, dst: int) -> None:
        raise ImmutableGraphError("static CSR cannot be updated without a rebuild")

    # -- analysis -------------------------------------------------------------
    def _build_view(self) -> BaseGraphView:
        # Immutable: the view epoch never advances, so the base class
        # serves every call after the first from the cached view.
        indptr = self.indptr_region.view
        dsts = self.dsts_region.view[: self._ne]
        return CSRArraysView(indptr, dsts, CSR_PM_GEOMETRY)

    def _devices(self):
        return (self.pool.device,)


__all__ = ["StaticCSR"]
