"""GraphOne-FD: DRAM edge list + adjacency archive, flushed to PM (§4.1).

GraphOne [33] appends new edges to an in-DRAM circular edge list and
archives them into a DRAM blocked adjacency list in the background;
durability comes from flushing the edge list to non-volatile storage.
The paper's port ("GraphOne-FD", Flushing-DRAM) flushes to PM every
2^16 inserts and leaves analysis entirely in DRAM — fast on BFS-style
random access (Fig. 8's winner), but its adjacency list's poor cache
locality loses the full-scan kernels to DGAP despite running from DRAM
(the paper's own Fig. 7 observation).

A window of up to 2^16 acknowledged-but-unflushed edges can be lost on
a crash — the data-loss risk the paper accepts to make GO-FD fast.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..analysis import costs
from ..analysis.view import BaseGraphView, CSRArraysView, StorageGeometry
from ..core.batch import EdgeBatch, extend_adjacency
from ..pmem.device import PMemDevice
from ..pmem.latency import DRAM, OPTANE_ADR, LatencyModel
from ..pmem.pool import PMemPool
from .interfaces import DynamicGraphSystem

#: DRAM adjacency-list block size, in edges (GraphOne's chained blocks).
AL_BLOCK_EDGES = 16
#: durable-phase flush period (paper: every 2^16 inserts).
FLUSH_PERIOD = 1 << 16
#: archiving batch (edge list -> adjacency list) granularity.
ARCHIVE_BATCH = 1 << 10


class GraphOneFD(DynamicGraphSystem):
    """GraphOne with periodic PM flushing of the durable edge list."""

    name = "graphone"
    #: archiving and the durable phase serialize (Table 3: ~2.3x at 16T).
    insert_serial_fraction = 0.40
    #: atomics + hash lookups + memory management per edge, calibrated to
    #: Fig. 6 Orkut (1.23 MEPS) after substrate costs.
    sw_overhead_ns = 560.0

    def __init__(
        self,
        num_vertices: int,
        expected_edges: int,
        profile: LatencyModel = OPTANE_ADR,
    ):
        super().__init__()
        self.num_vertices = num_vertices
        self.pool = PMemPool(max(1 << 20, expected_edges * 16 + (1 << 20)),
                             profile=profile, name="graphone-pm")
        self.dram = PMemDevice(1 << 20, profile=DRAM, name="graphone-dram")
        self.adj: List[List[int]] = [[] for _ in range(num_vertices)]
        self._since_flush = 0
        self._since_archive = 0
        self.flushes = 0

    # -- updates ------------------------------------------------------------
    def insert_edge(self, src: int, dst: int) -> None:
        self.adj[src].append(dst)
        self._note_mutation()  # analysis reads adj directly
        self._sw_edges += 1
        self._since_flush += 1
        self._since_archive += 1
        if self._since_archive >= ARCHIVE_BATCH:
            self._archive(self._since_archive)
            self._since_archive = 0
        if self._since_flush >= FLUSH_PERIOD:
            self._flush(self._since_flush)
            self._since_flush = 0

    def insert_batch(self, batch: EdgeBatch) -> int:
        """Natural batch path: bulk adjacency extend + boundary-exact
        archive/flush chunks (accounting-identical to the per-edge loop,
        which always archives exactly ``ARCHIVE_BATCH`` and flushes
        exactly ``FLUSH_PERIOD`` edges at a time)."""
        n = len(batch)
        if n == 0:
            return 0
        extend_adjacency(self.adj, batch.src, batch.dst)
        self._note_mutation()
        self._sw_edges += n
        n_arch, self._since_archive = divmod(self._since_archive + n, ARCHIVE_BATCH)
        for _ in range(n_arch):
            self._archive(ARCHIVE_BATCH)
        n_flush, self._since_flush = divmod(self._since_flush + n, FLUSH_PERIOD)
        for _ in range(n_flush):
            self._flush(FLUSH_PERIOD)
        return n

    def _archive(self, n: int) -> None:
        # edge-list append + adjacency-list insert: head lookup + block
        # write, occasionally a block allocation/link — all DRAM.
        self.dram.account_rnd_read(n, 8, bucket="go-archive")  # head lookup
        self.dram.account_rnd_write(n, 4, bucket="go-archive")  # AL write
        self.dram.account_rnd_write(n // AL_BLOCK_EDGES + 1, 8, bucket="go-archive")

    def _flush(self, n: int) -> None:
        """Durable phase: stream the edge-list window to PM."""
        self.pool.device.account_seq_write(n * 16, bucket="go-durable")
        self.pool.device.sfence()
        self.flushes += 1

    def finalize(self) -> None:
        if self._since_archive:
            self._archive(self._since_archive)
            self._since_archive = 0
        if self._since_flush:
            self._flush(self._since_flush)
            self._since_flush = 0

    # -- analysis -------------------------------------------------------------
    def _build_view(self) -> BaseGraphView:
        nv = self.num_vertices
        degree = np.fromiter((len(a) for a in self.adj), dtype=np.int64, count=nv)
        indptr = np.zeros(nv + 1, dtype=np.int64)
        np.cumsum(degree, out=indptr[1:])
        dsts = np.empty(int(indptr[-1]), dtype=np.int32)
        for v, a in enumerate(self.adj):
            if a:
                dsts[indptr[v] : indptr[v + 1]] = a
        geometry = StorageGeometry(
            name="graphone",
            seq_ns_per_byte=costs.DRAM_SEQ_NS_PER_BYTE,  # analysis from DRAM
            edge_bytes=costs.EDGE_BYTES,
            # block chains: one DRAM line per 16-edge block + head lookup
            scan_rnd_per_vertex=float(np.mean(degree / AL_BLOCK_EDGES + 1.0)),
            scan_rnd_ns=costs.DRAM_RND_NS,
            # BFS touches a vertex's first block(s) only; full-coverage
            # frontier reads (BC's backward pass) chase one DRAM line
            # per 16-edge block
            frontier_rnd_per_vertex=1.2,
            frontier_rnd_ns=costs.DRAM_RND_NS,
            chain_rnd_per_edge=1.0 / AL_BLOCK_EDGES,
            chain_rnd_ns=costs.DRAM_RND_NS,
        )
        return CSRArraysView(indptr, dsts, geometry)

    def _devices(self):
        return (self.pool.device, self.dram)


__all__ = ["GraphOneFD", "AL_BLOCK_EDGES", "FLUSH_PERIOD"]
