"""LLAMA: multi-versioned CSR with batched snapshots (paper §4.1, [42]).

Updates buffer in a DRAM delta map; every ``batch_edges`` inserts (the
paper snapshots each 1% of the graph, 90 snapshots after warm-up) a new
immutable snapshot is written to PM: the batch's edges as per-vertex
*fragments* plus a copy-on-write **vertex table** of |V| entries — the
O(|V|)-per-snapshot cost that makes LLAMA's insert throughput collapse
on vertex-heavy graphs (CitPatents in Table 3).  Every ``flatten_every``
snapshots LLAMA coalesces each vertex's fragments into one (the
multiversion arrays' periodic flattening), bounding chain lengths.

Analysis reads the *latest snapshot only*: the pending delta is
invisible, so LLAMA's analysis can miss up to one batch of edges —
the staleness the paper calls out.  Scans stream fragments in snapshot
order (prefetch-friendly); frontier reads chase each touched vertex's
fragment chain at random-read cost, which is why LLAMA loses worst on
BFS/BC (Fig. 8).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..analysis import costs
from ..analysis.view import BaseGraphView, CSRArraysView, StorageGeometry
from ..core.batch import EdgeBatch
from ..pmem.device import PMemDevice
from ..pmem.latency import DRAM, OPTANE_ADR, LatencyModel
from ..pmem.pool import PMemPool
from .interfaces import DynamicGraphSystem

#: prefetch discount on fragment-boundary stalls during sequential scans.
_SCAN_FRAG_DISCOUNT = 0.35


class LLAMA(DynamicGraphSystem):
    """Multi-versioned CSR snapshots on PM."""

    name = "llama"
    #: snapshot creation is single-threaded in LLAMA's writer (Table 3:
    #: ~1.3x speedup at 16 threads).
    insert_serial_fraction = 0.72
    #: delta-map management + snapshot bookkeeping per edge, calibrated
    #: to Fig. 6 Orkut (1.84 MEPS) after substrate costs.
    sw_overhead_ns = 430.0

    def __init__(
        self,
        num_vertices: int,
        expected_edges: int,
        batch_edges: int | None = None,
        flatten_every: int = 8,
        profile: LatencyModel = OPTANE_ADR,
    ):
        super().__init__()
        self.num_vertices = num_vertices
        self.batch_edges = batch_edges or max(1, expected_edges // 100)
        self.flatten_every = flatten_every
        pool_bytes = expected_edges * 4 * 4 + num_vertices * 8 * 8 + (1 << 20)
        self.pool = PMemPool(pool_bytes, profile=profile, name="llama")
        self.dram = PMemDevice(1 << 20, profile=DRAM, name="llama-dram")

        self._delta: List[tuple] = []
        self._frags: Dict[int, List[np.ndarray]] = {}
        self._degree = np.zeros(num_vertices, dtype=np.int64)  # snapshotted degree
        self.n_snapshots = 0

    # -- updates ------------------------------------------------------------
    def insert_edge(self, src: int, dst: int) -> None:
        self._delta.append((src, dst))
        self._sw_edges += 1
        if len(self._delta) >= self.batch_edges:
            self._create_snapshot()

    def insert_batch(self, batch: EdgeBatch) -> int:
        """Natural batch path: fill the delta map to each snapshot
        boundary, snapshotting exactly ``batch_edges`` at a time — the
        same delta contents and flatten cadence as the per-edge loop."""
        n = len(batch)
        if n == 0:
            return 0
        self._sw_edges += n
        src_l, dst_l = batch.src.tolist(), batch.dst.tolist()
        pos = 0
        while pos < n:
            take = min(self.batch_edges - len(self._delta), n - pos)
            self._delta.extend(zip(src_l[pos : pos + take], dst_l[pos : pos + take]))
            pos += take
            if len(self._delta) >= self.batch_edges:
                self._create_snapshot()
        return n

    def finalize(self) -> None:
        """Snapshot any pending delta so analysis sees the full graph."""
        if self._delta:
            self._create_snapshot()

    def _create_snapshot(self) -> None:
        edges = np.asarray(self._delta, dtype=np.int64)
        self._delta.clear()
        self.n_snapshots += 1
        # Analysis sees snapshots only, so the view epoch advances here
        # (not per insert) — preserving LLAMA's analysis-staleness
        # semantics: views between snapshots reuse the last one.
        self._note_mutation()
        # group the batch by source: per-vertex fragments, written
        # sequentially (one streaming store for the whole delta)
        order = np.argsort(edges[:, 0], kind="stable")
        srcs = edges[order, 0]
        dsts = edges[order, 1].astype(np.int32)
        bounds = np.flatnonzero(np.diff(srcs)) + 1
        starts = np.concatenate([[0], bounds])
        ends = np.concatenate([bounds, [len(srcs)]])
        for a, b in zip(starts, ends):
            v = int(srcs[a])
            self._frags.setdefault(v, []).append(dsts[a:b])
            self._degree[v] += b - a
        self.pool.device.account_seq_write(len(srcs) * 4, bucket="llama-frags")
        # copy-on-write vertex table: the O(|V|) per-snapshot cost
        self.dram.account_rnd_read(self.num_vertices, 16, bucket="llama-table")
        self.pool.device.account_seq_write(self.num_vertices * 8, bucket="llama-table")
        if self.n_snapshots % self.flatten_every == 0:
            self._flatten()

    def _flatten(self) -> None:
        """Coalesce every vertex's fragments into one (bounds chain length)."""
        nbytes = 0
        for v, frags in self._frags.items():
            if len(frags) > 1:
                merged = np.concatenate(frags)
                self._frags[v] = [merged]
                nbytes += merged.size * 4
        if nbytes:
            self.pool.device.account_seq_read(nbytes, bucket="llama-flatten")
            self.pool.device.account_seq_write(nbytes, bucket="llama-flatten")

    # -- analysis -------------------------------------------------------------
    def _build_view(self) -> BaseGraphView:
        nv = self.num_vertices
        indptr = np.zeros(nv + 1, dtype=np.int64)
        np.cumsum(self._degree, out=indptr[1:])
        dsts = np.empty(int(indptr[-1]), dtype=np.int32)
        total_frags = 0
        for v, frags in self._frags.items():
            pos = indptr[v]
            for f in frags:
                dsts[pos : pos + f.size] = f
                pos += f.size
            total_frags += len(frags)
        touched = max(1, len(self._frags))
        geometry = StorageGeometry(
            name="llama",
            edge_bytes=costs.EDGE_BYTES,
            # snapshot-ordered scans prefetch well across fragments
            scan_rnd_per_vertex=total_frags / nv * _SCAN_FRAG_DISCOUNT + 1.0 * _SCAN_FRAG_DISCOUNT,
            scan_rnd_ns=costs.PM_RND_NS,
            # frontier reads chase the whole chain + the version table,
            # and every edge read passes the multi-version indirection
            # (the BC catastrophe of Fig. 8)
            frontier_rnd_per_vertex=0.75 * total_frags / touched + 1.0,
            frontier_rnd_ns=costs.PM_RND_NS,
            chain_rnd_per_edge=0.35,
            chain_rnd_ns=costs.PM_RND_NS,
        )
        return CSRArraysView(indptr, dsts, geometry)

    def _devices(self):
        return (self.pool.device, self.dram)


__all__ = ["LLAMA"]
