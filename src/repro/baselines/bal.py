"""Blocked Adjacency List on persistent memory (paper §4.1).

Per-vertex chains of fixed 256-byte blocks (one XPLine: an 8-byte next
pointer + up to 62 4-byte edges).  Appends are one small persistent
random write; growing a chain allocates and links a new block under a
PMDK transaction — the journaling the paper blames for BAL losing to
DGAP on insertions "in many cases" despite its append-friendly shape.
The head-pointer table lives on PM (it's the recovery root); tail
cursors are DRAM.

Analysis pays the classic pointer-chasing tax: one random PM line per
block plus padding bytes — the Fig. 7 "poor graph analysis" extreme.
Locking is vertex-grained (finer than DGAP's sections), which is why
the paper sees BAL scale slightly better with many writer threads
(§4.2.1); we model that as a near-zero serial fraction.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..analysis.view import BaseGraphView, CSRArraysView, StorageGeometry
from ..analysis import costs
from ..errors import VertexRangeError
from ..pmem.alloc import FreeListAllocator
from ..pmem.latency import OPTANE_ADR, LatencyModel
from ..pmem.pool import PMemPool
from ..pmem.tx import TransactionManager
from .interfaces import DynamicGraphSystem

BLOCK_BYTES = 256
BLOCK_EDGES = (BLOCK_BYTES - 8) // 4  # 62


class BlockedAdjacencyList(DynamicGraphSystem):
    """Per-vertex block chains on PM."""

    name = "bal"
    insert_serial_fraction = 0.015  # vertex-grained locks: near-perfect scaling
    #: small residual software path (vertex lookup, tail bookkeeping);
    #: the substrate covers the persistence costs.
    sw_overhead_ns = 25.0

    def __init__(
        self,
        num_vertices: int,
        expected_edges: int,
        profile: LatencyModel = OPTANE_ADR,
    ):
        super().__init__()
        self.num_vertices = num_vertices
        blocks = expected_edges // BLOCK_EDGES + num_vertices + 16
        pool_bytes = blocks * BLOCK_BYTES * 2 + num_vertices * 8 + (1 << 20)
        self.pool = PMemPool(pool_bytes, profile=profile, name="bal")
        self.heads = self.pool.alloc_array("heads", np.int64, num_vertices, initial=0)
        self.txm = TransactionManager(self.pool, capacity=4096, name="bal-journal")
        self.blocks = FreeListAllocator(self.pool.allocator, BLOCK_BYTES)

        # DRAM bookkeeping
        self.tail_off = np.full(num_vertices, -1, dtype=np.int64)
        self.tail_count = np.zeros(num_vertices, dtype=np.int64)
        self.degree = np.zeros(num_vertices, dtype=np.int64)
        self.block_lists: List[List[int]] = [[] for _ in range(num_vertices)]

    # -- updates ------------------------------------------------------------
    def insert_edge(self, src: int, dst: int) -> None:
        if not (0 <= src < self.num_vertices and 0 <= dst < self.num_vertices):
            raise VertexRangeError(f"edge ({src}, {dst}) outside [0, {self.num_vertices})")
        dev = self.pool.device
        tail = int(self.tail_off[src])
        cnt = int(self.tail_count[src])
        if tail < 0 or cnt == BLOCK_EDGES:
            # Grow the chain: journaled allocation + link (the expensive path).
            with self.txm.tx() as t:
                off = self.blocks.alloc()
                if tail < 0:
                    t.add_region(self.heads, src, 1)
                    self.heads.write(src, off + 1, payload=0, persist=True)
                else:
                    t.add(tail, 8)  # previous block's next pointer
                    dev.store(tail, np.int64(off + 1).tobytes(), payload=0)
                    dev.persist(tail, 8)
            self.block_lists[src].append(off)
            self.tail_off[src] = tail = off
            self.tail_count[src] = cnt = 0
        pos = tail + 8 + cnt * 4
        dev.store(pos, np.int32(dst).tobytes(), payload=4)
        dev.persist(pos, 4)
        self.tail_count[src] = cnt + 1
        self.degree[src] += 1
        self._note_mutation()
        self._sw_edges += 1

    # -- analysis -------------------------------------------------------------
    def _build_view(self) -> BaseGraphView:
        nv = self.num_vertices
        indptr = np.zeros(nv + 1, dtype=np.int64)
        np.cumsum(self.degree, out=indptr[1:])
        dsts = np.empty(int(indptr[-1]), dtype=np.int32)
        buf = self.pool.device.buf
        pos = 0
        for v in range(nv):
            remaining = int(self.degree[v])
            for off in self.block_lists[v]:
                take = min(remaining, BLOCK_EDGES)
                vals = buf[off + 8 : off + 8 + take * 4].view(np.int32)
                dsts[pos : pos + take] = vals
                pos += take
                remaining -= take
        total_blocks = sum(len(b) for b in self.block_lists)
        used_edges = max(1, int(indptr[-1]))
        geometry = StorageGeometry(
            name="bal",
            # whole blocks are read: padding + header bytes per edge
            edge_bytes=total_blocks * BLOCK_BYTES / used_edges,
            # pointer chase: one random PM line per block; allocation
            # order makes consecutive blocks partially prefetchable
            # during full scans
            scan_rnd_per_vertex=0.6 * total_blocks / nv,
            scan_rnd_ns=costs.PM_RND_NS,
            # head-table lookup + the block chain itself
            frontier_rnd_per_vertex=1.0
            + max(1.0, total_blocks / max(1, np.count_nonzero(self.degree))),
            frontier_rnd_ns=costs.PM_RND_NS,
        )
        return CSRArraysView(indptr, dsts, geometry)

    def _devices(self):
        return (self.pool.device,)


__all__ = ["BlockedAdjacencyList", "BLOCK_BYTES", "BLOCK_EDGES"]
