"""XPGraph: XPLine-friendly PM graph store (paper §4.1, [65]).

XPGraph keeps *both* halves on PM: a circular edge log absorbing new
edges with sequential 256 B-aligned (XPLine-friendly) writes, and a PM
adjacency list filled by *archiving* — batched moves from the log into
per-vertex blocks through a DRAM batch cache.  The archiving threshold
(batch size) is its central knob (Fig. 5): larger batches group more
edges per vertex per flush, turning random XPLine writes into fewer,
fuller ones.  The paper picks 2^10 for fairness (analysis can then lag
the log by up to 2^10 edges).

The default 8 GB edge log gives the Table 3 anomaly: graphs whose whole
edge stream fits (Orkut/LiveJournal/CitPatents real sizes <= 512 M
edges at 16 B) never archive during ingestion, so XPGraph looks
exceptionally fast at high thread counts — while billion-edge graphs
are forced to archive and DGAP wins by 12-21%.  The proxy scales the
log capacity with the dataset (``DatasetSpec.real_fits_xpgraph_log``).

Analysis copies the adjacency list into DRAM and runs there (as
GraphOne does), paying a per-edge PM transfer on top of DRAM
pointer-chasing — Fig. 7's XPGraph column.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..analysis import costs
from ..analysis.view import BaseGraphView, CSRArraysView, StorageGeometry
from ..core.batch import EdgeBatch, extend_adjacency
from ..pmem.device import PMemDevice
from ..pmem.latency import DRAM, OPTANE_ADR, LatencyModel
from ..pmem.pool import PMemPool
from .interfaces import DynamicGraphSystem

AL_BLOCK_EDGES = 16
DEFAULT_ARCHIVE_THRESHOLD = 1 << 10


class XPGraph(DynamicGraphSystem):
    """PM edge log + PM adjacency list with DRAM batch cache."""

    name = "xpgraph"
    #: log management + cache bookkeeping per edge, calibrated to Fig. 6
    #: Orkut (1.86 MEPS) after substrate costs.
    sw_overhead_ns = 170.0

    def __init__(
        self,
        num_vertices: int,
        expected_edges: int,
        archive_threshold: int = DEFAULT_ARCHIVE_THRESHOLD,
        log_capacity_edges: int | None = 0,
        profile: LatencyModel = OPTANE_ADR,
    ):
        super().__init__()
        self.num_vertices = num_vertices
        self.archive_threshold = archive_threshold
        #: edges the circular log can hold before archiving kicks in.
        #: 0 (default) = archive every threshold batch; None = the whole
        #: stream fits the 8 GB log and archiving never activates (the
        #: paper's Table 3 small-graph anomaly).
        self.log_capacity_edges = log_capacity_edges
        self.pool = PMemPool(max(1 << 20, expected_edges * 24 + (1 << 20)),
                             profile=profile, name="xpgraph-pm")
        self.dram = PMemDevice(1 << 20, profile=DRAM, name="xpgraph-dram")

        self.adj: List[List[int]] = [[] for _ in range(num_vertices)]
        self._pending: List[tuple] = []
        self._log_fill = 0
        self.n_archives = 0
        self.edges_archived = 0

    # -- updates ------------------------------------------------------------
    def insert_edge(self, src: int, dst: int) -> None:
        # functional state goes straight to the adjacency lists; the
        # pending list models what still sits only in the edge log.
        self.adj[src].append(dst)
        self._note_mutation()  # analysis reads adj directly
        self._pending.append((src, dst))
        self._sw_edges += 1
        self._log_fill += 1
        if len(self._pending) >= self.archive_threshold:
            if self.log_capacity_edges is not None and self._log_fill > self.log_capacity_edges:
                self._archive()
            else:
                # the stream (still) fits the circular log: archiving is
                # not activated (the paper's small-graph anomaly)
                self._account_log_append(len(self._pending))
                self._pending.clear()

    def insert_batch(self, batch: EdgeBatch) -> int:
        """Natural batch path: bulk adjacency extend, then feed the
        pending edge log in archive-threshold slices — same log-fill
        boundaries and archive batches as the per-edge loop."""
        n = len(batch)
        if n == 0:
            return 0
        extend_adjacency(self.adj, batch.src, batch.dst)
        self._note_mutation()
        self._sw_edges += n
        src_l, dst_l = batch.src.tolist(), batch.dst.tolist()
        pos = 0
        while pos < n:
            take = min(self.archive_threshold - len(self._pending), n - pos)
            self._pending.extend(zip(src_l[pos : pos + take], dst_l[pos : pos + take]))
            self._log_fill += take
            pos += take
            if len(self._pending) >= self.archive_threshold:
                if (
                    self.log_capacity_edges is not None
                    and self._log_fill > self.log_capacity_edges
                ):
                    self._archive()
                else:
                    self._account_log_append(len(self._pending))
                    self._pending.clear()
        return n

    def _account_log_append(self, n: int) -> None:
        """Sequential XPLine-friendly edge-log appends (16 B per edge)."""
        self.pool.device.account_seq_write(n * 16, bucket="xp-log")
        self.pool.device.sfence()

    def _archive(self) -> None:
        """Move one batch from the edge log into the PM adjacency list."""
        batch = self._pending
        self._pending = []
        self._account_log_append(len(batch))
        srcs = np.asarray([e[0] for e in batch], dtype=np.int64)
        distinct = np.unique(srcs).size
        # one XPLine-granular PM write per touched vertex's cache block,
        # plus DRAM batch-cache traffic per edge
        self.pool.device.account_rnd_write(distinct, 64, bucket="xp-archive")
        self.dram.account_rnd_write(len(batch), 4, bucket="xp-cache")
        self.n_archives += 1
        self.edges_archived += len(batch)

    def finalize(self) -> None:
        if self._pending:
            if self.log_capacity_edges is not None and self._log_fill > self.log_capacity_edges:
                self._archive()
            else:
                # remaining edges stay in the (fitting) circular log
                self._account_log_append(len(self._pending))
                self._pending.clear()

    @property
    def insert_serial_fraction(self) -> float:  # type: ignore[override]
        # Archiving serializes; pure log appends scale almost linearly.
        return 0.30 if self.n_archives else 0.05

    # -- analysis -------------------------------------------------------------
    def _build_view(self) -> BaseGraphView:
        nv = self.num_vertices
        degree = np.fromiter((len(a) for a in self.adj), dtype=np.int64, count=nv)
        indptr = np.zeros(nv + 1, dtype=np.int64)
        np.cumsum(degree, out=indptr[1:])
        dsts = np.empty(int(indptr[-1]), dtype=np.int32)
        for v, a in enumerate(self.adj):
            if a:
                dsts[indptr[v] : indptr[v + 1]] = a
        geometry = StorageGeometry(
            name="xpgraph",
            # per-iteration PM transfer of the adjacency list ...
            seq_ns_per_byte=costs.PM_SEQ_NS_PER_BYTE,
            edge_bytes=costs.EDGE_BYTES,
            # ... plus DRAM pointer chasing once cached
            scan_rnd_per_vertex=float(np.mean(degree / AL_BLOCK_EDGES + 1.0)),
            scan_rnd_ns=costs.DRAM_RND_NS,
            frontier_rnd_per_vertex=2.2,
            frontier_rnd_ns=costs.DRAM_RND_NS,
            chain_rnd_per_edge=1.0 / AL_BLOCK_EDGES,
            chain_rnd_ns=costs.DRAM_RND_NS,
        )
        return CSRArraysView(indptr, dsts, geometry)

    def _devices(self):
        return (self.pool.device, self.dram)


__all__ = ["XPGraph", "DEFAULT_ARCHIVE_THRESHOLD"]
