"""PMDK-style memory pool: named roots + allocation over one device.

Layout::

    [0, 64)        magic + format version
    [64, 576)      64 x u64 root slots (failure-atomic 8-byte values for
                   flags and pointers, e.g. DGAP's NORMAL_SHUTDOWN flag)
    [576, 584)     bump-allocator cursor
    [4096, ...)    allocations

Named array roots (``alloc_array``/``get_array``) keep their
(offset, dtype, count) directory in the pool object.  A *crash* in this
simulator reverts device bytes but not Python objects, so the directory
survives exactly as PMDK's pool metadata would (PMDK journals its own
metadata); "reopening after a crash" means calling ``get_array`` /
``read_root`` on the same pool and rebuilding everything else from the
bytes, which is what the recovery tests do.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import PoolLayoutError
from .alloc import BumpAllocator, Region
from .constants import CACHE_LINE
from .crash import CrashInjector
from .device import PMemDevice
from .faults import FaultPolicy
from .latency import LatencyModel, OPTANE_ADR

_MAGIC = 0x44474150  # "DGAP"
_N_ROOT_SLOTS = 64
_ROOTS_OFF = 64
_CURSOR_OFF = _ROOTS_OFF + _N_ROOT_SLOTS * 8
_DATA_OFF = 4096


class PMemPool:
    """One pool over one simulated device."""

    def __init__(
        self,
        size: int,
        profile: LatencyModel = OPTANE_ADR,
        name: str = "pool",
        injector: Optional[CrashInjector] = None,
        device: Optional[PMemDevice] = None,
        faults: Optional[FaultPolicy] = None,
    ):
        self.device = device or PMemDevice(
            size, profile=profile, name=name, injector=injector, faults=faults
        )
        self.name = name
        self._directory: Dict[str, Tuple[int, np.dtype, int]] = {}

        magic = int(self.device.buf[0:8].view(np.uint64)[0])
        if magic != _MAGIC:
            self.device.ntstore(0, np.uint64(_MAGIC).tobytes(), payload=0)
            self.device.sfence()
        self.allocator = BumpAllocator(self.device, _DATA_OFF, self.device.size, _CURSOR_OFF)

    # -- stats passthrough -------------------------------------------------
    @property
    def stats(self):
        return self.device.stats

    @property
    def profile(self):
        return self.device.profile

    # -- root slots (8-byte failure-atomic values) ---------------------------
    def _root_off(self, slot: int) -> int:
        if not 0 <= slot < _N_ROOT_SLOTS:
            raise PoolLayoutError(f"root slot {slot} out of range [0, {_N_ROOT_SLOTS})")
        return _ROOTS_OFF + slot * 8

    def read_root(self, slot: int) -> int:
        off = self._root_off(slot)
        return int(self.device.media[off : off + 8].view(np.uint64)[0])

    def write_root(self, slot: int, value: int) -> None:
        """Failure-atomic 8-byte root update (store + clwb + sfence)."""
        off = self._root_off(slot)
        self.device.store(off, np.uint64(value).tobytes(), payload=0)
        self.device.persist(off, 8)

    # -- allocation ------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = CACHE_LINE) -> int:
        return self.allocator.alloc(nbytes, align)

    def alloc_array(self, name: str, dtype, count: int, initial=None) -> Region:
        """Allocate and register a named typed array."""
        if name in self._directory:
            raise PoolLayoutError(f"root {name!r} already exists in pool {self.name!r}")
        dt = np.dtype(dtype)
        off = self.alloc(max(count * dt.itemsize, 1), align=max(CACHE_LINE, dt.itemsize))
        self._directory[name] = (off, dt, count)
        region = Region(self.device, off, dt, count, name=name)
        if initial is not None:
            region.fill(initial)
        return region

    def get_array(self, name: str) -> Region:
        """Reopen a previously allocated named array."""
        try:
            off, dt, count = self._directory[name]
        except KeyError:
            raise PoolLayoutError(f"root {name!r} not found in pool {self.name!r}") from None
        return Region(self.device, off, dt, count, name=name)

    def has_array(self, name: str) -> bool:
        return name in self._directory

    def drop_array(self, name: str) -> None:
        """Forget a named array (space is not reclaimed — bump allocator)."""
        self._directory.pop(name, None)

    def rename_array(self, old: str, new: str) -> None:
        if new in self._directory:
            raise PoolLayoutError(f"root {new!r} already exists")
        self._directory[new] = self._directory.pop(old)

    def region_of(self, off: int) -> Optional[Tuple[str, int, int]]:
        """Name the allocated region containing byte ``off``.

        Returns ``(name, start, end)`` from the pool directory, or None
        for unallocated/metadata space.  Used by crash recovery to map a
        poisoned media range to the structure it damages.
        """
        for name, (start, dt, count) in self._directory.items():
            end = start + dt.itemsize * count
            if start <= off < end:
                return name, start, end
        return None

    # -- failure ------------------------------------------------------------
    def crash(self) -> None:
        """Power-fail the underlying device (see ``PMemDevice.crash``)."""
        self.device.crash()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PMemPool({self.name!r}, size={self.device.size}, roots={sorted(self._directory)})"


__all__ = ["PMemPool"]
