"""Typed regions and a small allocator over a :class:`PMemDevice`.

A :class:`Region` is the unit every higher layer works with: a typed
NumPy view over a device range whose *writes* go through the device (so
dirty-line tracking, crash injection and cost accounting all see them)
while *reads* are plain NumPy views — free and fast, with bulk read
costs accounted explicitly by the reader (see ``device.py`` docs).

The :class:`FreeListAllocator` provides PMDK-style fixed-class block
allocation for the baselines that allocate dynamically (e.g. the
blocked-adjacency-list's edge blocks).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import OutOfPMemError, PMemError
from .constants import CACHE_LINE
from .device import PMemDevice


class Region:
    """A typed, bounds-checked window of a device.

    Reads go straight to a NumPy view (``region.view``); writes go
    through :meth:`write` / :meth:`write_slice` so the device can track
    dirty lines and charge the latency model.
    """

    __slots__ = ("device", "offset", "dtype", "count", "name", "itemsize", "_view")

    def __init__(self, device: PMemDevice, offset: int, dtype, count: int, name: str = ""):
        self.device = device
        self.offset = int(offset)
        self.dtype = np.dtype(dtype)
        self.count = int(count)
        self.name = name
        self.itemsize = self.dtype.itemsize
        if offset % self.itemsize:
            raise PMemError(f"region {name!r} offset {offset} not aligned to {self.dtype}")
        end = self.offset + self.nbytes
        if end > device.size:
            raise PMemError(f"region {name!r} [{offset}, {end}) exceeds device size {device.size}")
        view = device.buf[self.offset : end].view(self.dtype)
        view.flags.writeable = False
        self._view = view

    # -- geometry ---------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self.count * self.itemsize

    @property
    def view(self) -> np.ndarray:
        """Read-only typed view of current contents."""
        return self._view

    def byte_offset(self, idx: int) -> int:
        return self.offset + idx * self.itemsize

    def __len__(self) -> int:
        return self.count

    def _check_idx(self, start: int, n: int = 1) -> None:
        if start < 0 or start + n > self.count:
            raise PMemError(
                f"region {self.name!r} index [{start}, {start + n}) out of range [0, {self.count})"
            )

    # -- reads --------------------------------------------------------------
    def read(self, idx: int):
        """Read one element (scalar). No cost accounted — see module docs."""
        self._check_idx(idx)
        return self._view[idx]

    def read_slice(self, start: int, n: int) -> np.ndarray:
        self._check_idx(start, n)
        return self._view[start : start + n]

    def load_slice(self, start: int, n: int, bucket: Optional[str] = None) -> np.ndarray:
        """Accounted bulk sequential load of ``n`` elements.

        Like :meth:`read_slice` but routed through the device's
        :meth:`~repro.pmem.device.PMemDevice.load_batch`, so the read is
        poison-checked, charged as one sequential stream, and visible to
        the device-op trace hook.
        """
        self._check_idx(start, n)
        raw = self.device.load_batch(self.byte_offset(start), n * self.itemsize, bucket=bucket)
        return raw.view(self.dtype)

    def gather(self, idxs, per_unit: int = 1, bucket: Optional[str] = None) -> np.ndarray:
        """Accounted gather of ``per_unit`` consecutive elements per index.

        Routed through :meth:`~repro.pmem.device.PMemDevice.gather_span`:
        each unit is charged as one independent random read of
        ``per_unit * itemsize`` bytes.  Returns an ``(n, per_unit)``
        array in this region's dtype.
        """
        idxs = np.asarray(idxs, dtype=np.int64)
        n = int(idxs.size)
        if n == 0:
            return np.empty((0, per_unit), dtype=self.dtype)
        if int(idxs.min()) < 0 or int(idxs.max()) + per_unit > self.count:
            raise PMemError(
                f"region {self.name!r} gather outside [0, {self.count})"
            )
        offs = self.offset + idxs * self.itemsize
        raw = self.device.gather_span(offs, per_unit * self.itemsize, bucket=bucket)
        return raw.view(self.dtype).reshape(n, per_unit)

    # -- writes ---------------------------------------------------------------
    def write(self, idx: int, value, payload: Optional[int] = None, persist: bool = False) -> None:
        """Store one element; optionally clwb+sfence it immediately."""
        self._check_idx(idx)
        data = np.asarray(value, dtype=self.dtype).tobytes()
        off = self.byte_offset(idx)
        self.device.store(off, data, payload=payload)
        if persist:
            self.device.persist(off, self.itemsize)

    def write_slice(
        self, start: int, arr, payload: Optional[int] = None, persist: bool = False
    ) -> None:
        """Store a contiguous run of elements."""
        a = np.ascontiguousarray(arr, dtype=self.dtype)
        self._check_idx(start, a.size)
        off = self.byte_offset(start)
        self.device.store(off, a.view(np.uint8), payload=payload)
        if persist:
            self.device.persist(off, a.size * self.itemsize)

    def write_batch(
        self, idxs, values, payload_per_unit: Optional[int] = None, persist: bool = True
    ) -> None:
        """Batched unit writes at (possibly scattered) element indices.

        ``values`` has one row per index: shape ``(n,)`` writes one
        element per unit, shape ``(n, k)`` writes ``k`` consecutive
        elements starting at each index.  Counter-equivalent to the
        per-unit ``write``/``write_slice(..., persist=True)`` loop.
        """
        idxs = np.asarray(idxs, dtype=np.int64)
        vals = np.ascontiguousarray(values, dtype=self.dtype)
        n = int(idxs.size)
        if n == 0:
            return
        per_unit = 1 if vals.ndim == 1 else int(vals.shape[1])
        if int(idxs.min()) < 0 or int(idxs.max()) + per_unit > self.count:
            raise PMemError(
                f"region {self.name!r} batch write outside [0, {self.count})"
            )
        offs = self.offset + idxs * self.itemsize
        if persist:
            self.device.persist_batch(offs, vals, payload_per_unit)
        else:
            self.device.store_batch(offs, vals, payload_per_unit)

    def nt_write_slice(self, start: int, arr, payload: Optional[int] = None) -> None:
        """Non-temporal streaming store of a contiguous run (bulk loads)."""
        a = np.ascontiguousarray(arr, dtype=self.dtype)
        self._check_idx(start, a.size)
        self.device.ntstore(self.byte_offset(start), a.view(np.uint8), payload=payload)

    def fill(self, value, persist: bool = True) -> None:
        """Initialize the whole region with ``value`` via a streaming store."""
        a = np.full(self.count, value, dtype=self.dtype)
        self.device.ntstore(self.offset, a.view(np.uint8), payload=0)
        if persist:
            self.device.sfence()

    # -- persistence -----------------------------------------------------------
    def clwb(self, start: int, n: int = 1) -> None:
        self._check_idx(start, n)
        self.device.clwb(self.byte_offset(start), n * self.itemsize)

    def persist(self, start: int, n: int = 1) -> None:
        self._check_idx(start, n)
        self.device.persist(self.byte_offset(start), n * self.itemsize)

    def subregion(self, start: int, n: int, name: str = "") -> "Region":
        """A region aliasing elements ``[start, start+n)`` of this one."""
        self._check_idx(start, n)
        return Region(
            self.device, self.byte_offset(start), self.dtype, n, name or f"{self.name}[{start}:{start+n}]"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Region({self.name!r}, off={self.offset}, dtype={self.dtype}, count={self.count})"


class BumpAllocator:
    """Monotonic allocator over ``[base, limit)`` of a device.

    The bump pointer is persisted at a fixed 8-byte slot so allocation
    survives crashes (as PMDK's heap metadata does).
    """

    def __init__(self, device: PMemDevice, base: int, limit: int, cursor_off: int):
        self.device = device
        self.base = base
        self.limit = limit
        self.cursor_off = cursor_off
        cur = int(device.buf[cursor_off : cursor_off + 8].view(np.uint64)[0])
        if cur < base or cur > limit:
            cur = base
            self._persist_cursor(cur)
        self.cursor = cur

    def _persist_cursor(self, value: int) -> None:
        self.device.store(self.cursor_off, np.uint64(value).tobytes(), payload=0)
        self.device.persist(self.cursor_off, 8)
        self.cursor = value

    def alloc(self, nbytes: int, align: int = CACHE_LINE) -> int:
        """Reserve ``nbytes`` and return its device offset."""
        off = (self.cursor + align - 1) // align * align
        if off + nbytes > self.limit:
            raise OutOfPMemError(
                f"allocation of {nbytes}B exceeds pool (cursor={self.cursor}, limit={self.limit})"
            )
        self._persist_cursor(off + nbytes)
        return off

    @property
    def remaining(self) -> int:
        return self.limit - self.cursor


class FreeListAllocator:
    """Fixed-size block allocator with a free list, PMDK-object style.

    The free list itself is volatile (rebuilt by the owner's recovery
    scan, the way the baselines rebuild their block chains); durability
    of *allocation* comes from the bump cursor and from the owner's
    journaling of the linking stores.
    """

    def __init__(self, bump: BumpAllocator, block_bytes: int):
        if block_bytes % CACHE_LINE:
            block_bytes = (block_bytes + CACHE_LINE - 1) // CACHE_LINE * CACHE_LINE
        self.bump = bump
        self.block_bytes = block_bytes
        self._free: list[int] = []
        self.allocated_blocks = 0

    def alloc(self) -> int:
        self.allocated_blocks += 1
        if self._free:
            return self._free.pop()
        return self.bump.alloc(self.block_bytes)

    def free(self, off: int) -> None:
        self.allocated_blocks -= 1
        self._free.append(off)

    @property
    def live_bytes(self) -> int:
        return self.allocated_blocks * self.block_bytes


__all__ = ["Region", "BumpAllocator", "FreeListAllocator"]
