"""Crash injection for persistence testing.

A :class:`CrashInjector` is armed on a device and fires a
:class:`~repro.errors.SimulatedCrash` at a chosen persistence event —
the N-th store, flush or fence — *before* that event takes effect.  The
device then reverts every cache line not yet flushed to media, exactly
like a power failure on an ADR platform, and the exception propagates to
the test, which reopens the structures through their recovery paths.

Deterministic countdown triggers make it possible to sweep *every*
crash point of an operation (see the rebalance crash-consistency tests),
which is the strongest form of the paper's §3.1.4/§3.1.5 claims.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from ..errors import SimulatedCrash

#: Event kinds the injector can observe.
EVENTS = ("store", "flush", "fence", "ntstore")


@dataclass
class CrashPlan:
    """Fire on the ``countdown``-th event of kind ``event`` (1-based).

    ``event=None`` matches any persistence event.
    """

    countdown: int
    event: Optional[str] = None

    def __post_init__(self) -> None:
        if self.countdown < 1:
            raise ValueError("countdown is 1-based and must be >= 1")
        if self.event is not None and self.event not in EVENTS:
            raise ValueError(f"unknown event {self.event!r}; choose from {EVENTS}")


class CrashInjector:
    """Counts persistence events and raises at the planned point.

    The injector never mutates a caller-supplied :class:`CrashPlan`:
    plans are copied on arming and the remaining-events countdown lives
    in the injector, so one plan object can be reused across injectors
    and sweep iterations.
    """

    def __init__(self, plan: Optional[CrashPlan] = None):
        self.plan = replace(plan) if plan is not None else None
        self._remaining = plan.countdown if plan is not None else 0
        self.counts = dict.fromkeys(EVENTS, 0)
        self.fired = False

    # -- arming ----------------------------------------------------------
    def arm(self, countdown: int, event: Optional[str] = None) -> None:
        """(Re)arm: crash at the ``countdown``-th upcoming matching event."""
        self.plan = CrashPlan(countdown, event)
        self._remaining = countdown
        self.fired = False

    def disarm(self) -> None:
        self.plan = None
        self._remaining = 0

    @property
    def remaining(self) -> int:
        """Matching events left before the planned crash (0 when unarmed)."""
        return self._remaining if self.plan is not None and not self.fired else 0

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    def _fire(self, event: str) -> None:
        self.fired = True
        raise SimulatedCrash(
            op=event, op_index=self.counts[event], total_index=self.total_events
        )

    # -- hook called by the device --------------------------------------
    def tick(self, event: str) -> None:
        """Observe one event; raise :class:`SimulatedCrash` if it is the planned one."""
        self.counts[event] += 1
        if self.plan is None or self.fired:
            return
        if self.plan.event is not None and self.plan.event != event:
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._fire(event)

    def tick_many(self, event: str, n: int) -> None:
        """Observe ``n`` back-to-back events of one kind in O(1).

        Equivalent to ``n`` calls to :meth:`tick`.  Batched device
        entry points only take this path when no crash can fire inside
        the run (unarmed, already fired, or a non-matching event kind);
        an armed matching plan falls back to per-event ticking so the
        crash lands on exactly the planned event index.
        """
        if n <= 0:
            return
        if (
            self.plan is None
            or self.fired
            or (self.plan.event is not None and self.plan.event != event)
        ):
            self.counts[event] += n
            return
        if self._remaining > n:
            self._remaining -= n
            self.counts[event] += n
            return
        # The planned event sits inside this run; events past it never
        # happen (the crash propagates), so only count up to it.
        self.counts[event] += self._remaining
        self._remaining = 0
        self._fire(event)


def iter_crash_points(start: int = 1, stop: Optional[int] = None, step: int = 1) -> Iterator[int]:
    """Countdown values for sweeping crash points (open-ended if ``stop`` is None)."""
    if stop is None:
        return itertools.count(start, step)
    return iter(range(start, stop, step))


__all__ = ["CrashPlan", "CrashInjector", "iter_crash_points", "EVENTS"]
