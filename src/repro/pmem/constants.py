"""Hardware geometry constants for the simulated persistent memory.

The numbers mirror Intel Optane DCPMM as described in the DGAP paper
(§2.1) and the characterization studies it cites (Izraelevitz et al.,
Yang et al.):

* CPU cache lines are 64 bytes; ``CLWB``/``CLFLUSHOPT`` operate at this
  granularity.
* The DIMM's internal write-combining buffer (the "XPBuffer") operates
  on 256-byte *XPLines*; flushes of adjacent lines that land in the same
  XPLine are combined into a single media write.
* The failure-atomic store unit is 8 bytes — larger writes may be torn
  by a crash, which is why DGAP needs logs and transactions.
"""

from __future__ import annotations

CACHE_LINE: int = 64
"""Bytes per CPU cache line (flush granularity)."""

XPLINE: int = 256
"""Bytes per Optane internal write-buffer line (media write granularity)."""

ATOMIC_WRITE: int = 8
"""Bytes written atomically with respect to power failure."""

LINES_PER_XPLINE: int = XPLINE // CACHE_LINE

CHUNKS_PER_LINE: int = CACHE_LINE // ATOMIC_WRITE
"""Failure-atomic 8-byte chunks per cache line (torn-store granularity)."""

KIB: int = 1024
MIB: int = 1024 * 1024
GIB: int = 1024 * 1024 * 1024
