"""PMDK-style undo-log transactions.

This reproduces the transaction mechanism the paper measures as "too
expensive" for frequent rebalancing (§2.4.2, Fig. 1b; §3 ④): before a
protected range is modified, its current contents are copied into a
persistent journal; commit invalidates the journal; a crash with a
valid journal rolls the ranges back on recovery.

The two PMDK bottlenecks called out by the paper (citing MOD,
ASPLOS'20) fall out naturally here:

1. *journal allocation cost* — each transaction (re)initializes its
   journal header with persisted stores;
2. *excessive ordering* — every ``add`` persists its backup before the
   caller may touch the range, and commit issues two more persisted
   header updates, so a small transaction pays several fences.

DGAP's per-thread undo log (``repro.core.undo_log``) is the cheaper
special-purpose replacement; the ``No EL&UL`` ablation swaps it back
out for this class.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import SimulatedCrash, TransactionError
from .pool import PMemPool

# Journal header: state (8) | nentries (8)
_ST_IDLE = 0
_ST_ACTIVE = 1
_ST_COMMITTED = 2

_HDR_BYTES = 16
_ENTRY_HDR = 16  # offset (8) | length (8)


class TransactionManager:
    """Owns one persistent journal region inside a pool."""

    def __init__(self, pool: PMemPool, capacity: int = 64 * 1024, name: str = "pmdk-journal"):
        self.pool = pool
        self.capacity = capacity
        if pool.has_array(name):
            self.journal = pool.get_array(name)
            self.capacity = self.journal.count - _HDR_BYTES
        else:
            self.journal = pool.alloc_array(name, np.uint8, _HDR_BYTES + capacity, initial=0)
        lane_name = f"{name}.lane"
        self._lane = (
            pool.get_array(lane_name)
            if pool.has_array(lane_name)
            else pool.alloc_array(lane_name, np.uint64, 8, initial=0)
        )
        self._active: Optional[Transaction] = None

    def _alloc_tick(self) -> None:
        """Model PMDK's per-transaction lane/journal allocation: the
        allocator's persistent metadata is updated (and fenced) before
        the journal can be used — the first of the two bottlenecks the
        paper cites from MOD [21].  Repeated same-line flushes pay the
        in-place penalty, exactly as PMDK's lane headers do."""
        lane = self._lane
        seq = int(lane.view[0]) + 1
        lane.write(0, seq, payload=0)
        lane.write(1, seq, payload=0, persist=True)

    # -- header helpers ------------------------------------------------------
    def _write_hdr(self, state: int, nentries: int) -> None:
        hdr = np.array([state, nentries], dtype=np.uint64)
        self.journal.write_slice(0, hdr.view(np.uint8), payload=0, persist=True)

    def _read_hdr(self) -> Tuple[int, int]:
        hdr = self.journal.view[:_HDR_BYTES].view(np.uint64)
        return int(hdr[0]), int(hdr[1])

    # -- public API ----------------------------------------------------------
    def tx(self) -> "Transaction":
        """Begin a transaction (use as a context manager)."""
        if self._active is not None:
            raise TransactionError("nested transactions are not supported")
        t = Transaction(self)
        self._active = t
        return t

    def recover(self) -> bool:
        """Roll back an interrupted transaction after a crash.

        Returns True if a rollback was performed.  Reads the journal
        from media (what survived), restores every logged range, and
        marks the journal idle.
        """
        state, nentries = self._read_hdr()
        if state == _ST_IDLE:
            return False
        if state == _ST_COMMITTED:
            # Commit record persisted: the transaction logically
            # happened; just retire the journal.
            self._write_hdr(_ST_IDLE, 0)
            return False
        # ACTIVE: undo, newest entries are irrelevant order-wise since
        # ranges are restored to their pre-tx images.
        dev = self.journal.device
        base = self.journal.offset + _HDR_BYTES
        pos = 0
        for _ in range(nentries):
            ehdr = dev.buf[base + pos : base + pos + _ENTRY_HDR].view(np.uint64)
            off, length = int(ehdr[0]), int(ehdr[1])
            data = dev.buf[base + pos + _ENTRY_HDR : base + pos + _ENTRY_HDR + length].copy()
            dev.store(off, data, payload=0)
            dev.persist(off, length)
            pos += _ENTRY_HDR + length
        self._write_hdr(_ST_IDLE, 0)
        return True


class Transaction:
    """One undo-log transaction; always use via ``with manager.tx() as t:``."""

    def __init__(self, mgr: TransactionManager):
        self.mgr = mgr
        self._entries: List[Tuple[int, int]] = []
        self._pos = 0
        self._open = False

    # -- context protocol -----------------------------------------------------
    def __enter__(self) -> "Transaction":
        # Journal (re)initialization — the per-transaction allocation
        # cost the paper complains about.
        self.mgr._alloc_tick()
        self.mgr._write_hdr(_ST_ACTIVE, 0)
        self._open = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._open = False
        self.mgr._active = None
        if exc_type is None:
            self.commit()
            return False
        if issubclass(exc_type, SimulatedCrash):
            # A power failure runs no exception handlers: leave the
            # journal ACTIVE so recovery rolls the ranges back.
            return False
        self.abort()
        return False  # propagate

    # -- logging ---------------------------------------------------------------
    def add(self, off: int, length: int) -> None:
        """Snapshot device range ``[off, off+length)`` before modifying it."""
        if not self._open:
            raise TransactionError("tx_add outside an open transaction")
        need = _ENTRY_HDR + length
        if self._pos + need > self.mgr.capacity:
            raise TransactionError(
                f"journal overflow: {self._pos + need} > {self.mgr.capacity} bytes"
            )
        dev = self.mgr.journal.device
        base = self.mgr.journal.offset + _HDR_BYTES + self._pos
        ehdr = np.array([off, length], dtype=np.uint64)
        dev.store(base, ehdr.view(np.uint8), payload=0)
        dev.store(base + _ENTRY_HDR, dev.buf[off : off + length].copy(), payload=0)
        dev.persist(base, need)  # backup must be durable before the range changes
        self._pos += need
        self._entries.append((off, length))
        self.mgr._write_hdr(_ST_ACTIVE, len(self._entries))

    def add_region(self, region, start: int, count: int) -> None:
        """Convenience: log ``count`` elements of a typed region."""
        self.add(region.byte_offset(start), count * region.itemsize)

    # -- outcomes ---------------------------------------------------------------
    def commit(self) -> None:
        dev = self.mgr.journal.device
        dev.sfence()  # all data stores ordered before the commit record
        self.mgr._write_hdr(_ST_COMMITTED, len(self._entries))
        self.mgr._write_hdr(_ST_IDLE, 0)

    def abort(self) -> None:
        """Explicit rollback (also used on exception exit)."""
        dev = self.mgr.journal.device
        base = self.mgr.journal.offset + _HDR_BYTES
        pos = 0
        for off, length in self._entries:
            data = dev.buf[base + pos + _ENTRY_HDR : base + pos + _ENTRY_HDR + length].copy()
            dev.store(off, data, payload=0)
            dev.persist(off, length)
            pos += _ENTRY_HDR + length
        self.mgr._write_hdr(_ST_IDLE, 0)


__all__ = ["TransactionManager", "Transaction"]
