"""Operation counters and derived metrics for a simulated device.

The counters feed three things:

* the **modeled clock** (``modeled_ns``) used by every benchmark;
* the **write-amplification** metric of Fig. 1(a)/§4.4 — the ratio of
  bytes actually written to the device over useful payload bytes;
* assertions in tests (e.g. "the edge log reduced stored bytes by ~6x").

``payload_bytes`` is declared by callers: when DGAP inserts one 4-byte
edge it declares 4 payload bytes no matter how many bytes the store and
any induced shifting actually wrote.  ``stored_bytes`` counts bytes
passed to ``store``; ``media_bytes`` counts bytes written to the Optane
media at XPLine (256 B) granularity when lines are flushed, with
write-combining for consecutive flushes into the same XPLine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PMemStats:
    """Mutable counter block attached to a :class:`PMemDevice`."""

    # -- stores ----------------------------------------------------------
    stores: int = 0
    stored_bytes: int = 0
    payload_bytes: int = 0

    # -- flushes ---------------------------------------------------------
    flushes: int = 0
    flushed_lines: int = 0
    flushed_bytes: int = 0
    seq_flushes: int = 0
    rnd_flushes: int = 0
    inplace_flushes: int = 0
    media_bytes: int = 0

    # -- fences / ntstores -------------------------------------------------
    fences: int = 0
    ntstores: int = 0
    ntstored_bytes: int = 0

    # -- reads (accounted, not traced) -------------------------------------
    seq_read_bytes: int = 0
    rnd_reads: int = 0

    # -- crash / fault injection -------------------------------------------
    crashes: int = 0
    torn_lines: int = 0
    dropped_pending_lines: int = 0
    poisoned_xplines: int = 0
    media_errors: int = 0

    # -- runtime read faults (opt-in; always zero under DEFAULT_POLICY) ----
    transient_faults: int = 0
    read_retries: int = 0
    runtime_poison_events: int = 0

    # -- modeled time ------------------------------------------------------
    modeled_ns: float = 0.0

    #: free-form buckets so higher layers can attribute time, e.g.
    #: ``{"rebalance": ns, "edge_log": ns}``.
    buckets: Dict[str, float] = field(default_factory=dict)

    def add_bucket(self, name: str, ns: float) -> None:
        self.buckets[name] = self.buckets.get(name, 0.0) + ns

    # -- derived -----------------------------------------------------------
    @property
    def modeled_seconds(self) -> float:
        return self.modeled_ns * 1e-9

    def write_amplification(self) -> float:
        """Bytes handed to ``store`` per useful payload byte.

        This matches the paper's Fig. 1(a) definition ("the ratio of
        actual memory writes vs. the edge size"): shifting k elements to
        make room for one inserted edge writes (k+1) elements for 1
        element of payload.
        """
        if self.payload_bytes == 0:
            return 0.0
        return self.stored_bytes / self.payload_bytes

    def media_write_amplification(self) -> float:
        """Media (XPLine-granular) bytes per payload byte — the device-level view."""
        if self.payload_bytes == 0:
            return 0.0
        return self.media_bytes / self.payload_bytes

    def snapshot(self) -> "PMemStats":
        """A frozen copy, for before/after deltas."""
        cp = PMemStats(**{k: v for k, v in self.__dict__.items() if k != "buckets"})
        cp.buckets = dict(self.buckets)
        return cp

    def delta_since(self, before: "PMemStats") -> "PMemStats":
        """Counters accumulated since ``before`` (a prior :meth:`snapshot`).

        Buckets that did not move are dropped: a bucket key exists for
        every phase the device ever saw, and zero-valued entries would
        otherwise pollute per-phase tables and baseline JSON diffs with
        every historical key.
        """
        d = PMemStats()
        for k, v in self.__dict__.items():
            if k == "buckets":
                continue
            setattr(d, k, v - getattr(before, k))
        d.buckets = {
            k: dv
            for k in set(self.buckets) | set(before.buckets)
            if (dv := self.buckets.get(k, 0.0) - before.buckets.get(k, 0.0)) != 0.0
        }
        return d

    def reset(self) -> None:
        fresh = PMemStats()
        for k, v in fresh.__dict__.items():
            setattr(self, k, v)

    def summary(self) -> str:
        wa = self.write_amplification()
        mwa = self.media_write_amplification()
        return (
            f"stores={self.stores} stored={self.stored_bytes}B payload={self.payload_bytes}B "
            f"WA={wa:.2f} mediaWA={mwa:.2f} flushes={self.flushes} "
            f"(seq={self.seq_flushes} rnd={self.rnd_flushes} "
            f"inplace={self.inplace_flushes}) media={self.media_bytes}B fences={self.fences} "
            f"modeled={self.modeled_seconds * 1e3:.3f}ms"
        )


__all__ = ["PMemStats"]
