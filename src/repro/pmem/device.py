"""Simulated byte-addressable persistent memory device.

The device keeps two images of its contents:

* ``buf`` — what the CPU sees (stores land here immediately, like data
  sitting in the volatile cache hierarchy);
* ``media`` — what survives a power failure.

A *store* marks the covered 64-byte cache lines dirty.  ``clwb`` /
``clflushopt`` copy dirty lines from ``buf`` to ``media``; ``sfence``
orders them (and is where the fence cost is charged).  On
:meth:`crash`, every still-dirty line reverts to its media content —
precisely the ADR failure semantics the DGAP paper programs against
(§2.1.3).  With an eADR profile (``persistent_caches=True``) dirty lines
are inside the power-fail domain and survive instead.  With a volatile
(plain DRAM) profile a crash clears everything.

Every operation accrues modeled nanoseconds from the device's
:class:`~repro.pmem.latency.LatencyModel` and updates the
:class:`~repro.pmem.stats.PMemStats` counters, including:

* sequential/random/in-place flush classification (Fig. 1c);
* XPLine (256 B) write combining for media-byte accounting;
* caller-declared payload bytes for write-amplification (Fig. 1a).

Reads of persistent data by analysis kernels are *accounted* in bulk
(:meth:`account_seq_read` / :meth:`account_rnd_read`) rather than traced
per byte — tracing every load in Python would be prohibitively slow and
adds no fidelity, because read cost depends only on the access pattern,
which the graph views know exactly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Union

import numpy as np

from ..errors import MediaError, PMemError, SimulatedCrash
from .constants import CACHE_LINE, CHUNKS_PER_LINE, LINES_PER_XPLINE, XPLINE
from .crash import CrashInjector
from .faults import DEFAULT_POLICY, FaultPolicy
from .latency import LatencyModel, OPTANE_ADR
from .stats import PMemStats

Buffer = Union[bytes, bytearray, memoryview, np.ndarray]

#: Optional observability hook set by :mod:`repro.obs` while a tracer
#: with ``device_ops=True`` is installed: called as
#: ``TRACE_HOOK(kind, count, nbytes)`` after an op's accounting lands.
#: Module-level and ``None`` by default so untraced runs pay exactly one
#: global load per op; this module must never import ``repro.obs``.
TRACE_HOOK = None

#: Flush spans at or above this many lines take the vectorized
#: sequential-stream path instead of per-line classification.
_BULK_FLUSH_LINES = 16

#: ``_recent_flushes`` (line -> flush-op index) is pruned whenever it
#: exceeds ``_RECENT_FLUSH_SLACK * inplace_window`` entries; only entries
#: within ``inplace_window`` ops can ever classify a flush as in-place,
#: so eviction never changes accounting.
_RECENT_FLUSH_SLACK = 4


class PMemDevice:
    """One simulated DIMM region (or a DRAM region with a volatile profile)."""

    def __init__(
        self,
        size: int,
        profile: LatencyModel = OPTANE_ADR,
        name: str = "pmem0",
        injector: Optional[CrashInjector] = None,
        faults: Optional[FaultPolicy] = None,
    ):
        if size <= 0:
            raise ValueError("device size must be positive")
        # Round capacity up to a whole XPLine.
        size = (size + XPLINE - 1) // XPLINE * XPLINE
        self.size = size
        self.name = name
        self.profile = profile
        self.injector = injector or CrashInjector()
        self.faults = faults or DEFAULT_POLICY
        self.stats = PMemStats()

        self.buf = np.zeros(size, dtype=np.uint8)
        self.media = np.zeros(size, dtype=np.uint8)
        self._dirty: set[int] = set()

        # Persist-reorder state: line -> content captured at flush time,
        # written to media only at the next fence (or probabilistically
        # at a crash).  Populated only when the fault policy enables
        # persist_reorder on an ADR-style (non-volatile, non-eADR)
        # profile; otherwise flushes hit media immediately as before.
        self._reorder = (
            self.faults.persist_reorder
            and not profile.volatile
            and not profile.persistent_caches
        )
        self._pending: dict[int, bytes] = {}

        # Poisoned (uncorrectable) media lines; reads fault until the
        # line is rewritten on media.  Tracked per cache line, planted
        # per XPLine (the DCPMM ECC granularity).
        self._poisoned: set[int] = set()

        # Runtime read-fault hazard (opt-in): one deterministic RNG
        # stream, drawn one uniform per covered cache line in read order,
        # so a bulk read and its per-unit scalar replay see identical
        # faults.  ``None`` under any policy without runtime rates —
        # default-policy read paths take exactly the historical branches.
        self._rt_rng = self.faults.rng_runtime() if self.faults.runtime_active else None
        self._rt_suspend = 0

        #: how many crashes this device has suffered (fault-rng stream id)
        self.crash_ordinal = 0

        # Flush-stream classification state.
        self._last_flush_line = -(10**9)
        self._last_media_xpline = -(10**9)
        self._flush_op = 0
        self._recent_flushes: dict[int, int] = {}  # line -> flush op index

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_range(self, off: int, n: int) -> None:
        if off < 0 or n < 0 or off + n > self.size:
            raise PMemError(f"access [{off}, {off + n}) outside device of size {self.size}")

    def _charge(self, ns: float) -> None:
        self.stats.modeled_ns += ns

    def _tick(self, event: str) -> None:
        """Feed the crash injector; on a planned crash, lose volatile state first."""
        try:
            self.injector.tick(event)
        except SimulatedCrash:
            self.crash()
            raise

    @property
    def recent_flush_capacity(self) -> int:
        """Hard bound on ``_recent_flushes`` entries (eviction window)."""
        return max(1, _RECENT_FLUSH_SLACK * self.profile.inplace_window)

    def _note_recent_flush(self, line: int) -> None:
        self._recent_flushes[line] = self._flush_op
        if len(self._recent_flushes) > self.recent_flush_capacity:
            cutoff = self._flush_op - self.profile.inplace_window
            self._recent_flushes = {
                ln: op for ln, op in self._recent_flushes.items() if op >= cutoff
            }
            # Entries older than the window can never classify a future
            # flush as in-place; if pruning by age ever leaves more than
            # the capacity (impossible while ops are monotone, but keep
            # the bound unconditional), drop the oldest outright.
            if len(self._recent_flushes) > self.recent_flush_capacity:
                keep = sorted(self._recent_flushes.items(), key=lambda kv: kv[1])
                self._recent_flushes = dict(keep[-self.recent_flush_capacity :])

    # ------------------------------------------------------------------
    # stores
    # ------------------------------------------------------------------
    def store(self, off: int, data: Buffer, payload: Optional[int] = None) -> None:
        """CPU store of ``data`` at ``off``; lands in cache (volatile until flushed).

        ``payload`` declares how many of the bytes are useful payload for
        write-amplification accounting; defaults to all of them.
        """
        arr = np.frombuffer(data, dtype=np.uint8) if not isinstance(data, np.ndarray) else data
        if arr.dtype != np.uint8:
            arr = arr.view(np.uint8)
        arr = arr.reshape(-1)
        n = arr.size
        self._check_range(off, n)
        self._tick("store")

        self.buf[off : off + n] = arr
        first, last = off // CACHE_LINE, (off + n - 1) // CACHE_LINE
        if last == first:
            self._dirty.add(first)
        else:
            self._dirty.update(range(first, last + 1))

        st = self.stats
        st.stores += 1
        st.stored_bytes += n
        st.payload_bytes += n if payload is None else payload
        self._charge((last - first + 1) * self.profile.store_per_line_ns)
        if TRACE_HOOK is not None:
            TRACE_HOOK("store", 1, n)

    def store_zeros(self, off: int, n: int, payload: int = 0) -> None:
        """Store ``n`` zero bytes (cheap bulk clear through the cache)."""
        self._check_range(off, n)
        self._tick("store")
        self.buf[off : off + n] = 0
        first, last = off // CACHE_LINE, (off + n - 1) // CACHE_LINE
        self._dirty.update(range(first, last + 1))
        st = self.stats
        st.stores += 1
        st.stored_bytes += n
        st.payload_bytes += payload
        self._charge((last - first + 1) * self.profile.store_per_line_ns)
        if TRACE_HOOK is not None:
            TRACE_HOOK("store", 1, n)

    def ntstore(self, off: int, data: Buffer, payload: Optional[int] = None) -> None:
        """Non-temporal streaming store: write-combines straight to media.

        Used for the large sequential writes (initial loads, log resets,
        CSR construction) where real code uses ``MOVNT``; on ADR the WPQ
        is power-fail protected, so the data is durable on acceptance
        (the customary trailing ``sfence`` only orders it).
        """
        arr = np.frombuffer(data, dtype=np.uint8) if not isinstance(data, np.ndarray) else data
        if arr.dtype != np.uint8:
            arr = arr.view(np.uint8)
        arr = arr.reshape(-1)
        n = arr.size
        self._check_range(off, n)
        self._tick("ntstore")

        self.buf[off : off + n] = arr
        if not self.profile.volatile:
            self.media[off : off + n] = arr
        # ntstore bypasses the cache: covered lines are clean w.r.t. media.
        first, last = off // CACHE_LINE, (off + n - 1) // CACHE_LINE
        if self._dirty:
            self._dirty.difference_update(range(first, last + 1))
        if self._pending:
            # A newer media write supersedes flush-time snapshots.
            for line in range(first, last + 1):
                if line in self._pending:
                    a = line * CACHE_LINE
                    self._pending[line] = bytes(self.buf[a : a + CACHE_LINE])
        if self._poisoned:
            # Rewriting media repairs poison — but only for lines whose
            # full 64 bytes were rewritten (the ECC block is whole again).
            full_first = (off + CACHE_LINE - 1) // CACHE_LINE
            full_last = (off + n) // CACHE_LINE - 1
            if full_last >= full_first:
                self._poisoned.difference_update(range(full_first, full_last + 1))

        st = self.stats
        st.ntstores += 1
        st.ntstored_bytes += n
        st.stored_bytes += n
        st.payload_bytes += n if payload is None else payload
        st.media_bytes += (last // (XPLINE // CACHE_LINE) - first // (XPLINE // CACHE_LINE) + 1) * XPLINE
        self._charge(self.profile.seq_write_ns(n))
        if TRACE_HOOK is not None:
            TRACE_HOOK("ntstore", 1, n)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self, off: int, n: int) -> np.ndarray:
        """Read-only view of current contents (no cost accounted — see module docs).

        Raises :class:`~repro.errors.MediaError` when the range covers a
        poisoned line (uncorrectable media error, see :meth:`poison`).
        Note that cached ``Region.view`` objects bypass this check — the
        poison model is enforced at explicit device reads and by the
        recovery scrub (DESIGN.md §6).
        """
        self._check_range(off, n)
        rt = self._rt_rng is not None and self._rt_suspend == 0
        if (self._poisoned or rt) and n > 0:
            ctx = f"reading [{off}, {off + n})"
            first, last = off // CACHE_LINE, (off + n - 1) // CACHE_LINE
            for line in range(first, last + 1):
                if line in self._poisoned:
                    self.stats.media_errors += 1
                    a = line * CACHE_LINE
                    raise MediaError(
                        f"uncorrectable media error {ctx}: "
                        f"poisoned line at offset {a}",
                        off=a,
                        length=CACHE_LINE,
                    )
                if rt:
                    self._rt_check_line(line, ctx)
        view = self.buf[off : off + n]
        view.flags.writeable = False
        return view

    def load_batch(self, off: int, n: int, bucket: Optional[str] = None) -> np.ndarray:
        """Bulk sequential load of ``[off, off+n)`` — the read mirror of
        :meth:`ntstore`.

        Equivalent to ``read(off, n)`` followed by
        ``account_seq_read(n, bucket)``: same poison enforcement, same
        counters, the same single modeled-ns term.  Returns a read-only
        view of the CPU-visible contents.  Reads never feed the crash
        injector (they have no persistence side effects), so batching
        them is always safe under an armed crash plan.
        """
        view = self.read(off, n)
        self.account_seq_read(n, bucket=bucket)
        if TRACE_HOOK is not None:
            TRACE_HOOK("load", 1, n)
        return view

    def gather_span(self, offs: np.ndarray, unit: int, bucket: Optional[str] = None) -> np.ndarray:
        """Gather ``n`` equal-size units at scattered offsets — the read
        mirror of :meth:`flush_span`.

        Counter- and modeled-ns-equivalent to ``for off in offs:
        read(off, unit)`` plus one ``account_rnd_read(len(offs), unit,
        bucket)``: ``n`` independent random-line reads of ``unit`` bytes
        each.  Poison is enforced per covered cache line, in unit order,
        before any cost is charged — exactly where the scalar replay
        would fault.  Returns an ``(n, unit)`` uint8 copy of the
        current contents.
        """
        offs = np.asarray(offs, dtype=np.int64)
        n = int(offs.size)
        if unit <= 0:
            raise PMemError("gather_span: unit must be positive")
        if n == 0:
            return np.empty((0, unit), dtype=np.uint8)
        self._check_range(int(offs.min()), 1)
        self._check_range(int(offs.max()), unit)
        rt = self._rt_rng is not None and self._rt_suspend == 0
        if self._poisoned or rt:
            ctx = f"gathering {n} x {unit} B"
            for line in self._unit_line_seq(offs, unit).tolist():
                if line in self._poisoned:
                    self.stats.media_errors += 1
                    a = line * CACHE_LINE
                    raise MediaError(
                        f"uncorrectable media error {ctx}: "
                        f"poisoned line at offset {a}",
                        off=a,
                        length=CACHE_LINE,
                    )
                if rt:
                    self._rt_check_line(line, ctx)
        idx = offs[:, None] + np.arange(unit, dtype=np.int64)[None, :]
        out = self.buf[idx]
        self.account_rnd_read(n, unit, bucket=bucket)
        if TRACE_HOOK is not None:
            TRACE_HOOK("gather", n, n * unit)
        return out

    def account_seq_read(self, nbytes: int, bucket: Optional[str] = None) -> None:
        """Charge a sequential streaming read of ``nbytes``."""
        ns = self.profile.seq_read_ns(nbytes)
        self.stats.seq_read_bytes += nbytes
        self._charge(ns)
        if bucket:
            self.stats.add_bucket(bucket, ns)

    def account_rnd_read(self, naccesses: int, bytes_each: int = CACHE_LINE, bucket: Optional[str] = None) -> None:
        """Charge ``naccesses`` independent random reads of ``bytes_each`` bytes."""
        ns = self.profile.rnd_read_ns(naccesses, bytes_each)
        self.stats.rnd_reads += naccesses
        self._charge(ns)
        if bucket:
            self.stats.add_bucket(bucket, ns)

    def account_rnd_write(self, naccesses: int, bytes_each: int = CACHE_LINE, bucket: Optional[str] = None) -> None:
        """Charge ``naccesses`` random-line writes (modeling hook: counts
        cost and media traffic without changing contents — used by the
        baseline systems for DRAM/PM structures whose *functional* state
        is kept in Python)."""
        prof = self.profile
        lines = max(1, (bytes_each + CACHE_LINE - 1) // CACHE_LINE)
        if prof.volatile:
            ns = naccesses * lines * prof.read_rnd_per_line_ns  # DRAM write ~ read latency
        else:
            ns = naccesses * lines * (prof.store_per_line_ns + prof.flush_rnd_per_line_ns)
            self.stats.media_bytes += naccesses * XPLINE
        self.stats.stores += naccesses
        self.stats.stored_bytes += naccesses * bytes_each
        self._charge(ns)
        if bucket:
            self.stats.add_bucket(bucket, ns)

    def account_ns(self, ns: float, bucket: Optional[str] = None) -> None:
        """Charge modeled time directly (documented modeling terms only)."""
        self._charge(ns)
        if bucket:
            self.stats.add_bucket(bucket, ns)

    def account_seq_write(self, nbytes: int, bucket: Optional[str] = None) -> None:
        """Charge a streaming write of ``nbytes`` (modeling hook, no contents)."""
        ns = self.profile.seq_write_ns(nbytes)
        self.stats.stored_bytes += nbytes
        if not self.profile.volatile:
            self.stats.media_bytes += (nbytes + XPLINE - 1) // XPLINE * XPLINE
        self._charge(ns)
        if bucket:
            self.stats.add_bucket(bucket, ns)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def clwb(self, off: int, n: int = CACHE_LINE) -> None:
        """Write back the cache lines covering ``[off, off+n)`` to media."""
        self._check_range(off, max(n, 1))
        self._tick("flush")
        first = off // CACHE_LINE
        last = (off + max(n, 1) - 1) // CACHE_LINE
        nlines = last - first + 1
        if nlines >= _BULK_FLUSH_LINES:
            self._flush_bulk(first, last)
        else:
            for line in range(first, last + 1):
                self._flush_line(line)
        if TRACE_HOOK is not None:
            TRACE_HOOK("flush", nlines, nlines * CACHE_LINE)

    #: ``clflushopt`` behaves identically for our purposes (clwb keeps the
    #: line in cache, clflushopt evicts it — costs are the same here).
    clflushopt = clwb

    def _flush_line(self, line: int) -> None:
        prof = self.profile
        st = self.stats
        self._flush_op += 1
        st.flushes += 1

        dirty = line in self._dirty
        if dirty:
            a = line * CACHE_LINE
            if self._reorder:
                # Write-back is initiated but unordered until the next
                # fence: capture the flush-time content instead of
                # touching media (accounting is unchanged — costs are
                # charged when the flush issues, as before).
                self._pending[line] = bytes(self.buf[a : a + CACHE_LINE])
            else:
                self.media[a : a + CACHE_LINE] = self.buf[a : a + CACHE_LINE]
                self._poisoned.discard(line)
            self._dirty.discard(line)
            st.flushed_lines += 1
            st.flushed_bytes += CACHE_LINE

        # Classification (charged even for clean-line flushes, which are
        # nearly free on real hardware -> small fixed cost).
        if not dirty:
            self._charge(prof.store_per_line_ns)
            return

        recent_op = self._recent_flushes.get(line)
        inplace = recent_op is not None and (self._flush_op - recent_op) <= prof.inplace_window
        xpline = line * CACHE_LINE // XPLINE
        sequential = line == self._last_flush_line + 1 or xpline == self._last_media_xpline

        if inplace:
            st.inplace_flushes += 1
            st.rnd_flushes += 1
            self._charge(prof.flush_rnd_per_line_ns + prof.flush_inplace_extra_ns)
            st.media_bytes += XPLINE  # the XPBuffer entry was already evicted
        elif sequential:
            st.seq_flushes += 1
            self._charge(prof.flush_seq_per_line_ns)
            if xpline != self._last_media_xpline:
                st.media_bytes += XPLINE
        else:
            st.rnd_flushes += 1
            self._charge(prof.flush_rnd_per_line_ns)
            st.media_bytes += XPLINE

        self._last_flush_line = line
        self._last_media_xpline = xpline
        self._note_recent_flush(line)

    def _flush_bulk(self, first: int, last: int) -> None:
        """Vectorized flush of a large contiguous span as a sequential stream."""
        prof = self.profile
        st = self.stats
        a, b = first * CACHE_LINE, (last + 1) * CACHE_LINE
        span = range(first, last + 1)
        dirty_in_span = self._dirty.intersection(span) if len(self._dirty) < len(span) * 4 else {
            ln for ln in span if ln in self._dirty
        }
        ndirty = len(dirty_in_span)
        if self._reorder:
            for ln in dirty_in_span:
                la = ln * CACHE_LINE
                self._pending[ln] = bytes(self.buf[la : la + CACHE_LINE])
        else:
            self.media[a:b] = self.buf[a:b]
            if self._poisoned:
                self._poisoned.difference_update(span)
        self._dirty.difference_update(dirty_in_span)

        self._flush_op += len(span)
        st.flushes += len(span)
        st.flushed_lines += ndirty
        st.flushed_bytes += ndirty * CACHE_LINE
        st.seq_flushes += ndirty
        xp_first, xp_last = a // XPLINE, (b - 1) // XPLINE
        st.media_bytes += (xp_last - xp_first + 1) * XPLINE
        self._charge(ndirty * prof.flush_seq_per_line_ns + (len(span) - ndirty) * prof.store_per_line_ns)
        self._last_flush_line = last
        self._last_media_xpline = xp_last

    def _drain_pending(self) -> None:
        """Commit all flush-time snapshots to media (the fence took effect)."""
        if not self._pending:
            return
        for line, content in self._pending.items():
            a = line * CACHE_LINE
            self.media[a : a + CACHE_LINE] = np.frombuffer(content, dtype=np.uint8)
            self._poisoned.discard(line)
        self._pending.clear()

    def sfence(self) -> None:
        """Order preceding flushes/ntstores; charge the drain cost."""
        self._tick("fence")
        self.stats.fences += 1
        self._charge(self.profile.fence_ns)
        self._drain_pending()
        if TRACE_HOOK is not None:
            TRACE_HOOK("fence", 1, 0)

    def persist(self, off: int, n: int = CACHE_LINE) -> None:
        """Convenience ``clwb + sfence`` (PMDK's ``pmem_persist``)."""
        self.clwb(off, n)
        self.sfence()

    # ------------------------------------------------------------------
    # batched persistence (vectorized replay of per-unit scalar ops)
    # ------------------------------------------------------------------
    def _crash_sensitive(self) -> bool:
        """True while an armed injector could fire inside a batched op.

        Batched entry points then fall back to the literal scalar loop so
        a planned crash lands at exactly the right store/flush/fence with
        exactly the right partial state.
        """
        return self.injector.plan is not None and not self.injector.fired

    @staticmethod
    def _unit_rows(data: np.ndarray, n: int) -> np.ndarray:
        """``data`` as an ``(n, unit_bytes)`` uint8 row view."""
        flat = np.ascontiguousarray(data)
        return flat.reshape(n, -1).view(np.uint8)

    @staticmethod
    def _unit_line_seq(offs: np.ndarray, unit: int) -> np.ndarray:
        """Concatenated per-unit cache-line ranges, in unit order.

        This is the exact line sequence ``clwb(off_i, unit)`` replayed
        per unit would flush.
        """
        first = offs // CACHE_LINE
        last = (offs + (unit - 1)) // CACHE_LINE
        lpu = last - first + 1
        if int(lpu.max()) == 1:
            return first
        total = int(lpu.sum())
        seq = np.repeat(first, lpu)
        # within-unit line index: 0..lpu_i-1 appended to each first line
        ends = np.cumsum(lpu)
        seq += np.arange(total, dtype=np.int64) - np.repeat(ends - lpu, lpu)
        return seq

    def store_batch(
        self, offs: np.ndarray, data: np.ndarray, payload_per_unit: Optional[int] = None
    ) -> None:
        """``n`` CPU stores of equal-size units at (possibly scattered) offsets.

        Counter-equivalent to ``for off, row in zip(offs, rows):
        store(off, row, payload_per_unit)`` — same stats, same dirty
        lines, same modeled time — but vectorized.  ``data`` is any
        array with ``n`` equal-size rows (``data.nbytes // n`` bytes
        each).
        """
        offs = np.asarray(offs, dtype=np.int64)
        n = int(offs.size)
        if n == 0:
            return
        data = np.ascontiguousarray(data)
        unit = data.nbytes // n
        if unit * n != data.nbytes:
            raise PMemError("store_batch: data size not divisible into equal units")
        self._check_range(int(offs.min()), 1)
        self._check_range(int(offs.max()), unit)
        if self._crash_sensitive():
            rows = self._unit_rows(data, n)
            for i in range(n):
                self.store(int(offs[i]), rows[i], payload=payload_per_unit)
            return
        self.injector.tick_many("store", n)

        # Scatter into the cache image.
        if offs.size > 1 and int(offs[0]) + (n - 1) * unit == int(offs[-1]) and bool(
            np.all(np.diff(offs) == unit)
        ):
            a = int(offs[0])
            self.buf[a : a + n * unit] = self._unit_rows(data, n).reshape(-1)
        elif data.dtype.itemsize == 4 and unit % 4 == 0 and not (offs & 3).any():
            b32 = self.buf.view(np.uint32)
            d32 = data.reshape(n, unit // 4).view(np.uint32)
            idx = offs >> 2
            for c in range(unit // 4):
                b32[idx + c] = d32[:, c]
        else:
            rows = self._unit_rows(data, n)
            for i in range(n):
                a = int(offs[i])
                self.buf[a : a + unit] = rows[i]

        seq = self._unit_line_seq(offs, unit)
        self._dirty.update(np.unique(seq).tolist())

        st = self.stats
        st.stores += n
        st.stored_bytes += n * unit
        st.payload_bytes += n * (unit if payload_per_unit is None else payload_per_unit)
        self._charge(int(seq.size) * self.profile.store_per_line_ns)
        if TRACE_HOOK is not None:
            TRACE_HOOK("store", n, n * unit)

    def flush_span(self, offs: np.ndarray, unit: int) -> None:
        """Replay ``clwb(off_i, unit)`` per unit over the whole span at once.

        Classification (sequential / random / in-place), XPLine media
        accounting and flush-stream state end up identical to the scalar
        replay.  Contract: each unit's lines are dirty when its flush
        runs — true whenever each flush follows the store of the same
        unit, as :meth:`persist_batch` guarantees.
        """
        offs = np.asarray(offs, dtype=np.int64)
        n = int(offs.size)
        if n == 0:
            return
        self._check_range(int(offs.min()), 1)
        self._check_range(int(offs.max()), unit)
        if self._crash_sensitive():
            for i in range(n):
                self.clwb(int(offs[i]), unit)
            return
        self.injector.tick_many("flush", n)

        prof, st = self.profile, self.stats
        seq = self._unit_line_seq(offs, unit)
        m = int(seq.size)
        xp = seq * CACHE_LINE // XPLINE
        window = prof.inplace_window

        # Physical write-back: the last flush of every line follows its
        # last store, so final media content = final cache content.
        lines = np.unique(seq)
        bl = self.buf.reshape(-1, CACHE_LINE)
        if self._reorder:
            for ln in lines.tolist():
                self._pending[ln] = bytes(bl[ln])
        else:
            ml = self.media.reshape(-1, CACHE_LINE)
            ml[lines] = bl[lines]
            if self._poisoned:
                self._poisoned.difference_update(lines.tolist())
        self._dirty.difference_update(lines.tolist())

        # In-place: the same line was flushed at most `window` flush ops
        # earlier.  Within the span the op gap equals the index gap, so
        # shifted comparisons cover it ...
        inplace = np.zeros(m, dtype=bool)
        for k in range(1, min(window, m - 1) + 1):
            inplace[k:] |= seq[k:] == seq[:-k]
        # ... and only the first `window` flushes can still pair with a
        # pre-span flush recorded in _recent_flushes.
        if self._recent_flushes:
            base_op = self._flush_op
            for i in range(min(window, m)):
                if not inplace[i]:
                    op = self._recent_flushes.get(int(seq[i]))
                    if op is not None and (base_op + i + 1 - op) <= window:
                        inplace[i] = True

        prev_line = np.empty(m, dtype=np.int64)
        prev_line[0] = self._last_flush_line
        prev_line[1:] = seq[:-1]
        prev_xp = np.empty(m, dtype=np.int64)
        prev_xp[0] = self._last_media_xpline
        prev_xp[1:] = xp[:-1]
        seq_mask = ~inplace & ((seq == prev_line + 1) | (xp == prev_xp))
        n_ip = int(inplace.sum())
        n_sq = int(seq_mask.sum())
        n_rd = m - n_ip - n_sq

        st.flushes += m
        st.flushed_lines += m
        st.flushed_bytes += m * CACHE_LINE
        st.inplace_flushes += n_ip
        st.rnd_flushes += n_ip + n_rd
        st.seq_flushes += n_sq
        n_media = n_ip + n_rd + int((seq_mask & (xp != prev_xp)).sum())
        st.media_bytes += n_media * XPLINE
        self._charge(
            n_ip * (prof.flush_rnd_per_line_ns + prof.flush_inplace_extra_ns)
            + n_sq * prof.flush_seq_per_line_ns
            + n_rd * prof.flush_rnd_per_line_ns
        )

        base_op = self._flush_op
        self._flush_op = base_op + m
        self._last_flush_line = int(seq[-1])
        self._last_media_xpline = int(xp[-1])
        # Rebuild the recent-flush map: pre-span entries still inside the
        # window (only possible if the span was shorter than it) plus the
        # span's own last `window` flushes.
        tail = min(window, m)
        if m <= window and self._recent_flushes:
            cutoff = self._flush_op - window
            recent = {ln: op for ln, op in self._recent_flushes.items() if op >= cutoff}
        else:
            recent = {}
        for i in range(m - tail, m):
            recent[int(seq[i])] = base_op + i + 1
        self._recent_flushes = recent
        if TRACE_HOOK is not None:
            TRACE_HOOK("flush", m, m * CACHE_LINE)

    def copyback_stream(self, src_off: int, dst_off: int, nbytes: int, chunk: int) -> None:
        """Chunked on-device copy: replay of ``store(dst+i*chunk, buf[src+i*chunk:…]);
        clwb(…)`` per chunk, without the trailing fence (the COPYBACK
        redistribution stream of large rebalances).

        Counter-equivalent to the scalar loop — every chunk's lines are
        dirty and sequential at its flush, so each flush takes the bulk
        sequential path — with the whole span copied in two NumPy moves.
        Falls back to the literal loop under an armed crash injector
        (mid-stream crashes must land at exact chunk boundaries) or the
        persist-reorder simulation (per-line pending capture).
        """
        if nbytes <= 0:
            return
        self._check_range(src_off, nbytes)
        self._check_range(dst_off, nbytes)
        full = nbytes // chunk
        rem = nbytes - full * chunk
        if (
            self._crash_sensitive()
            or self._reorder
            or full == 0
            or chunk < _BULK_FLUSH_LINES * CACHE_LINE
        ):
            pos = 0
            while pos < nbytes:
                n = min(chunk, nbytes - pos)
                data = self.buf[src_off + pos : src_off + pos + n].copy()
                self.store(dst_off + pos, data, payload=0)
                self.clwb(dst_off + pos, n)
                pos += n
            return

        prof, st = self.profile, self.stats
        a, b = dst_off, dst_off + full * chunk
        # stores: one per chunk, landing in the cache image
        self.injector.tick_many("store", full)
        if src_off < b and a < src_off + full * chunk:
            self.buf[a:b] = self.buf[src_off : src_off + full * chunk].copy()
        else:
            self.buf[a:b] = self.buf[src_off : src_off + full * chunk]
        starts = dst_off + np.arange(full, dtype=np.int64) * chunk
        first = starts // CACHE_LINE
        last = (starts + chunk - 1) // CACHE_LINE
        nl = last - first + 1
        m = int(nl.sum())  # boundary lines shared by two chunks count twice
        st.stores += full
        st.stored_bytes += full * chunk
        self._charge(m * prof.store_per_line_ns)
        if TRACE_HOOK is not None:
            TRACE_HOOK("store", full, full * chunk)

        # flushes: each chunk replays the bulk sequential-stream path
        self.injector.tick_many("flush", full)
        span_first, span_last = a // CACHE_LINE, (b - 1) // CACHE_LINE
        self.media[a:b] = self.buf[a:b]
        if self._poisoned:
            self._poisoned.difference_update(range(span_first, span_last + 1))
        self._dirty.difference_update(range(span_first, span_last + 1))
        st.flushes += m
        st.flushed_lines += m
        st.flushed_bytes += m * CACHE_LINE
        st.seq_flushes += m
        xp_first = first * CACHE_LINE // XPLINE
        xp_last = last * CACHE_LINE // XPLINE
        st.media_bytes += int((xp_last - xp_first + 1).sum()) * XPLINE
        self._charge(m * prof.flush_seq_per_line_ns)
        self._flush_op += m
        self._last_flush_line = int(span_last)
        self._last_media_xpline = int(xp_last[-1])
        if TRACE_HOOK is not None:
            TRACE_HOOK("flush", m, m * CACHE_LINE)

        if rem:
            data = self.buf[src_off + full * chunk : src_off + nbytes].copy()
            self.store(dst_off + full * chunk, data, payload=0)
            self.clwb(dst_off + full * chunk, rem)

    def sfence_batch(self, n: int) -> None:
        """``n`` back-to-back fences (one per persisted unit)."""
        if n <= 0:
            return
        if self._crash_sensitive():
            for _ in range(n):
                self.sfence()
            return
        self.injector.tick_many("fence", n)
        self.stats.fences += n
        self._charge(n * self.profile.fence_ns)
        self._drain_pending()
        if TRACE_HOOK is not None:
            TRACE_HOOK("fence", n, 0)

    def persist_batch(
        self, offs: np.ndarray, data: np.ndarray, payload_per_unit: Optional[int] = None
    ) -> None:
        """Vectorized replay of ``(store; clwb; sfence)`` per unit.

        The accounting contract: identical integer counters to the
        scalar loop (and modeled ns up to float summation order), at a
        fraction of the interpreter cost.  With an armed crash injector
        the literal scalar loop runs instead, so mid-batch crashes leave
        exactly the prefix a real interleaved stream would.
        """
        offs = np.asarray(offs, dtype=np.int64)
        n = int(offs.size)
        if n == 0:
            return
        data = np.ascontiguousarray(data)
        unit = data.nbytes // n
        if unit * n != data.nbytes:
            raise PMemError("persist_batch: data size not divisible into equal units")
        if self._crash_sensitive():
            rows = self._unit_rows(data, n)
            for i in range(n):
                off = int(offs[i])
                self.store(off, rows[i], payload=payload_per_unit)
                self.clwb(off, unit)
                self.sfence()
            return
        self.store_batch(offs, data, payload_per_unit)
        self.flush_span(offs, unit)
        self.sfence_batch(n)

    # ------------------------------------------------------------------
    # failure / durability
    # ------------------------------------------------------------------
    def is_persisted(self, off: int, n: int = 1) -> bool:
        """True if no cache line covering the range is dirty (or caches are eADR)."""
        if self.profile.persistent_caches:
            return not self.profile.volatile
        if self.profile.volatile:
            return False
        first, last = off // CACHE_LINE, (off + max(n, 1) - 1) // CACHE_LINE
        return not any(
            line in self._dirty or line in self._pending
            for line in range(first, last + 1)
        )

    @property
    def dirty_lines(self) -> int:
        return len(self._dirty)

    @property
    def pending_lines(self) -> int:
        """Flushed-but-unfenced lines still in flight (volatile under ADR)."""
        return len(self._pending)

    def crash(self) -> None:
        """Emulate a power failure: lose whatever a real platform would lose.

        Under the default policy every dirty line reverts whole (ADR) or
        persists whole (eADR).  An active :class:`FaultPolicy` weakens
        this: dirty lines may persist any 8-byte-chunk subset
        (``torn_stores``), flushed-but-unfenced lines individually
        persist or drop (``persist_reorder``), and lines that lost data
        may poison their covering XPLine (``poison_on_crash``).
        """
        self.stats.crashes += 1
        ordinal = self.crash_ordinal
        self.crash_ordinal += 1
        if self.profile.volatile:
            self.buf[:] = 0
            self.media[:] = 0
        elif self.profile.persistent_caches:
            # eADR: caches (and any initiated write-backs) are inside the
            # power-fail domain and flush themselves on power fail.
            self._drain_pending()
            for line in self._dirty:
                a = line * CACHE_LINE
                self.media[a : a + CACHE_LINE] = self.buf[a : a + CACHE_LINE]
                self._poisoned.discard(line)
        else:
            self._crash_adr(ordinal)
        self._dirty.clear()
        self._pending.clear()
        self._recent_flushes.clear()
        self._last_flush_line = -(10**9)
        self._last_media_xpline = -(10**9)
        if TRACE_HOOK is not None:
            TRACE_HOOK("crash", 1, 0)

    def _crash_adr(self, ordinal: int) -> None:
        """ADR power failure, honoring the device's fault policy."""
        policy = self.faults
        rng = policy.rng_for_crash(ordinal) if policy.active else None
        st = self.stats
        lost: list[int] = []  # lines that lost (some) in-flight data

        # Flushed-but-unfenced lines: all persist under the clean model,
        # each one individually under persist_reorder.
        for line, content in self._pending.items():
            a = line * CACHE_LINE
            if not self._reorder or rng.integers(0, 2) == 1:
                self.media[a : a + CACHE_LINE] = np.frombuffer(content, dtype=np.uint8)
                self._poisoned.discard(line)
            else:
                st.dropped_pending_lines += 1
                lost.append(line)

        # Dirty (never-flushed) lines: whole-line revert, or per-chunk
        # tearing when the policy allows torn stores.
        if policy.torn_stores and self._dirty:
            bufc = self.buf.reshape(-1, CHUNKS_PER_LINE * 8)
            for line in self._dirty:
                mask = rng.integers(0, 2, size=CHUNKS_PER_LINE).astype(bool)
                a = line * CACHE_LINE
                if mask.all():
                    self.media[a : a + CACHE_LINE] = bufc[line]
                    self._poisoned.discard(line)
                    continue
                if mask.any():
                    mb = self.media[a : a + CACHE_LINE].reshape(CHUNKS_PER_LINE, 8)
                    bb = bufc[line].reshape(CHUNKS_PER_LINE, 8)
                    mb[mask] = bb[mask]
                    st.torn_lines += 1
                lost.append(line)
        else:
            lost.extend(self._dirty)

        # The cache hierarchy is gone: the CPU view reverts to media for
        # every line that did not (fully) persist.
        for line in lost:
            a = line * CACHE_LINE
            self.buf[a : a + CACHE_LINE] = self.media[a : a + CACHE_LINE]

        # Interrupted media writes may leave uncorrectable XPLines.
        if policy.poison_on_crash > 0.0:
            for line in lost:
                if rng.random() < policy.poison_on_crash:
                    self.poison(line * CACHE_LINE, CACHE_LINE)

    # ------------------------------------------------------------------
    # media poison (uncorrectable errors)
    # ------------------------------------------------------------------
    def _rt_check_line(self, line: int, ctx: str) -> None:
        """Runtime hazard draws for one cache-line read (policy opt-in).

        Called once per covered line, in the order the equivalent scalar
        replay would read them (the caller has already established the
        line is not poisoned).  Draw protocol per line — one uniform for
        spontaneous decay, one for a transient fault, plus one per retry
        attempt — is fixed so that bulk and scalar read paths consume
        the identical RNG stream and therefore see identical faults.
        """
        pol = self.faults
        rng = self._rt_rng
        if pol.read_poison_rate > 0.0 and rng.random() < pol.read_poison_rate:
            self._rt_escalate(line, ctx, "spontaneous media decay")
        if pol.transient_read_rate > 0.0 and rng.random() < pol.transient_read_rate:
            st = self.stats
            st.transient_faults += 1
            backoff = pol.retry_backoff_ns
            for _ in range(pol.read_retries):
                st.read_retries += 1
                self._charge(backoff)
                st.add_bucket("fault-retry", backoff)
                if rng.random() >= pol.transient_read_rate:
                    return  # recovered transparently; caller never sees it
            self._rt_escalate(
                line, ctx,
                f"transient fault persisted through {pol.read_retries} retries,",
            )

    def _rt_escalate(self, line: int, ctx: str, why: str) -> None:
        """Confirm a runtime read fault as hard: poison the XPLine, raise."""
        a = line * CACHE_LINE
        self.poison(a, CACHE_LINE)
        self.stats.runtime_poison_events += 1
        self.stats.media_errors += 1
        raise MediaError(
            f"uncorrectable media error {ctx}: {why} poisoned line at offset {a}",
            off=a,
            length=CACHE_LINE,
        )

    @contextmanager
    def suspend_runtime_faults(self):
        """Disable runtime read-fault draws inside the ``with`` block.

        Used by the resilience layer so scrub/repair reads — and any
        diagnostic re-reads — neither re-fault nor perturb the hazard
        RNG stream.  Re-entrant; a no-op when runtime faults are off.
        """
        self._rt_suspend += 1
        try:
            yield
        finally:
            self._rt_suspend -= 1

    def scrub_scan(self, off: int, n: int, bucket: Optional[str] = "scrub") -> list:
        """Patrol-read a window at media granularity, surfacing decay.

        Models DCPMM address-range scrub (ARS): charges one sequential
        read over the window, draws the spontaneous-decay hazard for
        every covered cache line from the same runtime RNG stream demand
        reads use, and marks failing lines poisoned **without raising**
        — a scrubber detects damage, it does not consume the data.
        Returns the newly poisoned ``(off, nbytes)`` line ranges.
        Transient faults are not modeled here: a patrol read that fails
        transiently is simply covered again by the next pass.
        """
        self._check_range(off, n)
        self.account_seq_read(n, bucket=bucket)
        pol = self.faults
        if (
            self._rt_rng is None
            or self._rt_suspend
            or pol.read_poison_rate <= 0.0
        ):
            return []
        l0 = off // CACHE_LINE
        l1 = (off + max(n, 1) - 1) // CACHE_LINE + 1
        draws = self._rt_rng.random(l1 - l0)
        found = []
        for i in np.flatnonzero(draws < pol.read_poison_rate):
            a = (l0 + int(i)) * CACHE_LINE
            if not self.check_poison(a, CACHE_LINE):
                self.poison(a, CACHE_LINE)
                self.stats.runtime_poison_events += 1
                found.append((a, CACHE_LINE))
        return found

    def poison(self, off: int, n: int = 1) -> None:
        """Mark the XPLine(s) covering ``[off, off+n)`` as uncorrectable.

        Models DCPMM EUNCORR: subsequent :meth:`read` calls covering a
        poisoned line raise :class:`~repro.errors.MediaError` until the
        line is rewritten on media (flush of a dirty line, ntstore, or a
        drained pending write-back).
        """
        self._check_range(off, max(n, 1))
        xp_first = off // XPLINE
        xp_last = (off + max(n, 1) - 1) // XPLINE
        for xp in range(xp_first, xp_last + 1):
            base = xp * LINES_PER_XPLINE
            new = set(range(base, base + LINES_PER_XPLINE)) - self._poisoned
            if new:
                self.stats.poisoned_xplines += 1
                self._poisoned.update(new)

    def clear_poison(self, off: Optional[int] = None, n: int = 1) -> None:
        """Clear poison for a range (or everywhere when ``off`` is None)."""
        if off is None:
            self._poisoned.clear()
            return
        first, last = off // CACHE_LINE, (off + max(n, 1) - 1) // CACHE_LINE
        self._poisoned.difference_update(range(first, last + 1))

    def check_poison(self, off: int, n: int = 1) -> bool:
        """True when any line covering ``[off, off+n)`` is poisoned."""
        if not self._poisoned:
            return False
        first, last = off // CACHE_LINE, (off + max(n, 1) - 1) // CACHE_LINE
        return any(line in self._poisoned for line in range(first, last + 1))

    def poisoned_ranges(self) -> list:
        """Sorted ``(offset, nbytes)`` byte ranges of poisoned lines, merged."""
        if not self._poisoned:
            return []
        out = []
        start = prev = None
        for line in sorted(self._poisoned):
            if prev is not None and line == prev + 1:
                prev = line
                continue
            if start is not None:
                out.append((start * CACHE_LINE, (prev - start + 1) * CACHE_LINE))
            start = prev = line
        out.append((start * CACHE_LINE, (prev - start + 1) * CACHE_LINE))
        return out

    def drain_all(self) -> None:
        """Flush every dirty line (used by graceful shutdown paths)."""
        for line in sorted(self._dirty):
            self._flush_line(line)
        self.sfence()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PMemDevice(name={self.name!r}, size={self.size}, profile={self.profile.name}, "
            f"dirty_lines={len(self._dirty)})"
        )


__all__ = ["PMemDevice"]
