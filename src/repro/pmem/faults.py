"""Fault-injection policies for the simulated device.

The default crash model in :class:`~repro.pmem.device.PMemDevice` is the
*clean* ADR model: on power failure every cache line either fully
reached the media (it was flushed) or fully reverts (it was dirty).
Real DCPMM platforms are weaker in three documented ways, each modeled
here behind an opt-in :class:`FaultPolicy`:

* **torn stores** — the failure-atomic unit is 8 bytes
  (``constants.ATOMIC_WRITE``), not a cache line.  Under
  ``torn_stores=True`` a crash persists, for every still-dirty line, an
  arbitrary subset of its 8-byte-aligned chunks (including the empty
  subset = clean revert and the full subset = complete persist).  Any
  multi-chunk object that was in flight can therefore land partially.
* **persist reorder** — ``clwb``/``clflushopt`` only *initiate* a
  write-back; nothing is ordered until the next ``sfence``.  Under
  ``persist_reorder=True`` flushed-but-unfenced lines are held in a
  pending set, and a crash persists a random subset of them instead of
  all of them.  The content persisted per line is the content at flush
  time (a later un-flushed store to the same line does not ride along).
* **poison** — an interrupted media write can leave an uncorrectable
  (EUNCORR) XPLine.  ``poison_on_crash`` gives the per-lost-line
  probability that the covering XPLine is poisoned by the crash; a
  poisoned line raises :class:`~repro.errors.MediaError` on
  :meth:`~repro.pmem.device.PMemDevice.read` until it is rewritten.
  Poison can also be planted explicitly via ``device.poison``.

All randomness derives from ``seed`` and the device's crash ordinal, so
a sweep that replays the same workload with the same policy is fully
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class FaultPolicy:
    """Opt-in crash fault model for one device; default is all-off."""

    torn_stores: bool = False
    """Dirty lines persist per 8-byte chunk instead of reverting whole."""

    persist_reorder: bool = False
    """Flushed-but-unfenced lines individually persist or not at crash."""

    poison_on_crash: float = 0.0
    """Probability that a line losing data at crash poisons its XPLine."""

    seed: int = 0
    """Base seed; combined with the crash ordinal per crash event."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.poison_on_crash <= 1.0:
            raise ValueError("poison_on_crash must be a probability in [0, 1]")

    @property
    def active(self) -> bool:
        """True when any fault mode deviates from the clean ADR model."""
        return self.torn_stores or self.persist_reorder or self.poison_on_crash > 0.0

    def rng_for_crash(self, ordinal: int) -> np.random.Generator:
        """Deterministic per-crash generator (``ordinal`` = 0, 1, ...)."""
        return np.random.default_rng((self.seed, ordinal))

    def with_seed(self, seed: int) -> "FaultPolicy":
        return replace(self, seed=seed)


#: The clean ADR model (whole-line all-or-nothing) — the default.
DEFAULT_POLICY = FaultPolicy()

#: Torn-store model: in-flight lines persist per 8-byte chunk.
TORN_STORES = FaultPolicy(torn_stores=True)

#: Persist-reorder model: unfenced flushes individually persist or not.
PERSIST_REORDER = FaultPolicy(persist_reorder=True)

#: Everything at once (torn + reorder) — the adversarial sweep policy.
ADVERSARIAL = FaultPolicy(torn_stores=True, persist_reorder=True)


__all__ = [
    "FaultPolicy",
    "DEFAULT_POLICY",
    "TORN_STORES",
    "PERSIST_REORDER",
    "ADVERSARIAL",
]
