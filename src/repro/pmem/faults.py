"""Fault-injection policies for the simulated device.

The default crash model in :class:`~repro.pmem.device.PMemDevice` is the
*clean* ADR model: on power failure every cache line either fully
reached the media (it was flushed) or fully reverts (it was dirty).
Real DCPMM platforms are weaker in three documented ways, each modeled
here behind an opt-in :class:`FaultPolicy`:

* **torn stores** — the failure-atomic unit is 8 bytes
  (``constants.ATOMIC_WRITE``), not a cache line.  Under
  ``torn_stores=True`` a crash persists, for every still-dirty line, an
  arbitrary subset of its 8-byte-aligned chunks (including the empty
  subset = clean revert and the full subset = complete persist).  Any
  multi-chunk object that was in flight can therefore land partially.
* **persist reorder** — ``clwb``/``clflushopt`` only *initiate* a
  write-back; nothing is ordered until the next ``sfence``.  Under
  ``persist_reorder=True`` flushed-but-unfenced lines are held in a
  pending set, and a crash persists a random subset of them instead of
  all of them.  The content persisted per line is the content at flush
  time (a later un-flushed store to the same line does not ride along).
* **poison** — an interrupted media write can leave an uncorrectable
  (EUNCORR) XPLine.  ``poison_on_crash`` gives the per-lost-line
  probability that the covering XPLine is poisoned by the crash; a
  poisoned line raises :class:`~repro.errors.MediaError` on
  :meth:`~repro.pmem.device.PMemDevice.read` until it is rewritten.
  Poison can also be planted explicitly via ``device.poison``.

On top of the crash-time model, two **runtime** fault kinds model media
errors that surface during normal operation (EUNCORR on load — the
regime the resilience layer in :mod:`repro.resilience` handles without
a restart):

* **spontaneous read-time poison** — every cache line covered by an
  accounted device read (``read``/``load_batch``/``gather_span``) decays
  with per-line probability ``read_poison_rate``; the covering XPLine
  is poisoned and the read raises :class:`~repro.errors.MediaError`, on
  exactly the line the equivalent scalar replay would have faulted on.
* **transient read faults** — with per-line probability
  ``transient_read_rate`` a line read fails *retriably*: the device
  retries up to ``read_retries`` times, charging ``retry_backoff_ns``
  modeled nanoseconds per attempt, and recovers transparently; a line
  that stays faulty through every retry escalates to hard poison.

Crash randomness derives from ``seed`` and the device's crash ordinal;
runtime randomness from ``seed`` alone, drawn one uniform per line in
read order — so replaying the same workload with the same policy sees
the same faults, and bulk reads draw the identical stream a per-unit
scalar replay would.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class FaultPolicy:
    """Opt-in crash fault model for one device; default is all-off."""

    torn_stores: bool = False
    """Dirty lines persist per 8-byte chunk instead of reverting whole."""

    persist_reorder: bool = False
    """Flushed-but-unfenced lines individually persist or not at crash."""

    poison_on_crash: float = 0.0
    """Probability that a line losing data at crash poisons its XPLine."""

    read_poison_rate: float = 0.0
    """Per-line-read probability of spontaneous uncorrectable decay."""

    transient_read_rate: float = 0.0
    """Per-line-read probability of a transient (retriable) read fault."""

    read_retries: int = 3
    """Bounded retries before a persistent transient escalates to poison."""

    retry_backoff_ns: float = 250.0
    """Modeled nanoseconds charged per transient retry attempt."""

    seed: int = 0
    """Base seed; combined with the crash ordinal per crash event."""

    def __post_init__(self) -> None:
        for name in ("poison_on_crash", "read_poison_rate", "transient_read_rate"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]")
        if self.read_retries < 0:
            raise ValueError("read_retries must be >= 0")
        if self.retry_backoff_ns < 0.0:
            raise ValueError("retry_backoff_ns must be >= 0")

    @property
    def active(self) -> bool:
        """True when any crash-time fault mode deviates from clean ADR."""
        return self.torn_stores or self.persist_reorder or self.poison_on_crash > 0.0

    @property
    def runtime_active(self) -> bool:
        """True when reads can fault during normal (non-crash) operation."""
        return self.read_poison_rate > 0.0 or self.transient_read_rate > 0.0

    def rng_for_crash(self, ordinal: int) -> np.random.Generator:
        """Deterministic per-crash generator (``ordinal`` = 0, 1, ...)."""
        return np.random.default_rng((self.seed, ordinal))

    def rng_runtime(self) -> np.random.Generator:
        """Deterministic runtime-hazard generator (one stream per device).

        Keyed off the crash-ordinal space (``_RUNTIME_STREAM`` is far
        above any real crash count) so runtime draws never collide with
        a crash's stream.
        """
        return np.random.default_rng((self.seed, _RUNTIME_STREAM))

    def with_seed(self, seed: int) -> "FaultPolicy":
        return replace(self, seed=seed)


#: Sub-stream id for the runtime-hazard generator (outside any plausible
#: crash-ordinal range).
_RUNTIME_STREAM = 0x52_55_4E


#: The clean ADR model (whole-line all-or-nothing) — the default.
DEFAULT_POLICY = FaultPolicy()

#: Torn-store model: in-flight lines persist per 8-byte chunk.
TORN_STORES = FaultPolicy(torn_stores=True)

#: Persist-reorder model: unfenced flushes individually persist or not.
PERSIST_REORDER = FaultPolicy(persist_reorder=True)

#: Everything at once (torn + reorder) — the adversarial sweep policy.
ADVERSARIAL = FaultPolicy(torn_stores=True, persist_reorder=True)

#: Runtime media decay for soak sweeps: spontaneous read-time poison and
#: transient faults at rates that exercise repair without drowning it.
RUNTIME_HAZARD = FaultPolicy(read_poison_rate=1e-4, transient_read_rate=1e-3)


__all__ = [
    "FaultPolicy",
    "DEFAULT_POLICY",
    "TORN_STORES",
    "PERSIST_REORDER",
    "ADVERSARIAL",
    "RUNTIME_HAZARD",
]
