"""Latency cost model for the simulated memory devices.

Python cannot measure real persistent-memory timings, so every device
operation accrues *modeled* nanoseconds from one of these profiles.  The
profiles encode the relative costs that drive every design decision in
the DGAP paper (§2.1.2, §2.4, Fig. 1):

* PM writes are far more expensive than DRAM writes (~7-8x), reads
  ~2-3x slower (asymmetric read/write).
* Small random persistent writes are much slower than large sequential
  ones (256 B XPBuffer write combining).
* Repeatedly flushing the *same* cache line ("in-place update") stalls
  on the previous flush and on-DIMM wear leveling — about 7x worse than
  a sequential stream of flushes (Fig. 1c).

Absolute values are calibrated to the characterization literature cited
by the paper (Izraelevitz et al. 2019; Yang et al., FAST'20; van Renen
et al., DaMoN'19) and are intended to reproduce *ratios*, not absolute
wall-clock numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .constants import CACHE_LINE, XPLINE


@dataclass(frozen=True)
class LatencyModel:
    """Per-operation modeled latencies, in nanoseconds.

    All ``*_per_line`` costs are per 64-byte cache line; read costs are
    charged per line for random access and per byte (bandwidth) for
    sequential streams.
    """

    name: str

    #: CPU store reaching the (volatile or ADR-protected) write queue.
    store_per_line_ns: float

    #: ``CLWB``/``CLFLUSHOPT`` of a line that continues a sequential
    #: stream (previous flush hit the same or the adjacent XPLine).
    flush_seq_per_line_ns: float

    #: Flush of a line at a random address (XPBuffer miss -> full media
    #: write of its 256 B XPLine).
    flush_rnd_per_line_ns: float

    #: Extra stall for flushing a line that was itself flushed very
    #: recently (classic persistent in-place update pattern).
    flush_inplace_extra_ns: float

    #: ``SFENCE`` draining outstanding flushes.
    fence_ns: float

    #: Random read latency, per cache line touched.
    read_rnd_per_line_ns: float

    #: Sequential read cost, per byte (i.e. 1/bandwidth).
    read_seq_per_byte_ns: float

    #: Sequential write bandwidth cost per byte for non-temporal streams
    #: (ntstore bypasses the cache and write-combines fully).
    ntstore_per_byte_ns: float

    #: True if CPU caches are inside the power-fail domain (eADR): data
    #: is persistent once globally visible; flushes are not required
    #: (and are modeled as hints with sequential cost only).
    persistent_caches: bool = False

    #: True for plain DRAM: nothing survives a crash regardless of
    #: flushing.  Used by the Fig. 1(b) motivation experiment and by the
    #: DRAM-resident halves of the hybrid baselines.
    volatile: bool = False

    #: How many of the most recently flushed lines count as "recent" for
    #: the in-place-update penalty.
    inplace_window: int = 8

    def with_overrides(self, **kw) -> "LatencyModel":
        """Return a copy with selected fields replaced."""
        return replace(self, **kw)

    # ---- convenience cost helpers -------------------------------------
    def seq_read_ns(self, nbytes: int) -> float:
        """Cost of streaming ``nbytes`` sequentially."""
        return nbytes * self.read_seq_per_byte_ns

    def rnd_read_ns(self, naccesses: int, bytes_each: int = CACHE_LINE) -> float:
        """Cost of ``naccesses`` independent random reads."""
        lines = max(1, (bytes_each + CACHE_LINE - 1) // CACHE_LINE)
        return naccesses * lines * self.read_rnd_per_line_ns

    def seq_write_ns(self, nbytes: int) -> float:
        """Cost of a non-temporal sequential stream of ``nbytes``."""
        return nbytes * self.ntstore_per_byte_ns


#: Plain DRAM.  Fast, symmetric-ish, volatile.  ``flush`` costs model a
#: cache-line writeback to the DRAM controller (cheap, never needed for
#: persistence because nothing persists).
DRAM = LatencyModel(
    name="dram",
    store_per_line_ns=4.0,
    flush_seq_per_line_ns=15.0,
    flush_rnd_per_line_ns=25.0,
    flush_inplace_extra_ns=0.0,
    fence_ns=8.0,
    read_rnd_per_line_ns=85.0,
    read_seq_per_byte_ns=0.008,  # ~125 GB/s streaming
    ntstore_per_byte_ns=0.012,
    persistent_caches=False,
    volatile=True,
)

#: Optane DCPMM in App Direct mode on an ADR platform (the paper's
#: evaluation platform: 2nd-gen Xeon, PMDK 1.12).  Writes must be
#: explicitly flushed and fenced to persist.
OPTANE_ADR = LatencyModel(
    name="optane-adr",
    store_per_line_ns=10.0,
    flush_seq_per_line_ns=110.0,
    flush_rnd_per_line_ns=260.0,
    flush_inplace_extra_ns=600.0,
    fence_ns=55.0,
    read_rnd_per_line_ns=305.0,  # ~2-3x DRAM random reads
    read_seq_per_byte_ns=0.025,  # ~40 GB/s streaming reads (6 DIMMs)
    ntstore_per_byte_ns=0.085,  # ~12 GB/s non-temporal stream
    persistent_caches=False,
)

#: Optane on a 3rd-gen Xeon with eADR: CPU caches are power-fail
#: protected, so visibility == persistence and flushes become optional
#: performance hints (§2.1.3).
OPTANE_EADR = OPTANE_ADR.with_overrides(
    name="optane-eadr",
    persistent_caches=True,
    flush_seq_per_line_ns=40.0,
    flush_rnd_per_line_ns=80.0,
    flush_inplace_extra_ns=0.0,
)

PROFILES = {p.name: p for p in (DRAM, OPTANE_ADR, OPTANE_EADR)}


def get_profile(name: str) -> LatencyModel:
    """Look up a builtin profile by name (``dram``, ``optane-adr``, ``optane-eadr``)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown latency profile {name!r}; choose from {sorted(PROFILES)}") from None


__all__ = [
    "LatencyModel",
    "DRAM",
    "OPTANE_ADR",
    "OPTANE_EADR",
    "PROFILES",
    "get_profile",
    "CACHE_LINE",
    "XPLINE",
]
