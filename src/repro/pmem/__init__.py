"""Simulated persistent-memory substrate.

Everything the DGAP paper relies on from Optane DCPMM, reproduced as a
testable simulator: byte-addressable device with ADR/eADR cache-line
semantics, ``clwb``/``sfence`` primitives, XPLine write combining, a
calibrated latency cost model, crash injection, PMDK-style pools and
undo-log transactions.
"""

from .alloc import BumpAllocator, FreeListAllocator, Region
from .constants import ATOMIC_WRITE, CACHE_LINE, CHUNKS_PER_LINE, GIB, KIB, MIB, XPLINE
from .crash import CrashInjector, CrashPlan, iter_crash_points
from .device import PMemDevice
from .faults import (
    ADVERSARIAL,
    DEFAULT_POLICY,
    PERSIST_REORDER,
    TORN_STORES,
    FaultPolicy,
)
from .latency import DRAM, OPTANE_ADR, OPTANE_EADR, LatencyModel, get_profile
from .pool import PMemPool
from .stats import PMemStats
from .tx import Transaction, TransactionManager

__all__ = [
    "ATOMIC_WRITE",
    "CACHE_LINE",
    "CHUNKS_PER_LINE",
    "XPLINE",
    "KIB",
    "MIB",
    "GIB",
    "BumpAllocator",
    "FreeListAllocator",
    "Region",
    "CrashInjector",
    "CrashPlan",
    "iter_crash_points",
    "FaultPolicy",
    "DEFAULT_POLICY",
    "TORN_STORES",
    "PERSIST_REORDER",
    "ADVERSARIAL",
    "PMemDevice",
    "PMemPool",
    "PMemStats",
    "LatencyModel",
    "DRAM",
    "OPTANE_ADR",
    "OPTANE_EADR",
    "get_profile",
    "Transaction",
    "TransactionManager",
]
