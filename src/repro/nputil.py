"""Small NumPy primitives shared across core and kernel code."""

from __future__ import annotations

import numpy as np


def multi_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s+c)`` per (start, count) pair, vectorized.

    The gather primitive behind both the snapshot CSR materialization
    and the kernels' edge gathers; always returns int64 indices.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts)
    # one fused repeat of (start - run_offset) instead of two
    base = np.asarray(starts, dtype=np.int64) - cum + counts
    return np.arange(total, dtype=np.int64) + np.repeat(base, counts)


class ScratchBuffer:
    """Grow-only reusable DRAM scratch arrays, keyed by purpose.

    The rebalance and recovery hot paths repeatedly need short-lived
    work arrays whose sizes vary run to run (a window image here, a
    gathered value buffer there).  Allocating them fresh each time costs
    more than the arithmetic on them; this pool hands out views of
    keyed backing buffers that only ever grow (geometrically), so the
    steady state allocates nothing.

    ``take(key, n, dtype)`` returns an *uninitialized* length-``n`` view
    — callers must overwrite it fully (or ``zero=True`` to get it
    cleared).  Views alias the backing buffer: a borrowed array is valid
    until the next ``take`` with the same key.
    """

    __slots__ = ("_bufs",)

    def __init__(self):
        self._bufs: dict = {}

    def take(self, key: str, n: int, dtype=np.int64, zero: bool = False) -> np.ndarray:
        dt = np.dtype(dtype)
        buf = self._bufs.get((key, dt))
        if buf is None or buf.size < n:
            cap = max(int(n), 256, 0 if buf is None else 2 * buf.size)
            buf = np.empty(cap, dtype=dt)
            self._bufs[(key, dt)] = buf
        out = buf[:n]
        if zero:
            out[:] = 0
        return out


__all__ = ["multi_arange", "ScratchBuffer"]
