"""Small NumPy primitives shared across core and kernel code."""

from __future__ import annotations

import numpy as np


def multi_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s+c)`` per (start, count) pair, vectorized.

    The gather primitive behind both the snapshot CSR materialization
    and the kernels' edge gathers; always returns int64 indices.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts)
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(cum - counts, counts)
        + np.repeat(np.asarray(starts, dtype=np.int64), counts)
    )


__all__ = ["multi_arange"]
