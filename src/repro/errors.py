"""Exception hierarchy for the DGAP reproduction.

All library errors derive from :class:`ReproError` so callers can catch
one base type.  :class:`SimulatedCrash` is special: it is *not* a bug —
it is raised by the crash injector (``repro.pmem.crash``) to emulate a
power failure at a precise store/flush/fence boundary, and tests catch
it to exercise the recovery paths.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PMemError(ReproError):
    """Base class for persistent-memory substrate errors."""


class OutOfPMemError(PMemError):
    """A pool or device has no room for the requested allocation."""


class PoolLayoutError(PMemError):
    """A named root object is missing or has an unexpected shape."""


class TransactionError(PMemError):
    """Misuse of the PMDK-style transaction API (e.g. write outside tx)."""


class MediaError(PMemError):
    """An uncorrectable media error (poisoned XPLine) was read.

    Models DCPMM's EUNCORR/poison semantics: once a media block is
    damaged, loads from it fault until the block is rewritten.  Raised
    by :meth:`~repro.pmem.device.PMemDevice.read` when the range covers
    a poisoned line; carries the offending byte range so recovery can
    map it to a pool region.
    """

    def __init__(self, message: str, *, off: int = -1, length: int = 0):
        super().__init__(message)
        self.off = off
        self.length = length


class SimulatedCrash(ReproError):
    """Raised by the crash injector to emulate a power failure.

    When raised, the owning :class:`~repro.pmem.device.PMemDevice` has
    already reverted every cache line that was not yet flushed to media
    (ADR semantics, possibly torn/reordered under a fault policy),
    exactly as a real power loss would.  Catch it, then reopen the
    structures via their recovery entry points.

    ``op``/``op_index`` name the per-kind persistence event the crash
    fired on; ``total_index`` is the index into the device's combined
    event stream (stores + flushes + fences + ntstores), which is the
    canonical coordinate a crash sweep re-arms with.
    """

    def __init__(
        self,
        message: str = "simulated power failure",
        *,
        op: str = "?",
        op_index: int = -1,
        total_index: int = -1,
    ):
        super().__init__(message)
        self.op = op
        self.op_index = op_index
        self.total_index = total_index

    def __str__(self) -> str:
        return (
            f"{self.args[0]} (at {self.op} #{self.op_index}, "
            f"total event #{self.total_index})"
        )

    def __repr__(self) -> str:
        return (
            f"SimulatedCrash(op={self.op!r}, op_index={self.op_index}, "
            f"total_index={self.total_index})"
        )


class GraphError(ReproError):
    """Base class for graph-structure errors."""


class LockDisciplineError(GraphError):
    """The §3.1.6 lock protocol was violated (caught, not raced).

    Raised eagerly by :class:`~repro.core.locks.SectionLockTable` when a
    misuse is detectable at the call site — releasing a section that is
    not held, or swapping the table (``resize``) while another thread
    still holds a section lock.  Subtler violations (a writer slipping
    into a flagged section, out-of-order window acquisition) are caught
    after the fact by the lock-discipline oracle in
    ``repro.testing.racecheck``.
    """


class VertexRangeError(GraphError):
    """A vertex id is outside the representable range."""


class ImmutableGraphError(GraphError):
    """An update was attempted on a static (immutable) graph store."""


class SnapshotError(GraphError):
    """Invalid use of a consistent-view snapshot (e.g. after release)."""


class RecoveryError(GraphError):
    """The persistent image could not be recovered into a valid graph."""


class ReadOnlyGraphError(GraphError):
    """A write was attempted on an instance in the READ_ONLY health state.

    The resilience layer (:mod:`repro.resilience`) demotes a live DGAP
    instance to READ_ONLY when it quarantines media damage it cannot
    repair — further writes could compound the loss, but reads over the
    undamaged remainder stay valid and keep being served.
    """
