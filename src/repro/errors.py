"""Exception hierarchy for the DGAP reproduction.

All library errors derive from :class:`ReproError` so callers can catch
one base type.  :class:`SimulatedCrash` is special: it is *not* a bug —
it is raised by the crash injector (``repro.pmem.crash``) to emulate a
power failure at a precise store/flush/fence boundary, and tests catch
it to exercise the recovery paths.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PMemError(ReproError):
    """Base class for persistent-memory substrate errors."""


class OutOfPMemError(PMemError):
    """A pool or device has no room for the requested allocation."""


class PoolLayoutError(PMemError):
    """A named root object is missing or has an unexpected shape."""


class TransactionError(PMemError):
    """Misuse of the PMDK-style transaction API (e.g. write outside tx)."""


class SimulatedCrash(ReproError):
    """Raised by the crash injector to emulate a power failure.

    When raised, the owning :class:`~repro.pmem.device.PMemDevice` has
    already reverted every cache line that was not yet flushed to media
    (ADR semantics), exactly as a real power loss would.  Catch it, then
    reopen the structures via their recovery entry points.
    """

    def __init__(self, message: str = "simulated power failure", *, op: str = "?", op_index: int = -1):
        super().__init__(f"{message} (at {op} #{op_index})")
        self.op = op
        self.op_index = op_index


class GraphError(ReproError):
    """Base class for graph-structure errors."""


class VertexRangeError(GraphError):
    """A vertex id is outside the representable range."""


class ImmutableGraphError(GraphError):
    """An update was attempted on a static (immutable) graph store."""


class SnapshotError(GraphError):
    """Invalid use of a consistent-view snapshot (e.g. after release)."""


class RecoveryError(GraphError):
    """The persistent image could not be recovered into a valid graph."""
