"""Calibrated analysis-cost constants.

The kernels' modeled time is ``compute + storage``:

* **compute** — per edge processed, identical for every framework (the
  paper runs the same GAPBS kernel code everywhere): rank gathers,
  frontier bookkeeping, label updates.  Mostly cache-resident DRAM
  work.
* **storage** — reading the edges out of each framework's layout; this
  is where the frameworks differ and what Fig. 7/8 measure.

Calibration: the single reference point is the paper's Table 4 Orkut
T1 column for PageRank (CSR 24.18 s for 20 iterations over 234 M edges
= 5.14 ns per edge-visit).  With ``COMPUTE_NS_PER_EDGE = 1.2`` and PM
edge streams at 1.0 ns/B (per-vertex runs average only ~300 B, far from
Optane's peak streaming bandwidth), CSR lands at 5.2 ns/edge-visit.
Every other number in Tables 4 and Figs. 7/8 is then *predicted* by
each framework's geometry (gaps, blocks, fragments, DRAM vs. PM) — see
EXPERIMENTS.md for the paper-vs-predicted comparison.
"""

#: DRAM-side kernel work per edge processed (same for every framework).
COMPUTE_NS_PER_EDGE = 1.2

#: Effective PM read cost for edge-list streams (short per-vertex runs).
PM_SEQ_NS_PER_BYTE = 1.0

#: Effective DRAM read cost for edge-list streams.
DRAM_SEQ_NS_PER_BYTE = 0.12

#: Uncached random access latencies (one cache line).
PM_RND_NS = 305.0
DRAM_RND_NS = 85.0

#: Destination-id payload per edge (all evaluated layouts use 4 B ids).
EDGE_BYTES = 4.0
