"""Analysis framework: graph views with storage-aware cost accounting."""

from .view import (
    CSR_PM_GEOMETRY,
    ID_DTYPE,
    INDPTR_DTYPE,
    AnalysisClock,
    BaseGraphView,
    CSRArraysView,
    StorageGeometry,
    build_in_csr,
)
from .viewcache import FULL_REBUILD_STALE_FRACTION, DGAPViewCache, ViewCacheStats

__all__ = [
    "AnalysisClock",
    "BaseGraphView",
    "CSRArraysView",
    "StorageGeometry",
    "CSR_PM_GEOMETRY",
    "ID_DTYPE",
    "INDPTR_DTYPE",
    "build_in_csr",
    "DGAPViewCache",
    "ViewCacheStats",
    "FULL_REBUILD_STALE_FRACTION",
]
