"""Analysis framework: graph views with storage-aware cost accounting."""

from .view import (
    CSR_PM_GEOMETRY,
    AnalysisClock,
    BaseGraphView,
    CSRArraysView,
    StorageGeometry,
)

__all__ = [
    "AnalysisClock",
    "BaseGraphView",
    "CSRArraysView",
    "StorageGeometry",
    "CSR_PM_GEOMETRY",
]
