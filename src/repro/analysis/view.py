"""Graph views: the bridge between kernels and storage frameworks.

The four GAPBS kernels (PR, BFS, BC, CC) are framework-agnostic: they
*compute* on materialized CSR arrays (NumPy — the only way to run graph
kernels at tolerable speed in Python) and *account* their memory access
pattern through two hooks:

* :meth:`BaseGraphView.account_full_scan` — one sweep over every
  vertex's edges (a PR/CC iteration);
* :meth:`BaseGraphView.account_frontier` — random access to a subset of
  vertices' edge lists (a BFS/BC level).

Each framework's :class:`StorageGeometry` translates the pattern into
modeled time: a CSR scan streams |E| PM bytes; a blocked adjacency list
pays a random line per block; DGAP also scans its PMA gaps and walks
edge-log chains; LLAMA chases per-snapshot fragments; the DRAM-cached
systems (GraphOne, XPGraph) pay DRAM latencies.  This is what makes
Fig. 7/8's *who-wins-where* reproducible: identical kernels (as in the
paper, which uses the same GAPBS code for every system), different
storage-access costs.  Geometry parameters are derived from the live
simulated structures where possible (actual gap ratios, block fills,
fragment counts) and from the calibrated constants in ``costs.py``
otherwise.

Thread scaling (Table 4) is modeled per Amdahl: each charge is split
into a parallelizable part and a serial part (``serial_fraction``), and
:meth:`AnalysisClock.seconds` evaluates the time at a given thread
count.  The CC kernel declares a larger serial fraction, reproducing
the paper's observation that CC scales poorly on every framework due to
its ``parallel for`` scheduling (§4.3.1) — a compiler artifact we model
rather than inherit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from . import costs

#: CSR index conventions, shared by every view and kernel: vertex ids
#: (dsts, srcs and the derived id arrays) are 4-byte — the paper stores
#: 4 B destination ids and no simulated graph approaches 2^31 vertices —
#: while indptr offsets are 8-byte (edge counts can exceed int32).
ID_DTYPE = np.int32
INDPTR_DTYPE = np.int64


def build_in_csr(
    out_indptr: np.ndarray, out_dsts: np.ndarray, nv: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference in-CSR: ``(in_indptr, in_srcs)`` from an out-CSR.

    ``in_srcs`` is ordered by (dst, src, insertion order) via one stable
    sort — the single source of truth the incremental delta merge in
    :mod:`repro.analysis.viewcache` must reproduce bit-for-bit (float
    summation order in PR's ``bincount`` depends on it).
    """
    return build_in_csr_from(
        out_indptr, out_dsts, np.arange(nv, dtype=ID_DTYPE), nv
    )


def build_in_csr_from(
    out_indptr: np.ndarray,
    out_dsts: np.ndarray,
    src_ids: np.ndarray,
    dst_nv: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """In-CSR where row ``i`` carries source id ``src_ids[i]``.

    Generalizes :func:`build_in_csr` for sharded builds: a shard's rows
    are local ids but its sources live in the *global* id space, and its
    destinations span the global domain of ``dst_nv`` vertices.  With
    ``src_ids == arange(nv)`` and ``dst_nv == nv`` this is byte-identical
    to the unsharded builder.  ``src_ids`` must ascend for the
    (dst, src, insertion) order contract to hold.
    """
    srcs = np.repeat(np.asarray(src_ids, dtype=ID_DTYPE), np.diff(out_indptr))
    order = np.argsort(out_dsts, kind="stable")
    counts = np.bincount(out_dsts, minlength=dst_nv)
    in_indptr = np.zeros(dst_nv + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=in_indptr[1:])
    return in_indptr, srcs[order]


class AnalysisClock:
    """Accumulated modeled analysis time, split for Amdahl scaling."""

    __slots__ = ("par_ns", "ser_ns")

    def __init__(self) -> None:
        self.par_ns = 0.0
        self.ser_ns = 0.0

    def charge(self, ns: float, serial_fraction: float = 0.0) -> None:
        self.ser_ns += ns * serial_fraction
        self.par_ns += ns * (1.0 - serial_fraction)

    def seconds(self, threads: int = 1) -> float:
        return (self.ser_ns + self.par_ns / max(1, threads)) * 1e-9

    def reset(self) -> None:
        self.par_ns = 0.0
        self.ser_ns = 0.0


@dataclass(frozen=True)
class StorageGeometry:
    """How expensive it is to read edges out of one framework's layout."""

    name: str
    #: stream cost per byte of edge payload (PM or DRAM rate).
    seq_ns_per_byte: float = costs.PM_SEQ_NS_PER_BYTE
    #: bytes read per edge during streams (>= the 4 B id when headers /
    #: padding are interleaved, e.g. BAL's 256 B blocks at partial fill).
    edge_bytes: float = costs.EDGE_BYTES
    #: multiplier on streamed bytes during full scans (PMA gaps, version
    #: padding); 0.3 means 30% extra bytes.
    scan_overhead: float = 0.0
    #: random accesses per vertex during a full scan (fragment chains,
    #: per-vertex head lookups that miss cache) and their latency.
    scan_rnd_per_vertex: float = 0.0
    scan_rnd_ns: float = costs.PM_RND_NS
    #: random accesses per vertex during frontier expansion (one per
    #: vertex for a flat CSR; more for block/fragment chains).
    frontier_rnd_per_vertex: float = 1.0
    frontier_rnd_ns: float = costs.PM_RND_NS
    #: extra random 12 B reads per edge during *frontier* access (DGAP's
    #: pending edge-log back-pointer walks).  Full scans read the logs
    #: sequentially instead — fold those bytes into ``scan_overhead``.
    chain_rnd_per_edge: float = 0.0
    chain_rnd_ns: float = costs.PM_RND_NS

    def scan_ns(self, n_vertices: int, n_edges: int) -> float:
        ns = n_edges * self.edge_bytes * (1.0 + self.scan_overhead) * self.seq_ns_per_byte
        ns += n_vertices * self.scan_rnd_per_vertex * self.scan_rnd_ns
        return ns

    def frontier_ns(self, n_vertices: int, n_edges: int) -> float:
        ns = n_vertices * self.frontier_rnd_per_vertex * self.frontier_rnd_ns
        ns += n_edges * self.edge_bytes * self.seq_ns_per_byte
        ns += n_edges * self.chain_rnd_per_edge * self.chain_rnd_ns
        return ns


class BaseGraphView(ABC):
    """Storage-aware view: CSR materialization + access-cost accounting.

    Derived arrays (the in-CSR, out-degrees, the repeated-id arrays the
    kernels need) live in a ``_derived`` dict that clones of a view
    *share*: running PR then BFS on views of the same unchanged graph
    builds the in-CSR once.  The :class:`AnalysisClock` is per-view, so
    one caller's ``reset_clock`` never disturbs another's accounting.
    """

    geometry: StorageGeometry

    def __init__(self, derived: Optional[Dict[str, object]] = None) -> None:
        self.clock = AnalysisClock()
        self._derived: Dict[str, object] = {} if derived is None else derived

    # -- structure ---------------------------------------------------------
    @property
    @abstractmethod
    def num_vertices(self) -> int: ...

    @property
    def num_edges(self) -> int:
        """Edge count — does not force CSR materialization when the
        subclass can count cheaply (:meth:`_count_edges`)."""
        ne = self._derived.get("num_edges")
        if ne is None:
            ne = self._count_edges()
            self._derived["num_edges"] = ne
        return ne  # type: ignore[return-value]

    def _count_edges(self) -> int:
        indptr, _ = self.out_csr()
        return int(indptr[-1])

    @abstractmethod
    def _materialize_out(self) -> Tuple[np.ndarray, np.ndarray]:
        """(indptr, dsts) of the graph this view exposes."""

    def out_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        out = self._derived.get("out")
        if out is None:
            out = self._materialize_out()
            self._derived["out"] = out
        return out  # type: ignore[return-value]

    def in_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        inn = self._derived.get("in")
        if inn is None:
            indptr, dsts = self.out_csr()
            inn = build_in_csr(indptr, dsts, self.num_vertices)
            self._derived["in"] = inn
        return inn  # type: ignore[return-value]

    def out_degrees(self) -> np.ndarray:
        deg = self._derived.get("out_degrees")
        if deg is None:
            indptr, _ = self.out_csr()
            deg = np.diff(indptr)
            self._derived["out_degrees"] = deg
        return deg  # type: ignore[return-value]

    def out_src_ids(self) -> np.ndarray:
        """Source id of every out-CSR entry, cached.

        Derived id arrays are ``np.intp`` (not ``ID_DTYPE``): the kernels
        use them as fancy-index/scatter operands every iteration, and
        NumPy re-casts any other integer dtype to ``intp`` per call.
        """
        ids = self._derived.get("out_src_ids")
        if ids is None:
            ids = np.repeat(
                np.arange(self.num_vertices, dtype=np.intp), self.out_degrees()
            )
            self._derived["out_src_ids"] = ids
        return ids  # type: ignore[return-value]

    def in_dst_ids(self) -> np.ndarray:
        """Destination id of every in-CSR entry (``np.intp``, see
        :meth:`out_src_ids`), cached."""
        ids = self._derived.get("in_dst_ids")
        if ids is None:
            in_indptr, _ = self.in_csr()
            ids = np.repeat(
                np.arange(self.num_vertices, dtype=np.intp), np.diff(in_indptr)
            )
            self._derived["in_dst_ids"] = ids
        return ids  # type: ignore[return-value]

    # -- accounting ---------------------------------------------------------------
    def account_full_scan(self, serial_fraction: float = 0.02) -> None:
        ne = self.num_edges
        ns = self.geometry.scan_ns(self.num_vertices, ne)
        ns += ne * costs.COMPUTE_NS_PER_EDGE
        self.clock.charge(ns, serial_fraction)

    def account_frontier(
        self, n_vertices: int, n_edges: int, serial_fraction: float = 0.02
    ) -> None:
        ns = self.geometry.frontier_ns(n_vertices, n_edges)
        ns += n_edges * costs.COMPUTE_NS_PER_EDGE
        self.clock.charge(ns, serial_fraction)

    def account_partial_scan(
        self, n_vertices: int, n_edges: int, serial_fraction: float = 0.02
    ) -> None:
        """Level-ordered sweep over a subgraph (BC's backward pass): the
        vertices are processed in bulk, so the access pattern costs like
        a scan over that part of the graph, not like random probes."""
        ns = self.geometry.scan_ns(n_vertices, n_edges)
        ns += n_edges * costs.COMPUTE_NS_PER_EDGE
        self.clock.charge(ns, serial_fraction)

    def account_compute(self, nbytes: int, serial_fraction: float = 0.02) -> None:
        """Kernel-side DRAM traffic not proportional to edges (frontier
        bitmaps, per-level bookkeeping) — identical across frameworks."""
        self.clock.charge(nbytes * costs.DRAM_SEQ_NS_PER_BYTE, serial_fraction)

    # -- results --------------------------------------------------------------------
    def seconds(self, threads: int = 1) -> float:
        return self.clock.seconds(threads)

    def reset_clock(self) -> None:
        self.clock.reset()


#: flat CSR on persistent memory — the analysis-optimal baseline.
CSR_PM_GEOMETRY = StorageGeometry(name="csr-pm")


class CSRArraysView(BaseGraphView):
    """A view over explicit (indptr, dsts) arrays with a given geometry."""

    def __init__(
        self,
        indptr: np.ndarray,
        dsts: np.ndarray,
        geometry: StorageGeometry = CSR_PM_GEOMETRY,
        derived: Optional[Dict[str, object]] = None,
    ):
        super().__init__(derived)
        self._indptr = indptr
        self._dsts = dsts
        self.geometry = geometry

    @property
    def num_vertices(self) -> int:
        return len(self._indptr) - 1

    def _count_edges(self) -> int:
        return int(self._indptr[-1])

    def _materialize_out(self):
        return self._indptr, self._dsts

    def clone(self) -> "CSRArraysView":
        """Fresh view (own clock) sharing this view's arrays and derived
        cache — the epoch-keyed whole-view reuse handed out by
        :meth:`repro.baselines.interfaces.DynamicGraphSystem.analysis_view`."""
        return CSRArraysView(
            self._indptr, self._dsts, self.geometry, derived=self._derived
        )


__all__ = [
    "AnalysisClock",
    "BaseGraphView",
    "CSRArraysView",
    "StorageGeometry",
    "CSR_PM_GEOMETRY",
    "ID_DTYPE",
    "INDPTR_DTYPE",
    "build_in_csr",
    "build_in_csr_from",
]
