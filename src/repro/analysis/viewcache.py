"""Incremental CSR maintenance for DGAP analysis views.

``DGAPSystem.analysis_view()`` historically rematerialized the whole
out-CSR from the snapshot and rebuilt the in-CSR with an ``O(E log E)``
argsort on every call — even when only a handful of PMA sections
changed since the last analysis round.  :class:`DGAPViewCache` keeps the
last materialized ``(out_indptr, out_dsts)`` / ``(in_indptr, in_srcs)``
pair and, on the next call, rebuilds only what the structure epochs say
moved:

* **stale vertices** — a vertex is stale iff any *dirty* section (one
  stamped after the cache's materialization epoch) intersects its
  current run span ``[start-1, start+array_degree]`` (pivot included).
  Every DGAP mutation that can affect a row — gap insert, edge-log
  append, shift, rebalance window, resize, tombstone — stamps a section
  inside the span, so clean vertices' cached rows are exact.
* **out-CSR patch** — clean rows are gathered from the previous arrays,
  stale rows re-materialized from the snapshot
  (:meth:`~repro.core.snapshot.DGAPSnapshot.materialize_rows`).
* **in-CSR delta merge** — old entries whose source went stale are
  dropped; the stale rows' edges are counting-sorted by destination
  (NumPy's stable integer argsort is a radix sort over the *delta
  only*) and merged in one ``searchsorted`` pass on the combined
  ``dst * nv + src`` key.  Because every source is either wholly stale
  or wholly clean, no key collides across the two groups and the result
  is bit-identical to :func:`~repro.analysis.view.build_in_csr`'s full
  stable sort — which matters because PR's ``bincount`` float summation
  order follows ``in_srcs`` order.

When most of the graph moved (resize stamps everything) patching would
touch nearly every row anyway, so the cache falls back to a full
rebuild above :data:`FULL_REBUILD_STALE_FRACTION`.

None of this changes modeled analysis time: materialization reads the
simulated arrays without accounting (as the from-scratch path always
has), and kernels charge the same geometry-derived costs either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..nputil import multi_arange
from ..obs.tracer import annotate, trace
from .view import ID_DTYPE, INDPTR_DTYPE, build_in_csr_from

#: stale-vertex share above which patching loses to a from-scratch
#: rebuild (a resize stamps every section, so this also catches
#: generation switches).
FULL_REBUILD_STALE_FRACTION = 0.9

CSRPair = Tuple[np.ndarray, np.ndarray]


@dataclass
class ViewCacheStats:
    """Materialization counters — the incrementality evidence."""

    #: materializations served entirely from scratch (includes the first).
    full_rebuilds: int = 0
    #: materializations that patched only stale rows.
    incremental_builds: int = 0
    #: dirty sections covered by rebuilds (== n_sections for a full one).
    sections_rebuilt: int = 0
    #: vertices whose rows were re-materialized.
    vertices_rebuilt: int = 0
    #: clean rows copied over from the previous materialization.
    rows_reused: int = 0
    #: delta edges merged into the in-CSR (incremental builds only).
    delta_edges_merged: int = 0
    #: superseded in-CSR entries dropped before the merge.
    in_entries_dropped: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "full_rebuilds": self.full_rebuilds,
            "incremental_builds": self.incremental_builds,
            "sections_rebuilt": self.sections_rebuilt,
            "vertices_rebuilt": self.vertices_rebuilt,
            "rows_reused": self.rows_reused,
            "delta_edges_merged": self.delta_edges_merged,
            "in_entries_dropped": self.in_entries_dropped,
        }


class DGAPViewCache:
    """Epoch-versioned (out, in) CSR cache for one :class:`~repro.core.dgap.DGAP`.

    ``id_stride`` / ``row_ids`` generalize the cache for sharded builds
    (:mod:`repro.sharding`): out-CSR row ``i`` carries the source id
    ``row_ids(nv)[i]`` in the in-CSR (ids must ascend, with
    ``id == i * id_stride + something < id_stride`` so the inverse is a
    floor division), and the in-CSR destination domain can be widened to
    a caller-supplied ``dst_nv`` (the *global* vertex count).  The
    defaults — stride 1, identity ids, ``dst_nv=None`` — reproduce the
    unsharded behavior exactly.
    """

    def __init__(self, graph, id_stride: int = 1, row_ids=None) -> None:
        self.graph = graph
        self.stats = ViewCacheStats()
        self.id_stride = int(id_stride)
        self.row_ids = row_ids
        self._out: Optional[CSRPair] = None
        self._in: Optional[CSRPair] = None
        self._epoch = -1
        self._nv = 0
        self._dst_nv = 0

    def _row_ids(self, nv: int) -> np.ndarray:
        if self.row_ids is None:
            return np.arange(nv, dtype=ID_DTYPE)
        return np.asarray(self.row_ids(nv), dtype=ID_DTYPE)

    # -- entry point -------------------------------------------------------
    def materialize(self, snap, dst_nv: Optional[int] = None) -> Tuple[CSRPair, CSRPair]:
        """Current ``((out_indptr, out_dsts), (in_indptr, in_srcs))``.

        ``snap`` must be an open :class:`DGAPSnapshot` of ``self.graph``
        taken at the current structure epoch.  The returned arrays are
        owned by the cache and shared with analysis views; they are
        never mutated afterwards (each refresh allocates new ones).
        ``dst_nv`` widens the in-CSR destination domain (sharded builds
        pass the global vertex count); it must not shrink between calls.
        """
        g = self.graph
        epoch = int(g.structure_epoch)
        nv = snap.num_vertices
        if dst_nv is None:
            dst_nv = nv
        with trace("view_materialize"):
            if self._out is None:
                annotate(mode="full")
                out, inn = self._full_build(snap, nv, dst_nv)
            else:
                dirty = g.sections_dirty_since(self._epoch)
                stale = self._stale_vertices(dirty, nv)
                n_stale = int(stale.sum())
                if n_stale == 0 and nv == self._nv:
                    # Epoch moved but nothing a view can observe changed
                    # (the destination domain may still have grown via
                    # other shards — extend the in-indptr with empties).
                    annotate(mode="reuse")
                    out, inn = self._out, self._in
                    if dst_nv != self._dst_nv:
                        inn = (_extend_indptr(inn[0], dst_nv), inn[1])
                    self.stats.incremental_builds += 1
                    self.stats.rows_reused += nv
                elif n_stale >= FULL_REBUILD_STALE_FRACTION * nv:
                    annotate(mode="full")
                    out, inn = self._full_build(snap, nv, dst_nv)
                else:
                    annotate(mode="incremental", stale_vertices=n_stale)
                    self.stats.incremental_builds += 1
                    self.stats.sections_rebuilt += int(np.count_nonzero(dirty))
                    self.stats.vertices_rebuilt += n_stale
                    self.stats.rows_reused += nv - n_stale
                    stale_vids = np.flatnonzero(stale)
                    out, s_counts, s_dsts = self._patch_out(snap, nv, stale, stale_vids)
                    inn = self._merge_in(
                        nv, dst_nv, stale, stale_vids, s_counts, s_dsts
                    )
        self._out, self._in = out, inn
        self._epoch, self._nv, self._dst_nv = epoch, nv, dst_nv
        return out, inn

    # -- staleness ---------------------------------------------------------
    def _stale_vertices(self, dirty: np.ndarray, nv: int) -> np.ndarray:
        """Vertices whose current run span intersects a dirty section."""
        g = self.graph
        stale = np.zeros(nv, dtype=bool)
        if dirty.any():
            va = g.va
            starts = va.start[:nv]
            adeg = va.array_degree[:nv]
            S = g.ea.segment_slots
            sec_lo = (starts - 1) // S  # pivot's section
            sec_hi = (starts + adeg - 1) // S  # last run slot (== pivot if empty)
            cum = np.concatenate(([0], np.cumsum(dirty)))
            stale = cum[sec_hi + 1] > cum[sec_lo]
        if self._nv < nv:
            stale[self._nv :] = True  # vertices born after the cached build
        return stale

    # -- out-CSR -----------------------------------------------------------
    def _full_build(self, snap, nv: int, dst_nv: int) -> Tuple[CSRPair, CSRPair]:
        self.stats.full_rebuilds += 1
        self.stats.sections_rebuilt += int(self.graph.ea.n_sections)
        self.stats.vertices_rebuilt += nv
        out = snap.to_csr()
        inn = build_in_csr_from(out[0], out[1], self._row_ids(nv), dst_nv)
        return out, inn

    def _patch_out(
        self, snap, nv: int, stale: np.ndarray, stale_vids: np.ndarray
    ) -> Tuple[CSRPair, np.ndarray, np.ndarray]:
        prev_indptr, prev_dsts = self._out  # type: ignore[misc]
        prev_counts = np.diff(prev_indptr)
        clean_vids = np.flatnonzero(~stale)  # all < self._nv by construction
        s_counts, s_dsts = snap.materialize_rows(stale_vids)

        counts = np.empty(nv, dtype=np.int64)
        counts[clean_vids] = prev_counts[clean_vids]
        counts[stale_vids] = s_counts
        indptr = np.zeros(nv + 1, dtype=INDPTR_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        dsts = np.empty(int(indptr[-1]), dtype=ID_DTYPE)
        src_idx = multi_arange(prev_indptr[clean_vids], prev_counts[clean_vids])
        dst_idx = multi_arange(indptr[:-1][clean_vids], counts[clean_vids])
        if src_idx.size:
            dsts[dst_idx] = prev_dsts[src_idx]
        s_idx = multi_arange(indptr[:-1][stale_vids], s_counts)
        if s_idx.size:
            dsts[s_idx] = s_dsts
        return (indptr, dsts), s_counts, s_dsts

    # -- in-CSR ------------------------------------------------------------
    def _merge_in(
        self,
        nv: int,
        dst_nv: int,
        stale: np.ndarray,
        stale_vids: np.ndarray,
        s_counts: np.ndarray,
        s_dsts: np.ndarray,
    ) -> CSRPair:
        prev_in_indptr, prev_in_srcs = self._in  # type: ignore[misc]
        prev_dst_nv = prev_in_indptr.size - 1
        old_dst = np.repeat(
            np.arange(prev_dst_nv, dtype=np.int64), np.diff(prev_in_indptr)
        )
        # prev_in_srcs carry source *ids* (global under sharding); the
        # stale mask is indexed by local row.
        if self.id_stride == 1 and self.row_ids is None:
            keep = ~stale[prev_in_srcs]
        else:
            keep = ~stale[prev_in_srcs // self.id_stride]
        ko_dst = old_dst[keep]
        ko_src = prev_in_srcs[keep]
        self.stats.in_entries_dropped += int(prev_in_srcs.size - ko_src.size)

        # Counting-sort the delta by destination: a stable integer
        # argsort over the delta only (NumPy radix-sorts ints) — never a
        # full-graph sort.
        delta_src = np.repeat(self._row_ids(nv)[stale_vids], s_counts)
        order = np.argsort(s_dsts, kind="stable")
        kd_dst = s_dsts[order].astype(np.int64)
        kd_src = delta_src[order]
        self.stats.delta_edges_merged += int(kd_src.size)

        # Single merge pass on the (dst, src) key.  Sources are wholly
        # stale or wholly clean, so no key appears in both sides and the
        # merged order is exactly build_in_csr's (dst, src, insertion)
        # order — bit-identical in_srcs.  The multiplier only has to
        # exceed every source id; ``dst_nv`` does (ids live in the
        # destination domain), and it equals ``nv`` when unsharded.
        ko_key = ko_dst * dst_nv + ko_src
        kd_key = kd_dst * dst_nv + kd_src
        pos_d = np.searchsorted(ko_key, kd_key, side="left") + np.arange(kd_key.size)
        total = ko_key.size + kd_key.size
        in_srcs = np.empty(total, dtype=ID_DTYPE)
        old_mask = np.ones(total, dtype=bool)
        old_mask[pos_d] = False
        in_srcs[pos_d] = kd_src
        in_srcs[old_mask] = ko_src

        counts = np.bincount(ko_dst, minlength=dst_nv) + np.bincount(
            kd_dst, minlength=dst_nv
        )
        in_indptr = np.zeros(dst_nv + 1, dtype=INDPTR_DTYPE)
        np.cumsum(counts, out=in_indptr[1:])
        return in_indptr, in_srcs


def _extend_indptr(indptr: np.ndarray, dst_nv: int) -> np.ndarray:
    """Widen an in-indptr to a grown destination domain (empty tail rows)."""
    if indptr.size == dst_nv + 1:
        return indptr
    ext = np.full(dst_nv + 1 - indptr.size, indptr[-1], dtype=INDPTR_DTYPE)
    return np.concatenate((indptr, ext))


__all__ = ["DGAPViewCache", "ViewCacheStats", "FULL_REBUILD_STALE_FRACTION"]
