"""Zipfian-skewed read/write op streams for the serving layer.

The generator is fully seeded: the same :class:`ServeWorkloadConfig`
always yields the same op stream, so latency reports and the
byte-identity twin are reproducible run to run.

Key choices:

* **Hot-key skew** — vertex picks follow a bounded Zipfian
  (``P(rank r) ∝ r^-theta``), with ranks scattered over the id space
  through a seeded permutation so hot vertices don't cluster at low
  ids (which would bias them into shard 0 under block-mixed striping).
* **Deletes hit live edges only** — the generator mirrors the live
  adjacency multiset and only emits tombstones for edges it knows are
  present.  Every tombstone therefore cancels exactly one stored
  occurrence, keeping ``live_degree`` equal to the visible row length —
  the invariant that makes served degrees (indptr diffs) comparable to
  snapshot degrees.
* **Write ops are batches** — each write op carries one
  :class:`~repro.core.batch.EdgeBatch` mixing inserts with tombstones,
  the unit the ingest path already streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..core.batch import EdgeBatch

#: default read-class mix (weights, normalized at use).
DEFAULT_READ_MIX: Tuple[Tuple[str, float], ...] = (
    ("degree", 0.25),
    ("neighbors", 0.40),
    ("edge_exists", 0.20),
    ("k_hop", 0.10),
    ("top_k_degree", 0.05),
)


@dataclass
class ServeWorkloadConfig:
    """Knobs for one generated op stream (all seeded)."""

    n_ops: int = 2000
    #: fraction of ops that are reads (the rest are write batches).
    read_fraction: float = 0.9
    read_mix: Tuple[Tuple[str, float], ...] = DEFAULT_READ_MIX
    #: Zipfian skew exponent (0 = uniform; 0.99 = YCSB default).
    zipf_theta: float = 0.99
    k_hop_depth: int = 2
    top_k: int = 8
    #: edges per write op.
    write_batch: int = 64
    #: share of a write batch emitted as tombstones (of live edges).
    delete_fraction: float = 0.15
    #: closed-loop client count.
    n_clients: int = 8
    #: "closed" (think-free clients) or "open" (Poisson arrivals).
    mode: str = "closed"
    #: open-loop offered load.
    arrival_rate_ops_per_s: float = 200_000.0
    seed: int = 0


class ZipfianSampler:
    """Bounded Zipfian over ``n`` ids via inverse-CDF ``searchsorted``.

    ``theta <= 0`` degenerates to uniform.  A seeded permutation maps
    popularity ranks to ids so the hot set is spread across the id
    space (and, downstream, across shards).
    """

    def __init__(self, n: int, theta: float, rng: np.random.Generator) -> None:
        if n <= 0:
            raise ValueError("ZipfianSampler needs n >= 1")
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-float(theta)) if theta > 0 else np.ones(n)
        cdf = np.cumsum(weights)
        self._cdf = cdf / cdf[-1]
        self._perm = rng.permutation(n)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        u = rng.random(size)
        return self._perm[np.searchsorted(self._cdf, u, side="left")]

    def one(self, rng: np.random.Generator) -> int:
        return int(self.sample(rng, 1)[0])


def generate_workload(num_vertices: int, config: ServeWorkloadConfig) -> List[tuple]:
    """Seeded op stream: ``("degree", v)``, ``("neighbors", v)``,
    ``("edge_exists", u, w)``, ``("k_hop", v, depth)``,
    ``("top_k_degree", k)`` and ``("write", EdgeBatch)`` tuples.

    The mirror adjacency starts empty: run the stream against a graph
    whose pre-loaded edges the generator does not delete, or start
    empty — either way tombstones only ever target edges this stream
    itself inserted, so they always cancel a live occurrence.
    """
    rng = np.random.default_rng(config.seed)
    zipf = ZipfianSampler(num_vertices, config.zipf_theta, rng)
    classes = [name for name, _ in config.read_mix]
    weights = np.array([w for _, w in config.read_mix], dtype=np.float64)
    weights /= weights.sum()

    # live multiset mirror: src -> list of currently-live destinations
    live: Dict[int, List[int]] = {}
    live_srcs: List[int] = []  # srcs with at least one live edge

    ops: List[tuple] = []
    for _ in range(config.n_ops):
        if rng.random() < config.read_fraction:
            cls = classes[int(rng.choice(len(classes), p=weights))]
            if cls == "degree" or cls == "neighbors":
                ops.append((cls, zipf.one(rng)))
            elif cls == "edge_exists":
                u = zipf.one(rng)
                row = live.get(u)
                if row and rng.random() < 0.5:
                    w = row[int(rng.integers(len(row)))]  # likely-present probe
                else:
                    w = zipf.one(rng)
                ops.append((cls, u, w))
            elif cls == "k_hop":
                ops.append((cls, zipf.one(rng), config.k_hop_depth))
            else:
                ops.append(("top_k_degree", config.top_k))
        else:
            srcs = np.empty(config.write_batch, dtype=np.int64)
            dsts = np.empty(config.write_batch, dtype=np.int64)
            tombs = np.zeros(config.write_batch, dtype=bool)
            for j in range(config.write_batch):
                if live_srcs and rng.random() < config.delete_fraction:
                    s = live_srcs[int(rng.integers(len(live_srcs)))]
                    row = live[s]
                    d = row.pop(int(rng.integers(len(row))))
                    if not row:
                        del live[s]
                        live_srcs.remove(s)
                    srcs[j], dsts[j], tombs[j] = s, d, True
                else:
                    s, d = zipf.one(rng), zipf.one(rng)
                    if s not in live:
                        live[s] = []
                        live_srcs.append(s)
                    live[s].append(d)
                    srcs[j], dsts[j], tombs[j] = s, d, False
            ops.append(("write", EdgeBatch(srcs, dsts, tombs, validate=False)))
    return ops


__all__ = [
    "DEFAULT_READ_MIX",
    "ServeWorkloadConfig",
    "ZipfianSampler",
    "generate_workload",
]
