"""Replay a serve op stream on the modeled clock; twin byte-identity.

The driver executes one generated op stream (:func:`~repro.serve.
workload.generate_workload`) against a live graph:

* **writes** go down the real ingest path (``insert_edges``) and are
  serialized on a single writer lane; their service time is the PM
  device's modeled-clock delta, exactly as the vthreads scheduler
  accounts ingest.
* **reads** acquire a :class:`~repro.serve.server.ServeView` (paying
  the epoch check, or the refresh when a write moved the epoch) and run
  wait-free — the arrays they read are immutable, so reads never queue
  behind writes or each other.

Two load models share the loop: **closed** (``n_clients`` think-free
clients with per-client clocks, as in
:class:`~repro.workloads.vthreads.VirtualThreadScheduler`) and **open**
(seeded Poisson arrivals at ``arrival_rate_ops_per_s``; latency is
completion minus arrival, so queueing at the writer lane shows up in
write tails).

With ``twin_check=True`` every read also runs against
:class:`SnapshotReader` — the pre-serving behavior of opening a fresh
Degree-Cache snapshot per query — and the results are compared
byte-for-byte.  That twin is both the correctness oracle (served reads
must equal direct snapshot reads at every stream point) and the
baseline for the view-reuse speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.view import ID_DTYPE
from ..obs.tracer import annotate, trace
from .server import (
    QueryServer,
    degree_ns,
    k_hop_ns,
    row_ns,
    scan_ns,
    snapshot_open_ns,
    top_k_from_degrees,
    top_k_ns,
)
from .workload import ServeWorkloadConfig

QUERY_CLASSES: Tuple[str, ...] = (
    "degree",
    "neighbors",
    "edge_exists",
    "k_hop",
    "top_k_degree",
)


class SnapshotReader:
    """The pre-serving read path: a fresh snapshot per query.

    Implements the same query surface as :class:`~repro.serve.server.
    ServeView`, but every call opens (and releases) a Degree-Cache
    snapshot — per owner shard for point queries, per every shard for
    the global ones — and pays :func:`snapshot_open_ns` on top of the
    identical read cost.  The twin runner uses it as the byte-identity
    oracle and the speedup baseline.
    """

    def __init__(self, graph) -> None:
        self.graph = graph
        self.sharded = hasattr(graph, "shards")
        self.last_query_ns = 0.0

    # -- helpers -----------------------------------------------------------
    def _owner(self, v: int):
        """(shard graph, local id) for a global vertex."""
        if not self.sharded:
            return self.graph, int(v)
        from ..sharding.partition import to_local

        return self.graph.shard_for(int(v)), to_local(int(v), self.graph.n_shards)

    # -- queries -----------------------------------------------------------
    def degree(self, v: int) -> int:
        host, lv = self._owner(v)
        with host.consistent_view() as snap:
            self.last_query_ns = snapshot_open_ns(snap.num_vertices) + degree_ns()
            return snap.out_degree(lv)

    def neighbors(self, v: int) -> np.ndarray:
        host, lv = self._owner(v)
        with host.consistent_view() as snap:
            row = snap.out_neighbors(lv)
            self.last_query_ns = snapshot_open_ns(snap.num_vertices) + row_ns(row.size)
            return row

    def edge_exists(self, u: int, w: int) -> bool:
        host, lu = self._owner(u)
        with host.consistent_view() as snap:
            row = snap.out_neighbors(lu)
            hits = np.flatnonzero(row == w)
            found = hits.size > 0
            scanned = int(hits[0]) + 1 if found else row.size
            self.last_query_ns = snapshot_open_ns(snap.num_vertices) + scan_ns(scanned)
            return found

    def k_hop(self, v: int, k: int) -> np.ndarray:
        snaps, open_ns, owner = self._open_all()
        try:
            nv = self.graph.num_vertices
            visited = np.zeros(nv, dtype=bool)
            visited[int(v)] = True
            frontier = np.array([int(v)], dtype=ID_DTYPE)
            parts: List[np.ndarray] = []
            frontier_total = 0
            edges_total = 0
            for _ in range(int(k)):
                if frontier.size == 0:
                    break
                rows = [owner(int(u)).out_neighbors(self._local(int(u))) for u in frontier]
                nbrs = np.concatenate(rows) if rows else np.empty(0, dtype=ID_DTYPE)
                frontier_total += frontier.size
                edges_total += nbrs.size
                fresh = np.unique(nbrs[~visited[nbrs]]).astype(ID_DTYPE)
                visited[fresh] = True
                parts.append(fresh)
                frontier = fresh
            self.last_query_ns = open_ns + k_hop_ns(frontier_total, edges_total)
            if not parts:
                return np.empty(0, dtype=ID_DTYPE)
            return np.sort(np.concatenate(parts)).astype(ID_DTYPE)
        finally:
            for snap in snaps:
                snap.release()

    def top_k_degree(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        nv = self.graph.num_vertices
        if not self.sharded:
            with self.graph.consistent_view() as snap:
                degrees = snap.live_t[:nv].astype(np.int64)
                open_ns = snapshot_open_ns(nv)
        else:
            from ..sharding.partition import local_count, local_ids_to_global

            n = self.graph.n_shards
            degrees = np.empty(nv, dtype=np.int64)
            open_ns = 0.0
            for r, sh in enumerate(self.graph.shards):
                lc = local_count(nv - 1, r, n)
                with sh.consistent_view() as snap:
                    degrees[local_ids_to_global(lc, r, n)] = snap.live_t[:lc]
                open_ns = max(open_ns, snapshot_open_ns(lc))
        self.last_query_ns = open_ns + top_k_ns(nv, k)
        return top_k_from_degrees(degrees, k)

    # -- snapshot plumbing -------------------------------------------------
    def _local(self, v: int) -> int:
        if not self.sharded:
            return v
        from ..sharding.partition import to_local

        return to_local(v, self.graph.n_shards)

    def _open_all(self):
        """Open snapshots covering the whole graph (global queries).

        Returns ``(snaps, open_ns, owner)`` where ``owner(v)`` maps a
        global vertex to the snapshot holding its row; ``open_ns`` is
        the parallel (max-over-shards) open cost.
        """
        if not self.sharded:
            snap = self.graph.consistent_view()
            return [snap], snapshot_open_ns(snap.num_vertices), lambda v: snap
        from ..sharding.partition import shard_of

        n = self.graph.n_shards
        snaps = [sh.consistent_view() for sh in self.graph.shards]
        open_ns = max(snapshot_open_ns(s.num_vertices) for s in snaps)
        return snaps, open_ns, lambda v: snaps[shard_of(v, n)]


@dataclass
class ServeReport:
    """Per-class modeled latencies plus twin/identity evidence."""

    mode: str
    n_clients: int
    ops: int = 0
    reads: int = 0
    writes: int = 0
    #: served-arm modeled latency samples (ns) per class ("write" incl.).
    latencies: Dict[str, List[float]] = field(default_factory=dict)
    #: direct fresh-snapshot arm samples (ns), twin runs only.
    snapshot_latencies: Optional[Dict[str, List[float]]] = None
    makespan_ns: float = 0.0
    refreshes: int = 0
    reuses: int = 0
    served_read_ns: float = 0.0
    snapshot_read_ns: float = 0.0
    wall_served_s: float = 0.0
    wall_snapshot_s: float = 0.0
    identity_checked: bool = False
    mismatches: int = 0

    @property
    def identity_ok(self) -> bool:
        return self.identity_checked and self.mismatches == 0

    @property
    def reuse_ratio(self) -> float:
        total = self.refreshes + self.reuses
        return self.reuses / total if total else 0.0

    @property
    def modeled_read_speedup(self) -> float:
        """Direct-snapshot read time over served read time (modeled)."""
        return self.snapshot_read_ns / self.served_read_ns if self.served_read_ns else 0.0

    @property
    def wall_read_speedup(self) -> float:
        return self.wall_snapshot_s / self.wall_served_s if self.wall_served_s else 0.0

    def stats(self, arm: str = "served", unit: str = "us") -> Dict[str, Dict[str, float]]:
        """Per-class distribution stats (``p50`` … ``p99``) in ``unit``."""
        from ..bench.reporting import distribution_stats

        source = self.latencies if arm == "served" else (self.snapshot_latencies or {})
        scale = 1e-3 if unit == "us" else 1.0
        return {
            cls: distribution_stats(np.asarray(vals) * scale, unit=unit)
            for cls, vals in source.items()
            if vals
        }


def _run_query(reader, op: tuple):
    kind = op[0]
    if kind == "degree":
        return reader.degree(op[1])
    if kind == "neighbors":
        return reader.neighbors(op[1])
    if kind == "edge_exists":
        return reader.edge_exists(op[1], op[2])
    if kind == "k_hop":
        return reader.k_hop(op[1], op[2])
    if kind == "top_k_degree":
        return reader.top_k_degree(op[1])
    raise ValueError(f"unknown query op {kind!r}")


def _bytes_equal(a, b) -> bool:
    """Byte-level result identity (dtype-sensitive for arrays)."""
    if isinstance(a, np.ndarray):
        return (
            isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and a.shape == b.shape
            and a.tobytes() == b.tobytes()
        )
    if isinstance(a, tuple):
        return (
            isinstance(b, tuple)
            and len(a) == len(b)
            and all(_bytes_equal(x, y) for x, y in zip(a, b))
        )
    return type(a) is type(b) and a == b


def run_serve_workload(
    graph,
    ops: List[tuple],
    config: ServeWorkloadConfig,
    twin_check: bool = False,
) -> ServeReport:
    """Replay ``ops`` against ``graph``; return the latency report.

    Reads are served through one :class:`QueryServer`; writes stream
    down the ingest path on a serialized writer lane.  With
    ``twin_check`` every read also runs on the fresh-snapshot arm and
    must match byte-for-byte (``report.identity_ok``).
    """
    server = QueryServer(graph)
    direct = SnapshotReader(graph) if twin_check else None
    pool_stats = graph.pool.stats

    n_clients = max(1, int(config.n_clients))
    closed = config.mode != "open"
    clocks = np.zeros(n_clients, dtype=np.float64)
    if not closed:
        arr_rng = np.random.default_rng(config.seed + 1)
        mean_gap_ns = 1e9 / float(config.arrival_rate_ops_per_s)
        arrivals = np.cumsum(arr_rng.exponential(mean_gap_ns, size=len(ops)))
    writer_free = 0.0
    max_end = 0.0

    report = ServeReport(
        mode="closed" if closed else "open",
        n_clients=n_clients,
        latencies={cls: [] for cls in (*QUERY_CLASSES, "write")},
        snapshot_latencies=(
            {cls: [] for cls in QUERY_CLASSES} if twin_check else None
        ),
        identity_checked=twin_check,
    )

    for i, op in enumerate(ops):
        kind = op[0]
        t0 = clocks[i % n_clients] if closed else arrivals[i]
        if kind == "write":
            batch = op[1]
            with trace("serve_write", edges=len(batch)):
                before = pool_stats.snapshot()
                graph.insert_edges(batch, batch_size=None)
                service_ns = pool_stats.delta_since(before).modeled_ns
                start = max(t0, writer_free)
                end = start + service_ns
                writer_free = end
                latency = end - t0
                annotate(modeled_latency_ns=latency)
            report.latencies["write"].append(latency)
            report.writes += 1
        else:
            with trace(f"serve_{kind}"):
                w0 = time.perf_counter()
                view = server.acquire()
                result = _run_query(view, op)
                report.wall_served_s += time.perf_counter() - w0
                latency = server.last_acquire_ns + view.last_query_ns
                annotate(
                    acquire_ns=server.last_acquire_ns,
                    query_ns=view.last_query_ns,
                    modeled_latency_ns=latency,
                )
            end = t0 + latency
            report.latencies[kind].append(latency)
            report.served_read_ns += latency
            report.reads += 1
            if twin_check:
                w0 = time.perf_counter()
                reference = _run_query(direct, op)
                report.wall_snapshot_s += time.perf_counter() - w0
                report.snapshot_latencies[kind].append(direct.last_query_ns)
                report.snapshot_read_ns += direct.last_query_ns
                if not _bytes_equal(result, reference):
                    report.mismatches += 1
        if closed:
            clocks[i % n_clients] = end
        else:
            max_end = max(max_end, end)
        report.ops += 1

    report.refreshes = server.refreshes
    report.reuses = server.reuses
    report.makespan_ns = max(
        float(clocks.max()) if closed else max_end, writer_free
    )
    return report


__all__ = [
    "QUERY_CLASSES",
    "ServeReport",
    "SnapshotReader",
    "run_serve_workload",
]
