"""Snapshot-isolated query serving over epoch-versioned CSR views.

:class:`QueryServer` fronts a :class:`~repro.core.dgap.DGAP` or
:class:`~repro.sharding.sharded.ShardedDGAP` with the view-cache
machinery: ``acquire()`` returns an immutable :class:`ServeView` pinned
at the graph's current structure epoch(s).  While no write lands, every
acquire reuses the cached arrays (an epoch compare, no snapshot); after
a write, the next acquire re-materializes through
:class:`~repro.analysis.viewcache.DGAPViewCache` — which patches only
the stale rows — and hands out a *new* view.  Held views keep serving
the old arrays untouched: the cache allocates fresh arrays on every
refresh, so isolation needs no locks and no copies on the read path.

Modeled latency follows the analysis cost model
(:mod:`repro.analysis.costs`).  Served reads price against the
materialized DRAM CSR (DRAM probe + DRAM scan); the fresh-snapshot
path prices adjacency rows against the PM edge array and pays the two
O(nv) DRAM vector copies of a Degree-Cache snapshot on *every* query —
the terms the served path amortizes across an epoch's read burst.  A
refresh pays one snapshot open plus one PM probe per dirty section and
a sequential stream of the re-read edges.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..analysis.costs import (
    COMPUTE_NS_PER_EDGE,
    DRAM_RND_NS,
    DRAM_SEQ_NS_PER_BYTE,
    EDGE_BYTES,
    PM_RND_NS,
    PM_SEQ_NS_PER_BYTE,
)
from ..analysis.view import ID_DTYPE
from ..analysis.viewcache import DGAPViewCache
from ..errors import VertexRangeError

#: modeled cost of a same-epoch ``acquire()``: one DRAM read of the
#: epoch counter plus the compare.
EPOCH_CHECK_NS = DRAM_RND_NS

#: vertex-table entry width charged for snapshot vector copies
#: (degree + live_degree, 8 bytes each in the simulated layout).
_VT_ENTRY_BYTES = 8.0


# -- modeled query costs (shared by the served and snapshot arms) ---------

def snapshot_open_ns(nv: int) -> float:
    """Opening a Degree-Cache snapshot: two O(nv) DRAM vector copies."""
    return 2.0 * nv * _VT_ENTRY_BYTES * DRAM_SEQ_NS_PER_BYTE


def degree_ns() -> float:
    """One vertex-table (or indptr) random read."""
    return DRAM_RND_NS


def _edge_ns(pm: bool) -> float:
    seq = PM_SEQ_NS_PER_BYTE if pm else DRAM_SEQ_NS_PER_BYTE
    return EDGE_BYTES * seq + COMPUTE_NS_PER_EDGE


def _probe_ns(pm: bool) -> float:
    return PM_RND_NS if pm else DRAM_RND_NS


def row_ns(deg: int, pm: bool = True) -> float:
    """Fetch a full adjacency row: random probe + sequential scan.

    ``pm=True`` models the snapshot path (rows live in the PM edge
    array); ``pm=False`` the served path (rows live in the
    materialized DRAM CSR).
    """
    return _probe_ns(pm) + deg * _edge_ns(pm)


def scan_ns(scanned: int, pm: bool = True) -> float:
    """Membership scan that stopped after ``scanned`` entries."""
    return _probe_ns(pm) + scanned * _edge_ns(pm)


def k_hop_ns(frontier_vertices: int, edges_touched: int, pm: bool = True) -> float:
    """BFS expansion: one row probe per frontier vertex + edge scans."""
    return frontier_vertices * _probe_ns(pm) + edges_touched * _edge_ns(pm)


def top_k_ns(nv: int, k: int) -> float:
    """Degree-vector sweep (DRAM sequential) + k result reads."""
    return nv * _VT_ENTRY_BYTES * DRAM_SEQ_NS_PER_BYTE + k * DRAM_RND_NS


def top_k_from_degrees(degrees: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic top-k by ``(-degree, id)`` — shared by both arms."""
    nv = degrees.size
    k = min(int(k), nv)
    order = np.lexsort((np.arange(nv), -degrees))[:k]
    ids = order.astype(ID_DTYPE)
    return ids, degrees[order].astype(np.int64)


class ServeView:
    """Immutable read view pinned at one structure epoch.

    Wraps the out-CSR arrays a view cache materialized.  The arrays are
    never mutated after materialization (refreshes allocate new ones),
    so any number of readers can hold a view while writers advance the
    graph — reads are wait-free and see exactly the pinned epoch.

    Every query records its modeled cost in :attr:`last_query_ns`; the
    driver reads it immediately after the call to attribute latency.
    """

    __slots__ = ("epoch", "out_indptr", "out_dsts", "num_vertices", "last_query_ns")

    def __init__(self, epoch, out_indptr: np.ndarray, out_dsts: np.ndarray) -> None:
        self.epoch = epoch
        self.out_indptr = out_indptr
        self.out_dsts = out_dsts
        self.num_vertices = int(out_indptr.size - 1)
        self.last_query_ns = 0.0

    def _check(self, v: int) -> int:
        v = int(v)
        nv = self.num_vertices
        if not 0 <= v < nv:
            raise VertexRangeError(f"vertex {v} out of range [0, {nv})")
        return v

    def degree(self, v: int) -> int:
        v = self._check(v)
        self.last_query_ns = degree_ns()
        return int(self.out_indptr[v + 1] - self.out_indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        v = self._check(v)
        row = self.out_dsts[self.out_indptr[v] : self.out_indptr[v + 1]]
        self.last_query_ns = row_ns(row.size, pm=False)
        return row

    def edge_exists(self, u: int, w: int) -> bool:
        u = self._check(u)
        row = self.out_dsts[self.out_indptr[u] : self.out_indptr[u + 1]]
        hits = np.flatnonzero(row == w)
        found = hits.size > 0
        scanned = int(hits[0]) + 1 if found else row.size
        self.last_query_ns = scan_ns(scanned, pm=False)
        return found

    def k_hop(self, v: int, k: int) -> np.ndarray:
        """Vertices at distance 1..k from ``v`` (sorted, excludes ``v``)."""
        v = self._check(v)
        indptr, dsts = self.out_indptr, self.out_dsts
        visited = np.zeros(self.num_vertices, dtype=bool)
        visited[v] = True
        frontier = np.array([v], dtype=ID_DTYPE)
        parts: List[np.ndarray] = []
        frontier_total = 0
        edges_total = 0
        for _ in range(int(k)):
            if frontier.size == 0:
                break
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            idx = _multi_arange(starts, counts)
            nbrs = dsts[idx]
            frontier_total += frontier.size
            edges_total += nbrs.size
            fresh = np.unique(nbrs[~visited[nbrs]]).astype(ID_DTYPE)
            visited[fresh] = True
            parts.append(fresh)
            frontier = fresh
        self.last_query_ns = k_hop_ns(frontier_total, edges_total, pm=False)
        if not parts:
            return np.empty(0, dtype=ID_DTYPE)
        return np.sort(np.concatenate(parts)).astype(ID_DTYPE)

    def top_k_degree(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k ``(ids, degrees)`` by ``(-degree, id)``."""
        degrees = np.diff(self.out_indptr)
        self.last_query_ns = top_k_ns(self.num_vertices, k)
        return top_k_from_degrees(degrees, k)


def _multi_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    from ..nputil import multi_arange

    return multi_arange(np.asarray(starts, dtype=np.int64), np.asarray(counts, dtype=np.int64))


class QueryServer:
    """Serves :class:`ServeView` objects for a DGAP or ShardedDGAP.

    ``acquire()`` compares the graph's structure epoch(s) against the
    cached view and only re-materializes when a write moved them.  The
    modeled cost of each acquire lands in :attr:`last_acquire_ns`: an
    epoch check when reused, the snapshot + patch cost when refreshed —
    the driver charges it to the read that triggered the refresh.
    """

    def __init__(self, graph) -> None:
        self.graph = graph
        self.sharded = hasattr(graph, "shards")
        if self.sharded:
            from ..sharding.merge import ShardedViewCache

            self._cache = ShardedViewCache(graph)
        else:
            self._cache = DGAPViewCache(graph)
        self._view: Optional[ServeView] = None
        self.refreshes = 0
        self.reuses = 0
        self.last_acquire_ns = 0.0
        self.refresh_ns_total = 0.0

    # -- epochs ------------------------------------------------------------
    def current_epoch(self):
        g = self.graph
        if self.sharded:
            return tuple(int(sh.structure_epoch) for sh in g.shards)
        return int(g.structure_epoch)

    @property
    def view_epoch(self):
        return None if self._view is None else self._view.epoch

    # -- acquisition -------------------------------------------------------
    def acquire(self) -> ServeView:
        epoch = self.current_epoch()
        view = self._view
        if view is not None and view.epoch == epoch:
            self.reuses += 1
            self.last_acquire_ns = EPOCH_CHECK_NS
            return view
        view = self._refresh(epoch)
        self._view = view
        return view

    def _stat_snapshot(self):
        stats = self._cache.stats if self.sharded else [self._cache.stats]
        return [
            (s.full_rebuilds, s.sections_rebuilt, s.delta_edges_merged)
            for s in stats
        ]

    def _refresh(self, epoch) -> ServeView:
        self.refreshes += 1
        before = self._stat_snapshot()
        if self.sharded:
            (out_indptr, out_dsts), _ = self._cache.materialize()
            local_nvs = [
                int(c._nv) for c in self._cache.caches  # noqa: SLF001 — cost model input
            ]
        else:
            with self.graph.consistent_view() as snap:
                (out_indptr, out_dsts), _ = self._cache.materialize(snap)
            local_nvs = [int(out_indptr.size - 1)]
        after = self._stat_snapshot()
        cost = self._refresh_cost_ns(before, after, local_nvs, int(out_dsts.size))
        self.last_acquire_ns = cost
        self.refresh_ns_total += cost
        return ServeView(epoch, out_indptr, out_dsts)

    @staticmethod
    def _refresh_cost_ns(before, after, local_nvs, total_edges: int) -> float:
        """Modeled refresh: per-shard snapshot + patch (parallel max) + merge.

        Stale rows cluster in dirty PMA sections, so the PM traffic is
        one random probe per rebuilt *section* plus a sequential stream
        of the re-read edges — every edge for a full rebuild, only the
        stale rows' edges (``delta_edges_merged``) for an incremental
        one.  Sharded refreshes add the O(E) DRAM scatter/merge into
        the global layout.
        """
        n_shards = max(len(local_nvs), 1)
        per_shard = []
        for (b, a), nv in zip(zip(before, after), local_nvs):
            full = a[0] - b[0]
            sections = a[1] - b[1]
            streamed = total_edges / n_shards if full else a[2] - b[2]
            per_shard.append(
                snapshot_open_ns(nv)
                + sections * PM_RND_NS
                + streamed * EDGE_BYTES * PM_SEQ_NS_PER_BYTE
            )
        cost = max(per_shard) if per_shard else 0.0
        if n_shards > 1:
            cost += total_edges * EDGE_BYTES * DRAM_SEQ_NS_PER_BYTE
        return cost


__all__ = [
    "EPOCH_CHECK_NS",
    "QueryServer",
    "ServeView",
    "degree_ns",
    "row_ns",
    "scan_ns",
    "k_hop_ns",
    "top_k_ns",
    "top_k_from_degrees",
    "snapshot_open_ns",
]
