"""Online serving layer: snapshot-isolated point queries under writes.

The offline kernels (``repro.algorithms``) analyze a frozen snapshot;
this package serves *point queries* — ``degree``, ``neighbors``,
``edge_exists``, ``k_hop``, ``top_k_degree`` — from the same
epoch-versioned view machinery while writers stream ``EdgeBatch``
rounds underneath:

* :class:`~repro.serve.server.QueryServer` owns a
  :class:`~repro.analysis.viewcache.DGAPViewCache` (or the sharded
  merge cache) and hands out immutable :class:`~repro.serve.server.
  ServeView` objects pinned at a structure epoch — snapshot isolation
  for free, because a refresh allocates new arrays and never mutates
  the ones a held view references.
* :mod:`~repro.serve.workload` generates Zipfian-skewed, seeded
  read/write op streams (YCSB-style hot-key skew, deletes restricted
  to live edges so degree semantics stay exact).
* :mod:`~repro.serve.driver` replays an op stream on the modeled clock
  (per-client lanes closed-loop, Poisson arrivals open-loop), reports
  per-class modeled p50/p99 via ``repro.obs`` spans, and can run the
  byte-identity twin: every served read compared against a direct
  fresh-snapshot read of the same stream point.
"""

from .server import (
    EPOCH_CHECK_NS,
    QueryServer,
    ServeView,
    degree_ns,
    k_hop_ns,
    row_ns,
    scan_ns,
    snapshot_open_ns,
    top_k_ns,
)
from .workload import ServeWorkloadConfig, ZipfianSampler, generate_workload
from .driver import (
    QUERY_CLASSES,
    ServeReport,
    SnapshotReader,
    run_serve_workload,
)

__all__ = [
    "EPOCH_CHECK_NS",
    "QueryServer",
    "ServeView",
    "ServeWorkloadConfig",
    "ZipfianSampler",
    "generate_workload",
    "QUERY_CLASSES",
    "ServeReport",
    "SnapshotReader",
    "run_serve_workload",
    "degree_ns",
    "row_ns",
    "scan_ns",
    "k_hop_ns",
    "top_k_ns",
    "snapshot_open_ns",
]
