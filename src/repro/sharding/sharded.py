"""N independent DGAP instances behind one graph facade.

Each shard owns a residue class of the vertex space
(:mod:`repro.sharding.partition`), with its **own** :class:`PMemPool`,
section-lock table, edge logs, undo logs and fault policy — the shards
share nothing persistent, which is exactly what lets ingest bandwidth
and recovery replay scale with the shard count (the per-pool media
write bandwidth is the single-instance ceiling of Table 3).

The facade keeps DGAP's mutation semantics:

* ``insert_edge`` / ``insert_edges`` / ``delete_edge`` accept global
  ids; batches are chunked at the same default cadence as a single
  instance, routed per shard (:class:`~repro.sharding.router.ShardRouter`)
  and dispatched down the unmodified batched ingest path with vertex
  growth disabled (sources are pre-grown owner-side; destinations stay
  global).
* crash simulation is whole-machine: every shard's device shares one
  :class:`~repro.pmem.crash.CrashInjector`, so crash sweeps see a
  single global persistence-event ordering, and when any shard's device
  power-fails mid-dispatch the facade power-fails the remaining shards
  too (a real outage does not spare the other DIMMs).
* ``open`` recovers every shard from its pool; the shards replay
  concurrently on the modeled clock, so recovery makespan is the max
  over per-shard recovery times, not the sum
  (:func:`~repro.testing.crashsweep.pool_clocks` reports it that way).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

import numpy as np

from ..config import DGAPConfig
from ..core.batch import DEFAULT_BATCH_SIZE, EdgeBatch, EdgeLike
from ..core.dgap import DGAP
from ..errors import GraphError, SimulatedCrash, VertexRangeError
from ..pmem.crash import CrashInjector
from ..pmem.faults import FaultPolicy
from .partition import global_vertex_count, local_count, shard_of, to_local
from .router import ShardRouter


class _GroupDevice:
    """Device facade over the shard pools (injector fan-out)."""

    def __init__(self, pools):
        self._pools = pools

    @property
    def injector(self) -> CrashInjector:
        return self._pools[0].device.injector

    @injector.setter
    def injector(self, inj: CrashInjector) -> None:
        for p in self._pools:
            p.device.injector = inj

    def drain_all(self) -> None:
        for p in self._pools:
            p.device.drain_all()


class _GroupDelta:
    """Counters accrued by the group over an interval.

    ``modeled_ns`` is the *parallel* elapsed time — the max over the
    per-shard deltas, since shard devices tick concurrently — while the
    additive counters sum.  ``per_shard`` keeps the raw deltas for
    load-balance reporting.
    """

    def __init__(self, deltas):
        self.per_shard = list(deltas)

    @property
    def modeled_ns(self) -> float:
        return max(d.modeled_ns for d in self.per_shard)

    @property
    def media_bytes(self) -> int:
        return sum(d.media_bytes for d in self.per_shard)

    @property
    def stores(self) -> int:
        return sum(d.stores for d in self.per_shard)

    @property
    def flushes(self) -> int:
        return sum(d.flushes for d in self.per_shard)

    @property
    def fences(self) -> int:
        return sum(d.fences for d in self.per_shard)


class _GroupStats:
    """Aggregated device statistics for the shard group.

    ``modeled_ns`` is the *parallel* clock — shards run on independent
    devices concurrently, so elapsed time is the max over shards, while
    additive counters (media bytes, crashes) sum.  ``snapshot`` /
    ``delta_since`` mirror :class:`~repro.pmem.stats.PMemStats` so the
    benchmark harness can treat a shard group like a single pool.
    """

    def __init__(self, pools):
        self._pools = pools

    @property
    def modeled_ns(self) -> float:
        return max(p.stats.modeled_ns for p in self._pools)

    @property
    def media_bytes(self) -> int:
        return sum(p.stats.media_bytes for p in self._pools)

    @property
    def crashes(self) -> int:
        return sum(p.stats.crashes for p in self._pools)

    def snapshot(self):
        """Per-pool frozen copies, for :meth:`delta_since`."""
        return [p.stats.snapshot() for p in self._pools]

    def delta_since(self, before) -> _GroupDelta:
        return _GroupDelta(
            p.stats.delta_since(b) for p, b in zip(self._pools, before)
        )


class ShardPoolGroup:
    """The persistent footprint of a :class:`ShardedDGAP`: one pool per shard.

    Quacks enough like a :class:`~repro.pmem.pool.PMemPool` for the
    crash-sweep driver: ``device.injector`` fans out to every shard
    device, ``stats`` aggregates (max modeled clock, summed counters),
    ``crash()`` power-fails every shard, and a ``deepcopy`` preserves
    the shared-injector wiring (the injector deduplicates through the
    copy memo).
    """

    def __init__(self, pools):
        self.pools = list(pools)

    @property
    def device(self) -> _GroupDevice:
        return _GroupDevice(self.pools)

    @property
    def stats(self) -> _GroupStats:
        return _GroupStats(self.pools)

    def crash(self) -> None:
        for p in self.pools:
            p.crash()


def shard_config(config: DGAPConfig, shard: int, n_shards: int) -> DGAPConfig:
    """Per-shard :class:`DGAPConfig` derived from the global one.

    The shard seeds exactly the initial vertices it owns (so the union
    of shard id spaces equals the unsharded initial id space) and sizes
    its edge array / pool for its slice of the stream.
    """
    lc = local_count(config.init_vertices - 1, shard, n_shards)
    if lc <= 0:
        raise GraphError(
            f"init_vertices={config.init_vertices} < n_shards={n_shards}: "
            f"shard {shard} would own no initial vertex"
        )
    pool_bytes = config.pool_bytes
    if pool_bytes is not None:
        pool_bytes = max(1 << 20, pool_bytes // n_shards)
    return replace(
        config,
        init_vertices=lc,
        init_edges=max(256, -(-config.init_edges // n_shards)),
        pool_bytes=pool_bytes,
    )


class ShardedDGAP:
    """Vertex-striped multi-pool DGAP with a routing front-end."""

    def __init__(
        self,
        n_shards: int = 4,
        config: Optional[DGAPConfig] = None,
        injector: Optional[CrashInjector] = None,
        faults: Optional[FaultPolicy] = None,
    ):
        if n_shards < 1:
            raise GraphError("need at least one shard")
        self.config = config or DGAPConfig()
        self.n_shards = int(n_shards)
        self.router = ShardRouter(self.n_shards)
        # One injector across every shard device: crash sweeps count a
        # single machine-wide persistence-event stream.
        injector = injector or CrashInjector()
        self.shards: List[DGAP] = [
            DGAP(
                shard_config(self.config, r, self.n_shards),
                injector=injector,
                faults=faults,
            )
            for r in range(self.n_shards)
        ]
        self.pool = ShardPoolGroup([sh.pool for sh in self.shards])

    @classmethod
    def _assemble(
        cls, shards: List[DGAP], config: DGAPConfig, n_shards: int
    ) -> "ShardedDGAP":
        host = cls.__new__(cls)
        host.config = config
        host.n_shards = n_shards
        host.router = ShardRouter(n_shards)
        host.shards = shards
        host.pool = ShardPoolGroup([sh.pool for sh in shards])
        return host

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Contiguous global vertex count every shard agrees on."""
        return global_vertex_count([sh.num_vertices for sh in self.shards])

    @property
    def num_edges(self) -> int:
        return sum(sh.num_edges for sh in self.shards)

    def shard_for(self, v: int) -> DGAP:
        return self.shards[shard_of(int(v), self.n_shards)]

    def _check_global(self, v: int) -> int:
        """Bounds-check a queried vertex in the *global* id space.

        Point reads must never fall through to the owner shard's local
        bounds check: the shard would report the *local* id in its
        error, and after an uneven mid-crash growth a globally-invalid
        id could even resolve to a stray local vertex.  Error behavior
        is pinned to DGAP's: same exception type, same message shape,
        global ids (``tests/test_serve.py`` asserts the parity).
        """
        v = int(v)
        nv = self.num_vertices
        if not 0 <= v < nv:
            raise VertexRangeError(f"vertex {v} out of range [0, {nv})")
        return v

    def out_degree(self, v: int) -> int:
        v = self._check_global(v)
        return self.shard_for(v).out_degree(to_local(v, self.n_shards))

    def out_neighbors(self, v: int) -> np.ndarray:
        """Live neighbors of global vertex ``v`` (global destination ids)."""
        v = self._check_global(v)
        return self.shard_for(v).out_neighbors(to_local(v, self.n_shards))

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _power_fail_rest(self) -> None:
        """A shard device power-failed mid-op: fail the whole machine.

        The device that raised already lost its volatile state
        (``PMemDevice._tick`` crashes before re-raising); any *other*
        shard device still holding dirty or in-flight lines loses them
        here, so recovery always sees a consistent whole-machine outage.
        """
        for sh in self.shards:
            dev = sh.pool.device
            if dev.dirty_lines or dev.pending_lines:
                dev.crash()

    def insert_vertex(self, v: int) -> None:
        """Ensure global vertices ``0..v`` exist (owner shards grow)."""
        try:
            for r in range(self.n_shards):
                lc = local_count(int(v), r, self.n_shards)
                if lc > self.shards[r].num_vertices:
                    self.shards[r].insert_vertex(lc - 1)
        except SimulatedCrash:
            self._power_fail_rest()
            raise

    def insert_edge(
        self, src: int, dst: int, thread_id: int = 0, tombstone: bool = False
    ) -> None:
        try:
            mx = max(int(src), int(dst))
            if mx >= self.num_vertices:
                self.insert_vertex(mx)
            self.shard_for(src).insert_edge(
                to_local(int(src), self.n_shards),
                int(dst),
                thread_id=thread_id,
                tombstone=tombstone,
                grow_vertices=False,
            )
        except SimulatedCrash:
            self._power_fail_rest()
            raise

    def delete_edge(self, src: int, dst: int, thread_id: int = 0) -> None:
        self.insert_edge(src, dst, thread_id=thread_id, tombstone=True)

    def tombstone_density(self) -> float:
        """Machine-wide tombstone fraction over all shards' logical entries."""
        deg = sum(int(sh.va.degrees().sum()) for sh in self.shards)
        if deg == 0:
            return 0.0
        live = sum(int(sh.va.live_degrees().sum()) for sh in self.shards)
        return (deg - live) / (2 * deg)

    def compact(self, thread_id: int = 0) -> dict:
        """Tombstone-merge sweep on every shard; returns summed statistics.

        Shard sweeps are independent (nothing persistent is shared), so
        a mid-sweep power failure on one shard device fails the whole
        machine, exactly like a mid-dispatch batch crash.
        """
        totals: dict = {}
        try:
            for sh in self.shards:
                stats = sh.compact(thread_id)
                for k, v in stats.items():
                    totals[k] = totals.get(k, 0) + v
        except SimulatedCrash:
            self._power_fail_rest()
            raise
        return totals

    def insert_edges(
        self,
        edges: EdgeLike,
        thread_id: int = 0,
        batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
    ) -> int:
        """Route and bulk-insert; returns accepted edge count.

        Chunking happens *before* routing (same stream cadence as one
        instance); each chunk grows the owner shards to the chunk's max
        vertex, then dispatches whole per-shard sub-batches in
        ascending shard order down the unmodified batched ingest path.
        """
        batch = EdgeBatch.coerce(edges)
        if batch_size is not None and batch_size > 0 and len(batch) > batch_size:
            return sum(
                self._dispatch(c, thread_id) for c in batch.chunks(batch_size)
            )
        return self._dispatch(batch, thread_id)

    def _dispatch(self, chunk: EdgeBatch, thread_id: int) -> int:
        if len(chunk) == 0:
            return 0
        try:
            mx = chunk.max_vertex()
            if mx >= self.num_vertices:
                self.insert_vertex(mx)
            for r, sub in self.router.split(chunk):
                self.shards[r].insert_edges(
                    sub, thread_id=thread_id, batch_size=None, grow_vertices=False
                )
        except SimulatedCrash:
            self._power_fail_rest()
            raise
        return len(chunk)

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def global_csr(self):
        """Merged global ``((out_indptr, out_dsts), (in_indptr, in_srcs))``.

        Byte-identical to an unsharded build of the same edge stream
        (DESIGN.md §14); incrementally maintained per shard by the
        epoch-versioned view caches.
        """
        from .merge import ShardedViewCache

        cache = getattr(self, "_view_cache", None)
        if cache is None:
            cache = self._view_cache = ShardedViewCache(self)
        return cache.materialize()

    # ------------------------------------------------------------------
    # diagnostics / lifecycle
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        for r, sh in enumerate(self.shards):
            try:
                sh.check_invariants()
            except GraphError as exc:
                raise GraphError(f"shard {r}: {exc}") from exc

    def shutdown(self) -> None:
        for sh in self.shards:
            sh.shutdown()

    @classmethod
    def open(
        cls, pool: ShardPoolGroup, config: Optional[DGAPConfig] = None
    ) -> "ShardedDGAP":
        """Reopen every shard from its pool (normal restart or recovery).

        Shards recover *concurrently on the modeled clock*: each
        shard's replay accrues to its own device, so the modeled
        recovery makespan is the max over per-shard deltas — the
        crash-sweep driver measures exactly that via
        :func:`~repro.testing.crashsweep.pool_clocks`.
        """
        config = config or DGAPConfig()
        n = len(pool.pools)
        shards = [
            DGAP.open(p, shard_config(config, r, n))
            for r, p in enumerate(pool.pools)
        ]
        return cls._assemble(shards, config, n)


__all__ = ["ShardedDGAP", "ShardPoolGroup", "shard_config"]
