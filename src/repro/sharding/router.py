"""Vectorized batch routing: split one :class:`EdgeBatch` per shard.

The router is stateless: it computes every edge's owning shard with
:meth:`EdgeBatch.shard_keys` (one modulo over the source column) and
carves per-shard sub-batches out with :meth:`EdgeBatch.select` on
ascending positions — so each shard's sub-batch preserves the stream
order of its edges, which is what makes the merged analysis view
byte-identical to an unsharded build (per-vertex edge order is the
stream subsequence either way; see DESIGN.md §14).

Sub-batch sources are translated to shard-local ids
(:func:`~repro.sharding.partition.to_local`); destinations stay global.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.batch import EdgeBatch
from ..errors import GraphError


class ShardRouter:
    """Split edge batches across ``n_shards`` residue-striped shards."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise GraphError("need at least one shard")
        self.n_shards = int(n_shards)

    def split(self, batch: EdgeBatch) -> List[Tuple[int, EdgeBatch]]:
        """``[(shard, sub_batch), ...]`` in ascending shard order.

        Shards with no edges in ``batch`` are omitted.  Sub-batch
        ``src`` columns are shard-local; ``dst`` and ``tombstone``
        travel verbatim.  Positions within each sub-batch ascend, so
        per-source edge order is preserved.
        """
        n = self.n_shards
        if n == 1:
            return [(0, batch)] if len(batch) else []
        keys = batch.shard_keys(n)
        out: List[Tuple[int, EdgeBatch]] = []
        for r in range(n):
            idx = np.flatnonzero(keys == r)
            if idx.size == 0:
                continue
            sub = batch.select(idx)
            sub.src //= n  # select() copies, so this is a local translation
            out.append((r, sub))
        return out


__all__ = ["ShardRouter"]
