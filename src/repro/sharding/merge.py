"""Merge per-shard epoch-versioned CSR views into one global view.

The contract (tested in ``tests/test_sharding.py``, proved in
DESIGN.md §14): the merged ``((out_indptr, out_dsts), (in_indptr,
in_srcs))`` is **byte-identical** to what an unsharded DGAP fed the
same edge stream would materialize.

*Out-CSR*: global row ``g`` lives wholly in its owner shard as local
row ``g // n``, and the router dispatches each shard's edges in stream
order, so a shard's local row is exactly the global row — the merge is
a pure scatter of per-shard rows into the block-striped global layout
(no per-edge work).

*In-CSR*: each shard's in-stream is already ordered by
``(dst, global src, insertion)`` — :class:`~repro.analysis.viewcache.
DGAPViewCache` runs with ``row_ids`` mapping local rows to their
block-mixed global ids (ascending per shard) so its rows carry global
source ids, and ``dst_nv`` pins every shard to the same global
destination domain.  The same ``(dst, src)`` pair always lands in the
same shard (``src`` determines the shard), so keys never collide across
streams and a pairwise ``searchsorted`` merge reproduces the global
``(dst, src, insertion)`` order of :func:`~repro.analysis.view.
build_in_csr` bit-for-bit.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..analysis.view import ID_DTYPE, INDPTR_DTYPE
from ..analysis.viewcache import DGAPViewCache
from ..errors import GraphError
from ..nputil import multi_arange
from .partition import local_count, local_ids_to_global

CSRPair = Tuple[np.ndarray, np.ndarray]


def merge_out_csr(outs: List[CSRPair], nv: int, n_shards: int) -> CSRPair:
    """Scatter per-shard out-CSRs into the global block-striped layout."""
    counts = np.empty(nv, dtype=np.int64)
    gids_per_shard = []
    for r, (ip, _) in enumerate(outs):
        gids = local_ids_to_global(ip.size - 1, r, n_shards)
        gids_per_shard.append(gids)
        counts[gids] = np.diff(ip)
    indptr = np.zeros(nv + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    dsts = np.empty(int(indptr[-1]), dtype=ID_DTYPE)
    for (_, ds), gids in zip(outs, gids_per_shard):
        pos = multi_arange(indptr[:-1][gids], counts[gids])
        if pos.size:
            dsts[pos] = ds
    return indptr, dsts


def _merge_in_streams(a: CSRPair, b: CSRPair, nv: int) -> CSRPair:
    """Merge two (dst, src, insertion)-ordered in-streams over ``nv`` dsts.

    Keys are collision-free across streams (the source id pins the
    stream), so one ``searchsorted`` computes every insertion point and
    the per-destination indptrs simply add.
    """
    a_ip, a_srcs = a
    b_ip, b_srcs = b
    a_dst = np.repeat(np.arange(nv, dtype=np.int64), np.diff(a_ip))
    b_dst = np.repeat(np.arange(nv, dtype=np.int64), np.diff(b_ip))
    a_key = a_dst * nv + a_srcs
    b_key = b_dst * nv + b_srcs
    pos_b = np.searchsorted(a_key, b_key, side="left") + np.arange(b_key.size)
    total = a_key.size + b_key.size
    srcs = np.empty(total, dtype=ID_DTYPE)
    a_mask = np.ones(total, dtype=bool)
    a_mask[pos_b] = False
    srcs[pos_b] = b_srcs
    srcs[a_mask] = a_srcs
    return a_ip + b_ip, srcs


def merge_in_csr(inns: List[CSRPair], nv: int) -> CSRPair:
    """Fold per-shard in-streams into the global (dst, src)-ordered one."""
    acc = inns[0]
    for nxt in inns[1:]:
        acc = _merge_in_streams(acc, nxt, nv)
    return acc


class ShardedViewCache:
    """Global analysis view over a :class:`~repro.sharding.sharded.ShardedDGAP`.

    One generalized :class:`DGAPViewCache` per shard (global source ids,
    global destination domain) keeps per-shard incrementality; the merge
    itself is a scatter plus pairwise in-stream merges — ``O(E)`` with
    no sorting.
    """

    def __init__(self, sharded) -> None:
        self.sharded = sharded
        n = sharded.n_shards
        self.caches = [
            DGAPViewCache(
                sh,
                id_stride=n,
                row_ids=(lambda nv, r=r: local_ids_to_global(nv, r, n)),
            )
            for r, sh in enumerate(sharded.shards)
        ]

    @property
    def stats(self):
        """Per-shard :class:`~repro.analysis.viewcache.ViewCacheStats`."""
        return [c.stats for c in self.caches]

    def materialize(self) -> Tuple[CSRPair, CSRPair]:
        host = self.sharded
        n = host.n_shards
        nv = host.num_vertices
        outs: List[CSRPair] = []
        inns: List[CSRPair] = []
        for r, sh in enumerate(host.shards):
            expect = local_count(nv - 1, r, n)
            with sh.consistent_view() as snap:
                if snap.num_vertices != expect:
                    raise GraphError(
                        f"shard {r} holds {snap.num_vertices} local vertices, "
                        f"expected {expect} for global count {nv}"
                    )
                out, inn = self.caches[r].materialize(snap, dst_nv=nv)
            outs.append(out)
            inns.append(inn)
        return merge_out_csr(outs, nv, n), merge_in_csr(inns, nv)


__all__ = ["ShardedViewCache", "merge_out_csr", "merge_in_csr"]
