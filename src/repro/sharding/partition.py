"""Block-mixed vertex partition for the sharded DGAP.

The vertex space is striped across ``n`` shards in blocks of ``n``
consecutive globals: global ``g`` always lives under the *local* id
``g // n``, and within block ``q = g // n`` the residue-to-shard
assignment is rotated by a multiplicative hash of the block index:

    shard(g) = (g + mix(g // n)) % n

Plain residue striping (``g % n``) is the *worst* partition for R-MAT
streams with a power-of-two shard count — hub vertices concentrate at
ids that are multiples of powers of two, all congruent ``0 (mod n)``,
so one shard inherits every hub (measured 40–50% of the stream at
``n=4``).  Rotating the residue per block keeps the mapping bijective
(for fixed ``q`` the map ``r -> (r + mix(q)) % n`` is a permutation),
keeps locals dense (``g // n`` exactly as before), keeps both
directions O(1) and vectorizable, and spreads the hub mass to within a
few percent of uniform.

Edges are owned by their **source**'s shard; destinations are stored
verbatim in the global id space (DGAP never indexes the vertex array by
destination on the write path, and snapshots return destination values
as stored), so no translation happens on reads.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

IntLike = Union[int, np.ndarray]

#: 64-bit golden-ratio multiplier (Fibonacci hashing): the high half of
#: ``q * MIX`` decorrelates consecutive and power-of-two block indices.
MIX = np.uint64(0x9E3779B97F4A7C15)
_SHIFT = np.uint64(32)


def block_mix(q: IntLike) -> IntLike:
    """Per-block residue rotation (well-mixed non-negative int64)."""
    h = (np.asarray(q, dtype=np.uint64) * MIX) >> _SHIFT
    h = h.astype(np.int64)
    return int(h) if np.isscalar(q) or np.ndim(q) == 0 else h


def shard_of(v: IntLike, n_shards: int) -> IntLike:
    """Owning shard of global vertex id(s) ``v``."""
    return (v + block_mix(v // n_shards)) % n_shards


def to_local(v: IntLike, n_shards: int) -> IntLike:
    """Local id of global vertex id(s) ``v`` inside its owning shard."""
    return v // n_shards


def to_global(local: IntLike, shard: int, n_shards: int) -> IntLike:
    """Global id of local vertex id(s) ``local`` of shard ``shard``."""
    return local * n_shards + (shard - block_mix(local)) % n_shards


def local_count(max_global: int, shard: int, n_shards: int) -> int:
    """How many locals shard ``shard`` owns once globals ``0..max_global`` exist.

    Every full block ``q < max_global // n`` contributes exactly one
    local; the partial top block contributes one iff the shard's
    rotated residue falls inside it.
    """
    q0, m = divmod(int(max_global), n_shards)
    rr = (shard - block_mix(q0)) % n_shards
    return q0 + (1 if rr <= m else 0)


def global_vertex_count(local_counts: Sequence[int]) -> int:
    """Contiguous global vertex count implied by per-shard local counts.

    Shard ``r`` with ``c`` locals is missing its next owned global
    ``to_global(c, r, n)`` and everything after; the largest ``G`` with
    *every* ``g < G`` present is the minimum over those bounds.
    Mid-crash the shards may have grown unevenly — this is the prefix
    every shard agrees on.
    """
    n = len(local_counts)
    if n == 0:
        return 0
    return min(int(to_global(int(c), r, n)) for r, c in enumerate(local_counts))


def local_ids_to_global(n_local: int, shard: int, n_shards: int) -> np.ndarray:
    """Global ids of shard ``shard``'s locals ``0..n_local-1``, in order.

    Ascending: consecutive locals are ``n_shards`` apart before the
    in-block rotation, which only moves an id by less than ``n_shards``.
    """
    q = np.arange(n_local, dtype=np.int64)
    return q * n_shards + (shard - block_mix(q)) % n_shards


__all__ = [
    "MIX",
    "block_mix",
    "shard_of",
    "to_local",
    "to_global",
    "local_count",
    "global_vertex_count",
    "local_ids_to_global",
]
