"""Sharded multi-pool DGAP: vertex-striped shards behind a routing facade.

See DESIGN.md §14.  Public surface:

* :class:`ShardedDGAP` — N independent DGAP instances (own pool, locks,
  logs, fault policy each) addressed by global vertex ids.
* :class:`ShardRouter` — vectorized per-shard batch splitting.
* :class:`ShardedViewCache` — merged global (out, in) CSR, byte-identical
  to an unsharded build of the same stream.
* :mod:`~repro.sharding.partition` — the modulo id mapping.
"""

from .merge import ShardedViewCache, merge_in_csr, merge_out_csr
from .partition import (
    global_vertex_count,
    local_count,
    local_ids_to_global,
    shard_of,
    to_global,
    to_local,
)
from .router import ShardRouter
from .sharded import ShardedDGAP, ShardPoolGroup, shard_config

__all__ = [
    "ShardedDGAP",
    "ShardPoolGroup",
    "ShardRouter",
    "ShardedViewCache",
    "shard_config",
    "merge_out_csr",
    "merge_in_csr",
    "shard_of",
    "to_local",
    "to_global",
    "local_count",
    "global_vertex_count",
    "local_ids_to_global",
]
