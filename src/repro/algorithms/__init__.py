"""The four GAPBS graph kernels used by the paper's evaluation (Table 1)."""

from .bc import betweenness_centrality
from .bfs import bfs
from .cc import connected_components
from .pagerank import pagerank

KERNELS = {
    "pr": pagerank,
    "bfs": bfs,
    "bc": betweenness_centrality,
    "cc": connected_components,
}

__all__ = ["pagerank", "bfs", "betweenness_centrality", "connected_components", "KERNELS"]
