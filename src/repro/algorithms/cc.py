"""Connected Components — Shiloach–Vishkin (GAPBS ``cc_sv``, paper Table 1).

Treats edges as undirected (both endpoints hook).  Each round hooks
every edge's larger-labelled root under the smaller label, then
compresses trees by pointer jumping; converges in O(log V) rounds.

The paper observes CC scales poorly on *all* systems because of the
GAPBS implementation's ``parallel for`` scheduling (§4.3.1); we model
that as a larger serial fraction on the per-round scan rather than
inheriting a compiler artifact (DESIGN.md §9).
"""

from __future__ import annotations

import numpy as np

from ..analysis.view import BaseGraphView
from ..obs.tracer import kernel_span

#: the modeled scheduling bottleneck (gives ~4-6x speedup at 16 threads,
#: matching Table 4 across systems).
_CC_SERIAL = 0.12


def connected_components(view: BaseGraphView, max_rounds: int = 64) -> np.ndarray:
    """|V|-sized array of component labels (the minimum vertex id reachable)."""
    with kernel_span("cc", view):
        return _connected_components(view, max_rounds)


def _connected_components(view: BaseGraphView, max_rounds: int) -> np.ndarray:
    nv = view.num_vertices
    _, dsts = view.out_csr()
    srcs = view.out_src_ids()  # intp, cached across kernels
    dsts = dsts.astype(np.intp)  # ID_DTYPE would re-cast per gather

    comp = np.arange(nv, dtype=np.int64)
    for _ in range(max_rounds):
        lu = comp[srcs]
        lv = comp[dsts]
        m = np.minimum(lu, lv)
        new = comp.copy()
        np.minimum.at(new, lu, m)
        np.minimum.at(new, lv, m)
        # pointer jumping (path compression)
        while True:
            nxt = new[new]
            if np.array_equal(nxt, new):
                break
            new = nxt
        view.account_full_scan(serial_fraction=_CC_SERIAL)
        view.account_compute(nv * 8 * 2, serial_fraction=_CC_SERIAL)
        if np.array_equal(new, comp):
            break
        comp = new
    return comp


__all__ = ["connected_components"]
