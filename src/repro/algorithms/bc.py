"""Betweenness Centrality — Brandes' single-source dependency (paper Table 1).

GAPBS's BC approximates full betweenness by accumulating Brandes
dependencies from sampled sources; the paper feeds a single source
vertex.  Forward phase: BFS levels with shortest-path counts (sigma);
backward phase: per-level dependency (delta) accumulation.  Directed
semantics, like GAPBS.

BC is the most compute- and memory-intensive kernel and touches large
parts of the graph — which is why DGAP catches up with the DRAM-cached
systems here (Fig. 8, §4.3).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..analysis.view import BaseGraphView
from ..obs.tracer import kernel_span
from .common import gather_edges

_BC_SERIAL = 0.02


def betweenness_centrality(view: BaseGraphView, source: int = 0) -> np.ndarray:
    """|V|-sized array of Brandes dependency scores from ``source``."""
    with kernel_span("bc", view):
        return _betweenness_centrality(view, source)


def _betweenness_centrality(view: BaseGraphView, source: int) -> np.ndarray:
    nv = view.num_vertices
    out_indptr, out_dsts = view.out_csr()
    # ID_DTYPE ids would be re-cast to intp at every fancy index below
    out_dsts = out_dsts.astype(np.intp)

    depth = np.full(nv, -1, dtype=np.int64)
    sigma = np.zeros(nv, dtype=np.float64)
    depth[source] = 0
    sigma[source] = 1.0
    levels: List[np.ndarray] = [np.array([source], dtype=np.int64)]
    #: per level: the (u, w) edges landing on the next level, plus the
    #: total gathered edge count (for the backward pass's accounting)
    level_edges: List[tuple] = []

    # -- forward: BFS levels + path counts ---------------------------------
    d = 0
    frontier = levels[0]
    while frontier.size:
        owners, nbrs = gather_edges(out_indptr, out_dsts, frontier)
        view.account_frontier(frontier.size, int(owners.size), serial_fraction=_BC_SERIAL)
        fresh = depth[nbrs] < 0
        # dedupe via a bitmap: same sorted result as np.unique, no sort
        discovered = np.zeros(nv, dtype=bool)
        discovered[nbrs[fresh]] = True
        nxt = np.flatnonzero(discovered)
        depth[nxt] = d + 1
        # sigma[w] += sigma[u] over edges u->w landing on the next level;
        # depth d+1 is assigned only in this level, so that edge set is
        # exactly the fresh mask — no second depth gather needed
        u, w = owners[fresh], nbrs[fresh]
        np.add.at(sigma, w, sigma[u])
        view.account_compute(nxt.size * 16, serial_fraction=_BC_SERIAL)
        if nxt.size == 0:
            break
        level_edges.append((u, w, int(owners.size)))
        levels.append(nxt)
        frontier = nxt
        d += 1

    # -- backward: dependency accumulation ----------------------------------
    delta = np.zeros(nv, dtype=np.float64)
    for d in range(len(levels) - 2, -1, -1):
        verts = levels[d]
        # level d's forward gather already produced exactly the edges the
        # backward pass needs (u at depth d -> w at depth d+1), in the
        # same order — reuse them instead of re-gathering and re-masking
        u, w, gathered = level_edges[d]
        # the backward pass reads whole per-vertex edge lists level by
        # level — a scan-shaped sweep over the covered subgraph (this is
        # why the paper sees DGAP catch the DRAM systems on BC, §4.3)
        view.account_partial_scan(verts.size, gathered, serial_fraction=_BC_SERIAL)
        contrib = sigma[u] / sigma[w] * (1.0 + delta[w])
        np.add.at(delta, u, contrib)
        view.account_compute(verts.size * 24, serial_fraction=_BC_SERIAL)

    delta[source] = 0.0
    return delta


__all__ = ["betweenness_centrality"]
