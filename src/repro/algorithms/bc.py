"""Betweenness Centrality — Brandes' single-source dependency (paper Table 1).

GAPBS's BC approximates full betweenness by accumulating Brandes
dependencies from sampled sources; the paper feeds a single source
vertex.  Forward phase: BFS levels with shortest-path counts (sigma);
backward phase: per-level dependency (delta) accumulation.  Directed
semantics, like GAPBS.

BC is the most compute- and memory-intensive kernel and touches large
parts of the graph — which is why DGAP catches up with the DRAM-cached
systems here (Fig. 8, §4.3).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..analysis.view import BaseGraphView
from .common import gather_edges

_BC_SERIAL = 0.02


def betweenness_centrality(view: BaseGraphView, source: int = 0) -> np.ndarray:
    """|V|-sized array of Brandes dependency scores from ``source``."""
    nv = view.num_vertices
    out_indptr, out_dsts = view.out_csr()
    out_dsts = out_dsts.astype(np.int64)

    depth = np.full(nv, -1, dtype=np.int64)
    sigma = np.zeros(nv, dtype=np.float64)
    depth[source] = 0
    sigma[source] = 1.0
    levels: List[np.ndarray] = [np.array([source], dtype=np.int64)]

    # -- forward: BFS levels + path counts ---------------------------------
    d = 0
    frontier = levels[0]
    while frontier.size:
        owners, nbrs = gather_edges(out_indptr, out_dsts, frontier)
        view.account_frontier(frontier.size, int(owners.size), serial_fraction=_BC_SERIAL)
        fresh = depth[nbrs] < 0
        nxt = np.unique(nbrs[fresh])
        depth[nxt] = d + 1
        # sigma[w] += sigma[u] over edges u->w landing on the next level
        on_next = depth[nbrs] == d + 1
        np.add.at(sigma, nbrs[on_next], sigma[owners[on_next]])
        view.account_compute(nxt.size * 16, serial_fraction=_BC_SERIAL)
        if nxt.size == 0:
            break
        levels.append(nxt)
        frontier = nxt
        d += 1

    # -- backward: dependency accumulation ----------------------------------
    delta = np.zeros(nv, dtype=np.float64)
    for d in range(len(levels) - 2, -1, -1):
        verts = levels[d]
        owners, nbrs = gather_edges(out_indptr, out_dsts, verts)
        # the backward pass reads whole per-vertex edge lists level by
        # level — a scan-shaped sweep over the covered subgraph (this is
        # why the paper sees DGAP catch the DRAM systems on BC, §4.3)
        view.account_partial_scan(verts.size, int(owners.size), serial_fraction=_BC_SERIAL)
        mask = depth[nbrs] == d + 1
        u, w = owners[mask], nbrs[mask]
        contrib = sigma[u] / sigma[w] * (1.0 + delta[w])
        np.add.at(delta, u, contrib)
        view.account_compute(verts.size * 24, serial_fraction=_BC_SERIAL)

    delta[source] = 0.0
    return delta


__all__ = ["betweenness_centrality"]
