"""Shared helpers for the vectorized graph kernels."""

from __future__ import annotations

import numpy as np


def multi_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s+c)`` per pair — the edge-gather primitive."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts)
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(cum - counts, counts)
        + np.repeat(np.asarray(starts, dtype=np.int64), counts)
    )


def gather_edges(indptr: np.ndarray, targets: np.ndarray, vertices: np.ndarray):
    """All edges of ``vertices``: returns (owners, neighbors)."""
    counts = indptr[vertices + 1] - indptr[vertices]
    idx = multi_arange(indptr[vertices], counts)
    owners = np.repeat(vertices, counts)
    return owners, targets[idx]


__all__ = ["multi_arange", "gather_edges"]
