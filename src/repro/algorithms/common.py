"""Shared helpers for the vectorized graph kernels."""

from __future__ import annotations

import numpy as np

from ..nputil import multi_arange


def gather_edges(indptr: np.ndarray, targets: np.ndarray, vertices: np.ndarray):
    """All edges of ``vertices``: returns (owners, neighbors)."""
    counts = indptr[vertices + 1] - indptr[vertices]
    idx = multi_arange(indptr[vertices], counts)
    owners = np.repeat(vertices, counts)
    return owners, targets[idx]


__all__ = ["multi_arange", "gather_edges"]
