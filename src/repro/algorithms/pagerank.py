"""PageRank — GAPBS ``pr.cc`` semantics (paper Table 1).

Pull-based, a fixed number of iterations (the paper runs 20), damping
0.85.  Dangling vertices contribute nothing (GAPBS's simple variant).
Each iteration sweeps every vertex's incoming edges — the access
pattern that favours CSR-like layouts and penalizes pointer chasing
(Fig. 7's story).
"""

from __future__ import annotations

import numpy as np

from ..analysis.view import BaseGraphView
from ..obs.tracer import kernel_span

#: PR touches every edge every iteration but has near-perfect parallel
#: structure; the small serial part is the convergence reduction.
_PR_SERIAL = 0.015


def pagerank(
    view: BaseGraphView,
    iterations: int = 20,
    damping: float = 0.85,
) -> np.ndarray:
    """|V|-sized array of ranks after ``iterations`` sweeps."""
    with kernel_span("pr", view):
        return _pagerank(view, iterations, damping)


def _pagerank(
    view: BaseGraphView,
    iterations: int,
    damping: float,
) -> np.ndarray:
    nv = view.num_vertices
    in_indptr, in_srcs = view.in_csr()
    out_deg = view.out_degrees().astype(np.float64)
    # dangling vertices contribute nothing: zero inverse degree
    inv_deg = np.where(out_deg > 0, 1.0 / np.where(out_deg > 0, out_deg, 1.0), 0.0)
    in_srcs = in_srcs.astype(np.intp)  # ID_DTYPE would re-cast per gather

    score = np.full(nv, 1.0 / nv)
    base = (1.0 - damping) / nv
    acc = np.zeros(in_srcs.size + 1)
    for _ in range(iterations):
        contrib = score * inv_deg
        # per-dst segment sums over the dst-sorted in-CSR: prefix sums
        # differenced at the indptr boundaries (cheaper than a scatter)
        np.cumsum(contrib[in_srcs], out=acc[1:])
        sums = acc[in_indptr[1:]] - acc[in_indptr[:-1]]
        score = base + damping * sums
        view.account_full_scan(serial_fraction=_PR_SERIAL)
        view.account_compute(nv * 8 * 3, serial_fraction=_PR_SERIAL)
    return score


__all__ = ["pagerank"]
