"""Breadth-First Search — GAPBS direction-optimizing semantics [Beamer'12].

Alternates top-down (expand the frontier's out-edges) and bottom-up
(unvisited vertices probe their in-edges for a visited parent) using
the GAPBS alpha/beta heuristics.  Returns the parent array (−1 for
unreached; the source is its own parent), as in paper Table 1.

BFS touches random vertices' edge lists — the pattern where adjacency
lists (GraphOne/XPGraph in DRAM) beat CSR-family layouts, Fig. 8.
"""

from __future__ import annotations

import numpy as np

from ..analysis.view import BaseGraphView
from ..obs.tracer import kernel_span
from .common import gather_edges

_BFS_SERIAL = 0.03


def bfs(
    view: BaseGraphView,
    source: int = 0,
    alpha: int = 15,
    beta: int = 18,
) -> np.ndarray:
    with kernel_span("bfs", view):
        return _bfs(view, source, alpha, beta)


def _bfs(
    view: BaseGraphView,
    source: int,
    alpha: int,
    beta: int,
) -> np.ndarray:
    nv = view.num_vertices
    out_indptr, out_dsts = view.out_csr()
    in_indptr, in_srcs = view.in_csr()
    out_deg = view.out_degrees()
    # ID_DTYPE ids would be re-cast to intp at every fancy index below
    out_dsts = out_dsts.astype(np.intp)
    in_srcs = in_srcs.astype(np.intp)

    parent = np.full(nv, -1, dtype=np.int64)
    parent[source] = source
    frontier = np.array([source], dtype=np.int64)
    edges_to_check = int(out_deg.sum())

    while frontier.size:
        scout = int(out_deg[frontier].sum())
        use_bottom_up = scout > edges_to_check // max(1, alpha) and frontier.size > nv // (beta * 4)

        if use_bottom_up:
            in_frontier = np.zeros(nv, dtype=bool)
            in_frontier[frontier] = True
            cand = np.flatnonzero(parent < 0)
            owners, nbrs = gather_edges(in_indptr, in_srcs, cand)
            hits = in_frontier[nbrs]
            found = np.full(nv, -1, dtype=np.int64)
            found[owners[hits]] = nbrs[hits]  # any parent (last hit wins)
            next_frontier = np.flatnonzero(found >= 0)
            parent[next_frontier] = found[next_frontier]
            # bottom-up probes stop at the first visited in-neighbor:
            # on average a candidate scans well under half its list
            view.account_frontier(
                cand.size, int(owners.size * 0.4), serial_fraction=_BFS_SERIAL
            )
        else:
            owners, nbrs = gather_edges(out_indptr, out_dsts, frontier)
            fresh = parent[nbrs] < 0
            parent[nbrs[fresh]] = owners[fresh]
            # dedupe via a bitmap: same sorted result as np.unique, no sort
            discovered = np.zeros(nv, dtype=bool)
            discovered[nbrs[fresh]] = True
            next_frontier = np.flatnonzero(discovered)
            view.account_frontier(frontier.size, int(owners.size), serial_fraction=_BFS_SERIAL)

        edges_to_check -= scout
        view.account_compute(next_frontier.size * 8, serial_fraction=_BFS_SERIAL)
        frontier = next_frontier
    return parent


__all__ = ["bfs"]
