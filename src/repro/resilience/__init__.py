"""Runtime fault tolerance: scrub, quarantine-and-repair, degradation.

DGAP's durability story (paper §4) assumes media faults surface only at
restart; real DCPMM raises uncorrectable errors (EUNCORR/poison) during
normal operation.  This package keeps a *live* instance operating
through them:

* :class:`~repro.resilience.quarantine.QuarantineRegistry` maps every
  confirmed-poisoned line to the graph entity it damages and records
  the repair outcome;
* :class:`~repro.resilience.scrub.ResilienceManager` wraps one DGAP
  instance with an online scrub-and-repair pass, guarded ingest and
  analytics, and the HEALTHY → DEGRADED → READ_ONLY health ladder;
* :class:`~repro.resilience.quarantine.DamageReport` is what a degraded
  instance answers analytics with instead of raising mid-kernel.

The runtime fault *injection* these defenses are exercised against
lives in :mod:`repro.pmem.faults` (``read_poison_rate`` /
``transient_read_rate``); the soak harness driving both is
:mod:`repro.testing.soaksweep`.
"""

from .quarantine import (
    DamageReport,
    HealthState,
    QuarantineEntry,
    QuarantineRegistry,
    RepairOutcome,
)
from .scrub import ResilienceManager

__all__ = [
    "DamageReport",
    "HealthState",
    "QuarantineEntry",
    "QuarantineRegistry",
    "RepairOutcome",
    "ResilienceManager",
]
