"""Online scrub-and-repair pass and the degraded-mode wrapper.

:class:`ResilienceManager` wraps one live DGAP instance and keeps it
operating through uncorrectable media errors:

* **on-demand repair** — when any device read raises
  :class:`~repro.errors.MediaError`, :meth:`handle_media_error`
  quarantines every currently-poisoned line, maps it through
  ``pool.region_of`` to the structure it damages, and repairs it from
  whatever redundancy survives;
* **patrol scrub** — :meth:`scrub` walks the device in fixed windows on
  the modeled clock (sequential-read cost in the ``scrub`` bucket),
  finding and repairing poison the application has not touched yet;
* **guarded operation** — :meth:`guarded_insert_edge` and
  :meth:`analyze` catch mid-operation faults, repair, and retry, so a
  DEGRADED instance answers with a
  :class:`~repro.resilience.quarantine.DamageReport` instead of raising
  mid-kernel.

Repair honesty rule: poisoned bytes are *lost* — repairs reconstruct
content only from readable redundancy (DRAM metadata, surviving slots,
surviving log entries, known constants), never from the simulator's
shadow of the damaged bytes.  What each region kind affords:

=================== =====================================================
region              repair
=================== =====================================================
``edges.g<cur>``    pivots from ``va.start`` (exact); gaps are zeros
                    (exact); damaged *run* slots are lost — the run is
                    compacted around them and per-vertex degrees fixed
                    up (**lossy**)
``elogs.g<cur>``    slots at/past the append cursor are zeros (exact);
                    damaged live entries are lost — surviving entries
                    (slot order = oldest-first chain order) are
                    re-linked into a fresh chain and the owner inferred
                    from its degree shortfall (**lossy**)
``vertexarr.*``     rewritten from the authoritative DRAM cache (exact)
``segocc.g<cur>``   rewritten from DRAM ``seg_occ`` (exact)
``meta.*``          shutdown-only snapshot: zeroed, regenerated at the
                    next shutdown (scrubbed)
``ulog.*``          quiescent between operations: reset to idle
                    (scrubbed); an ACTIVE committed backup payload is
                    unrecoverable
``rebal.scratch.*`` dead between operations (scrubbed) unless a
                    COPYBACK names it as source (unrecoverable)
dead generations    zeroed (scrubbed)
pool metadata       magic/roots/cursor rewritten from DRAM authority
                    (scrubbed — the shutdown hint may differ)
unknown             unrecoverable → READ_ONLY
=================== =====================================================

Health only worsens: HEALTHY → DEGRADED on the first lossy repair,
→ READ_ONLY on the first unrecoverable range.  Transitions and repairs
are traced (``repro.obs`` spans), so ``bench profile`` attributes their
modeled time exactly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.encoding import SLOT_DTYPE, TOMB_BIT
from ..core.rebalance import (
    ROOT_EPS,
    ROOT_GEN,
    ROOT_INIT_CAP,
    ROOT_NTHREADS,
    ROOT_NV_HINT,
    ROOT_SEGSLOTS,
    ROOT_SHUTDOWN,
)
from ..core.undo_log import STATE_ACTIVE, STATE_COPYBACK
from ..core.vertex_array import NO_EL
from ..errors import MediaError, ReadOnlyGraphError
from ..obs.tracer import annotate, trace
from ..pmem import pool as pool_mod
from .quarantine import (
    OUTCOME_HEALTH,
    DamageReport,
    HealthState,
    QuarantineEntry,
    QuarantineRegistry,
    RepairOutcome,
)

_FIELDS = 3  # edge-log entry fields (src, dst_enc, back)


class ResilienceManager:
    """Runtime fault tolerance for one live DGAP instance."""

    def __init__(self, graph, patrol_bytes: int = 64 * 1024, max_retries: int = 3):
        self.graph = graph
        self.pool = graph.pool
        self.dev = graph.pool.device
        self.registry = QuarantineRegistry()
        self.health = HealthState.HEALTHY
        self.patrol_bytes = int(patrol_bytes)
        self.max_retries = int(max_retries)
        self._patrol_cursor = 0
        graph.health = self.health

    # -- health ------------------------------------------------------------
    def _set_health(self, new: HealthState) -> None:
        if new.rank <= self.health.rank:
            return
        with trace(
            "health_transition",
            from_state=self.health.value,
            to_state=new.value,
        ):
            self.health = new
            self.graph.health = new

    def check_writable(self) -> None:
        if self.health is HealthState.READ_ONLY:
            raise ReadOnlyGraphError(
                "instance is READ_ONLY after unrecoverable media damage; "
                f"see DamageReport: {self.damage_report().summary()}"
            )

    def damage_report(self) -> DamageReport:
        return self.registry.report(self.health)

    # -- entry points ------------------------------------------------------
    def handle_media_error(self, err: MediaError) -> List[QuarantineEntry]:
        """Quarantine and repair after a read faulted; returns new entries."""
        with trace("quarantine", off=err.off, nbytes=err.length):
            return self._repair_pending()

    def scrub(self, nbytes: Optional[int] = None) -> List[QuarantineEntry]:
        """One patrol-scrub step: scan the next window, repair poison found.

        The scan is a media patrol read
        (:meth:`~repro.pmem.device.PMemDevice.scrub_scan`): it charges
        one sequential read to the ``scrub`` bucket *and* surfaces
        latent spontaneous decay in the window, which — together with
        any poison demand reads already confirmed — is repaired before
        returning.  Call with ``nbytes=device.size`` for a full scrub.
        Returns the quarantine entries created this step.
        """
        window = min(int(nbytes or self.patrol_bytes), self.dev.size)
        start = self._patrol_cursor
        end = min(start + window, self.dev.size)
        with trace("scrub", off=start, nbytes=end - start):
            found = self.dev.scrub_scan(start, end - start, bucket="scrub")
            self._patrol_cursor = end % self.dev.size
            hit = bool(found) or any(
                off < end and off + n > start
                for off, n in self.dev.poisoned_ranges()
            )
            entries = self._repair_pending() if hit else []
            annotate(found=len(entries))
        return entries

    def full_scrub(self) -> List[QuarantineEntry]:
        self._patrol_cursor = 0
        return self.scrub(self.dev.size)

    # -- guarded operation -------------------------------------------------
    def guarded_insert_edge(
        self, src: int, dst: int, thread_id: int = 0
    ) -> List[QuarantineEntry]:
        """Insert one edge, repairing and retrying through media faults.

        Whether a faulted insert landed is decided from the source's
        degree delta, corrected for edges the repair itself dropped —
        an insert is retried only when it provably did not land, so the
        graph never gains a duplicate.  Raises
        :class:`~repro.errors.ReadOnlyGraphError` when the instance is
        (or becomes) READ_ONLY.
        """
        self.check_writable()
        g = self.graph
        created: List[QuarantineEntry] = []
        for _ in range(self.max_retries + 1):
            known = src < g.va.num_vertices
            d0 = int(g.va.degree[src]) if known else 0
            try:
                g.insert_edge(src, dst, thread_id)
                return created
            except MediaError as err:
                entries = self.handle_media_error(err)
                created.extend(entries)
                if self.health is HealthState.READ_ONLY:
                    raise ReadOnlyGraphError(
                        "media damage during insert was unrecoverable; "
                        "instance is now READ_ONLY"
                    ) from err
                lost_src = sum(
                    n for e in entries for v, n in e.lost_by_vertex if v == src
                )
                landed = (
                    src < g.va.num_vertices
                    and int(g.va.degree[src]) > d0 - lost_src
                )
                if landed:
                    return created
        raise MediaError(
            f"insert of ({src}, {dst}) kept faulting after "
            f"{self.max_retries} repair attempts"
        )

    def analyze(self, kernel: Callable) -> Tuple[object, DamageReport]:
        """Run ``kernel(snapshot)`` with repair-retry; returns
        ``(result, DamageReport)`` instead of raising mid-kernel."""
        g = self.graph
        for _ in range(self.max_retries + 1):
            try:
                snap = g.consistent_view()
                try:
                    result = kernel(snap)
                finally:
                    close = getattr(snap, "close", None)
                    if close is not None:
                        close()
                return result, self.damage_report()
            except MediaError as err:
                self.handle_media_error(err)
        raise MediaError(
            f"analysis kept faulting after {self.max_retries} repair attempts"
        )

    # -- quarantine + repair ----------------------------------------------
    def _repair_pending(self) -> List[QuarantineEntry]:
        """Repair every currently-poisoned range; returns new entries."""
        ranges = self.dev.poisoned_ranges()
        if not ranges:
            return []
        parts: List[Tuple[int, int, Optional[str]]] = []
        for off, n in ranges:
            parts.extend(self._split_by_region(off, n))

        g = self.graph
        edges_name = f"edges.g{g.ea.gen}"
        elogs_name = f"elogs.g{g.logs.gen}"
        edge_parts = [(o, n) for o, n, nm in parts if nm == edges_name]
        log_parts = [(o, n) for o, n, nm in parts if nm == elogs_name]
        other = [(o, n, nm) for o, n, nm in parts if nm not in (edges_name, elogs_name)]

        entries: List[QuarantineEntry] = []
        with self.dev.suspend_runtime_faults():
            # Generic regions first (they may unblock the structural
            # repairs), then edge logs (the edge-array repair walks the
            # repaired chains), then the edge array.
            for off, n, name in other:
                with trace("repair", region=name or "pool", off=off, nbytes=n):
                    e = self._repair_generic(off, n, name)
                    annotate(outcome=e.outcome.value)
                entries.append(e)
            if log_parts:
                entries.extend(self._repair_edge_log(log_parts, edge_parts))
            if edge_parts:
                entries.extend(self._repair_edge_array(edge_parts))
            self._finish_straddling_lines(entries)
        for e in entries:
            self.registry.add(e)
            self._set_health(OUTCOME_HEALTH[e.outcome])
        return entries

    def _finish_straddling_lines(self, entries: List[QuarantineEntry]) -> None:
        """Complete poisoned lines rewritten by two adjacent partial repairs.

        A cache line straddling a region boundary is repaired by two
        partial writes (one per region part), neither of which rewrites
        the full 64 bytes, so the device honestly leaves the ECC block
        poisoned.  Both halves of the line's content have just been
        reconstructed, so one full-line rewrite of that content makes
        the block whole.  Lines touching an unrecoverable part keep
        their poison — those bytes really are lost.
        """
        from ..pmem.device import CACHE_LINE

        bad = [
            e.byte_range for e in entries
            if e.outcome is RepairOutcome.UNRECOVERABLE
        ]
        for off, n in self.dev.poisoned_ranges():
            for a in range(off, off + n, CACHE_LINE):
                if any(lo < a + CACHE_LINE and a < hi for lo, hi in bad):
                    continue
                self.dev.ntstore(
                    a, self.dev.buf[a : a + CACHE_LINE].copy(), payload=0
                )
        self.dev.sfence()

    def _split_by_region(self, off: int, n: int) -> List[Tuple[int, int, Optional[str]]]:
        """Split a poisoned range at pool-region boundaries."""
        out: List[Tuple[int, int, Optional[str]]] = []
        end = off + n
        starts = sorted(s for s, _, _ in self.pool._directory.values())
        cur = off
        while cur < end:
            hit = self.pool.region_of(cur)
            if hit is not None:
                _, _, rend = hit
                nxt = min(rend, end)
            else:
                nxt = min([s for s in starts if s > cur] + [end])
            out.append((cur, nxt - cur, hit[0] if hit else None))
            cur = nxt
        return out

    def _zero(self, off: int, n: int) -> None:
        self.dev.ntstore(off, np.zeros(n, dtype=np.uint8), payload=0)
        self.dev.sfence()

    # -- generic (non-structural) regions ----------------------------------
    def _repair_generic(self, off: int, n: int, name: Optional[str]) -> QuarantineEntry:
        g = self.graph

        def entry(kind: str, outcome: RepairOutcome, detail: str = "") -> QuarantineEntry:
            return QuarantineEntry(
                off=off, nbytes=n, region=name or kind, kind=kind,
                outcome=outcome, detail=detail,
            )

        if name is None:
            if off < pool_mod._DATA_OFF:
                self._rewrite_pool_meta(off, n)
                return entry(
                    "pool-metadata", RepairOutcome.SCRUBBED,
                    "rewritten from DRAM authority",
                )
            self._zero(off, n)
            return entry("unallocated", RepairOutcome.SCRUBBED)

        va = g.va
        if name.startswith("vertexarr."):
            field, gen = name.split(".")[1], name.rsplit(".g", 1)[1]
            regions = getattr(va, "_regions", None)
            live = (
                regions is not None
                and field in regions
                and regions[field].name == name
            )
            if live:
                r = regions[field]
                i0 = (off - r.offset) // r.itemsize
                i1 = (off + n - r.offset) // r.itemsize
                r.write_slice(i0, getattr(va, field)[i0:i1], payload=0, persist=True)
                return entry(
                    "vertex-metadata", RepairOutcome.EXACT,
                    f"field {field!r} rewritten from DRAM cache",
                )
            self._zero(off, n)
            return entry("dead-generation", RepairOutcome.SCRUBBED)

        if name == f"segocc.g{g.ea.gen}" and g.ea._occ_region is not None:
            r = g.ea._occ_region
            i0 = (off - r.offset) // r.itemsize
            i1 = (off + n - r.offset) // r.itemsize
            r.write_slice(i0, g.ea.seg_occ[i0:i1], payload=0, persist=True)
            return entry(
                "pma-metadata", RepairOutcome.EXACT, "rewritten from DRAM seg_occ"
            )

        if name.startswith("meta."):
            self._zero(off, n)
            return entry(
                "shutdown-metadata", RepairOutcome.SCRUBBED,
                "stale shutdown snapshot; regenerated at next shutdown",
            )

        if name.startswith(("edges.g", "elogs.g", "segocc.g")):
            # Current-generation edges/elogs are routed to the structural
            # repairs before this dispatcher; reaching here means a dead
            # (pre-resize) generation.
            self._zero(off, n)
            return entry("dead-generation", RepairOutcome.SCRUBBED)

        if name.startswith("ulog.hdr.t"):
            self._zero(off, n)
            return entry(
                "undo-log", RepairOutcome.SCRUBBED,
                "quiescent header reset to idle",
            )

        if name.startswith("ulog.pay.t"):
            tid = int(name.rsplit("t", 1)[1])
            hdr = next(
                (ul.read_header() for ul in g.ulogs if ul.thread_id == tid), None
            )
            if hdr is not None and hdr.state == STATE_ACTIVE and hdr.valid != 0:
                return entry(
                    "undo-log", RepairOutcome.UNRECOVERABLE,
                    "committed ACTIVE backup payload lost",
                )
            self._zero(off, n)
            return entry("undo-log", RepairOutcome.SCRUBBED)

        if name.startswith("rebal.scratch."):
            srcs = [
                (h.dst_off, h.dst_off + h.length)
                for h in (ul.read_header() for ul in g.ulogs)
                if h.state == STATE_COPYBACK
            ]
            if any(a < off + n and off < b for a, b in srcs):
                return entry(
                    "scratch", RepairOutcome.UNRECOVERABLE,
                    "COPYBACK source image lost",
                )
            self._zero(off, n)
            return entry("scratch", RepairOutcome.SCRUBBED)

        if name.startswith("pmdk-journal"):
            self._zero(off, n)
            return entry("journal", RepairOutcome.SCRUBBED, "no transaction in flight")

        return entry("unknown", RepairOutcome.UNRECOVERABLE, f"no redundancy for {name!r}")

    def _rewrite_pool_meta(self, off: int, n: int) -> None:
        """Reconstruct the pool metadata block from DRAM authority."""
        g = self.graph
        repl = np.zeros(pool_mod._DATA_OFF, dtype=np.uint8)
        repl[0:8] = np.frombuffer(np.uint64(pool_mod._MAGIC).tobytes(), dtype=np.uint8)
        roots = np.zeros(pool_mod._N_ROOT_SLOTS, dtype=np.uint64)
        roots[ROOT_GEN] = g.ea.gen
        roots[ROOT_SEGSLOTS] = g.ea.segment_slots
        roots[ROOT_INIT_CAP] = g.ea.capacity
        roots[ROOT_EPS] = g.logs.entries_per_section
        roots[ROOT_NTHREADS] = len(g.ulogs)
        roots[ROOT_NV_HINT] = g.va.num_vertices
        roots[ROOT_SHUTDOWN] = 0
        ro = pool_mod._ROOTS_OFF
        repl[ro : ro + roots.nbytes] = roots.view(np.uint8)
        co = pool_mod._CURSOR_OFF
        repl[co : co + 8] = np.frombuffer(
            np.uint64(self.pool.allocator.cursor).tobytes(), dtype=np.uint8
        )
        self.dev.ntstore(off, repl[off : off + n], payload=0)
        self.dev.sfence()

    # -- edge-log repair ----------------------------------------------------
    def _repair_edge_log(
        self, parts: List[Tuple[int, int]], edge_parts: List[Tuple[int, int]]
    ) -> List[QuarantineEntry]:
        """Lossy repair of the current-generation edge logs.

        Damaged entries are lost.  Surviving entries of each affected
        vertex (slot order = oldest-first chain order) are re-linked
        into a fresh back-pointer chain; the owner of a lost entry is
        inferred from its degree shortfall (``degree - array_degree``
        minus the surviving chain length).  Zeroed slots before the
        append cursor stay spent, as merge invalidation leaves them,
        except that a cursor whose frontier entry died shrinks to the
        last surviving non-empty entry — keeping the DRAM cursors
        identical to what an independent rebuild would infer.
        """
        g = self.graph
        logs = g.logs
        va = g.va
        reg = logs.region
        eps = logs.entries_per_section
        nv = va.num_vertices

        # Pre-repair cursors: attribution below must classify damage
        # against where the frontier *was*, not the shrunk cursor.
        counts_before = logs.counts.copy()

        # Zero first: damaged slots then read back as invalid entries,
        # so "surviving" needs no separate mask.
        for off, n in parts:
            self._zero(off, n)

        dmg_slots: Dict[int, set] = {}
        for off, n in parts:
            f0 = (off - reg.offset) // reg.itemsize
            f1 = (off + n - reg.offset + reg.itemsize - 1) // reg.itemsize
            for gidx in range(f0 // _FIELDS, (f1 + _FIELDS - 1) // _FIELDS):
                dmg_slots.setdefault(gidx // eps, set()).add(gidx % eps)

        # Sections whose live entries may be lost (damage below cursor).
        el = va.el[:nv]
        edge_dmg = self._edge_slot_mask(edge_parts)
        lost_by_vertex: Dict[int, int] = {}
        secs_touched: List[int] = []
        for s, slots in sorted(dmg_slots.items()):
            cur = int(logs.counts[s])
            if not any(sl < cur for sl in slots):
                continue  # only at/past-cursor zeros: byte-exact
            secs_touched.append(s)
            base = s * eps * _FIELDS
            rows = reg.view[base : base + cur * _FIELDS].reshape(cur, _FIELDS)
            valid = (rows != 0).all(axis=1)
            srcs = rows[:, 0].astype(np.int64) - 1
            cands = np.flatnonzero((el >= 0) & (el // eps == s))
            for v in cands.tolist():
                mine = np.flatnonzero(valid & (srcs == v))
                old_chain = int(va.degree[v]) - int(va.array_degree[v])
                lost_v = old_chain - int(mine.size)
                if lost_v <= 0:
                    continue  # no entry of v was damaged: chain untouched
                lost_by_vertex[v] = lost_by_vertex.get(v, 0) + lost_v
                gidxs = s * eps + mine
                chain_live = 0
                prev_stored = 1  # "no predecessor"
                for i, sl in enumerate(mine.tolist()):
                    pos = base + sl * _FIELDS + 2
                    if int(reg.view[pos]) != prev_stored:
                        reg.write(pos, prev_stored, payload=0, persist=True)
                    prev_stored = int(gidxs[i]) + 2
                    enc = int(rows[sl, 1])
                    chain_live += -1 if enc & int(TOMB_BIT) else 1
                va.set_el(v, int(gidxs[-1]) if mine.size else NO_EL)
                va.set_degree(v, int(va.degree[v]) - lost_v)
                st, ad = int(va.start[v]), int(va.array_degree[v])
                if not edge_dmg[st : st + ad].any():
                    run = g.ea.slots[st : st + ad]
                    tombs = int(np.count_nonzero((run > 0) & ((run & TOMB_BIT) != 0)))
                    va.set_live_degree(v, (ad - 2 * tombs) + chain_live)
                # else: the edge-array repair recomputes live_degree.
            valid_after = (rows != 0).all(axis=1)
            logs.live_counts[s] = int(valid_after.sum())
            # If the section's append frontier itself died, the cursor
            # shrinks to one past the last surviving non-empty entry —
            # exactly what an independent rebuild_counts() would infer.
            nonempty = (rows != 0).any(axis=1)
            logs.counts[s] = (
                int(nonempty.size - nonempty[::-1].argmax())
                if nonempty.any() else 0
            )
        if secs_touched:
            g._touch_sections(np.asarray(secs_touched, dtype=np.int64))

        entries: List[QuarantineEntry] = []
        lost_total = sum(lost_by_vertex.values())
        attributed = False
        for off, n in parts:
            f0 = (off - reg.offset) // reg.itemsize
            g0 = f0 // _FIELDS
            g1 = ((off + n - reg.offset) // reg.itemsize + _FIELDS - 1) // _FIELDS
            below_cursor = any(
                (gg % eps) < int(counts_before[gg // eps]) for gg in range(g0, g1)
            )
            if not below_cursor:
                outcome, lv, vs = RepairOutcome.EXACT, (), ()
                detail = "unreached log slots re-zeroed"
            elif lost_total and not attributed:
                attributed = True
                outcome = RepairOutcome.LOSSY
                lv = tuple(sorted(lost_by_vertex.items()))
                vs = tuple(sorted(lost_by_vertex))
                detail = f"{lost_total} live log entries lost; chains re-linked"
            else:
                outcome, lv, vs = RepairOutcome.SCRUBBED, (), ()
                detail = "spent log slots re-zeroed"
            with trace("repair", region=reg.name, off=off, nbytes=n):
                annotate(outcome=outcome.value, lost_edges=sum(x for _, x in lv))
            entries.append(
                QuarantineEntry(
                    off=off, nbytes=n, region=reg.name, kind="edge-log",
                    outcome=outcome, vertices=vs,
                    lost_edges=sum(x for _, x in lv),
                    lost_by_vertex=lv, detail=detail,
                )
            )
        return entries

    # -- edge-array repair ---------------------------------------------------
    def _edge_slot_mask(self, edge_parts: List[Tuple[int, int]]) -> np.ndarray:
        ea = self.graph.ea
        mask = np.zeros(ea.capacity, dtype=bool)
        for off, n in edge_parts:
            lo = (off - ea.region.offset) // 4
            mask[lo : lo + n // 4] = True
        return mask

    def _repair_edge_array(self, parts: List[Tuple[int, int]]) -> List[QuarantineEntry]:
        """Lossy repair of the current-generation edge array.

        Damaged run slots are lost; each affected run is compacted in
        place (surviving slots first, trailing gaps), pivots are
        rewritten from ``va.start`` and gaps re-zeroed (both exact).
        Degrees come down by the loss; ``live_degree`` is recomputed
        from the surviving tombstone bits plus the vertex's (already
        repaired) log chain.
        """
        g = self.graph
        ea = g.ea
        va = g.va
        reg = ea.region
        nv = va.num_vertices
        dmg = self._edge_slot_mask(parts)

        # Snapshots: the loop below mutates va in place.
        start = va.start[:nv].copy()
        ad = va.array_degree[:nv].copy()
        piv = start - 1
        cov = np.zeros(ea.capacity, dtype=bool)  # slots we rewrote

        lost_by_vertex: Dict[int, int] = {}
        lo_touch, hi_touch = ea.capacity, 0
        affected = np.flatnonzero(
            (ad > 0) & (start < dmg.size) & dmg_any_in_runs(dmg, start, ad)
        )
        for v in affected.tolist():
            st, d = int(start[v]), int(ad[v])
            run_dmg = dmg[st : st + d]
            run = ea.slots[st : st + d]
            surv = run[~run_dmg].copy()
            lost_v = d - int(surv.size)
            new_run = np.zeros(d, dtype=SLOT_DTYPE)
            new_run[: surv.size] = surv
            reg.write_slice(st, new_run, payload=0, persist=True)
            cov[st : st + d] = True
            lo_touch, hi_touch = min(lo_touch, st), max(hi_touch, st + d)
            lost_by_vertex[v] = lost_by_vertex.get(v, 0) + lost_v
            va.set_array_degree(v, int(surv.size))
            va.set_degree(v, int(va.degree[v]) - lost_v)
            tombs = int(np.count_nonzero((surv > 0) & ((surv & TOMB_BIT) != 0)))
            chain_live = 0
            if int(va.el[v]) != NO_EL:
                _, _, encs = g.logs.walk_chain_arrays(int(va.el[v]))
                chain_live = int(
                    np.count_nonzero((encs & TOMB_BIT) == 0) - np.count_nonzero(encs & TOMB_BIT)
                )
            va.set_live_degree(v, (int(surv.size) - 2 * tombs) + chain_live)

        piv_dmg = np.flatnonzero((piv >= 0) & dmg[np.clip(piv, 0, dmg.size - 1)])
        for v in piv_dmg.tolist():
            p = int(piv[v])
            reg.write(p, np.int32(-(v + 1)), payload=0, persist=True)
            cov[p] = True
            lo_touch, hi_touch = min(lo_touch, p), max(hi_touch, p + 1)

        # Remaining damaged slots are inter-run gaps: re-zero them.
        gaps = np.flatnonzero(dmg & ~cov)
        if gaps.size:
            splits = np.flatnonzero(np.diff(gaps) > 1) + 1
            for seg in np.split(gaps, splits):
                a, b = int(seg[0]), int(seg[-1]) + 1
                self._zero(reg.byte_offset(a), (b - a) * 4)
                lo_touch, hi_touch = min(lo_touch, a), max(hi_touch, b)

        if hi_touch > lo_touch:
            ea.recount(lo_touch, hi_touch)
            g._touch_slot_range(lo_touch, hi_touch)

        entries: List[QuarantineEntry] = []
        for off, n in parts:
            lo = (off - reg.offset) // 4
            hi = lo + n // 4
            vs: Dict[int, int] = {}
            for v in affected.tolist():
                st, d = int(start[v]), int(ad[v])
                k = int(dmg[max(st, lo) : min(st + d, hi)].sum()) if st < hi and st + d > lo else 0
                if k:
                    vs[v] = k
            lost = sum(vs.values())
            outcome = RepairOutcome.LOSSY if lost else RepairOutcome.EXACT
            detail = (
                f"{lost} live edge slots lost; runs compacted"
                if lost
                else "pivots/gaps rewritten byte-exactly"
            )
            with trace("repair", region=reg.name, off=off, nbytes=n):
                annotate(outcome=outcome.value, lost_edges=lost)
            entries.append(
                QuarantineEntry(
                    off=off, nbytes=n, region=reg.name, kind="edge-array",
                    outcome=outcome, vertices=tuple(sorted(vs)),
                    lost_edges=lost, lost_by_vertex=tuple(sorted(vs.items())),
                    detail=detail,
                )
            )
        return entries


def dmg_any_in_runs(dmg: np.ndarray, start: np.ndarray, ad: np.ndarray) -> np.ndarray:
    """Per-vertex: does ``[start, start+ad)`` contain a damaged slot?

    Vectorized via a prefix sum over the damage mask.
    """
    cum = np.zeros(dmg.size + 1, dtype=np.int64)
    np.cumsum(dmg, out=cum[1:])
    lo = np.clip(start, 0, dmg.size)
    hi = np.clip(start + ad, 0, dmg.size)
    return cum[hi] - cum[lo] > 0


__all__ = ["ResilienceManager"]
