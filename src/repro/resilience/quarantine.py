"""Quarantine bookkeeping: damaged ranges, entities, outcomes, health.

One :class:`QuarantineEntry` is created per (poisoned range × pool
region) the scrubber confronts; the :class:`QuarantineRegistry` holds
them for the lifetime of the owning instance and derives the aggregate
:class:`DamageReport` that degraded-mode analytics hand back to
callers.  The registry is DRAM bookkeeping only — the authoritative
damage record is the device's poison set; everything here is derived
from it at quarantine time and kept so later queries can name what was
lost without re-deriving it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class HealthState(enum.Enum):
    """Operational state of one DGAP instance, monotonically worsening."""

    HEALTHY = "healthy"
    """No damage, or every repair restored the exact pre-fault bytes."""

    DEGRADED = "degraded"
    """Live edges were lost to a lossy repair; the structure is
    consistent again and analytics answer over the remainder, paired
    with a :class:`DamageReport`."""

    READ_ONLY = "read_only"
    """Damage to a critical region could not be repaired; writes are
    refused (:class:`~repro.errors.ReadOnlyGraphError`) so they cannot
    compound the loss, reads keep being served."""

    @property
    def rank(self) -> int:
        return _RANK[self]

    def worst(self, other: "HealthState") -> "HealthState":
        return self if self.rank >= other.rank else other


_RANK = {HealthState.HEALTHY: 0, HealthState.DEGRADED: 1, HealthState.READ_ONLY: 2}


class RepairOutcome(enum.Enum):
    """What the repair pass managed to do with one damaged range."""

    EXACT = "exact"
    """Bytes restored identical to the pre-fault content (reconstructed
    from DRAM authority or known-constant content)."""

    SCRUBBED = "scrubbed"
    """Content was dead (dead generation, idle undo log, shutdown
    metadata, unallocated space): zero-rewritten to clear the poison.
    No information the live graph uses was lost, but the bytes differ
    from a fault-free twin until the region is next rewritten."""

    LOSSY = "lossy"
    """Live edges were lost; the structure was compacted/relinked around
    the hole and the losses are enumerated per vertex."""

    UNRECOVERABLE = "unrecoverable"
    """No redundancy covers the range; the line stays poisoned and the
    instance drops to READ_ONLY."""


#: Health implied by each outcome (the instance takes the worst seen).
OUTCOME_HEALTH = {
    RepairOutcome.EXACT: HealthState.HEALTHY,
    RepairOutcome.SCRUBBED: HealthState.HEALTHY,
    RepairOutcome.LOSSY: HealthState.DEGRADED,
    RepairOutcome.UNRECOVERABLE: HealthState.READ_ONLY,
}


@dataclass(frozen=True)
class QuarantineEntry:
    """One damaged byte range mapped to the graph entity it hit."""

    off: int
    nbytes: int
    region: str
    """Pool region name, or ``"pool metadata"`` / ``"unallocated"``."""

    kind: str
    """Entity kind: ``edge-array``, ``edge-log``, ``vertex-metadata``,
    ``pma-metadata``, ``shutdown-metadata``, ``undo-log``, ``scratch``,
    ``journal``, ``dead-generation``, ``pool-metadata``, ``unallocated``
    or ``unknown``."""

    outcome: RepairOutcome
    vertices: Tuple[int, ...] = ()
    """Vertices that lost edges to this range (lossy repairs only)."""

    lost_edges: int = 0
    """Live edges irrecoverably dropped by this range's repair."""

    lost_by_vertex: Tuple[Tuple[int, int], ...] = ()
    """``(vertex, n_lost)`` pairs summing to ``lost_edges`` — what the
    guarded ingest path uses to correct degree-delta landed detection."""

    detail: str = ""

    @property
    def byte_range(self) -> Tuple[int, int]:
        return (self.off, self.off + self.nbytes)


@dataclass
class DamageReport:
    """Aggregate damage picture a degraded instance answers with."""

    health: HealthState
    entries: Tuple[QuarantineEntry, ...]

    @property
    def n_quarantined(self) -> int:
        return len(self.entries)

    @property
    def lost_edges(self) -> int:
        return sum(e.lost_edges for e in self.entries)

    @property
    def damaged_vertices(self) -> Tuple[int, ...]:
        return tuple(sorted({v for e in self.entries for v in e.vertices}))

    @property
    def byte_ranges(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(e.byte_range for e in self.entries)

    def by_outcome(self) -> Dict[RepairOutcome, int]:
        out: Dict[RepairOutcome, int] = {}
        for e in self.entries:
            out[e.outcome] = out.get(e.outcome, 0) + 1
        return out

    def inexact_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Byte ranges whose repair is *not* byte-identical to a
        fault-free twin — exactly what the soak oracle must exempt from
        its byte comparison."""
        return tuple(
            e.byte_range for e in self.entries if e.outcome is not RepairOutcome.EXACT
        )

    def summary(self) -> str:
        counts = ", ".join(
            f"{o.value}={n}" for o, n in sorted(self.by_outcome().items(), key=lambda kv: kv[0].value)
        )
        return (
            f"health={self.health.value} quarantined={self.n_quarantined}"
            f" [{counts}] lost_edges={self.lost_edges}"
            f" damaged_vertices={len(self.damaged_vertices)}"
        )


class QuarantineRegistry:
    """Append-only record of every quarantined range of one instance."""

    def __init__(self) -> None:
        self._entries: List[QuarantineEntry] = []

    def add(self, entry: QuarantineEntry) -> QuarantineEntry:
        self._entries.append(entry)
        return entry

    @property
    def entries(self) -> Tuple[QuarantineEntry, ...]:
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def worst_outcome_health(self) -> HealthState:
        h = HealthState.HEALTHY
        for e in self._entries:
            h = h.worst(OUTCOME_HEALTH[e.outcome])
        return h

    def report(self, health: HealthState) -> DamageReport:
        return DamageReport(health=health, entries=self.entries)


__all__ = [
    "HealthState",
    "RepairOutcome",
    "OUTCOME_HEALTH",
    "QuarantineEntry",
    "QuarantineRegistry",
    "DamageReport",
]
