"""DGAP reproduction: efficient dynamic graph analysis on (simulated) persistent memory.

Public API quickstart::

    from repro import DGAP, DGAPConfig

    g = DGAP(DGAPConfig(init_vertices=1000, init_edges=10_000))
    g.insert_edge(0, 1)
    g.insert_edges([(1, 2), (2, 3)])
    snap = g.consistent_view()
    from repro.algorithms import pagerank
    from repro.analysis.view import CSRArraysView
    ranks = pagerank(CSRArraysView(*snap.to_csr()))
    snap.release()
    g.shutdown()

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured experiment index.
"""

from .config import DGAPConfig
from .errors import (
    GraphError,
    ImmutableGraphError,
    OutOfPMemError,
    PMemError,
    RecoveryError,
    ReproError,
    SimulatedCrash,
    SnapshotError,
    TransactionError,
    VertexRangeError,
)

__version__ = "1.0.0"

__all__ = [
    "DGAP",
    "DGAPConfig",
    "EdgeBatch",
    "ReproError",
    "PMemError",
    "OutOfPMemError",
    "TransactionError",
    "SimulatedCrash",
    "GraphError",
    "VertexRangeError",
    "ImmutableGraphError",
    "SnapshotError",
    "RecoveryError",
    "__version__",
]


def __getattr__(name):
    # Lazy import: keep `import repro` light and avoid cycles.
    if name == "DGAP":
        from .core.dgap import DGAP

        return DGAP
    if name == "EdgeBatch":
        from .core.batch import EdgeBatch

        return EdgeBatch
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
