"""Virtual writer threads: event-level replay of concurrent ingestion.

Python's GIL makes real multi-threaded throughput meaningless, so
Table 3's thread counts are evaluated analytically (Amdahl + media
bandwidth, ``repro.baselines.interfaces``).  This module provides the
*independent cross-check*: it replays an edge stream as if executed by
``n_threads`` concurrent writers against the real DGAP instance,
advancing one modeled clock per thread and serializing conflicts
through the paper's lock protocol (§3.1.6):

* an insert holds its source vertex's *section* lock for the modeled
  duration of the operation;
* a rebalance triggered by the insert additionally holds every section
  of its (extended) window, blocking writers that target them.

The makespan of the replay — max over thread clocks, floored by the
media write bandwidth — is an alternative estimate of T_p that emerges
from actual per-operation costs and actual conflict patterns rather
than a declared serial fraction.  ``tests/test_vthreads.py`` verifies
the two estimators agree on shape (scaling band, hot-section
degradation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..baselines.interfaces import PM_WRITE_BW_BYTES_PER_S
from ..core.dgap import DGAP


@dataclass
class VThreadResult:
    """Outcome of one virtual-thread replay."""

    n_threads: int
    edges: int
    makespan_s: float
    thread_busy_s: List[float]
    lock_wait_s: float
    pm_media_bytes: int

    @property
    def meps(self) -> float:
        """Throughput at this thread count, in million edges per second."""
        return self.edges / self.makespan_s / 1e6 if self.makespan_s > 0 else float("inf")

    @property
    def utilization(self) -> float:
        """Mean busy fraction across threads (1.0 = perfect scaling)."""
        if self.makespan_s == 0:
            return 1.0
        return float(np.mean(self.thread_busy_s)) / self.makespan_s


class VirtualThreadScheduler:
    """Replay a stream over one DGAP instance with per-thread clocks."""

    def __init__(
        self,
        graph: DGAP,
        n_threads: int,
        record_events: bool = False,
        grow_vertices: bool = True,
    ):
        if n_threads < 1:
            raise ValueError("need at least one virtual thread")
        self.graph = graph
        self.n_threads = n_threads
        #: sharded replays disable growth: sources are pre-grown
        #: shard-locally and destinations are global ids that must never
        #: materialize local vertices.
        self.grow_vertices = grow_vertices
        self.clock = np.zeros(n_threads)  # ns, per virtual thread
        self.busy = np.zeros(n_threads)
        self.lock_wait_ns = 0.0
        #: ns at which each section's lock becomes free
        self.section_free: Dict[int, float] = {}
        #: with ``record_events``, the modeled lock-protocol event stream
        #: as ``(kind, thread, section)`` tuples — feed through
        #: ``repro.testing.racecheck.events_from_tuples`` to run the same
        #: lock-discipline oracle the real-thread racecheck uses.
        self.record_events = record_events
        self.events: List[Tuple[str, str, int]] = []
        graph.track_rebalance_windows = True

    def _note(self, kind: str, tid: int, section: int) -> None:
        if self.record_events:
            self.events.append((kind, f"vt{tid}", section))

    # -- scheduling ------------------------------------------------------
    def _acquire(self, tid: int, sections: Iterable[int]) -> float:
        """Wait for every section lock, in ascending order (paper §3.1.6)."""
        t = float(self.clock[tid])
        for s in sorted(set(sections)):
            free = self.section_free.get(s, 0.0)
            if free > t:
                self.lock_wait_ns += free - t
                t = free
        return t

    def _release(self, sections: Iterable[int], until: float) -> None:
        for s in set(sections):
            if self.section_free.get(s, 0.0) < until:
                self.section_free[s] = until

    def run(self, edges) -> VThreadResult:
        """Replay ``edges`` round-robin across the virtual threads."""
        g = self.graph
        dev = g.pool.device
        media_before = dev.stats.media_bytes
        for i, (src, dst) in enumerate(edges):
            tid = i % self.n_threads
            src = int(src)
            dst = int(dst)
            if src < g.num_vertices:
                sec = g.ea.section_of(int(g.va.start[src]) - 1)
            else:
                sec = 0
            start = self._acquire(tid, (sec,))

            ns0 = dev.stats.modeled_ns
            g.op_rebalance_windows.clear()
            g.insert_edge(src, dst, grow_vertices=self.grow_vertices)
            op_ns = dev.stats.modeled_ns - ns0

            # A triggered rebalance holds its whole window.  The real
            # protocol *defers* it: the writer drops its section lock,
            # then the rebalance flags the window and acquires every
            # section in ascending order (never an upgrade while
            # holding).  ``_acquire`` only advances a clock, so the
            # modeled wait is the same either way; the recorded event
            # stream follows the deferred order so the lock-discipline
            # oracle accepts it.
            touched = {sec}
            S = g.ea.segment_slots
            for lo, hi in g.op_rebalance_windows:
                touched.update(range(lo // S, min((hi + S - 1) // S, g.ea.n_sections)))
            self._note("acquire", tid, sec)
            self._note("release", tid, sec)
            if len(touched) > 1:
                start = max(start, self._acquire(tid, touched))
                win = sorted(touched)
                for s in win:
                    self._note("flag-set", tid, s)
                for s in win:
                    self._note("window-lock", tid, s)
                for s in reversed(win):
                    self._note("window-unlock", tid, s)
                for s in win:
                    self._note("flag-clear", tid, s)

            end = start + op_ns
            self.clock[tid] = end
            self.busy[tid] += op_ns
            self._release(touched, end)

        makespan = float(self.clock.max()) * 1e-9
        media = dev.stats.media_bytes - media_before
        makespan = max(makespan, media / PM_WRITE_BW_BYTES_PER_S)
        return VThreadResult(
            n_threads=self.n_threads,
            edges=len(edges),
            makespan_s=makespan,
            thread_busy_s=(self.busy * 1e-9).tolist(),
            lock_wait_s=self.lock_wait_ns * 1e-9,
            pm_media_bytes=int(media),
        )


def simulate_threads(
    make_graph,
    edges,
    thread_counts: Tuple[int, ...] = (1, 8, 16),
) -> Dict[int, VThreadResult]:
    """Replay the same stream at several thread counts (fresh graph each)."""
    out = {}
    for p in thread_counts:
        g = make_graph()
        out[p] = VirtualThreadScheduler(g, p).run(list(map(tuple, edges)))
    return out


@dataclass
class ShardedVThreadResult(VThreadResult):
    """Combined replay outcome across shards (makespan = max over shards)."""

    per_shard: List[VThreadResult] = field(default_factory=list)


def run_sharded(sharded, edges, n_threads: int) -> ShardedVThreadResult:
    """Replay a stream over a :class:`~repro.sharding.sharded.ShardedDGAP`.

    The writer threads are partitioned across shards and each shard runs
    its own :class:`VirtualThreadScheduler` over its routed sub-stream —
    independent section-lock tables, independent per-thread clocks, and,
    critically, an independent media-bandwidth floor per *pool*.  Shards
    execute concurrently, so the combined makespan is the **max** over
    per-shard makespans: N pools are N media lanes, which is what lets
    modeled ingest MEPS exceed the single-pool bandwidth ceiling of
    Table 3 (see ``benchmarks/test_shard_scaling.py``).
    """
    from ..core.batch import EdgeBatch

    n = sharded.n_shards
    batch = EdgeBatch.coerce(
        np.asarray(list(map(tuple, edges)), dtype=np.int64)
        if not isinstance(edges, (EdgeBatch, np.ndarray))
        else edges
    )
    mx = batch.max_vertex()
    if mx >= sharded.num_vertices:
        sharded.insert_vertex(mx)

    base, rem = divmod(n_threads, n)
    results: List[VThreadResult] = []
    for r, sub in sharded.router.split(batch):
        tr = max(1, base + (1 if r < rem else 0))
        sched = VirtualThreadScheduler(
            sharded.shards[r], tr, grow_vertices=False
        )
        pairs = list(zip(sub.src.tolist(), sub.dst.tolist()))
        results.append(sched.run(pairs))

    makespan = max((res.makespan_s for res in results), default=0.0)
    busy: List[float] = []
    for res in results:
        busy.extend(res.thread_busy_s)
    return ShardedVThreadResult(
        n_threads=sum(res.n_threads for res in results),
        edges=len(batch),
        makespan_s=makespan,
        thread_busy_s=busy,
        lock_wait_s=sum(res.lock_wait_s for res in results),
        pm_media_bytes=sum(res.pm_media_bytes for res in results),
        per_shard=results,
    )


__all__ = [
    "VirtualThreadScheduler",
    "VThreadResult",
    "ShardedVThreadResult",
    "run_sharded",
    "simulate_threads",
]
