"""Workload drivers: virtual-thread replay for concurrent-ingest modeling."""

from .vthreads import VirtualThreadScheduler, VThreadResult, simulate_threads

__all__ = ["VirtualThreadScheduler", "VThreadResult", "simulate_threads"]
