"""Sliding-window temporal semantics layered on DGAP's mutation paths."""

from .window import TemporalWindowGraph

__all__ = ["TemporalWindowGraph"]
