"""Sliding-window graph semantics on top of DGAP's mutation paths.

:class:`TemporalWindowGraph` turns a DGAP (or ShardedDGAP — anything
with ``insert_edges`` / ``tombstone_density`` / ``compact``) into a
windowed stream consumer.  Step ``t`` of a temporal stream (see
:mod:`repro.datasets.temporal`) is applied as three batched mutations:

1. **ingest** — the step's adds go down the batched ``EdgeBatch``
   insert path, tagged with birth step ``t`` in DRAM-side bookkeeping;
2. **churn** — the stream's explicit deletes each consume the *oldest*
   live copy of their (src, dst) pair (FIFO), issued as one tombstone
   batch; deletes of pairs with no live copy are skipped and counted;
3. **expiry** — with window ``W``, every copy born at step ``t - W``
   that churn has not already consumed is expired with one tombstone
   per copy, again as one batch.  ``W = 0`` expires the current step's
   own survivors immediately; ``W = 1`` keeps exactly the current step.

Both delete flavors go down the ordinary deletion path: a tombstone
cancels the positionally *last* live occurrence of its pair, while the
FIFO bookkeeping decides *how many* copies survive.  Parallel copies of
a pair are byte-identical slots, so "FIFO by birth step, remove-last in
the array" yields exactly the adjacency a per-pair FIFO reference
produces (pinned by ``tests/test_temporal_semantics.py``).

Tombstones accumulate until :meth:`DGAP.compact` merges them out; after
each step the wrapper triggers that sweep when the graph-wide tombstone
density crosses ``compact_threshold`` (half the slots wasted by a
matched pair ⇒ density 0.5 is all-garbage; the default 0.125 compacts
when a quarter of the entries are dead weight).  Every step runs inside
a ``temporal_step`` span (:mod:`repro.obs`), with per-phase child spans
coming from the underlying insert/compact paths.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.batch import DEFAULT_BATCH_SIZE, EdgeBatch
from ..errors import GraphError
from ..obs.tracer import annotate, trace

Pair = Tuple[int, int]


class TemporalWindowGraph:
    """Windowed ingest/expire/compact driver over a DGAP-like graph."""

    def __init__(
        self,
        graph,
        window: int,
        compact_threshold: float = 0.125,
        batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
        auto_compact: bool = True,
    ) -> None:
        if window < 0:
            raise GraphError(f"window must be >= 0, got {window}")
        if not 0.0 < compact_threshold <= 0.5:
            raise GraphError(
                f"compact_threshold must be in (0, 0.5], got {compact_threshold}"
            )
        self.graph = graph
        self.window = int(window)
        self.compact_threshold = float(compact_threshold)
        self.batch_size = batch_size
        self.auto_compact = auto_compact
        #: birth steps of the live copies of each pair, oldest first
        self._fifo: Dict[Pair, Deque[int]] = {}
        #: pairs born at each not-yet-expired step, in insertion order
        self._step_pairs: Dict[int, List[Pair]] = {}
        self._next_step = 0
        # counters (DRAM-side, reset on construction)
        self.n_steps = 0
        self.n_added = 0
        self.n_churn_deleted = 0
        self.n_churn_skipped = 0
        self.n_expired = 0
        self.n_compactions = 0

    # ------------------------------------------------------------------
    # stream application
    # ------------------------------------------------------------------
    def advance(self, adds, deletes=()) -> dict:
        """Apply one step (adds, then churn deletes, then window expiry).

        ``adds``/``deletes`` are ``(N, 2)`` arrays or pair iterables — or
        pass a :class:`~repro.datasets.temporal.TemporalStep` as ``adds``.
        Returns the step's statistics dict.
        """
        if hasattr(adds, "adds") and hasattr(adds, "deletes"):  # TemporalStep
            adds, deletes = adds.adds, adds.deletes
        t = self._next_step
        self._next_step += 1
        self.n_steps += 1
        with trace("temporal_step", step=t):
            added = self._ingest(t, adds)
            churned, skipped = self._churn(deletes)
            expired = self._expire(t - self.window)
            density = self.graph.tombstone_density()
            compacted = False
            if self.auto_compact and density >= self.compact_threshold:
                self.graph.compact()
                self.n_compactions += 1
                compacted = True
            annotate(
                added=added, churned=churned, expired=expired,
                density=round(density, 4), compacted=compacted,
            )
        return {
            "step": t,
            "added": added,
            "churn_deleted": churned,
            "churn_skipped": skipped,
            "expired": expired,
            "tombstone_density": density,
            "compacted": compacted,
        }

    def run(self, steps: Iterable) -> List[dict]:
        """Apply a whole stream (e.g. ``TemporalSpec.generate()`` output)."""
        return [self.advance(s) for s in steps]

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def _ingest(self, t: int, adds) -> int:
        batch = EdgeBatch.coerce(adds)
        if len(batch) == 0:
            self._step_pairs[t] = []
            return 0
        if batch.tombstone.any():
            raise GraphError("temporal adds must not carry tombstones")
        pairs = [(int(s), int(d)) for s, d in zip(batch.src, batch.dst)]
        self.graph.insert_edges(batch, batch_size=self.batch_size)
        for p in pairs:
            self._fifo.setdefault(p, deque()).append(t)
        self._step_pairs[t] = pairs
        self.n_added += len(pairs)
        return len(pairs)

    def _churn(self, deletes) -> Tuple[int, int]:
        batch = EdgeBatch.coerce(deletes)
        victims: List[Pair] = []
        skipped = 0
        for s, d in zip(batch.src, batch.dst):
            p = (int(s), int(d))
            fifo = self._fifo.get(p)
            if not fifo:
                skipped += 1  # no live copy: nothing to tombstone
                continue
            fifo.popleft()  # consume the oldest copy
            if not fifo:
                del self._fifo[p]
            victims.append(p)
        self._delete_pairs(victims)
        self.n_churn_deleted += len(victims)
        self.n_churn_skipped += skipped
        return len(victims), skipped

    def _expire(self, expire_step: int) -> int:
        if expire_step < 0:
            return 0
        victims: List[Pair] = []
        for p in self._step_pairs.pop(expire_step, []):
            fifo = self._fifo.get(p)
            if not fifo or fifo[0] != expire_step:
                continue  # this copy was already consumed by churn
            fifo.popleft()
            if not fifo:
                del self._fifo[p]
            victims.append(p)
        with trace("window_expiry", step=expire_step, copies=len(victims)):
            self._delete_pairs(victims)
        self.n_expired += len(victims)
        return len(victims)

    def _delete_pairs(self, pairs: List[Pair]) -> None:
        if not pairs:
            return
        arr = np.asarray(pairs, dtype=np.int64)
        batch = EdgeBatch(arr[:, 0], arr[:, 1], np.ones(arr.shape[0], dtype=bool))
        self.graph.insert_edges(batch, batch_size=self.batch_size)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def live_pair_counts(self) -> Dict[Pair, int]:
        """Live copy count per pair — the window's logical contents."""
        return {p: len(fifo) for p, fifo in self._fifo.items()}

    def live_edges(self) -> int:
        """Total live copies currently inside the window."""
        return sum(len(f) for f in self._fifo.values())

    def counters(self) -> Dict[str, int]:
        return {
            "steps": self.n_steps,
            "added": self.n_added,
            "churn_deleted": self.n_churn_deleted,
            "churn_skipped": self.n_churn_skipped,
            "expired": self.n_expired,
            "compactions": self.n_compactions,
        }


__all__ = ["TemporalWindowGraph"]
