"""Scaled proxies for the paper's evaluation datasets (Table 2).

Each entry records the real dataset's properties and a deterministic
recipe for a scaled-down synthetic stand-in preserving what matters to
DGAP's evaluation: the |E|/|V| ratio, the degree skew (R-MAT parameters
per domain), and the shuffled insertion order with a 10% warm-up prefix
(§4.1).  ``scale`` multiplies the default proxy vertex count; the
benchmarks use scale=1 by default and honour the ``REPRO_SCALE``
environment variable.

Real sizes (paper Table 2) vs. default proxy sizes:

============ ========== ============== ===== ================ =========
dataset      |V| (real) |E| (real)     E/V   proxy |V| (s=1)  proxy |E|
============ ========== ============== ===== ================ =========
orkut        3,072,626  234,370,166    76    4,096            311,296
livejournal  4,847,570  85,702,474     18    8,192            147,456
citpatents   6,009,554  33,037,894     6     12,288           73,728
twitter      61,578,414 2,405,026,390  39    8,192            319,488
friendster   124,836,179 3,612,134,270 29    12,288           356,352
protein      8,745,543  1,309,240,502  149   2,048            305,152
============ ========== ============== ===== ================ =========
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .rmat import rmat_edges, shuffle_edges, uniform_edges


@dataclass(frozen=True)
class DatasetSpec:
    """One paper dataset (Table 2) and its scaled-proxy recipe."""

    name: str
    domain: str
    real_vertices: int
    real_edges: int
    ratio: int  # |E| / |V|
    proxy_vertices: int  # at scale 1
    #: R-MAT partition parameter ``a`` (skew); None = uniform generator
    rmat_a: float | None
    seed: int

    @property
    def real_fits_xpgraph_log(self) -> bool:
        """Whether the real graph fits XPGraph's default 8 GB edge log
        (16 B/edge -> 512M edges) — the Table 3 small-graph exception."""
        return self.real_edges <= 512_000_000

    def sizes(self, scale: float = 1.0) -> Tuple[int, int]:
        """Proxy (num_vertices, num_edges) at the given scale factor."""
        nv = max(256, int(self.proxy_vertices * scale))
        return nv, nv * self.ratio

    def generate(self, scale: float = 1.0) -> np.ndarray:
        """Deterministic shuffled edge stream for this proxy."""
        nv, ne = self.sizes(scale)
        if self.rmat_a is None:
            edges = uniform_edges(nv, ne, seed=self.seed)
        else:
            b = c = (1.0 - self.rmat_a) / 3
            edges = rmat_edges(nv, ne, a=self.rmat_a, b=b, c=c, seed=self.seed)
        return shuffle_edges(edges, seed=self.seed + 1)

    def split_warmup(self, edges: np.ndarray, fraction: float = 0.10):
        """The paper's protocol: first 10% warms the system, the rest is timed."""
        k = int(edges.shape[0] * fraction)
        return edges[:k], edges[k:]


#: social graphs: strong skew; citation: mild; protein: dense biological.
DATASETS: Dict[str, DatasetSpec] = {
    s.name: s
    for s in (
        DatasetSpec("orkut", "social", 3_072_626, 234_370_166, 76, 4096, 0.57, 101),
        DatasetSpec("livejournal", "social", 4_847_570, 85_702_474, 18, 8192, 0.57, 102),
        DatasetSpec("citpatents", "citation", 6_009_554, 33_037_894, 6, 12288, 0.45, 103),
        DatasetSpec("twitter", "social", 61_578_414, 2_405_026_390, 39, 8192, 0.60, 104),
        DatasetSpec("friendster", "social", 124_836_179, 3_612_134_270, 29, 12288, 0.57, 105),
        DatasetSpec("protein", "biology", 8_745_543, 1_309_240_502, 149, 2048, 0.50, 106),
        # Synthetic headroom notch for multi-pool (sharded) benchmarks:
        # one proxy-size step above the largest real-graph proxy, so
        # shard-scaling runs are not vertex-bound at the sizes where a
        # single pool already saturates.  Graph500-style R-MAT skew.
        DatasetSpec("scale", "synthetic", 100_000_000, 1_600_000_000, 16, 24576, 0.57, 107),
    )
}

#: the paper's Table 2 evaluation set — what the figure benchmarks
#: iterate.  Excludes synthetic headroom notches ("scale"), which exist
#: for the shard-scaling benchmarks and are fetched via ``get_dataset``.
PAPER_DATASETS: Dict[str, DatasetSpec] = {
    k: s for k, s in DATASETS.items() if s.domain != "synthetic"
}

#: the small trio used by Table 5 / Fig. 9 (the paper limits component
#: and configuration studies to these).
SMALL_DATASETS = ("orkut", "livejournal", "citpatents")


def get_dataset(name: str) -> DatasetSpec:
    """Look up a paper dataset spec by name (see ``DATASETS``)."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}") from None


def env_scale(default: float = 1.0) -> float:
    """Benchmark scale factor from the ``REPRO_SCALE`` environment variable."""
    try:
        return float(os.environ.get("REPRO_SCALE", default))
    except ValueError:
        return default


__all__ = ["DatasetSpec", "DATASETS", "PAPER_DATASETS", "SMALL_DATASETS", "get_dataset", "env_scale"]
