"""Seeded temporal edge streams: windowed adds plus biased churn deletes.

The paper's evaluation (§4) replays static SNAP graphs as shuffled
insert-only streams; temporal deployments (contact networks, interaction
graphs) instead evolve in *steps* — each step contributes a burst of new
edges while old interactions lapse.  This module generates deterministic
proxies for that regime, mirroring ``registry.DatasetSpec``:

* **adds** come from the same R-MAT recipes as the static proxies (the
  skew is what stresses DGAP's PMA + edge logs), partitioned into
  ``num_steps`` bursts of uneven size — the EnglandCOVID-style step
  structure where per-step volume varies around the mean rather than
  arriving in equal slices;
* **churn deletes** remove a seeded fraction of each step's volume from
  the edges still alive, biased toward *old* copies (age exponent) and
  *busy* endpoints (degree exponent) — lapsing contacts concentrate on
  long-lived links and hubs, which keeps the delete stream pointed at
  the PMA regions where tombstones actually accumulate.

Deletes name live (src, dst) copies, never absent pairs, and each delete
consumes one live copy — duplicate parallel edges are deleted once per
copy.  Sliding-*window* expiry (drop everything older than W steps) is
the consumer's job: :class:`repro.temporal.TemporalWindowGraph` layers
it on top of these streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .rmat import rmat_edges, uniform_edges


@dataclass(frozen=True)
class TemporalStep:
    """One step of a temporal stream: a burst of adds, then churn deletes.

    Within a step the mutation order is: all ``adds`` (append order),
    then all ``deletes``.  Both are ``(N, 2)`` int64 arrays.
    """

    step: int
    adds: np.ndarray
    deletes: np.ndarray


@dataclass(frozen=True)
class TemporalSpec:
    """A seeded temporal-stream recipe (see module docstring)."""

    name: str
    domain: str
    proxy_vertices: int  # at scale 1
    ratio: int  # total adds / |V| over the whole stream
    num_steps: int
    churn: float  # deletes per step, as a fraction of that step's adds
    age_bias: float  # delete-weight exponent on copy age (steps since birth)
    degree_bias: float  # delete-weight exponent on endpoint degree
    #: R-MAT partition parameter ``a`` (skew); None = uniform generator
    rmat_a: float | None
    seed: int

    def sizes(self, scale: float = 1.0) -> Tuple[int, int]:
        """Proxy (num_vertices, total_adds) at the given scale factor."""
        nv = max(256, int(self.proxy_vertices * scale))
        return nv, nv * self.ratio

    def step_counts(self, scale: float = 1.0) -> np.ndarray:
        """Deterministic per-step add volumes (uneven, summing to total).

        EnglandCOVID-style cadence: volumes vary multiplicatively around
        the mean (0.5x–1.5x) instead of arriving in equal slices, so
        window occupancy and expiry pressure fluctuate step to step.
        """
        _, ne = self.sizes(scale)
        rng = np.random.default_rng(self.seed)
        w = 0.5 + rng.random(self.num_steps)
        counts = np.floor(w / w.sum() * ne).astype(np.int64)
        counts[: ne - int(counts.sum())] += 1  # distribute rounding remainder deterministically
        return counts

    def generate(self, scale: float = 1.0) -> List[TemporalStep]:
        """Deterministic list of :class:`TemporalStep` for this proxy."""
        nv, ne = self.sizes(scale)
        if self.rmat_a is None:
            edges = uniform_edges(nv, ne, seed=self.seed)
        else:
            b = c = (1.0 - self.rmat_a) / 3
            edges = rmat_edges(nv, ne, a=self.rmat_a, b=b, c=c, seed=self.seed)
        rng = np.random.default_rng(self.seed + 1)
        edges = edges[rng.permutation(edges.shape[0])]

        counts = self.step_counts(scale)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        del_rng = np.random.default_rng(self.seed + 2)

        # live pool of not-yet-deleted copies (window expiry is not
        # modeled here — the stream deletes only via churn)
        pool = np.empty((0, 2), dtype=np.int64)
        birth = np.empty(0, dtype=np.int64)

        steps: List[TemporalStep] = []
        for t in range(self.num_steps):
            adds = edges[bounds[t] : bounds[t + 1]]
            pool = np.concatenate([pool, adds], axis=0)
            birth = np.concatenate([birth, np.full(adds.shape[0], t, dtype=np.int64)])

            k = min(int(round(self.churn * adds.shape[0])), pool.shape[0])
            if k > 0:
                deg = np.bincount(pool.ravel(), minlength=nv)
                age = (t - birth + 1).astype(np.float64)
                w = age**self.age_bias * (deg[pool[:, 0]] + deg[pool[:, 1]]) ** self.degree_bias
                idx = del_rng.choice(pool.shape[0], size=k, replace=False, p=w / w.sum())
                deletes = pool[np.sort(idx)].copy()
                keep = np.ones(pool.shape[0], dtype=bool)
                keep[idx] = False
                pool, birth = pool[keep], birth[keep]
            else:
                deletes = np.empty((0, 2), dtype=np.int64)
            steps.append(TemporalStep(step=t, adds=adds, deletes=deletes))
        return steps


#: temporal proxies alongside the static registry: a contact-network
#: style stream (mild skew, many short steps, heavy churn) and social
#: streams reusing the Orkut/LiveJournal R-MAT skew with slower churn.
TEMPORAL_DATASETS: Dict[str, TemporalSpec] = {
    s.name: s
    for s in (
        TemporalSpec("covid-contact", "contact", 1024, 24, 52, 0.40, 1.0, 0.5, 0.45, 201),
        TemporalSpec("orkut-stream", "social", 2048, 32, 24, 0.30, 0.5, 1.0, 0.57, 202),
        TemporalSpec("livejournal-stream", "social", 4096, 18, 24, 0.20, 0.5, 1.0, 0.57, 203),
    )
}


def get_temporal_dataset(name: str) -> TemporalSpec:
    """Look up a temporal stream spec by name (see ``TEMPORAL_DATASETS``)."""
    try:
        return TEMPORAL_DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown temporal dataset {name!r}; choose from {sorted(TEMPORAL_DATASETS)}"
        ) from None


__all__ = [
    "TemporalStep",
    "TemporalSpec",
    "TEMPORAL_DATASETS",
    "get_temporal_dataset",
]
