"""Synthetic dataset proxies for the paper's SNAP evaluation graphs."""

from .registry import DATASETS, PAPER_DATASETS, SMALL_DATASETS, DatasetSpec, env_scale, get_dataset
from .rmat import rmat_edges, shuffle_edges, uniform_edges
from .temporal import TEMPORAL_DATASETS, TemporalSpec, TemporalStep, get_temporal_dataset

__all__ = [
    "DATASETS",
    "PAPER_DATASETS",
    "SMALL_DATASETS",
    "TEMPORAL_DATASETS",
    "DatasetSpec",
    "TemporalSpec",
    "TemporalStep",
    "get_dataset",
    "get_temporal_dataset",
    "env_scale",
    "rmat_edges",
    "uniform_edges",
    "shuffle_edges",
]
