"""Recursive-MATrix (R-MAT) graph generator, fully vectorized.

The paper evaluates on SNAP graphs (Orkut, LiveJournal, …) which we
cannot redistribute; the proxies in ``registry.py`` are R-MAT graphs
matched to each dataset's |V|, |E|/|V| ratio and skew.  R-MAT with the
classic (a, b, c) partition probabilities produces the power-law degree
distributions that drive DGAP's behaviour: hub vertices outgrow their
PMA gap allotments, exercising the edge logs and rebalancing exactly as
the real social graphs do.

Generation is one NumPy pass per recursion level over all edges at once
(E x log2(V) random draws), deterministic per seed.
"""

from __future__ import annotations

import numpy as np


def rmat_edges(
    num_vertices: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    remove_self_loops: bool = True,
) -> np.ndarray:
    """Generate an (E, 2) int64 edge array over ``num_vertices`` ids.

    ``num_vertices`` is rounded up to a power of two internally for the
    recursion; resulting ids are folded back below ``num_vertices`` by
    modulo, which preserves the skew (GAPBS does the same for non-pow2
    scales).  Parallel duplicate edges are kept, as in the GAP
    benchmark generator — dynamic frameworks must handle them.
    """
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    if not 0 < a + b + c < 1:
        raise ValueError("require a + b + c < 1 (d is the remainder)")
    levels = int(np.ceil(np.log2(num_vertices)))
    rng = np.random.default_rng(seed)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    ab = a + b
    abc = a + b + c
    for _ in range(levels):
        src <<= 1
        dst <<= 1
        r = rng.random(num_edges)
        # quadrant: TL (a) | TR (b) | BL (c) | BR (d)
        tr = (r >= a) & (r < ab)
        bl = (r >= ab) & (r < abc)
        br = r >= abc
        dst += tr | br
        src += bl | br
    src %= num_vertices
    dst %= num_vertices
    edges = np.stack([src, dst], axis=1)
    if remove_self_loops:
        mask = src != dst
        edges = edges[mask]
        deficit = num_edges - edges.shape[0]
        if deficit:
            # top up with uniform random non-loop edges (tiny fraction)
            extra_s = rng.integers(0, num_vertices, deficit * 2)
            extra_d = rng.integers(0, num_vertices, deficit * 2)
            ok = extra_s != extra_d
            extra = np.stack([extra_s[ok][:deficit], extra_d[ok][:deficit]], axis=1)
            edges = np.concatenate([edges, extra], axis=0)
    return edges


def uniform_edges(num_vertices: int, num_edges: int, seed: int = 0) -> np.ndarray:
    """Erdős–Rényi-style uniform random edges (used by low-skew proxies)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, num_edges, dtype=np.int64)
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % num_vertices
    return np.stack([src, dst], axis=1)


def shuffle_edges(edges: np.ndarray, seed: int = 0) -> np.ndarray:
    """The paper's insertion order: a random shuffle of all edges (§4.1)."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(edges.shape[0])
    return edges[perm]


__all__ = ["rmat_edges", "uniform_edges", "shuffle_edges"]
