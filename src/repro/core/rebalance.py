"""Crash-consistent PMA rebalancing and resizing (paper §3.1.4, Fig. 4).

A rebalance (a) picks the smallest PMA window back within its density
bound, (b) *gathers* every vertex run in the window — merging each
vertex's pending edge-log chain into its run, in insertion order —
(c) lays the runs back out with gaps redistributed proportionally to
run size (the VCSR-style workload weighting), and (d) writes the new
layout over the window under crash protection:

* **small windows** (≤ ULOG_SZ bytes — the common case and the paper's
  Fig. 4 scenario): the paper's exact protocol — back the whole window
  up in the per-thread undo log, then overwrite.  A crash restores the
  backup and re-issues the rebalance.
* **large windows**: the final image is first streamed to a persistent
  scratch area, a redirect record is committed in the undo-log header
  (state = COPYBACK), then copied over the window in ULOG_SZ chunks.  A
  crash *redoes* the idempotent copy from scratch.  This deviates from
  the paper's description (which chunk-backs-up destinations but does
  not explain how interrupted multi-chunk permutations are replayed —
  see DESIGN.md §9); it preserves the cost profile (bulk sequential
  writes, no PMDK journal allocations, O(1) ordering points) while
  making every crash point provably recoverable, which the crash-sweep
  tests verify exhaustively.

Edge-log clearing after a merge follows the DONE protocol in
``undo_log.py``: the window is recorded and state=DONE committed before
any log is cleared, so clears are idempotent across crashes and a
half-cleared state can always be completed — entries are never both in
the array and replayable from a log.

The ``No EL&UL`` ablation (Table 5) replaces all of this with one PMDK
transaction around the window.  Resizing never moves data in place:
it's a copy-on-write generation switch committed by a single atomic
root-pointer update.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

import numpy as np

from ..errors import GraphError, OutOfPMemError
from ..nputil import ScratchBuffer, multi_arange
from ..obs.tracer import annotate, trace
from .edge_array import EdgeArray
from .edge_log import EdgeLogs
from .encoding import SLOT_DTYPE, TOMB_BIT, encode_pivot, is_pivot, pivot_vertices
from .undo_log import (
    PHASE_COMPACT,
    STATE_ACTIVE,
    STATE_COPYBACK,
    STATE_DONE,
    STATE_IDLE,
    UndoLog,
)

#: Modeled cost of DGAP's element-by-element data movement during
#: rebalancing (paper §3.1.4: after backing a chunk up, DGAP "initiates
#: the process of moving and overwriting data element by element").
#: Charged per slot moved, on top of the bulk store/flush costs — it is
#: what makes small edge logs (frequent merges) expensive in Fig. 9.
ELEMENT_MOVE_NS = 22.0

#: Pool root slots used by the edge-array generation protocol.
ROOT_SHUTDOWN = 0
ROOT_GEN = 1
ROOT_SEGSLOTS = 2
ROOT_INIT_CAP = 3
ROOT_EPS = 4
ROOT_NTHREADS = 5
ROOT_NV_HINT = 6


class GatherResult:
    """Everything known about a window's contents after gathering.

    The per-vertex runs live concatenated in one ``values`` array
    (``sizes``/``run_off`` index it); ``runs`` materializes the
    per-vertex list of views lazily for the callers and tests that want
    the per-run shape.
    """

    __slots__ = ("lo", "hi", "i0", "j", "values", "sizes", "run_off",
                 "chain_gidxs", "total", "_runs")

    def __init__(self, lo, hi, i0, j, values, sizes, run_off, chain_gidxs, total):
        self.lo = lo
        self.hi = hi
        self.i0 = i0
        self.j = j
        self.values: np.ndarray = values  # all runs, concatenated (no pivots)
        self.sizes: np.ndarray = sizes  # per-vertex run length
        self.run_off: np.ndarray = run_off  # exclusive prefix sum of sizes
        self.chain_gidxs: np.ndarray = chain_gidxs
        self.total = total  # elements incl. pivots
        self._runs: Optional[List[np.ndarray]] = None

    @classmethod
    def from_runs(cls, lo, hi, i0, j, runs, chain_gidxs, total) -> "GatherResult":
        """Build from a per-vertex list of run arrays (scalar reference path)."""
        sizes = np.fromiter((r.size for r in runs), dtype=np.int64, count=len(runs))
        run_off = np.cumsum(sizes) - sizes
        values = (
            np.concatenate(runs) if runs else np.empty(0, dtype=SLOT_DTYPE)
        ).astype(SLOT_DTYPE, copy=False)
        res = cls(lo, hi, i0, j, values, sizes, run_off,
                  np.asarray(chain_gidxs, dtype=np.int64), total)
        res._runs = list(runs)
        return res

    @property
    def runs(self) -> List[np.ndarray]:
        """Per-vertex edge values (no pivot), as views into ``values``."""
        if self._runs is None:
            self._runs = [
                self.values[o : o + s]
                for o, s in zip(self.run_off.tolist(), self.sizes.tolist())
            ]
        return self._runs


def _compact_keep_mask(
    values: np.ndarray, sizes: np.ndarray, run_off: np.ndarray
) -> np.ndarray:
    """Per-run keep mask dropping matched tombstone + cancelled-live pairs.

    Pairing mirrors the snapshot read path (``snapshot._apply_tombstones``):
    within one vertex's logical run, a tombstone cancels the *most recent
    earlier* live occurrence of its destination, and both slots of a
    matched pair are dropped.  Unmatched tombstones (deletes of a
    never-present edge) are **kept**: they carry a −1 live-degree
    contribution that both the DRAM bookkeeping and the recovery scan
    (``live = array_deg − 2·tombs``) account per tombstone regardless of
    matching, so dropping them would silently shift live degrees.
    Filtering is order-preserving, so replaying the kept sequence reads
    back the exact same live adjacency.
    """
    keep = np.ones(values.size, dtype=bool)
    vals = values.tolist()
    tb = int(TOMB_BIT)
    for o, s in zip(run_off.tolist(), sizes.tolist()):
        open_pos: dict = {}
        for i in range(o, o + s):
            enc = vals[i]
            if enc & tb:
                stack = open_pos.get(enc & ~tb)
                if stack:
                    keep[stack.pop()] = False
                    keep[i] = False
            else:
                open_pos.setdefault(enc, []).append(i)
    return keep


class Rebalancer:
    """Stateless orchestration over a DGAP host (``host.va/ea/logs/ulogs/pool/config``)."""

    def __init__(self, host):
        self.host = host
        self._scratch = None  # lazily grown uint8 region for COPYBACK
        self._scratch_seq = 0
        self._tls = threading.local()  # per-thread DRAM scratch buffers

    def dram_scratch(self) -> ScratchBuffer:
        """Per-thread reusable DRAM scratch (gather values, window images).

        Thread-local because disjoint windows may rebalance concurrently;
        recovery (single-threaded) borrows the same pool for its scans.
        """
        sb = getattr(self._tls, "scratch", None)
        if sb is None:
            sb = self._tls.scratch = ScratchBuffer()
        return sb

    # ------------------------------------------------------------------
    # density triggers
    # ------------------------------------------------------------------
    def combined_occupancy(self) -> np.ndarray:
        return self.host.ea.seg_occ + self.host.logs.live_counts

    def maybe_rebalance(self, section: int, thread_id: int = 0) -> bool:
        """Called after an insertion raised ``section``'s density."""
        host = self.host
        ea = host.ea
        # Scalar fast path: the vast majority of inserts leave the leaf
        # under its bound — avoid building the full occupancy vector.
        leaf = int(ea.seg_occ[section]) + int(host.logs.live_counts[section])
        if leaf <= ea.tree.tau(0) * ea.segment_slots:
            return False
        occ = self.combined_occupancy()
        win = ea.tree.find_rebalance_window(occ, section)
        if win is None:
            self.resize(thread_id)
            return True
        lo_seg, hi_seg, level = win
        if level == 0:
            return False  # section itself back within bounds (tombstone churn)
        self.rebalance_window(lo_seg, hi_seg, level, thread_id)
        return True

    def merge_section(self, section: int, thread_id: int = 0) -> None:
        """Fold a (nearly full) section edge log back into the array (§3 ③)."""
        with trace("merge", section=section):
            ea = self.host.ea
            occ = self.combined_occupancy()
            win = ea.tree.find_rebalance_window(occ, section)
            if win is None:
                self.resize(thread_id)
                return
            lo_seg, hi_seg, level = win
            self.rebalance_window(lo_seg, hi_seg, level, thread_id)

    # ------------------------------------------------------------------
    # gather / plan
    # ------------------------------------------------------------------
    def _extend(self, lo: int, hi: int) -> Tuple[int, int, int, int]:
        """Extend slot range to whole-run boundaries; returns (lo, hi, i0, j)."""
        va = self.host.va
        n = va.num_vertices
        starts = va.starts()
        pivots = starts - 1
        i0 = int(np.searchsorted(pivots, lo, side="left"))
        if i0 > 0:
            prev_end = int(starts[i0 - 1] + va.array_degree[i0 - 1])
            if prev_end > lo:
                i0 -= 1
                lo = int(pivots[i0])
        j = int(np.searchsorted(pivots, hi, side="left"))
        if j > i0:
            last_end = int(starts[j - 1] + va.array_degree[j - 1])
            hi = max(hi, last_end)
        return lo, hi, i0, j

    def _gather(self, lo: int, hi: int, i0: int, j: int) -> GatherResult:
        """Collect runs (array edges + merged log chains) for vertices [i0, j).

        One whole-window bulk load plus one gather of every pending
        chain entry, with chain heads resolved by frontier pointer
        chasing — accounting-identical to the retained scalar reference
        (``scalar_readpath``): one sequential window read, then one
        random read per chain entry.
        """
        if self.host.config.scalar_readpath:
            return self._gather_scalar(lo, hi, i0, j)
        host = self.host
        va, ea, logs = host.va, host.ea, host.logs
        dev = host.pool.device
        n = j - i0
        win = dev.load_batch(ea.byte_off(lo), (hi - lo) * 4, bucket="rebalance").view(SLOT_DTYPE)
        starts = np.asarray(va.start[i0:j], dtype=np.int64) - lo
        ads = np.asarray(va.array_degree[i0:j], dtype=np.int64)
        counts, chain_gidxs, _ = logs.resolve_chains(
            va.el[i0:j], expect_src=np.arange(i0, j, dtype=np.int64)
        )
        sizes = ads + counts
        run_off = np.cumsum(sizes) - sizes
        nvals = int(sizes.sum())
        values = self.dram_scratch().take("gather.values", nvals, SLOT_DTYPE)
        if int(ads.sum()):
            values[multi_arange(run_off, ads)] = win[multi_arange(starts, ads)]
        if chain_gidxs.size:
            rows = logs.gather_entries(chain_gidxs, bucket="rebalance")
            # The r-th newest entry of vertex k fills slot end_k - 1 - r:
            # chains merge oldest-first behind the array part of the run.
            kk = np.repeat(np.arange(n, dtype=np.int64), counts)
            rr = np.arange(chain_gidxs.size, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            ends = run_off + sizes
            values[ends[kk] - 1 - rr] = rows[:, 1]
        return GatherResult(lo, hi, i0, j, values, sizes, run_off, chain_gidxs, n + nvals)

    def _gather_scalar(self, lo: int, hi: int, i0: int, j: int) -> GatherResult:
        """Per-vertex/per-entry reference implementation of :meth:`_gather`."""
        host = self.host
        va, ea, logs = host.va, host.ea, host.logs
        slots = ea.slots
        runs: List[np.ndarray] = []
        chain_gidxs: List[int] = []
        total = 0
        for v in range(i0, j):
            st = int(va.start[v])
            ad = int(va.array_degree[v])
            arr = slots[st : st + ad].copy()
            el = int(va.el[v])
            if el >= 0:
                chain = logs.walk_chain(el)  # newest first
                if chain and chain[-1][1] != v:
                    raise GraphError(f"edge-log chain of vertex {v} is corrupt")
                vals = np.fromiter(
                    (c[2] for c in reversed(chain)), dtype=SLOT_DTYPE, count=len(chain)
                )
                chain_gidxs.extend(c[0] for c in chain)
                run = np.concatenate([arr, vals])
            else:
                run = arr
            runs.append(run)
            total += 1 + run.size  # pivot + edges
        dev = host.pool.device
        dev.account_seq_read((hi - lo) * 4, bucket="rebalance")
        if chain_gidxs:
            dev.account_rnd_read(len(chain_gidxs), 12, bucket="rebalance")
        return GatherResult.from_runs(lo, hi, i0, j, runs, chain_gidxs, total)

    def _gaps(self, sizes: np.ndarray, G: int, T: int) -> np.ndarray:
        """Per-run trailing gaps distributing ``G`` free slots.

        Proportional to run size by default (VCSR's workload-aware
        uneven distribution: hot vertices get more room);
        ``gap_distribution="uniform"`` switches to the classic PMA/PCSR
        even split — the design-choice ablation.
        """
        nv = len(sizes)
        if self.host.config.gap_distribution == "uniform":
            gaps = np.full(nv, G // nv, dtype=np.int64)
            rem = G - int(gaps.sum())
            gaps[:rem] += 1
        else:
            gaps = (G * sizes) // T
            rem = G - int(gaps.sum())
            if rem:
                order = np.argsort(-sizes, kind="stable")[:rem]
                gaps[order] += 1
        return gaps

    def _plan(self, g: GatherResult) -> Tuple[np.ndarray, np.ndarray]:
        """Final window image + new per-vertex start slots.

        Counting-sort layout: run positions come from one prefix sum
        over sizes-plus-gaps, then pivots and all run values scatter
        into the image in two fancy-indexed stores.
        """
        if self.host.config.scalar_readpath:
            return self._plan_scalar(g)
        W = g.hi - g.lo
        nv = len(g.sizes)
        sizes = 1 + g.sizes  # pivot + edges
        T = int(sizes.sum())
        assert T == g.total and T <= W
        gaps = self._gaps(sizes, W - T, T) if nv else sizes
        steps = sizes + gaps
        pos = np.cumsum(steps) - steps  # window-relative pivot slots
        new_starts = g.lo + pos + 1
        image = self.dram_scratch().take("plan.image", W, SLOT_DTYPE, zero=True)
        if nv:
            image[pos] = -(np.arange(g.i0, g.j, dtype=np.int64) + 1)  # encode_pivot
            if g.values.size:
                image[multi_arange(pos + 1, g.sizes)] = g.values
        return image, new_starts

    def _plan_scalar(self, g: GatherResult) -> Tuple[np.ndarray, np.ndarray]:
        """Per-run reference implementation of :meth:`_plan`."""
        W = g.hi - g.lo
        nv = len(g.runs)
        sizes = np.fromiter((1 + r.size for r in g.runs), dtype=np.int64, count=nv)
        T = int(sizes.sum())
        assert T == g.total and T <= W
        gaps = self._gaps(sizes, W - T, T) if nv else sizes
        image = np.zeros(W, dtype=SLOT_DTYPE)
        new_starts = np.zeros(nv, dtype=np.int64)
        pos = 0
        for k, run in enumerate(g.runs):
            image[pos] = encode_pivot(g.i0 + k)
            image[pos + 1 : pos + 1 + run.size] = run
            new_starts[k] = g.lo + pos + 1
            pos += 1 + run.size + int(gaps[k])
        return image, new_starts

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _get_scratch(self, nbytes: int):
        if self._scratch is None or self._scratch.count < nbytes:
            pool = self.host.pool
            cap = max(nbytes, 64 * 1024)
            while True:
                self._scratch_seq += 1
                name = f"rebal.scratch.{self._scratch_seq}"
                if not pool.has_array(name):
                    self._scratch = pool.alloc_array(name, np.uint8, cap)
                    break
                # left over from a pre-crash instance: reuse if big enough
                existing = pool.get_array(name)
                if existing.count >= nbytes:
                    self._scratch = existing
                    break
        return self._scratch

    def write_window_protected(self, lo: int, hi: int, image: np.ndarray, thread_id: int) -> None:
        """Crash-consistently overwrite slots ``[lo, hi)`` with ``image``.

        Used by rebalances and by the "No EL" nearby-shift path.  Small
        windows use the paper's backup-then-overwrite undo-log protocol;
        large ones the copy-on-write redirect; the "No EL&UL" ablation a
        PMDK transaction.  The caller owns the undo log's completion
        protocol (mark_done/finish).
        """
        self._execute(lo, hi, image, thread_id)

    def _execute(self, lo: int, hi: int, image: np.ndarray, thread_id: int) -> None:
        with trace("write_window", slots=hi - lo):
            self._execute_traced(lo, hi, image, thread_id)

    def _execute_traced(self, lo: int, hi: int, image: np.ndarray, thread_id: int) -> None:
        host = self.host
        dev = host.pool.device
        ea = host.ea
        nbytes = (hi - lo) * 4
        img8 = np.ascontiguousarray(image).view(np.uint8)
        dst = ea.byte_off(lo)

        if not host.config.use_undo_log:
            # Ablation "No EL&UL": one PMDK transaction around the window.
            dev.account_ns((hi - lo) * ELEMENT_MOVE_NS, bucket="rebalance-move")
            with host.tx_mgr.tx() as t:
                t.add(dst, nbytes)
                dev.store(dst, img8, payload=0)
                dev.persist(dst, nbytes)
            return

        ulog: UndoLog = host.ulogs[thread_id]
        dev.account_ns((hi - lo) * ELEMENT_MOVE_NS, bucket="rebalance-move")
        if nbytes <= ulog.capacity:
            # Paper protocol: backup destination, then overwrite.
            ulog.snapshot_window(lo, hi, dst, nbytes)
            dev.store(dst, img8, payload=0)
            dev.persist(dst, nbytes)
        else:
            # Copy-on-write redirect for windows larger than ULOG_SZ.
            scratch = self._get_scratch(nbytes)
            dev.ntstore(scratch.offset, img8, payload=0)
            dev.sfence()
            ulog.begin_copyback(lo, hi, scratch.offset, nbytes)
            self._copy_scratch(scratch.offset, dst, nbytes, ulog)

    def _copy_scratch(self, src_off: int, dst_off: int, nbytes: int, ulog: UndoLog) -> None:
        dev = self.host.pool.device
        dev.copyback_stream(src_off, dst_off, nbytes, chunk=ulog.capacity)
        dev.sfence()

    def _clears_by_window(self, lo: int, hi: int) -> None:
        """Idempotent post-merge edge-log cleanup for window slots [lo, hi).

        Fully-covered sections' logs are cleared wholesale; boundary
        (partially covered) sections keep sibling vertices' entries and
        only the merged vertices' entries are invalidated.  Merged
        vertices are identified positionally (pivot inside the window),
        so this can run during crash recovery with no DRAM metadata.
        """
        host = self.host
        ea, logs = host.ea, host.logs
        S = ea.segment_slots
        s_lo, s_hi = lo // S, (hi + S - 1) // S
        full_lo = (lo + S - 1) // S
        full_hi = hi // S
        window_slots = ea.slots[lo:hi]
        merged = pivot_vertices(window_slots[is_pivot(window_slots)])
        for s in range(s_lo, s_hi):
            if full_lo <= s < full_hi:
                if logs.counts[s] or logs.region.view[
                    logs._base(s) : logs._base(s) + 3
                ].any():
                    logs.clear_section(s)
                else:
                    logs.counts[s] = 0
                    logs.live_counts[s] = 0
            else:
                entries = logs.section_entries(s)
                if entries.size == 0:
                    continue
                srcs = entries[:, 0].astype(np.int64) - 1
                hit = (entries[:, 1] != 0) & np.isin(srcs, merged)
                bad = (logs.gidx(s, 0) + np.flatnonzero(hit)).tolist()
                if bad:
                    logs.invalidate_entries(bad)

    def _apply_dram(self, g: GatherResult, new_starts: np.ndarray) -> None:
        va = self.host.va
        i0, j = g.i0, g.j
        n = j - i0
        if n == 0:
            return
        deg = va.degree[i0:j].copy()
        live = va.live_degree[i0:j].copy()
        el = np.full(n, -1, dtype=np.int64)
        va.update_window(i0, j, new_starts, deg, deg.copy(), live, el)

    # ------------------------------------------------------------------
    # top-level operations
    # ------------------------------------------------------------------
    def _window_lock_span(self, lo: int, hi: int) -> range:
        ea = self.host.ea
        S = ea.segment_slots
        return range(lo // S, min((hi + S - 1) // S, ea.n_sections))

    def rebalance_window(self, lo_seg: int, hi_seg: int, level: int, thread_id: int = 0) -> None:
        """Rebalance one density-tree window under its section locks.

        §3.1.6 protocol: flag the window's sections, acquire every
        section lock in ascending order (``begin_rebalance``), *then*
        re-extend and gather — runs may have moved while waiting.  If
        re-extension or escalation widens the window beyond the held
        sections, all locks are dropped and the wider window is locked
        from scratch (holding a partial window while acquiring more is
        the out-of-order pattern the lock-discipline oracle rejects).
        The caller must hold no section locks (writers defer rebalances
        until after their release — see ``DGAP._insert_one``).
        """
        with trace("rebalance", lo_seg=lo_seg, hi_seg=hi_seg, level=level):
            self._rebalance_window_traced(lo_seg, hi_seg, level, thread_id)

    def _rebalance_window_traced(
        self, lo_seg: int, hi_seg: int, level: int, thread_id: int = 0
    ) -> None:
        host = self.host
        ea = host.ea
        S = ea.segment_slots
        locks = host.locks
        held: List[int] = []
        try:
            while True:
                if host.ea is not ea:
                    # A concurrent resize swapped the generation while we
                    # were waiting for locks: this trigger is obsolete —
                    # the new layout was just rebalanced wholesale.
                    return
                lo, hi = lo_seg * S, hi_seg * S
                lo, hi, i0, j = self._extend(lo, hi)
                need = self._window_lock_span(lo, hi)
                if not set(need) <= set(held):
                    if held:
                        locks.end_rebalance(held)
                        held = []
                    held = locks.begin_rebalance(need)
                    continue  # re-extend now that the window is exclusive
                if i0 == j:
                    return  # nothing but gaps in the window
                g = self._gather(lo, hi, i0, j)
                if g.total <= (hi - lo):
                    break
                # window can't hold its own contents (boundary extension):
                # escalate a level, or resize when already at the root.
                if level >= ea.tree.height:
                    locks.end_rebalance(held)
                    held = []
                    self.resize(thread_id)
                    return
                level += 1
                lo_seg, hi_seg = ea.tree.window_at(lo_seg, level)

            image, new_starts = self._plan(g)
            annotate(lo=g.lo, hi=g.hi, elements=g.total)
            self._execute(g.lo, g.hi, image, thread_id)

            if host.config.use_undo_log:
                ulog = host.ulogs[thread_id]
                ulog.mark_done(g.lo, g.hi)
                self._clears_by_window(g.lo, g.hi)
                ulog.finish()
            else:
                self._clears_by_window(g.lo, g.hi)
            self._apply_dram(g, new_starts)
            ea.recount(g.lo, g.hi)
            host.stats_note_rebalance(g.hi - g.lo)
            host.note_rebalance_window(g.lo, g.hi)
        finally:
            if held:
                locks.end_rebalance(held)

    def resize(self, thread_id: int = 0) -> None:
        """Copy-on-write generation switch to a (at least) doubled array.

        Runs under *full* exclusion: every section is flagged and locked
        (``begin_rebalance`` over the whole table) before the gather, so
        the quiescence assertion in ``SectionLockTable.resize`` — which
        this thread reaches via ``stats_note_resize`` after the commit
        point — holds by construction.  The lock-table swap releases the
        old generation's locks itself, so ``end_rebalance`` only runs on
        the early-exit (exception) path.  Callers must hold no section
        locks (deadlock-freedom: a resize acquires everything).
        """
        with trace("resize"):
            self._resize_traced(thread_id)

    def _resize_traced(self, thread_id: int = 0) -> None:
        host = self.host
        locks = host.locks
        held = locks.begin_rebalance(range(locks.n_sections))
        try:
            self._resize_locked(thread_id)
            held = []  # locks.resize() already dropped the old-table holds
        finally:
            if held:
                # Unwind only what this thread still holds: a failure
                # *after* the lock-table swap already released everything.
                me = threading.get_ident()
                still = locks.held_sections()
                mine = [s for s in held if still.get(s, (0, 0))[0] == me]
                if mine:
                    locks.end_rebalance(mine)

    def _resize_locked(self, thread_id: int = 0) -> None:
        host = self.host
        ea, va = host.ea, host.va
        # Gather the whole array.
        lo, hi, i0, j = self._extend(0, ea.capacity)
        g = self._gather(0, ea.capacity, i0, j)
        new_cap = ea.capacity
        target = host.config.tau_root * 0.75
        while g.total > new_cap * target:
            new_cap *= 2
        if new_cap == ea.capacity:
            new_cap *= 2

        gen = ea.gen + 1
        new_ea = EdgeArray(
            host.pool,
            new_cap,
            ea.segment_slots,
            ea.tree.bounds,
            gen=gen,
            create=True,
            pm_metadata=ea.pm_metadata,
        )
        new_logs = EdgeLogs(
            host.pool, new_ea.n_sections, host.logs.entries_per_section, gen=gen, create=True
        )
        # Lay out into the new generation (sequential streaming store).
        g2 = GatherResult(
            0, new_cap, g.i0, g.j, g.values, g.sizes, g.run_off, g.chain_gidxs, g.total
        )
        image, new_starts = self._plan(g2)
        host.pool.device.ntstore(new_ea.region.offset, image.view(np.uint8), payload=0)
        host.pool.device.sfence()
        # Commit point: the atomic generation switch.
        host.pool.write_root(ROOT_GEN, gen)

        host.ea = new_ea
        host.logs = new_logs
        self._apply_dram(g2, new_starts)
        new_ea.recount_all()
        host.stats_note_resize(new_cap)

    # ------------------------------------------------------------------
    # tombstone compaction (temporal expiry sweep)
    # ------------------------------------------------------------------
    def compact(self, thread_id: int = 0) -> dict:
        """Whole-array tombstone-merge sweep; returns sweep statistics.

        Gathers every vertex run (merging pending edge-log chains, as a
        rebalance would), drops each matched tombstone + cancelled-live
        pair (:func:`_compact_keep_mask`), and lays the filtered runs
        back out over the full array under the same crash protection as
        a rebalance window.  Live adjacency is byte-identical before and
        after; ``live_degree`` is untouched (a dropped pair nets zero)
        while ``degree``/``array_degree`` shrink to the filtered run
        lengths, so the paid-per-entry costs of future gathers and scans
        drop with the dead weight.

        Crash behavior needs no new recovery logic: a crash before the
        window image commits restores the backup and re-issues the
        window as a plain rebalance (the sweep is dropped — logically
        invisible); a crash after the COPYBACK commit redoes the copy
        and the recovery scan reconstructs the filtered metadata, with
        ``live = array_deg − 2·tombs`` still exact because only matched
        pairs were removed.
        """
        with trace("compact_sweep"):
            return self._compact_traced(thread_id)

    def _compact_traced(self, thread_id: int = 0) -> dict:
        host = self.host
        while True:
            locks = host.locks
            held = locks.begin_rebalance(range(locks.n_sections))
            try:
                ea, va = host.ea, host.va
                cap = ea.capacity
                lo, hi, i0, j = self._extend(0, cap)
                n = j - i0
                if n == 0:
                    return {
                        "slots": cap, "entries_before": 0, "entries_after": 0,
                        "pairs_dropped": 0, "tombstones_before": 0,
                        "tombstones_after": 0,
                    }
                g = self._gather(0, cap, i0, j)
                keep = _compact_keep_mask(g.values, g.sizes, g.run_off)
                kept_total = int(keep.sum())
                if n + kept_total > cap:
                    # Even the filtered image cannot fit in place (log
                    # chains outgrew the array): grow a generation, then
                    # sweep the new layout.
                    locks.end_rebalance(held)
                    held = []
                    self.resize(thread_id)
                    continue
                run_id = np.repeat(np.arange(n, dtype=np.int64), g.sizes)
                new_sizes = np.bincount(run_id[keep], minlength=n).astype(np.int64)
                values = g.values[keep]
                new_off = np.cumsum(new_sizes) - new_sizes
                g2 = GatherResult(
                    0, cap, i0, j, values, new_sizes, new_off,
                    g.chain_gidxs, n + kept_total,
                )
                image, new_starts = self._plan(g2)
                annotate(
                    slots=cap,
                    entries=int(g.values.size),
                    dropped=int(g.values.size - kept_total),
                )
                self._execute(0, cap, image, thread_id)
                if host.config.use_undo_log:
                    ulog = host.ulogs[thread_id]
                    ulog.mark_done(0, cap)
                    self._clears_by_window(0, cap)
                    ulog.finish()
                else:
                    self._clears_by_window(0, cap)
                # The filtered run *is* the vertex's whole logical
                # history now: degree == array_degree == kept length,
                # chains merged.  live_degree is invariant — each
                # dropped pair is one live (+1) and one tombstone (−1).
                live = va.live_degree[i0:j].copy()
                va.update_window(
                    i0, j, new_starts, new_sizes.copy(), new_sizes.copy(),
                    live, np.full(n, -1, dtype=np.int64),
                )
                ea.recount(0, cap)
                host.stats_note_rebalance(cap)
                host.note_rebalance_window(0, cap)
                tb = TOMB_BIT
                tombs_before = int(((g.values & tb) != 0).sum())
                tombs_after = int(((values & tb) != 0).sum())
                return {
                    "slots": cap,
                    "entries_before": int(g.values.size),
                    "entries_after": int(values.size),
                    "pairs_dropped": int(g.values.size - kept_total) // 2,
                    "tombstones_before": tombs_before,
                    "tombstones_after": tombs_after,
                }
            finally:
                if held:
                    locks.end_rebalance(held)

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def recover_ulog(self, ulog: UndoLog) -> Optional[Tuple[int, int]]:
        """Complete or unwind whatever one undo log was doing at the crash.

        Returns a window (lo, hi) that should be *re-issued* after the
        DRAM metadata is rebuilt, or None.
        """
        h = ulog.read_header()
        if h.state == STATE_IDLE:
            return None
        if h.state == STATE_ACTIVE:
            ulog.restore_if_valid()
            ulog.finish()
            return (h.win_lo, h.win_hi)
        if h.state == STATE_COPYBACK:
            self._copy_scratch(h.dst_off, self.host.ea.byte_off(h.win_lo), h.length, ulog)
            ulog.mark_done(h.win_lo, h.win_hi)
            self._clears_by_window(h.win_lo, h.win_hi)
            ulog.finish()
            return None
        if h.state == STATE_DONE:
            self._clears_by_window(h.done_lo, h.done_hi)
            ulog.finish()
            return None
        raise GraphError(f"undo log {ulog.thread_id} in unknown state {h.state}")


__all__ = ["Rebalancer", "GatherResult", "ROOT_SHUTDOWN", "ROOT_GEN", "ROOT_SEGSLOTS",
           "ROOT_INIT_CAP", "ROOT_EPS", "ROOT_NTHREADS", "ROOT_NV_HINT"]
