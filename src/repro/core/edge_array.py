"""Persistent edge array: a VCSR-style packed memory array (paper §3 ②).

The edge array is an int32 slot region on persistent memory holding
every vertex's *run* — its pivot element followed by its edges in
insertion order — with PMA gaps between runs.  Section (leaf segment)
occupancy counts are DRAM metadata by default, mirrored to PM with
persistent in-place updates under the "No DP" ablation (Table 5).

Generations: resizing the PMA does not move data in place — it writes a
fresh, larger region and atomically switches the pool root pointer
(copy-on-write), so a crash during resize trivially falls back to the
old generation.  Old generations are abandoned (bump allocator); real
PMDK would free them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..pmem.pool import PMemPool
from .encoding import SLOT_DTYPE
from .pma_tree import DensityBounds, PMATree


class EdgeArray:
    """One generation of the PM edge array plus its density metadata."""

    def __init__(
        self,
        pool: PMemPool,
        capacity_slots: int,
        segment_slots: int,
        bounds: DensityBounds,
        gen: int = 0,
        create: bool = True,
        pm_metadata: bool = False,
    ):
        if capacity_slots % segment_slots:
            raise ValueError("capacity must be a multiple of segment_slots")
        n_sections = capacity_slots // segment_slots
        if n_sections & (n_sections - 1):
            raise ValueError("number of sections must be a power of two")
        self.pool = pool
        self.capacity = capacity_slots
        self.segment_slots = segment_slots
        self.gen = gen
        self.tree = PMATree(n_sections, segment_slots, bounds)
        name = f"edges.g{gen}"
        if create:
            self.region = pool.alloc_array(name, SLOT_DTYPE, capacity_slots)
            self.region.fill(0)
        else:
            self.region = pool.get_array(name)

        #: per-section element counts (pivots + edges physically in the array).
        self.seg_occ = np.zeros(n_sections, dtype=np.int64)
        self.pm_metadata = pm_metadata
        self._occ_region = None
        if pm_metadata:
            occ_name = f"segocc.g{gen}"
            if create or not pool.has_array(occ_name):
                self._occ_region = pool.alloc_array(occ_name, np.int64, n_sections, initial=0)
            else:
                self._occ_region = pool.get_array(occ_name)

    # -- geometry -----------------------------------------------------------
    @property
    def n_sections(self) -> int:
        return self.tree.n_sections

    @property
    def slots(self) -> np.ndarray:
        """Read-only int32 view of the whole array."""
        return self.region.view

    def section_of(self, slot: int) -> int:
        return slot // self.segment_slots

    def byte_off(self, slot: int) -> int:
        return self.region.byte_offset(slot)

    # -- slot mutation ----------------------------------------------------------
    def write_slot(self, slot: int, value, payload: int = 0, persist: bool = True) -> None:
        self.region.write(slot, value, payload=payload, persist=persist)

    def write_run(self, start: int, values: np.ndarray, payload: int = 0) -> None:
        self.region.write_slice(start, values, payload=payload, persist=True)

    def write_slots(self, slots: np.ndarray, values: np.ndarray, payload: int = 4) -> None:
        """Batched scattered slot writes, one persisted store per slot.

        Counter-equivalent to ``for s, v in zip(slots, values):
        write_slot(s, v, payload, persist=True)`` in that order.
        """
        self.region.write_batch(slots, values, payload_per_unit=payload)

    # -- occupancy bookkeeping ------------------------------------------------------
    def inc_occ(self, section: int, delta: int = 1) -> None:
        self.seg_occ[section] += delta
        if self._occ_region is not None:
            # "No DP": the PMA tree lives on PM — persistent in-place update.
            self._occ_region.write(section, int(self.seg_occ[section]), payload=0, persist=True)

    def inc_occ_counts(self, counts: np.ndarray) -> None:
        """Bulk occupancy bump: ``counts`` holds one delta per section."""
        touched = np.flatnonzero(counts)
        self.seg_occ[touched] += counts[touched]
        if self._occ_region is not None:
            for s in touched.tolist():
                self._occ_region.write(s, int(self.seg_occ[s]), payload=0, persist=True)

    def recount(self, lo_slot: int, hi_slot: int) -> None:
        """Vectorized occupancy recount for the sections covering ``[lo, hi)``."""
        s0 = lo_slot // self.segment_slots
        s1 = (hi_slot + self.segment_slots - 1) // self.segment_slots
        view = self.slots[s0 * self.segment_slots : s1 * self.segment_slots]
        counts = np.count_nonzero(view.reshape(s1 - s0, self.segment_slots), axis=1)
        self.seg_occ[s0:s1] = counts
        if self._occ_region is not None:
            self._occ_region.write_slice(s0, self.seg_occ[s0:s1], payload=0, persist=True)

    def recount_all(self) -> None:
        self.recount(0, self.capacity)

    def combined_occupancy(self, log_live_counts: np.ndarray) -> np.ndarray:
        """Array elements + pending live edge-log entries per section —
        the density the PMA tree reasons about (paper: log edges count
        toward their section's density)."""
        return self.seg_occ + log_live_counts

    def total_elements(self) -> int:
        return int(self.seg_occ.sum())


__all__ = ["EdgeArray"]
