"""Per-thread undo logs for crash-consistent PMA rebalancing (paper §3 ④).

Each writer thread owns one fixed-size (``ULOG_SZ``, default 2 KB)
persistent log.  A rebalance moves data in chunks of at most
``ULOG_SZ`` bytes; before overwriting a destination chunk it backs the
chunk up here, so a crash at any point leaves either the old or the
fully-backed-up contents recoverable — without PMDK transactions'
journal allocations and ordering overhead (§2.4.2).

Persistent header (ten 8-byte fields, each updated failure-atomically):

====== ============ ====================================================
field  name         meaning
====== ============ ====================================================
0      valid        0 = no valid backup; else the 1-based step number
                    (the commit point of the backup protocol)
1      dst_off      device byte offset the backup corresponds to
2      length       backup length in bytes
3      state        0 idle / 1 rebalance active / 2 moves done, log
                    clears pending
4      phase        1 = compact (left-to-right), 2 = spread
                    (right-to-left)
5,6    win_lo/hi    rebalance window, in edge-array slot units
7      progress     chunk boundary: slots left of it (compact) or right
                    of it (spread) already hold the new layout
8,9    done_lo/hi   window recorded for the idempotent post-move
                    edge-log clears
====== ============ ====================================================

Backup protocol per chunk (the order is what makes every crash point
recoverable — see the rebalance crash-sweep tests):

1. ``valid <- 0``            (persist)  — payload is about to be reused
2. payload ``<-`` old bytes  (persist)
3. ``dst_off, length <- ...``(persist)
4. ``valid <- step``         (persist)  — commit point
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pmem.pool import PMemPool

STATE_IDLE = 0
STATE_ACTIVE = 1
STATE_DONE = 2
#: Large-window copy-on-write: the final layout sits complete in a
#: persistent scratch area; recovery re-copies it (idempotent redo).
STATE_COPYBACK = 3

PHASE_COMPACT = 1
PHASE_SPREAD = 2

_F_VALID = 0
_F_DST = 1
_F_LEN = 2
_F_STATE = 3
_F_PHASE = 4
_F_WIN_LO = 5
_F_WIN_HI = 6
_F_PROGRESS = 7
_F_DONE_LO = 8
_F_DONE_HI = 9
_N_FIELDS = 10


@dataclass
class UndoHeader:
    """Decoded view of a persistent undo-log header."""

    valid: int
    dst_off: int
    length: int
    state: int
    phase: int
    win_lo: int
    win_hi: int
    progress: int
    done_lo: int
    done_hi: int


class UndoLog:
    """One thread's undo log: persistent header + ``capacity`` payload bytes."""

    def __init__(self, pool: PMemPool, thread_id: int, capacity: int, create: bool = True):
        self.pool = pool
        self.thread_id = thread_id
        self.capacity = capacity
        hdr_name = f"ulog.hdr.t{thread_id}"
        pay_name = f"ulog.pay.t{thread_id}"
        if create:
            self.hdr = pool.alloc_array(hdr_name, np.int64, _N_FIELDS, initial=0)
            self.payload = pool.alloc_array(pay_name, np.uint8, capacity, initial=0)
        else:
            self.hdr = pool.get_array(hdr_name)
            self.payload = pool.get_array(pay_name)

    # -- header primitives -------------------------------------------------
    def _set(self, field: int, value: int) -> None:
        self.hdr.write(field, value, payload=0, persist=True)

    def _set_many(self, *pairs: tuple) -> None:
        # Several independent fields under one flush+fence (they are not
        # a commit point together — the atomic commit is always the
        # single trailing ``_set``; this is where DGAP's undo log saves
        # ordering cost over PMDK transactions).
        for f, v in pairs:
            self.hdr.write(f, v, payload=0)
        fields = [f for f, _ in pairs]
        lo, hi = min(fields), max(fields)
        self.hdr.clwb(lo, hi - lo + 1)
        self.hdr.device.sfence()

    def _set2(self, f1: int, v1: int, f2: int, v2: int) -> None:
        self._set_many((f1, v1), (f2, v2))

    def read_header(self) -> UndoHeader:
        h = self.hdr.view
        return UndoHeader(*(int(h[i]) for i in range(_N_FIELDS)))

    # -- rebalance lifecycle --------------------------------------------------
    def begin(self, win_lo: int, win_hi: int, phase: int) -> None:
        """Record the rebalance intent, then activate (state is the commit)."""
        self._set_many(
            (_F_VALID, 0),
            (_F_WIN_LO, win_lo),
            (_F_WIN_HI, win_hi),
            (_F_PHASE, phase),
            (_F_PROGRESS, win_lo if phase == PHASE_COMPACT else win_hi),
        )
        self._set(_F_STATE, STATE_ACTIVE)

    def snapshot_window(self, win_lo: int, win_hi: int, dev_off: int, nbytes: int) -> None:
        """Fused intent+backup for single-chunk operations (the common case).

        One fence covers the payload copy and every intent field, and a
        second covers the state+valid commit — this ordering economy
        over PMDK transactions is where the paper's per-thread undo log
        wins.  Safe because the two commit stores share a cache line
        and either partial outcome (ACTIVE+valid=0, or IDLE+valid=1)
        describes an untouched window.
        """
        assert nbytes <= self.capacity, "window exceeds ULOG_SZ"
        dev = self.payload.device
        data = dev.buf[dev_off : dev_off + nbytes].copy()
        dev.store(self.payload.offset, data, payload=0)
        dev.clwb(self.payload.offset, nbytes)
        for f, v in (
            (_F_DST, dev_off),
            (_F_LEN, nbytes),
            (_F_WIN_LO, win_lo),
            (_F_WIN_HI, win_hi),
            (_F_PHASE, PHASE_COMPACT),
            (_F_PROGRESS, win_lo),
        ):
            self.hdr.write(f, v, payload=0)
        self.hdr.clwb(_F_VALID, _N_FIELDS)
        dev.sfence()  # fence 1: payload + intent durable
        self.hdr.write(_F_STATE, STATE_ACTIVE, payload=0)
        self.hdr.write(_F_VALID, 1, payload=0)
        self.hdr.clwb(_F_VALID, _F_STATE - _F_VALID + 1)
        dev.sfence()  # fence 2: commit

    def set_phase(self, phase: int, progress: int) -> None:
        # Invalidate any chunk backup from the previous phase first: the
        # old (phase, progress) pair no longer describes it.
        self._set(_F_VALID, 0)
        self._set2(_F_PHASE, phase, _F_PROGRESS, progress)

    def advance(self, progress: int) -> None:
        """Move the chunk boundary after a chunk's new contents persisted."""
        self._set(_F_PROGRESS, progress)

    def backup(self, dev_off: int, nbytes: int, step: int) -> None:
        """Back up device bytes ``[dev_off, dev_off+nbytes)`` (see protocol above)."""
        assert nbytes <= self.capacity, "chunk exceeds ULOG_SZ"
        assert step >= 1
        dev = self.payload.device
        self._set(_F_VALID, 0)
        data = dev.buf[dev_off : dev_off + nbytes].copy()
        dev.store(self.payload.offset, data, payload=0)
        dev.clwb(self.payload.offset, nbytes)
        self.hdr.write(_F_DST, dev_off, payload=0)
        self.hdr.write(_F_LEN, nbytes, payload=0)
        self.hdr.clwb(_F_DST, 2)
        dev.sfence()  # payload + location under one fence
        self._set(_F_VALID, step)  # commit point

    def begin_copyback(self, win_lo: int, win_hi: int, scratch_off: int, nbytes: int) -> None:
        """Commit a copy-on-write redirect: the final window image is
        complete and persistent at device offset ``scratch_off``.  The
        state store is the commit point; from here on recovery *redoes*
        the copy instead of undoing."""
        self._set2(_F_WIN_LO, win_lo, _F_WIN_HI, win_hi)
        self._set2(_F_DST, scratch_off, _F_LEN, nbytes)
        self._set(_F_VALID, 0)
        self._set(_F_STATE, STATE_COPYBACK)

    def mark_done(self, done_lo: int, done_hi: int) -> None:
        """All moves persisted; record the window for idempotent log clears.

        Ordering matters: state=DONE must become durable *before* any
        log is cleared, and recovery checks state before the backup
        validity — so a fully-merged window is never restored+re-merged
        (which would duplicate edges).  The stale ``valid`` flag is
        harmless: ``begin`` resets it before the next activation.
        """
        self._set2(_F_DONE_LO, done_lo, _F_DONE_HI, done_hi)
        self._set(_F_STATE, STATE_DONE)

    def finish(self) -> None:
        self._set(_F_STATE, STATE_IDLE)

    # -- recovery ---------------------------------------------------------------
    def restore_if_valid(self) -> bool:
        """If a committed chunk backup exists, write it back (post-crash)."""
        h = self.read_header()
        if h.valid == 0 or h.length == 0:
            return False
        dev = self.payload.device
        data = dev.buf[self.payload.offset : self.payload.offset + h.length].copy()
        dev.store(h.dst_off, data, payload=0)
        dev.persist(h.dst_off, h.length)
        self._set(_F_VALID, 0)
        return True


__all__ = [
    "UndoLog",
    "UndoHeader",
    "STATE_IDLE",
    "STATE_ACTIVE",
    "STATE_DONE",
    "STATE_COPYBACK",
    "PHASE_COMPACT",
    "PHASE_SPREAD",
]
