"""Per-section edge logs (paper §3 ③).

One pre-allocated, fixed-size (``ELOG_SZ``, default 2 KB) persistent log
per PMA leaf section.  When an edge insertion would require a *nearby
shift* in the edge array (its slot is occupied), the edge is appended
here instead — a single small sequential persistent write — and merged
back into the array in batch during the next rebalance, eliminating the
write amplification of Fig. 1(a).

Entry layout (12 bytes, matching the paper): ``(src, dst_enc, back)``
as three int32s.  Every field of a *written* entry is biased to be
nonzero, so a valid entry is exactly one whose three fields are all
nonzero — and any 8-byte-aligned subset of a torn entry (the
failure-atomic unit is 8 B; a 12 B entry spans two chunks, and its
fields alternate chunk pairing with entry parity) leaves at least one
field zero in the freshly-zeroed log slot, making torn entries
self-invalidating without a checksum:

* field 0 — source vertex id **plus one** (so vertex 0 is
  distinguishable from an unwritten slot);
* field 1 — the destination encoded as in the edge array
  (``dst+1``, optionally ``| TOMB_BIT``, always nonzero); merges zero
  this field to invalidate an entry in place;
* field 2 — global index of the *previous* entry of the same source
  vertex **plus two** (1 = no predecessor), forming the newest-first
  back-pointer chain whose head lives in the DRAM vertex array
  (``el_v``).

Recovery finds the append frontier as one past the last entry with any
nonzero field — no persistent per-log counter (counters would be
in-place PM updates, exactly what DGAP avoids).  ``read_entry`` /
``walk_chain`` undo the biases, so readers see plain ids.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import GraphError, PMemError
from ..pmem.pool import PMemPool

ENTRY_BYTES = 12
_FIELDS = 3  # src, dst_enc, back


class EdgeLogs:
    """All per-section logs of one edge-array generation, in one region."""

    def __init__(
        self,
        pool: PMemPool,
        n_sections: int,
        entries_per_section: int,
        gen: int = 0,
        create: bool = True,
    ):
        self.pool = pool
        self.n_sections = n_sections
        self.entries_per_section = entries_per_section
        self.gen = gen
        name = f"elogs.g{gen}"
        total = n_sections * entries_per_section * _FIELDS
        if create:
            self.region = pool.alloc_array(name, np.int32, total)
            self.region.fill(0)
        else:
            self.region = pool.get_array(name)
        #: DRAM append cursors (next free entry slot per section).
        self.counts = np.zeros(n_sections, dtype=np.int64)
        #: DRAM live (valid, unmerged) entry counts — these contribute to
        #: section density alongside array elements (paper §3 ③).
        self.live_counts = np.zeros(n_sections, dtype=np.int64)
        #: peak fill per section ever observed (Fig. 9's utilization metric).
        self.peak_counts = np.zeros(n_sections, dtype=np.int64)
        #: preallocated (cap, 3) output for :meth:`walk_chain_arrays`,
        #: grown by doubling; a returned view is valid until the next walk.
        self._chain_buf = np.empty((32, _FIELDS), dtype=np.int64)

    # -- geometry -----------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.entries_per_section

    def _base(self, section: int) -> int:
        return section * self.entries_per_section * _FIELDS

    def gidx(self, section: int, slot: int) -> int:
        return section * self.entries_per_section + slot

    def locate(self, gidx: int) -> Tuple[int, int]:
        return divmod(gidx, self.entries_per_section)

    def fill_fraction(self, section: int) -> float:
        return self.counts[section] / self.entries_per_section

    # -- mutation -------------------------------------------------------------
    def append(self, section: int, src: int, dst_enc: int, back_gidx: int) -> int:
        """Persistently append one entry; returns its global index.

        ``back_gidx`` is the previous entry of ``src`` (−1 for none).
        """
        slot = int(self.counts[section])
        if slot >= self.entries_per_section:
            raise PMemError(f"edge log of section {section} is full")
        entry = np.array([src + 1, dst_enc, back_gidx + 2], dtype=np.int32)
        pos = self._base(section) + slot * _FIELDS
        # One small persistent write — sequential within the section's log.
        self.region.write_slice(pos, entry, payload=4, persist=True)
        self.counts[section] = slot + 1
        self.live_counts[section] += 1
        if slot + 1 > self.peak_counts[section]:
            self.peak_counts[section] = slot + 1
        return self.gidx(section, slot)

    def append_batch(
        self, section: int, srcs: np.ndarray, dst_encs: np.ndarray, back_gidxs: np.ndarray
    ) -> np.ndarray:
        """Persistently append ``k`` entries; returns their global indices.

        Counter-equivalent to ``k`` scalar :meth:`append` calls in order
        (one 12-byte persisted store per entry), vectorized.
        """
        k = int(len(srcs))
        if k == 0:
            return np.empty(0, dtype=np.int64)
        slot = int(self.counts[section])
        if slot + k > self.entries_per_section:
            raise PMemError(f"edge log of section {section} cannot take {k} entries")
        entries = np.empty((k, _FIELDS), dtype=np.int32)
        entries[:, 0] = np.asarray(srcs, dtype=np.int64) + 1
        entries[:, 1] = dst_encs
        entries[:, 2] = np.asarray(back_gidxs, dtype=np.int64) + 2
        pos0 = self._base(section) + slot * _FIELDS
        idxs = pos0 + np.arange(k, dtype=np.int64) * _FIELDS
        self.region.write_batch(idxs, entries, payload_per_unit=4)
        self.counts[section] = slot + k
        self.live_counts[section] += k
        if slot + k > self.peak_counts[section]:
            self.peak_counts[section] = slot + k
        return self.gidx(section, slot) + np.arange(k, dtype=np.int64)

    def append_spans(
        self,
        sections: np.ndarray,
        takes: np.ndarray,
        srcs: np.ndarray,
        dst_encs: np.ndarray,
        back_gidxs: np.ndarray,
    ) -> np.ndarray:
        """Append runs to several sections with one batched device op.

        ``sections``/``takes`` name distinct sections and how many of the
        concatenated entries (``srcs``/``dst_encs``/``back_gidxs``, in
        section order) each receives.  Counter-equivalent to the same
        scalar :meth:`append` sequence; returns all global indices.
        """
        sections = np.asarray(sections, dtype=np.int64)
        takes = np.asarray(takes, dtype=np.int64)
        k = int(takes.sum())
        if k == 0:
            return np.empty(0, dtype=np.int64)
        base = self.counts[sections]
        if (base + takes > self.entries_per_section).any():
            raise PMemError("edge-log span append overflows a section")
        # concatenated per-section slot runs -> global entry indices
        ends = np.cumsum(takes)
        local = np.arange(k, dtype=np.int64) - np.repeat(ends - takes, takes)
        gidxs = np.repeat(sections * self.entries_per_section + base, takes) + local
        entries = np.empty((k, _FIELDS), dtype=np.int32)
        entries[:, 0] = np.asarray(srcs, dtype=np.int64) + 1
        entries[:, 1] = dst_encs
        entries[:, 2] = np.asarray(back_gidxs, dtype=np.int64) + 2
        self.region.write_batch(gidxs * _FIELDS, entries, payload_per_unit=4)
        self.counts[sections] = base + takes
        self.live_counts[sections] += takes
        self.peak_counts[sections] = np.maximum(self.peak_counts[sections], base + takes)
        return gidxs

    def append_scatter(
        self,
        gidxs: np.ndarray,
        srcs: np.ndarray,
        dst_encs: np.ndarray,
        back_gidxs: np.ndarray,
    ) -> np.ndarray:
        """Persist entries at caller-assigned global indices, in order.

        The caller guarantees each section's indices extend its cursor
        contiguously (slots ``counts[s] .. counts[s]+k_s-1``); entries
        from different sections may interleave, matching a batch's
        stream order.  Counter-equivalent to the same scalar
        :meth:`append` sequence; returns ``gidxs``.
        """
        gidxs = np.asarray(gidxs, dtype=np.int64)
        k = int(gidxs.size)
        if k == 0:
            return gidxs
        secs, cnts = np.unique(gidxs // self.entries_per_section, return_counts=True)
        new_counts = self.counts[secs] + cnts
        if (new_counts > self.entries_per_section).any():
            raise PMemError("edge-log scatter append overflows a section")
        entries = np.empty((k, _FIELDS), dtype=np.int32)
        entries[:, 0] = np.asarray(srcs, dtype=np.int64) + 1
        entries[:, 1] = dst_encs
        entries[:, 2] = np.asarray(back_gidxs, dtype=np.int64) + 2
        self.region.write_batch(gidxs * _FIELDS, entries, payload_per_unit=4)
        self.counts[secs] = new_counts
        self.live_counts[secs] += cnts
        self.peak_counts[secs] = np.maximum(self.peak_counts[secs], new_counts)
        return gidxs

    def clear_section(self, section: int) -> None:
        """Reset a section's log after its entries were merged (streaming store)."""
        pos = self._base(section)
        n = self.entries_per_section * _FIELDS
        self.region.nt_write_slice(pos, np.zeros(n, dtype=np.int32))
        self.region.device.sfence()
        self.counts[section] = 0
        self.live_counts[section] = 0

    def invalidate_entries(self, gidxs) -> None:
        """Zero the ``dst_enc`` field of specific entries (boundary-section merges).

        Invalidation keeps sibling vertices' entries intact while making
        the merged vertices' entries invisible to readers and recovery.
        """
        for g in gidxs:
            section, slot = self.locate(int(g))
            pos = self._base(section) + slot * _FIELDS + 1  # dst_enc field
            self.region.write(pos, 0, payload=0)
            self.live_counts[section] -= 1
        if len(gidxs):
            # One fence orders the batch.
            for g in gidxs:
                section, slot = self.locate(int(g))
                pos = self._base(section) + slot * _FIELDS + 1
                self.region.clwb(pos, 1)
            self.region.device.sfence()

    # -- reads -------------------------------------------------------------------
    def read_entry(self, gidx: int) -> Tuple[int, int, int]:
        """Return ``(src, dst_enc, back_gidx)`` (back −1 when none)."""
        section, slot = self.locate(gidx)
        pos = self._base(section) + slot * _FIELDS
        e = self.region.view[pos : pos + _FIELDS]
        return int(e[0]) - 1, int(e[1]), int(e[2]) - 2

    def section_entries(self, section: int) -> np.ndarray:
        """(count, 3) view of a section's appended entries (some may be invalidated)."""
        base = self._base(section)
        n = int(self.counts[section])
        return self.region.view[base : base + n * _FIELDS].reshape(n, _FIELDS)

    def gather_entries(self, gidxs, bucket: str = None) -> np.ndarray:
        """Accounted random gather of whole entries: ``(n, 3)`` int32 rows.

        One independent ``ENTRY_BYTES``-sized random read per entry via
        the device's :meth:`~repro.pmem.device.PMemDevice.gather_span` —
        the bulk form of ``read_entry`` (fields keep their on-media
        biases; callers undo them).
        """
        idxs = np.asarray(gidxs, dtype=np.int64) * _FIELDS
        return self.region.gather(idxs, per_unit=_FIELDS, bucket=bucket)

    def walk_chain_arrays(self, head_gidx: int, limit: int = -1):
        """Ndarray fast path of :meth:`walk_chain`.

        Follows back-pointers from ``head_gidx`` into a preallocated
        buffer; returns newest-first ``(gidxs, srcs, dst_encs)`` int64
        column views (valid until the next walk).  Pointer chasing a
        single chain is inherently serial, but writing into a reused
        ndarray avoids the per-entry tuple and list traffic of the
        scalar walk — see :meth:`resolve_chains` for the many-chain
        vectorized form.
        """
        buf = self._chain_buf
        view = self.region.view
        n = 0
        g = int(head_gidx)
        while g >= 0 and (limit < 0 or n < limit):
            if n >= buf.shape[0]:
                buf = np.concatenate([buf, np.empty_like(buf)])
                self._chain_buf = buf
            p = g * _FIELDS  # == _base(section) + slot * _FIELDS
            dst_enc = int(view[p + 1])
            if dst_enc == 0:
                raise PMemError(f"edge-log chain reached invalidated entry {g}")
            buf[n, 0] = g
            buf[n, 1] = int(view[p]) - 1
            buf[n, 2] = dst_enc
            n += 1
            g = int(view[p + 2]) - 2
        done = buf[:n]
        return done[:, 0], done[:, 1], done[:, 2]

    def walk_chain(self, head_gidx: int, limit: int = -1) -> list:
        """Follow back-pointers from ``head_gidx``; newest-first list of
        ``(gidx, src, dst_enc)``; stops after ``limit`` entries if >= 0.

        Scalar wrapper over :meth:`walk_chain_arrays`, kept for the
        tuple-shaped test callers; hot paths use the array forms.
        """
        gidxs, srcs, dst_encs = self.walk_chain_arrays(head_gidx, limit)
        return list(zip(gidxs.tolist(), srcs.tolist(), dst_encs.tolist()))

    def resolve_chains(self, heads: np.ndarray, expect_src: np.ndarray = None):
        """Follow *all* back-pointer chains at once (frontier pointer chasing).

        ``heads`` holds one chain head per vertex (−1 for no chain).
        Returns ``(counts, gidxs, dst_encs)``: per-head chain lengths
        plus the concatenated entries grouped by head, newest-first
        within each group — exactly what :meth:`walk_chain` per head
        would produce, computed round-by-round over a shrinking frontier
        (one fancy-indexed read per chain depth instead of one Python
        iteration per entry).

        When ``expect_src`` is given (aligned with ``heads``), each
        chain's *oldest* entry must name that source vertex — the same
        chain-root integrity check the scalar gather performs.
        """
        heads = np.asarray(heads, dtype=np.int64)
        nv = int(heads.size)
        counts = np.zeros(nv, dtype=np.int64)
        kidx = np.flatnonzero(heads >= 0)
        if kidx.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return counts, empty, empty
        view = self.region.view
        g = heads[kidx]
        rounds_k, rounds_g, rounds_d = [], [], []
        while g.size:
            p = g * _FIELDS
            src = view[p].astype(np.int64) - 1
            dst = view[p + 1].astype(np.int64)
            back = view[p + 2].astype(np.int64) - 2
            invalid = dst == 0
            if invalid.any():
                bad = int(g[int(invalid.argmax())])
                raise PMemError(f"edge-log chain reached invalidated entry {bad}")
            rounds_k.append(kidx)
            rounds_g.append(g)
            rounds_d.append(dst)
            counts[kidx] += 1
            ended = back < 0
            if expect_src is not None and ended.any():
                mism = src[ended] != np.asarray(expect_src)[kidx[ended]]
                if mism.any():
                    v = int(np.min(np.asarray(expect_src)[kidx[ended]][mism]))
                    raise GraphError(f"edge-log chain of vertex {v} is corrupt")
            keep = ~ended
            kidx = kidx[keep]
            g = back[keep]
        k_cat = np.concatenate(rounds_k)
        g_cat = np.concatenate(rounds_g)
        d_cat = np.concatenate(rounds_d)
        # An entry surfaced in round r is the r-th newest of its chain:
        # scatter each round to slot ``start_of_chain + r``.
        sizes = np.fromiter((a.size for a in rounds_k), dtype=np.int64, count=len(rounds_k))
        r_cat = np.repeat(np.arange(len(rounds_k), dtype=np.int64), sizes)
        start = np.cumsum(counts) - counts
        pos = start[k_cat] + r_cat
        gidxs = np.empty(k_cat.size, dtype=np.int64)
        dst_encs = np.empty(k_cat.size, dtype=np.int64)
        gidxs[pos] = g_cat
        dst_encs[pos] = d_cat
        return counts, gidxs, dst_encs

    # -- recovery -----------------------------------------------------------------
    def rebuild_counts(self, scalar: bool = False) -> None:
        """Recompute append cursors from persistent bytes (crash recovery).

        The cursor is one past the last *non-empty* entry — one with any
        nonzero field: merges invalidate interior entries (zeroing only
        ``dst_enc``) but never the append frontier, and a torn in-flight
        append may persist any field subset.  Either way the slot is
        spent; new appends go past it and fully overwrite nothing live.
        Only entries with all three fields nonzero are *valid* (counted
        live and replayed) — a torn partial entry can never be.

        One accounted sequential pass over the whole log region, via the
        device's bulk read layer; ``scalar=True`` runs the retained
        per-entry reference instead (same results, same accounting).
        """
        if scalar:
            self._rebuild_counts_scalar()
            return
        raw = self.pool.device.load_batch(self.region.offset, self.region.nbytes, bucket="recovery")
        view = raw.view(np.int32).reshape(self.n_sections, self.entries_per_section, _FIELDS)
        nonempty = (view != 0).any(axis=2)
        valid = (view != 0).all(axis=2)
        # highest non-empty index + 1 per section (0 when empty)
        rev = nonempty[:, ::-1]
        first = rev.argmax(axis=1)
        any_used = nonempty.any(axis=1)
        self.counts = np.where(any_used, self.entries_per_section - first, 0).astype(np.int64)
        self.live_counts = valid.sum(axis=1).astype(np.int64)

    def _rebuild_counts_scalar(self) -> None:
        """Per-entry reference implementation of :meth:`rebuild_counts`."""
        view = self.region.view
        counts = np.zeros(self.n_sections, dtype=np.int64)
        live = np.zeros(self.n_sections, dtype=np.int64)
        for s in range(self.n_sections):
            base = self._base(s)
            for slot in range(self.entries_per_section):
                p = base + slot * _FIELDS
                f0, f1, f2 = int(view[p]), int(view[p + 1]), int(view[p + 2])
                if f0 or f1 or f2:
                    counts[s] = slot + 1
                if f0 and f1 and f2:
                    live[s] += 1
        self.counts = counts
        self.live_counts = live
        self.pool.device.account_seq_read(self.region.nbytes, bucket="recovery")


__all__ = ["EdgeLogs", "ENTRY_BYTES"]
