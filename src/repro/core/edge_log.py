"""Per-section edge logs (paper §3 ③).

One pre-allocated, fixed-size (``ELOG_SZ``, default 2 KB) persistent log
per PMA leaf section.  When an edge insertion would require a *nearby
shift* in the edge array (its slot is occupied), the edge is appended
here instead — a single small sequential persistent write — and merged
back into the array in batch during the next rebalance, eliminating the
write amplification of Fig. 1(a).

Entry layout (12 bytes, matching the paper): ``(src, dst_enc, back)``
as three int32s.  Every field of a *written* entry is biased to be
nonzero, so a valid entry is exactly one whose three fields are all
nonzero — and any 8-byte-aligned subset of a torn entry (the
failure-atomic unit is 8 B; a 12 B entry spans two chunks, and its
fields alternate chunk pairing with entry parity) leaves at least one
field zero in the freshly-zeroed log slot, making torn entries
self-invalidating without a checksum:

* field 0 — source vertex id **plus one** (so vertex 0 is
  distinguishable from an unwritten slot);
* field 1 — the destination encoded as in the edge array
  (``dst+1``, optionally ``| TOMB_BIT``, always nonzero); merges zero
  this field to invalidate an entry in place;
* field 2 — global index of the *previous* entry of the same source
  vertex **plus two** (1 = no predecessor), forming the newest-first
  back-pointer chain whose head lives in the DRAM vertex array
  (``el_v``).

Recovery finds the append frontier as one past the last entry with any
nonzero field — no persistent per-log counter (counters would be
in-place PM updates, exactly what DGAP avoids).  ``read_entry`` /
``walk_chain`` undo the biases, so readers see plain ids.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import PMemError
from ..pmem.pool import PMemPool

ENTRY_BYTES = 12
_FIELDS = 3  # src, dst_enc, back


class EdgeLogs:
    """All per-section logs of one edge-array generation, in one region."""

    def __init__(
        self,
        pool: PMemPool,
        n_sections: int,
        entries_per_section: int,
        gen: int = 0,
        create: bool = True,
    ):
        self.pool = pool
        self.n_sections = n_sections
        self.entries_per_section = entries_per_section
        self.gen = gen
        name = f"elogs.g{gen}"
        total = n_sections * entries_per_section * _FIELDS
        if create:
            self.region = pool.alloc_array(name, np.int32, total)
            self.region.fill(0)
        else:
            self.region = pool.get_array(name)
        #: DRAM append cursors (next free entry slot per section).
        self.counts = np.zeros(n_sections, dtype=np.int64)
        #: DRAM live (valid, unmerged) entry counts — these contribute to
        #: section density alongside array elements (paper §3 ③).
        self.live_counts = np.zeros(n_sections, dtype=np.int64)
        #: peak fill per section ever observed (Fig. 9's utilization metric).
        self.peak_counts = np.zeros(n_sections, dtype=np.int64)

    # -- geometry -----------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.entries_per_section

    def _base(self, section: int) -> int:
        return section * self.entries_per_section * _FIELDS

    def gidx(self, section: int, slot: int) -> int:
        return section * self.entries_per_section + slot

    def locate(self, gidx: int) -> Tuple[int, int]:
        return divmod(gidx, self.entries_per_section)

    def fill_fraction(self, section: int) -> float:
        return self.counts[section] / self.entries_per_section

    # -- mutation -------------------------------------------------------------
    def append(self, section: int, src: int, dst_enc: int, back_gidx: int) -> int:
        """Persistently append one entry; returns its global index.

        ``back_gidx`` is the previous entry of ``src`` (−1 for none).
        """
        slot = int(self.counts[section])
        if slot >= self.entries_per_section:
            raise PMemError(f"edge log of section {section} is full")
        entry = np.array([src + 1, dst_enc, back_gidx + 2], dtype=np.int32)
        pos = self._base(section) + slot * _FIELDS
        # One small persistent write — sequential within the section's log.
        self.region.write_slice(pos, entry, payload=4, persist=True)
        self.counts[section] = slot + 1
        self.live_counts[section] += 1
        if slot + 1 > self.peak_counts[section]:
            self.peak_counts[section] = slot + 1
        return self.gidx(section, slot)

    def append_batch(
        self, section: int, srcs: np.ndarray, dst_encs: np.ndarray, back_gidxs: np.ndarray
    ) -> np.ndarray:
        """Persistently append ``k`` entries; returns their global indices.

        Counter-equivalent to ``k`` scalar :meth:`append` calls in order
        (one 12-byte persisted store per entry), vectorized.
        """
        k = int(len(srcs))
        if k == 0:
            return np.empty(0, dtype=np.int64)
        slot = int(self.counts[section])
        if slot + k > self.entries_per_section:
            raise PMemError(f"edge log of section {section} cannot take {k} entries")
        entries = np.empty((k, _FIELDS), dtype=np.int32)
        entries[:, 0] = np.asarray(srcs, dtype=np.int64) + 1
        entries[:, 1] = dst_encs
        entries[:, 2] = np.asarray(back_gidxs, dtype=np.int64) + 2
        pos0 = self._base(section) + slot * _FIELDS
        idxs = pos0 + np.arange(k, dtype=np.int64) * _FIELDS
        self.region.write_batch(idxs, entries, payload_per_unit=4)
        self.counts[section] = slot + k
        self.live_counts[section] += k
        if slot + k > self.peak_counts[section]:
            self.peak_counts[section] = slot + k
        return self.gidx(section, slot) + np.arange(k, dtype=np.int64)

    def append_spans(
        self,
        sections: np.ndarray,
        takes: np.ndarray,
        srcs: np.ndarray,
        dst_encs: np.ndarray,
        back_gidxs: np.ndarray,
    ) -> np.ndarray:
        """Append runs to several sections with one batched device op.

        ``sections``/``takes`` name distinct sections and how many of the
        concatenated entries (``srcs``/``dst_encs``/``back_gidxs``, in
        section order) each receives.  Counter-equivalent to the same
        scalar :meth:`append` sequence; returns all global indices.
        """
        sections = np.asarray(sections, dtype=np.int64)
        takes = np.asarray(takes, dtype=np.int64)
        k = int(takes.sum())
        if k == 0:
            return np.empty(0, dtype=np.int64)
        base = self.counts[sections]
        if (base + takes > self.entries_per_section).any():
            raise PMemError("edge-log span append overflows a section")
        # concatenated per-section slot runs -> global entry indices
        ends = np.cumsum(takes)
        local = np.arange(k, dtype=np.int64) - np.repeat(ends - takes, takes)
        gidxs = np.repeat(sections * self.entries_per_section + base, takes) + local
        entries = np.empty((k, _FIELDS), dtype=np.int32)
        entries[:, 0] = np.asarray(srcs, dtype=np.int64) + 1
        entries[:, 1] = dst_encs
        entries[:, 2] = np.asarray(back_gidxs, dtype=np.int64) + 2
        self.region.write_batch(gidxs * _FIELDS, entries, payload_per_unit=4)
        self.counts[sections] = base + takes
        self.live_counts[sections] += takes
        self.peak_counts[sections] = np.maximum(self.peak_counts[sections], base + takes)
        return gidxs

    def append_scatter(
        self,
        gidxs: np.ndarray,
        srcs: np.ndarray,
        dst_encs: np.ndarray,
        back_gidxs: np.ndarray,
    ) -> np.ndarray:
        """Persist entries at caller-assigned global indices, in order.

        The caller guarantees each section's indices extend its cursor
        contiguously (slots ``counts[s] .. counts[s]+k_s-1``); entries
        from different sections may interleave, matching a batch's
        stream order.  Counter-equivalent to the same scalar
        :meth:`append` sequence; returns ``gidxs``.
        """
        gidxs = np.asarray(gidxs, dtype=np.int64)
        k = int(gidxs.size)
        if k == 0:
            return gidxs
        secs, cnts = np.unique(gidxs // self.entries_per_section, return_counts=True)
        new_counts = self.counts[secs] + cnts
        if (new_counts > self.entries_per_section).any():
            raise PMemError("edge-log scatter append overflows a section")
        entries = np.empty((k, _FIELDS), dtype=np.int32)
        entries[:, 0] = np.asarray(srcs, dtype=np.int64) + 1
        entries[:, 1] = dst_encs
        entries[:, 2] = np.asarray(back_gidxs, dtype=np.int64) + 2
        self.region.write_batch(gidxs * _FIELDS, entries, payload_per_unit=4)
        self.counts[secs] = new_counts
        self.live_counts[secs] += cnts
        self.peak_counts[secs] = np.maximum(self.peak_counts[secs], new_counts)
        return gidxs

    def clear_section(self, section: int) -> None:
        """Reset a section's log after its entries were merged (streaming store)."""
        pos = self._base(section)
        n = self.entries_per_section * _FIELDS
        self.region.nt_write_slice(pos, np.zeros(n, dtype=np.int32))
        self.region.device.sfence()
        self.counts[section] = 0
        self.live_counts[section] = 0

    def invalidate_entries(self, gidxs) -> None:
        """Zero the ``dst_enc`` field of specific entries (boundary-section merges).

        Invalidation keeps sibling vertices' entries intact while making
        the merged vertices' entries invisible to readers and recovery.
        """
        for g in gidxs:
            section, slot = self.locate(int(g))
            pos = self._base(section) + slot * _FIELDS + 1  # dst_enc field
            self.region.write(pos, 0, payload=0)
            self.live_counts[section] -= 1
        if len(gidxs):
            # One fence orders the batch.
            for g in gidxs:
                section, slot = self.locate(int(g))
                pos = self._base(section) + slot * _FIELDS + 1
                self.region.clwb(pos, 1)
            self.region.device.sfence()

    # -- reads -------------------------------------------------------------------
    def read_entry(self, gidx: int) -> Tuple[int, int, int]:
        """Return ``(src, dst_enc, back_gidx)`` (back −1 when none)."""
        section, slot = self.locate(gidx)
        pos = self._base(section) + slot * _FIELDS
        e = self.region.view[pos : pos + _FIELDS]
        return int(e[0]) - 1, int(e[1]), int(e[2]) - 2

    def section_entries(self, section: int) -> np.ndarray:
        """(count, 3) view of a section's appended entries (some may be invalidated)."""
        base = self._base(section)
        n = int(self.counts[section])
        return self.region.view[base : base + n * _FIELDS].reshape(n, _FIELDS)

    def walk_chain(self, head_gidx: int, limit: int = -1) -> list:
        """Follow back-pointers from ``head_gidx``; newest-first list of
        ``(gidx, src, dst_enc)``; stops after ``limit`` entries if >= 0."""
        out = []
        g = head_gidx
        while g >= 0 and (limit < 0 or len(out) < limit):
            src, dst_enc, back = self.read_entry(g)
            if dst_enc == 0:
                raise PMemError(f"edge-log chain reached invalidated entry {g}")
            out.append((g, src, dst_enc))
            g = back
        return out

    # -- recovery -----------------------------------------------------------------
    def rebuild_counts(self) -> None:
        """Recompute append cursors from persistent bytes (crash recovery).

        The cursor is one past the last *non-empty* entry — one with any
        nonzero field: merges invalidate interior entries (zeroing only
        ``dst_enc``) but never the append frontier, and a torn in-flight
        append may persist any field subset.  Either way the slot is
        spent; new appends go past it and fully overwrite nothing live.
        Only entries with all three fields nonzero are *valid* (counted
        live and replayed) — a torn partial entry can never be.
        """
        view = self.region.view.reshape(self.n_sections, self.entries_per_section, _FIELDS)
        nonempty = (view != 0).any(axis=2)
        valid = (view != 0).all(axis=2)
        # highest non-empty index + 1 per section (0 when empty)
        rev = nonempty[:, ::-1]
        first = rev.argmax(axis=1)
        any_used = nonempty.any(axis=1)
        self.counts = np.where(any_used, self.entries_per_section - first, 0).astype(np.int64)
        self.live_counts = valid.sum(axis=1).astype(np.int64)
        self.pool.device.account_seq_read(self.region.nbytes, bucket="recovery")


__all__ = ["EdgeLogs", "ENTRY_BYTES"]
