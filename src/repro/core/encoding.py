"""Slot encoding for the persistent edge array (DESIGN.md §4).

Each edge-array slot is a signed 32-bit value (the paper stores 4-byte
destination ids; pivots and tombstones are encoded in-band):

* ``0``           — gap (empty slot; freshly zeroed memory is all gaps);
* ``-(v + 1)``    — pivot element of vertex ``v`` (paper: ``-vertex-id``,
  shifted by one so vertex 0 has a distinguishable pivot);
* ``dst + 1``     — a live edge to ``dst``;
* ``(dst + 1) | TOMB_BIT`` — a tombstoned edge to ``dst`` (paper §3.1.2:
  deletions re-insert the edge with its first destination bit set).

The ``+1`` shifts keep 0 reserved for gaps; ``TOMB_BIT`` is bit 30 so
tombstoned values stay positive.  Destination ids must therefore be
below ``2**30 - 2`` — far beyond any graph this simulator hosts.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

GAP = np.int32(0)
TOMB_BIT = np.int32(1 << 30)
MAX_VERTEX = (1 << 30) - 2

SLOT_DTYPE = np.int32
SLOT_BYTES = 4


def encode_pivot(v: int) -> np.int32:
    return np.int32(-(v + 1))


def encode_edge(dst: int, tombstone: bool = False) -> np.int32:
    val = dst + 1
    if tombstone:
        val |= int(TOMB_BIT)
    return np.int32(val)


def decode_pivot(slot: int) -> int:
    return -int(slot) - 1


def decode_edge(slot: int) -> Tuple[int, bool]:
    """Return ``(dst, is_tombstone)`` for a positive edge slot."""
    s = int(slot)
    tomb = bool(s & int(TOMB_BIT))
    return (s & ~int(TOMB_BIT)) - 1, tomb


# -- vectorized helpers --------------------------------------------------
def is_pivot(slots: np.ndarray) -> np.ndarray:
    return slots < 0


def is_edge(slots: np.ndarray) -> np.ndarray:
    return slots > 0


def is_gap(slots: np.ndarray) -> np.ndarray:
    return slots == 0


def is_tombstone(slots: np.ndarray) -> np.ndarray:
    return (slots > 0) & ((slots & TOMB_BIT) != 0)


def edge_dsts(slots: np.ndarray) -> np.ndarray:
    """Destination ids of positive (edge) slots — caller pre-filters."""
    return (slots & ~TOMB_BIT) - 1


def pivot_vertices(slots: np.ndarray) -> np.ndarray:
    """Vertex ids of negative (pivot) slots — caller pre-filters."""
    return -slots - 1


__all__ = [
    "GAP",
    "TOMB_BIT",
    "MAX_VERTEX",
    "SLOT_DTYPE",
    "SLOT_BYTES",
    "encode_pivot",
    "encode_edge",
    "decode_pivot",
    "decode_edge",
    "is_pivot",
    "is_edge",
    "is_gap",
    "is_tombstone",
    "edge_dsts",
    "pivot_vertices",
]
