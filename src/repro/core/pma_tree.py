"""Packed-Memory-Array density tree (Bender & Hu's adaptive PMA, §2.3).

The edge array is divided into fixed-size leaf *sections* (the paper's
lock/edge-log granularity).  An implicit binary tree sits above them;
each tree level ``h`` (0 = leaf) has an upper density bound ``tau(h)``
and a lower bound ``rho(h)``, linearly interpolated between the leaf
and root bounds.  When an insertion pushes a section past ``tau(0)``,
:meth:`find_rebalance_window` walks up the tree to the smallest aligned
window whose *combined* density (array elements + pending edge-log
entries) is back within bounds; if even the root is too dense the
caller must resize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class DensityBounds:
    """PMA density thresholds (upper tau, lower rho; leaf and root)."""

    tau_leaf: float
    tau_root: float
    rho_leaf: float
    rho_root: float


class PMATree:
    """Density bookkeeping over ``n_sections`` leaf sections of ``segment_slots`` slots."""

    def __init__(self, n_sections: int, segment_slots: int, bounds: DensityBounds):
        if n_sections < 1 or n_sections & (n_sections - 1):
            raise ValueError("n_sections must be a power of two >= 1")
        self.n_sections = n_sections
        self.segment_slots = segment_slots
        self.bounds = bounds
        #: tree height: number of levels above the leaves.
        self.height = int(n_sections).bit_length() - 1

    # -- thresholds -------------------------------------------------------
    def tau(self, level: int) -> float:
        """Upper density bound at ``level`` (0 = leaf, ``height`` = root)."""
        if self.height == 0:
            return self.bounds.tau_root
        f = level / self.height
        return self.bounds.tau_leaf - (self.bounds.tau_leaf - self.bounds.tau_root) * f

    def rho(self, level: int) -> float:
        """Lower density bound at ``level``."""
        if self.height == 0:
            return self.bounds.rho_root
        f = level / self.height
        return self.bounds.rho_leaf + (self.bounds.rho_root - self.bounds.rho_leaf) * f

    # -- window selection ---------------------------------------------------
    def window_at(self, section: int, level: int) -> Tuple[int, int]:
        """The aligned window of ``2**level`` sections containing ``section``."""
        width = 1 << level
        lo = section // width * width
        return lo, lo + width

    def density(self, occupancy: np.ndarray, lo: int, hi: int) -> float:
        """Combined density of sections ``[lo, hi)`` given per-section element counts."""
        slots = (hi - lo) * self.segment_slots
        return float(occupancy[lo:hi].sum()) / slots

    def leaf_overflows(self, occupancy: np.ndarray, section: int) -> bool:
        return self.density(occupancy, section, section + 1) > self.tau(0)

    def find_rebalance_window(
        self,
        occupancy: np.ndarray,
        section: int,
        extra: int = 0,
    ) -> Optional[Tuple[int, int, int]]:
        """Smallest aligned window around ``section`` within its level's bound.

        ``occupancy`` holds per-section element counts (edge-array
        elements plus pending edge-log entries — the paper counts both,
        §3 ③).  ``extra`` is added to the window's count (e.g. an
        element about to be inserted).  Returns ``(lo, hi, level)`` for
        the smallest in-bounds window (level 0 means the section itself
        is within bounds), or ``None`` when even the root window is too
        dense and the caller must resize the array.
        """
        for level in range(self.height + 1):
            lo, hi = self.window_at(section, level)
            count = float(occupancy[lo:hi].sum()) + extra
            slots = (hi - lo) * self.segment_slots
            if count / slots <= self.tau(level):
                return lo, hi, level
        # Even the root window exceeds its bound: the array must resize.
        return None

    def _root_overflows(self, occupancy: np.ndarray, extra: int) -> bool:
        total = float(occupancy.sum()) + extra
        return total / (self.n_sections * self.segment_slots) > self.tau(self.height)

    def needs_resize(self, occupancy: np.ndarray, extra: int = 0) -> bool:
        return self._root_overflows(occupancy, extra)

    def section_of_slot(self, slot: int) -> int:
        return slot // self.segment_slots

    def slot_range(self, lo_section: int, hi_section: int) -> Tuple[int, int]:
        return lo_section * self.segment_slots, hi_section * self.segment_slots


__all__ = ["PMATree", "DensityBounds"]
