"""Per-section concurrency control (paper §3.1.6).

DGAP keeps one lock (plus a "rebalancing" condition flag) per PMA leaf
section, all in DRAM — locks are rebuilt from scratch after a crash.
Writers lock the section of the vertex they insert into; a rebalance
first raises the section's condition flag, then acquires every affected
section's lock in ascending order (deadlock-free), runs, and notifies.

Two uses in this reproduction:

* **real threads** — the table wraps ``threading`` primitives, used by
  the concurrency-correctness tests (the GIL serializes bytecode, not
  compound critical sections, so the locks are load-bearing);
* **virtual threads** — the benchmark scheduler
  (``repro.workloads.vthreads``) reuses the same acquisition *order* to
  model lock-wait times on its per-thread clocks.
"""

from __future__ import annotations

import threading
from typing import Iterable, List


class SectionLockTable:
    """|sections| re-entrant locks with rebalance condition flags."""

    def __init__(self, n_sections: int):
        self.resize(n_sections)

    def resize(self, n_sections: int) -> None:
        """(Re)build the table — after init, resize, or crash recovery."""
        self.n_sections = n_sections
        self._locks: List[threading.RLock] = [threading.RLock() for _ in range(n_sections)]
        self._cond = threading.Condition(threading.Lock())
        self._rebalancing = [False] * n_sections

    # -- single-section write path ------------------------------------------
    def acquire(self, section: int) -> None:
        """Block while the section is being rebalanced, then lock it."""
        with self._cond:
            while self._rebalancing[section]:
                self._cond.wait()
        self._locks[section].acquire()

    def release(self, section: int) -> None:
        self._locks[section].release()

    def locked(self, section: int):
        """Context manager for one section."""
        return _SectionGuard(self, section)

    # -- rebalance path ---------------------------------------------------------
    def begin_rebalance(self, sections: Iterable[int]) -> List[int]:
        """Flag and lock a window of sections in ascending order."""
        secs = sorted(set(sections))
        with self._cond:
            self._set_flags(secs, True)
        for s in secs:
            self._locks[s].acquire()
        return secs

    def end_rebalance(self, secs: List[int]) -> None:
        for s in reversed(secs):
            self._locks[s].release()
        with self._cond:
            self._set_flags(secs, False)
            self._cond.notify_all()

    def _set_flags(self, secs: Iterable[int], value: bool) -> None:
        for s in secs:
            if 0 <= s < self.n_sections:
                self._rebalancing[s] = value


class _SectionGuard:
    __slots__ = ("table", "section")

    def __init__(self, table: SectionLockTable, section: int):
        self.table = table
        self.section = section

    def __enter__(self):
        self.table.acquire(self.section)
        return self

    def __exit__(self, *exc):
        self.table.release(self.section)
        return False


__all__ = ["SectionLockTable"]
