"""Per-section concurrency control (paper §3.1.6).

DGAP keeps one lock (plus a "rebalancing" condition flag) per PMA leaf
section, all in DRAM — locks are rebuilt from scratch after a crash.
Writers lock the section of the vertex they insert into; a rebalance
first raises the section's condition flag, then acquires every affected
section's lock in ascending order (deadlock-free), runs, and notifies.

Two uses in this reproduction:

* **real threads** — the table wraps ``threading`` primitives, used by
  the concurrency-correctness tests (the GIL serializes bytecode, not
  compound critical sections, so the locks are load-bearing);
* **virtual threads** — the benchmark scheduler
  (``repro.workloads.vthreads``) reuses the same acquisition *order* to
  model lock-wait times on its per-thread clocks.

Deadlock freedom rests on two rules, which the lock-discipline oracle
in ``repro.testing.racecheck`` checks on every recorded schedule:

1. every thread acquires section locks in **ascending order** and never
   blocks on a *flag* while holding any section lock (flag waiters hold
   nothing, lock waiters hold only lower-numbered sections — a wait
   cycle would need a descending edge, which cannot exist);
2. after acquiring a lock the flag is **re-checked**: a writer that
   raced past ``begin_rebalance``'s flag-set but won the lock drops it
   and retries, so a rebalance window never observes a writer inside.
   (The pre-fix code checked the flag only *before* acquiring — the
   TOCTOU the racecheck regression tests reproduce.)

``resize`` (after an edge-array generation switch) swaps the lock and
flag arrays wholesale.  It is only legal at quiescence: the caller may
hold locks itself (the resize path holds *every* section via
``begin_rebalance``), but any hold by another thread raises
:class:`~repro.errors.LockDisciplineError`.  The condition variable is
created once and survives resizes, so threads blocked in a flag wait
are always notified; threads blocked on an old table's lock are woken
by the old locks being released and retry against the new table (the
post-acquire identity check below).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Tuple

from ..errors import LockDisciplineError


class SectionLockTable:
    """|sections| re-entrant locks with rebalance condition flags.

    The protocol methods funnel every state change through ``_trace``
    (a no-op here) and every potentially blocking step through
    ``_lock_acquire`` / ``_cond_wait`` — the instrumented subclass in
    ``repro.testing.racecheck`` overrides those to record events and to
    yield to a deterministic scheduler, without duplicating any of the
    protocol logic below.
    """

    def __init__(self, n_sections: int):
        # Stable identities: survive resize so waiters are never orphaned.
        self._cond = threading.Condition(threading.Lock())
        self._build(n_sections)

    def _build(self, n_sections: int) -> None:
        self.n_sections = n_sections
        self._locks: List[threading.RLock] = [threading.RLock() for _ in range(n_sections)]
        #: rebalance flag as a counter — overlapping windows nest.
        self._rebalancing: List[int] = [0] * n_sections
        #: per-section (owner thread ident, reentrant hold count)
        self._holds: List[Tuple[int, int]] = [(0, 0)] * n_sections

    # -- overridable primitives (instrumentation points) -------------------
    def _trace(self, kind: str, section: int = -1, **info) -> None:
        """Protocol event hook; the instrumented table records + yields."""

    def _lock_acquire(self, lock: threading.RLock, section: int) -> None:
        lock.acquire()

    def _cond_wait(self) -> None:
        """One flag wait; called with ``_cond`` held, may wake spuriously."""
        self._cond.wait()

    # -- hold bookkeeping (always called with _cond held) -------------------
    def _note_acquire(self, section: int) -> None:
        owner, count = self._holds[section]
        self._holds[section] = (threading.get_ident(), count + 1)

    def _note_release(self, section: int) -> None:
        owner, count = self._holds[section]
        if count <= 0 or owner != threading.get_ident():
            raise LockDisciplineError(
                f"release of section {section} which this thread does not hold"
            )
        self._holds[section] = (owner if count > 1 else 0, count - 1)

    def holder(self, section: int) -> Tuple[int, int]:
        """(owner thread ident, hold count) — (0, 0) when free."""
        with self._cond:
            return self._holds[section]

    # -- single-section write path ------------------------------------------
    def acquire(self, section: int) -> None:
        """Block while the section is being rebalanced, then lock it.

        The flag is re-checked *after* the lock is won: if a rebalance
        flagged the section in the gap (or a resize swapped the table),
        the lock is dropped and the whole wait restarts.  Holding
        nothing while flag-waiting is what keeps the protocol
        deadlock-free (see module docstring).
        """
        while True:
            with self._cond:
                while self._rebalancing[section]:
                    self._trace("flag-wait", section)
                    self._cond_wait()
                lock = self._locks[section]
            self._trace("lock-request", section)
            self._lock_acquire(lock, section)
            with self._cond:
                if self._locks[section] is lock and not self._rebalancing[section]:
                    self._note_acquire(section)
                    self._trace("acquire", section)
                    return
            # Raced with begin_rebalance (flag rose in the check-to-acquire
            # gap) or with a table resize: back off and retry from the wait.
            self._trace("acquire-retry", section)
            lock.release()

    def acquire_many(self, sections: Iterable[int]) -> List[int]:
        """Writer multi-lock (batch path): ascending order, flag-gated.

        Waits for every flag with no locks held, then acquires in
        ascending order; if any flag rose meanwhile, releases everything
        and restarts — same no-hold-while-flag-waiting rule as
        :meth:`acquire`.
        """
        secs = sorted(set(int(s) for s in sections))
        while True:
            with self._cond:
                while any(self._rebalancing[s] for s in secs):
                    self._trace("flag-wait", next(s for s in secs if self._rebalancing[s]))
                    self._cond_wait()
                locks = [self._locks[s] for s in secs]
            for s, lock in zip(secs, locks):
                self._trace("lock-request", s)
                self._lock_acquire(lock, s)
            with self._cond:
                if all(self._locks[s] is lk for s, lk in zip(secs, locks)) and not any(
                    self._rebalancing[s] for s in secs
                ):
                    for s in secs:
                        self._note_acquire(s)
                        self._trace("acquire", s)
                    return secs
            self._trace("acquire-retry", secs[0] if secs else -1)
            for lock in reversed(locks):
                lock.release()

    def release(self, section: int) -> None:
        with self._cond:
            # Capture before the hold count drops: once it does, a resize
            # may pass its quiescence check and swap the table under us.
            lock = self._locks[section]
            self._note_release(section)
            self._trace("release", section)
        lock.release()

    def release_many(self, sections: Iterable[int]) -> None:
        for s in sorted(set(int(s) for s in sections), reverse=True):
            self.release(s)

    def locked(self, section: int):
        """Context manager for one section."""
        return _SectionGuard(self, section)

    # -- rebalance path ---------------------------------------------------------
    def begin_rebalance(self, sections: Iterable[int]) -> List[int]:
        """Flag and lock a window of sections in ascending order.

        Rebalancers never wait on flags (the counters nest), only on
        locks, and always ascending — so concurrent windows serialize
        without deadlock.  Each acquisition re-checks the table identity
        afterwards: a concurrent resize (which requires every lock, so
        it can only interleave *between* our acquisitions) swaps the
        lock objects, and a win on an orphaned old lock must be retried
        against the new table.
        """
        with self._cond:
            secs = sorted(
                set(int(s) for s in sections if 0 <= int(s) < self.n_sections)
            )
            for s in secs:
                self._rebalancing[s] += 1
                self._trace("flag-set", s)
        for s in secs:
            while True:
                with self._cond:
                    lock = self._locks[s] if s < self.n_sections else None
                if lock is None:
                    break  # table shrank underneath us; nothing to hold
                self._trace("window-request", s)
                self._lock_acquire(lock, s)
                with self._cond:
                    if s < self.n_sections and self._locks[s] is lock:
                        self._note_acquire(s)
                        self._trace("window-lock", s)
                        break
                lock.release()
        return secs

    def end_rebalance(self, secs: List[int]) -> None:
        for s in reversed(secs):
            with self._cond:
                lock = self._locks[s]
                self._note_release(s)
                self._trace("window-unlock", s)
            lock.release()
        with self._cond:
            for s in secs:
                if 0 <= s < self.n_sections and self._rebalancing[s] > 0:
                    self._rebalancing[s] -= 1
                    self._trace("flag-clear", s)
            self._cond.notify_all()

    # -- generation switch --------------------------------------------------
    def resize(self, n_sections: int) -> None:
        """(Re)build the table — after an edge-array resize or crash recovery.

        Quiescence is asserted, not assumed: any section held by a
        thread other than the caller raises
        :class:`~repro.errors.LockDisciplineError` (the resize path in
        ``core.rebalance`` guarantees this by holding every section via
        :meth:`begin_rebalance` across the generation switch).  The
        caller's own holds are released *after* the swap so threads
        blocked on old locks wake up, fail the identity re-check in
        :meth:`acquire`, and retry against the new table.
        """
        me = threading.get_ident()
        with self._cond:
            foreign = [
                s for s, (owner, count) in enumerate(self._holds)
                if count and owner != me
            ]
            if foreign:
                raise LockDisciplineError(
                    f"lock-table resize while sections {foreign} are held by "
                    f"other threads (resize requires quiescence)"
                )
            old_locks = self._locks
            mine = [(s, count) for s, (owner, count) in enumerate(self._holds) if count]
            self._build(n_sections)
            self._trace("resize", -1, n_sections=n_sections)
            self._cond.notify_all()
        # Release the caller's holds on the *old* table: waiters blocked in
        # _lock_acquire on an old lock wake here and retry on the new table.
        for s, count in reversed(mine):
            for _ in range(count):
                old_locks[s].release()

    # -- diagnostics ---------------------------------------------------------
    def held_sections(self) -> Dict[int, Tuple[int, int]]:
        """{section: (owner ident, count)} for every currently held section."""
        with self._cond:
            return {
                s: hold for s, hold in enumerate(self._holds) if hold[1] > 0
            }


class _SectionGuard:
    __slots__ = ("table", "section")

    def __init__(self, table: SectionLockTable, section: int):
        self.table = table
        self.section = section

    def __enter__(self):
        self.table.acquire(self.section)
        return self

    def __exit__(self, *exc):
        self.table.release(self.section)
        return False


__all__ = ["SectionLockTable"]
